"""repro-lint: checkers, suppressions, config, runner, CLI, and self-run.

Every checker gets a good/bad fixture pair plus a reasoned-suppression
fixture; the drift checker gets a synthetic project tree *and* a mutated
copy of the real server sources; and the suite ends by running the tool
over ``src/`` itself — the same gate CI enforces.
"""

import json
from pathlib import Path

import pytest

from repro.analysis import (
    CHECKERS,
    Checker,
    LintConfig,
    LintError,
    SUPPRESSION_CODE,
    run_lint,
)
from repro.analysis.suppressions import scan_suppressions
from repro.cli import main

REPO = Path(__file__).resolve().parents[1]
SRC = REPO / "src"

EXPECTED_CODES = {
    "REP101", "REP201", "REP301", "REP401", "REP501", "REP601", "REP701",
    "REP801", "REP802", "REP803",
}


def lint_file(tmp_path, rel, source, config=None):
    """Write one fixture file at ``tmp_path/rel`` and lint it."""
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return run_lint([path], config=config or LintConfig())


def codes(report):
    return [f.code for f in report.findings]


class TestRegistry:
    def test_all_expected_checkers_registered(self):
        assert EXPECTED_CODES <= set(CHECKERS)

    def test_checkers_satisfy_protocol(self):
        for code, checker in CHECKERS.items():
            assert isinstance(checker, Checker)
            assert checker.code == code
            assert checker.name and checker.description and checker.origin
            assert checker.scope in ("file", "project", "flow")

    def test_suppression_code_reserved_not_registered(self):
        assert SUPPRESSION_CODE == "REP000"
        assert SUPPRESSION_CODE not in CHECKERS


class TestSuppressionSyntax:
    def scan(self, source):
        return scan_suppressions(
            "x.py", source, known_codes=set(CHECKERS) | {SUPPRESSION_CODE}
        )

    def test_missing_reason_is_a_finding(self, tmp_path):
        report = lint_file(
            tmp_path,
            "x.py",
            "try:\n    pass\nexcept Exception:  # repro-lint: allow[REP501]\n"
            "    pass\n",
        )
        assert SUPPRESSION_CODE in codes(report)
        assert "no reason" in report.findings[0].message
        # The broken directive suppresses nothing: REP501 still fires.
        assert "REP501" in codes(report)
        assert report.exit_code == 1

    def test_unknown_code_is_a_finding(self):
        _, findings = self.scan("# repro-lint: allow[REP999] -- because\n")
        assert [f.code for f in findings] == [SUPPRESSION_CODE]
        assert "unknown code" in findings[0].message

    def test_empty_code_list_is_a_finding(self):
        _, findings = self.scan("# repro-lint: allow[] -- because\n")
        assert "no codes" in findings[0].message

    def test_malformed_directive_is_a_finding(self):
        _, findings = self.scan("# repro-lint: REP501 please\n")
        assert "malformed" in findings[0].message

    def test_trailing_directive_covers_its_line(self):
        allowed, findings = self.scan(
            "x = 1  # repro-lint: allow[REP501] -- why not\n"
        )
        assert findings == []
        assert allowed[1] == {"REP501"}

    def test_comment_above_covers_next_code_line(self):
        allowed, _ = self.scan(
            "# repro-lint: allow[REP101] -- local offset, not the sentinel\n"
            "if t_start == 0:\n"
            "    pass\n"
        )
        assert "REP101" in allowed[2]

    def test_multi_line_reason_chains_to_first_code_line(self):
        allowed, _ = self.scan(
            "# repro-lint: allow[REP501] -- a reason so long that\n"
            "# it wraps over two further comment lines before the\n"
            "# handler itself appears.\n"
            "except_line_stand_in = 1\n"
        )
        for line in (1, 2, 3, 4):
            assert "REP501" in allowed[line]

    def test_suppression_findings_are_not_suppressible(self, tmp_path):
        # A directive cannot allow REP000 over a broken directive below it.
        report = lint_file(
            tmp_path,
            "x.py",
            "# repro-lint: allow[REP000] -- trying to silence the scanner\n"
            "# repro-lint: allow[]\n"
            "x = 1\n",
        )
        assert SUPPRESSION_CODE in codes(report)
        assert report.exit_code == 1


class TestSentinelDiscipline:
    def test_truthiness_on_t_start_flagged(self, tmp_path):
        report = lint_file(
            tmp_path, "x.py", "if hit.t_start:\n    pass\n"
        )
        assert codes(report) == ["REP101"]
        assert "truthiness" in report.findings[0].message

    def test_magic_zero_compare_flagged(self, tmp_path):
        for src in (
            "ok = hit.t_start == 0\n",
            "ok = 0 != hit.t_start\n",
            "ok = t_start == 0\n",
        ):
            report = lint_file(tmp_path, "x.py", src)
            assert codes(report) == ["REP101"], src

    def test_named_constant_and_ordering_are_fine(self, tmp_path):
        report = lint_file(
            tmp_path,
            "x.py",
            "from repro.align.types import START_UNKNOWN\n"
            "def f(hit):\n"
            "    if hit.t_start == START_UNKNOWN:\n"
            "        return None\n"
            "    return hit.t_start >= 1 and hit.t_start - 1\n",
        )
        assert codes(report) == []

    def test_reasoned_suppression_silences(self, tmp_path):
        report = lint_file(
            tmp_path,
            "x.py",
            "ok = window.t_start == 0  "
            "# repro-lint: allow[REP101] -- window-local offset, not the "
            "engine sentinel\n",
        )
        assert codes(report) == []
        assert report.suppressed == 1


class TestDeterminism:
    REL = "workloads/gen.py"  # inside the default deterministic scope

    def test_entropy_sources_flagged(self, tmp_path):
        report = lint_file(
            tmp_path,
            self.REL,
            "import time\n"
            "import random\n"
            "import numpy as np\n"
            "from random import choice\n"
            "now = time.time()\n"
            "rng = np.random.default_rng()\n"
            "legacy = np.random.rand(3)\n",
        )
        assert codes(report) == ["REP201"] * 5
        messages = " ".join(f.message for f in report.findings)
        assert "wall-clock" in messages
        assert "argless default_rng" in messages
        assert "legacy global" in messages

    def test_seeded_rng_and_perf_counter_are_fine(self, tmp_path):
        report = lint_file(
            tmp_path,
            self.REL,
            "import numpy as np\n"
            "from time import perf_counter\n"
            "rng = np.random.default_rng(7)\n"
            "t0 = perf_counter()\n",
        )
        assert codes(report) == []

    def test_out_of_scope_module_untouched(self, tmp_path):
        report = lint_file(
            tmp_path, "tools/bench.py", "import time\nnow = time.time()\n"
        )
        assert codes(report) == []

    def test_reasoned_suppression_silences(self, tmp_path):
        report = lint_file(
            tmp_path,
            self.REL,
            "import time\n"
            "# repro-lint: allow[REP201] -- run-stamp only; never feeds the\n"
            "# generated workload itself.\n"
            "stamp = time.time()\n",
        )
        assert codes(report) == []
        assert report.suppressed == 1


class TestAsyncBlocking:
    REL = "repro/server/handler.py"  # inside the default async scope

    def test_blocking_calls_flagged(self, tmp_path):
        report = lint_file(
            tmp_path,
            self.REL,
            "import sqlite3\n"
            "import time\n"
            "async def handle(path, lock):\n"
            "    time.sleep(0.1)\n"
            "    conn = sqlite3.connect(path)\n"
            "    data = open(path).read()\n"
            "    text = path.read_text()\n"
            "    lock.acquire()\n"
            "    return conn, data, text\n",
        )
        assert codes(report) == ["REP401"] * 5

    def test_awaited_and_offloaded_forms_are_fine(self, tmp_path):
        report = lint_file(
            tmp_path,
            self.REL,
            "import asyncio\n"
            "async def handle(path, lock):\n"
            "    await asyncio.sleep(0.1)\n"
            "    await lock.acquire()\n"
            "    def blocking():  # runs on an executor thread\n"
            "        return open(path).read()\n"
            "    loop = asyncio.get_running_loop()\n"
            "    return await loop.run_in_executor(None, blocking)\n",
        )
        assert codes(report) == []

    def test_sync_def_and_out_of_scope_untouched(self, tmp_path):
        source = "import time\ndef handle():\n    time.sleep(0.1)\n"
        assert codes(lint_file(tmp_path, self.REL, source)) == []
        async_src = "import time\nasync def f():\n    time.sleep(1)\n"
        assert codes(lint_file(tmp_path, "repro/obs/x.py", async_src)) == []

    def test_reasoned_suppression_silences(self, tmp_path):
        report = lint_file(
            tmp_path,
            self.REL,
            "import time\n"
            "async def handle():\n"
            "    time.sleep(0)  # repro-lint: allow[REP401] -- zero-sleep "
            "yield shim for a legacy test\n",
        )
        assert codes(report) == []
        assert report.suppressed == 1


class TestExceptionDiscipline:
    def test_broad_handlers_flagged(self, tmp_path):
        report = lint_file(
            tmp_path,
            "x.py",
            "try:\n    pass\nexcept:\n    pass\n"
            "try:\n    pass\nexcept Exception:\n    pass\n"
            "try:\n    pass\nexcept BaseException as exc:\n    raise exc\n"
            "try:\n    pass\nexcept (ValueError, Exception):\n    pass\n",
        )
        assert codes(report) == ["REP501"] * 4

    def test_narrow_handlers_are_fine(self, tmp_path):
        report = lint_file(
            tmp_path,
            "x.py",
            "try:\n    pass\nexcept (ValueError, KeyError):\n    pass\n",
        )
        assert codes(report) == []

    def test_reasoned_suppression_silences(self, tmp_path):
        report = lint_file(
            tmp_path,
            "x.py",
            "try:\n"
            "    pass\n"
            "# repro-lint: allow[REP501] -- demo: this handler must fail\n"
            "# every waiting future whatever the runner threw.\n"
            "except Exception:\n"
            "    pass\n",
        )
        assert codes(report) == []
        assert report.suppressed == 1


class TestExportConsistency:
    def test_phantom_export_flagged(self, tmp_path):
        report = lint_file(
            tmp_path, "m.py", '__all__ = ["ghost"]\n'
        )
        assert codes(report) == ["REP601"]
        assert "neither defines nor imports" in report.findings[0].message

    def test_duplicate_entry_flagged(self, tmp_path):
        report = lint_file(
            tmp_path, "m.py", '__all__ = ["f", "f"]\n\ndef f():\n    pass\n'
        )
        assert any("duplicate" in f.message for f in report.findings)

    def test_unsanctioned_reexport_flagged(self, tmp_path):
        report = lint_file(
            tmp_path,
            "m.py",
            'from os.path import join\n\n__all__ = ["join"]\n',
        )
        assert codes(report) == ["REP601"]
        assert "re-export" in report.findings[0].message

    def test_sanctioned_reexport_allowed(self, tmp_path):
        report = lint_file(
            tmp_path,
            "align/bwt_sw.py",
            "from repro.scoring.evalue import resolve_threshold\n\n"
            '__all__ = ["resolve_threshold"]\n',
        )
        assert codes(report) == []

    def test_init_is_a_facade(self, tmp_path):
        report = lint_file(
            tmp_path,
            "pkg/__init__.py",
            "from pkg.mod import thing\n\n"
            '__all__ = ["thing"]\n',
        )
        assert codes(report) == []

    def test_public_def_missing_from_all_flagged(self, tmp_path):
        report = lint_file(
            tmp_path,
            "m.py",
            '__all__ = ["f"]\n\ndef f():\n    pass\n\ndef g():\n    pass\n',
        )
        assert codes(report) == ["REP601"]
        assert "'g'" in report.findings[0].message

    def test_module_without_all_is_skipped(self, tmp_path):
        report = lint_file(tmp_path, "m.py", "def f():\n    pass\n")
        assert codes(report) == []

    def test_non_literal_all_flagged(self, tmp_path):
        report = lint_file(
            tmp_path, "m.py", '__all__ = ["a"] + extra\nextra = []\n'
        )
        assert codes(report) == ["REP601"]
        assert "not a literal" in report.findings[0].message

    def test_reasoned_suppression_silences(self, tmp_path):
        report = lint_file(
            tmp_path,
            "m.py",
            "from os.path import join\n\n"
            '__all__ = ["join"]  # repro-lint: allow[REP601] -- fixture '
            "facade for this test\n",
        )
        assert codes(report) == []
        assert report.suppressed == 1


class TestMetricsRegistration:
    def test_in_function_construction_flagged(self, tmp_path):
        report = lint_file(
            tmp_path,
            "m.py",
            "from repro.obs.metrics import Counter\n\n"
            "def handler():\n"
            '    c = Counter("x_total", "help")\n'
            "    c.inc()\n",
        )
        assert codes(report) == ["REP701"]
        assert "module level" in report.findings[0].message

    def test_module_attribute_form_flagged(self, tmp_path):
        report = lint_file(
            tmp_path,
            "m.py",
            "from repro.obs import metrics\n\n"
            "def handler():\n"
            '    metrics.Histogram("x_seconds", "help")\n',
        )
        assert codes(report) == ["REP701"]
        assert "Histogram" in report.findings[0].message

    def test_module_level_construction_is_fine(self, tmp_path):
        report = lint_file(
            tmp_path,
            "m.py",
            "from repro.obs.metrics import Counter, Gauge\n\n"
            '_TOTAL = Counter("x_total", "help", ("mode",))\n'
            '_DEPTH = Gauge("x_depth", "help")\n'
            "def handler():\n"
            '    _TOTAL.labels(mode="exact").inc()\n',
        )
        assert codes(report) == []

    def test_explicit_registry_kwarg_exempt(self, tmp_path):
        report = lint_file(
            tmp_path,
            "m.py",
            "from repro.obs.metrics import Counter, MetricsRegistry\n\n"
            "def make_scratch():\n"
            "    registry = MetricsRegistry()\n"
            '    return Counter("x_total", "help", registry=registry)\n'
            "def unregistered():\n"
            '    return Counter("y_total", "help", registry=None)\n',
        )
        assert codes(report) == []

    def test_unrelated_constructor_names_untouched(self, tmp_path):
        report = lint_file(
            tmp_path,
            "m.py",
            "from collections import Counter\n\n"
            "def tally(items):\n"
            "    return Counter(items)\n",
        )
        assert codes(report) == []

    def test_reasoned_suppression_silences(self, tmp_path):
        report = lint_file(
            tmp_path,
            "m.py",
            "from repro.obs.metrics import Counter\n\n"
            "def handler():\n"
            '    Counter("x_total", "h")  # repro-lint: allow[REP701] -- '
            "fixture exercising the duplicate-registration path\n",
        )
        assert codes(report) == []
        assert report.suppressed == 1


def drift_tree(tmp_path, *, batch_fields, cache_params, columns, wire):
    """A minimal project exhibiting the four cache-key surfaces."""
    root = tmp_path / "proj"
    gets = "\n".join(
        f'        {name} = payload.get("{name}")' for name in wire
    )
    (root / "server").mkdir(parents=True)
    (root / "server" / "server.py").write_text(
        "class SearchServer:\n"
        "    def _parse_search(self, payload):\n"
        f"{gets}\n"
        f"        return [{', '.join(wire)}]\n"
    )
    fields = "\n".join(f"    {name}: int" for name in batch_fields)
    (root / "server" / "batcher.py").write_text(
        "from dataclasses import dataclass\n\n\n"
        "@dataclass(frozen=True)\n"
        "class BatchKey:\n"
        f"{fields}\n"
    )
    params = ", ".join(cache_params)
    (root / "server" / "cache.py").write_text(
        "class ResultCache:\n"
        f"    def key(self, sequence, {params}):\n"
        f"        return (sequence, {params})\n"
    )
    (root / "obs").mkdir()
    cols = ", ".join(f'"{c}"' for c in columns)
    (root / "obs" / "reqlog.py").write_text(
        f"REQUEST_COLUMNS = ({cols},)\n"
    )
    return root


class TestCacheKeyDrift:
    def test_aligned_tree_is_clean(self, tmp_path):
        root = drift_tree(
            tmp_path,
            wire=["op", "queries", "threshold"],
            batch_fields=["threshold"],
            cache_params=["threshold"],
            columns=["ts", "threshold"],
        )
        report = run_lint([root], config=LintConfig())
        assert codes(report) == []

    def test_new_wire_param_must_reach_all_three_keys(self, tmp_path):
        # 'salt' is parsed from the wire but threaded nowhere: one finding
        # per key surface it is missing from.
        root = drift_tree(
            tmp_path,
            wire=["op", "threshold", "salt"],
            batch_fields=["threshold"],
            cache_params=["threshold"],
            columns=["ts", "threshold"],
        )
        report = run_lint([root], config=LintConfig())
        assert codes(report) == ["REP301"] * 3
        paths = {f.path for f in report.findings}
        assert {p.rsplit("/", 1)[-1] for p in paths} == {
            "batcher.py", "cache.py", "reqlog.py",
        }
        assert all("'salt'" in f.message for f in report.findings)

    def test_result_neutral_fields_exempt(self, tmp_path):
        root = drift_tree(
            tmp_path,
            wire=["op", "queries", "trace", "threshold"],
            batch_fields=["threshold"],
            cache_params=["threshold"],
            columns=["ts", "threshold"],
        )
        report = run_lint([root], config=LintConfig())
        assert codes(report) == []

    def test_missing_counterparts_skipped(self, tmp_path):
        # Linting server.py alone (a subtree run) cannot prove drift.
        root = drift_tree(
            tmp_path,
            wire=["threshold", "salt"],
            batch_fields=["threshold"],
            cache_params=["threshold"],
            columns=["ts"],
        )
        report = run_lint([root / "server" / "server.py"])
        assert codes(report) == []

    def test_real_server_sources_catch_injected_param(self, tmp_path):
        """Adding a wire param to the *real* protocol without threading it
        through BatchKey/cache/log must fail lint (the ISSUE 8 gate)."""
        root = tmp_path / "repro"
        for rel in (
            "server/server.py",
            "server/batcher.py",
            "server/cache.py",
            "obs/reqlog.py",
        ):
            dst = root / rel
            dst.parent.mkdir(parents=True, exist_ok=True)
            dst.write_text((SRC / "repro" / rel).read_text())
        server = root / "server" / "server.py"
        source = server.read_text()
        needle = 'payload.get("mode")'
        assert needle in source
        server.write_text(
            source.replace(
                needle, 'payload.get("mode"), payload.get("salt")', 1
            ).replace("mode = payload", "mode, _salt = payload", 1)
        )
        report = run_lint([root], config=LintConfig())
        drift = [f for f in report.findings if f.code == "REP301"]
        assert len(drift) == 3
        assert all("'salt'" in f.message for f in drift)
        # The unmodified copies stay clean otherwise.
        others = [f for f in report.findings if f.code != "REP301"]
        assert others == []


class TestConfig:
    def test_severity_downgrade_to_warning(self, tmp_path):
        config = LintConfig(severity_overrides={"REP501": "warning"})
        report = lint_file(
            tmp_path,
            "x.py",
            "try:\n    pass\nexcept Exception:\n    pass\n",
            config=config,
        )
        assert report.errors == 0
        assert report.warnings == 1
        assert report.exit_code == 0

    def test_severity_off_drops_findings(self, tmp_path):
        config = LintConfig(severity_overrides={"REP501": "off"})
        report = lint_file(
            tmp_path,
            "x.py",
            "try:\n    pass\nexcept Exception:\n    pass\n",
            config=config,
        )
        assert report.findings == []

    def test_from_pyproject_roundtrip(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text(
            "[tool.repro-lint]\n"
            'deterministic-modules = ["gen/"]\n'
            'exclude = ["vendored/"]\n'
            "[tool.repro-lint.severity]\n"
            'REP601 = "warning"\n'
        )
        config = LintConfig.from_pyproject(pyproject)
        assert config.deterministic_modules == ("gen/",)
        assert config.exclude == ("vendored/",)
        assert config.severity_of("REP601", "error") == "warning"
        assert config.severity_of("REP101", "error") == "error"

    def test_invalid_severity_is_a_hard_error(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text(
            '[tool.repro-lint.severity]\nREP601 = "silent"\n'
        )
        with pytest.raises(LintError, match="severity"):
            LintConfig.from_pyproject(pyproject)

    def test_exclude_patterns_skip_files(self, tmp_path):
        config = LintConfig(exclude=("vendored/",))
        (tmp_path / "vendored").mkdir()
        (tmp_path / "vendored" / "x.py").write_text(
            "try:\n    pass\nexcept:\n    pass\n"
        )
        report = run_lint([tmp_path], config=config)
        assert report.files == 0
        assert report.findings == []


class TestRunner:
    def test_missing_target_raises(self):
        with pytest.raises(LintError, match="does not exist"):
            run_lint(["no/such/path"], config=LintConfig())

    def test_syntax_error_is_a_finding(self, tmp_path):
        report = lint_file(tmp_path, "x.py", "def broken(:\n")
        assert codes(report) == [SUPPRESSION_CODE]
        assert "cannot parse" in report.findings[0].message
        assert report.exit_code == 1

    def test_findings_sorted_and_rendered(self, tmp_path):
        report = lint_file(
            tmp_path,
            "x.py",
            "try:\n    pass\nexcept:\n    pass\n"
            "flag = hit.t_start == 0\n",
        )
        assert codes(report) == ["REP501", "REP101"]  # by line
        text = report.format_text()
        assert "REP501" in text and "1 file(s) checked" in text
        payload = json.loads(report.format_json())
        assert payload["errors"] == 2
        assert {f["code"] for f in payload["findings"]} == {
            "REP101", "REP501",
        }


class TestSelfRunAndCli:
    def test_src_tree_is_lint_clean(self):
        """The gate this PR ships under: the repo lints its own sources."""
        report = run_lint([SRC])
        assert report.files > 50
        assert [f.render() for f in report.findings] == []
        assert report.exit_code == 0
        # The justified broad excepts are suppressed, not invisible.
        assert report.suppressed >= 6
        # The flow checkers' by-design spots carry reasoned suppressions:
        # the drain-and-swap store open under the pause lock (REP802) and
        # the lock-free reqlog / Event-published server handshake (REP803).
        assert report.checkers["REP802"]["suppressed"] >= 1
        assert report.checkers["REP803"]["suppressed"] >= 5
        for code in ("REP801", "REP802", "REP803"):
            assert report.checkers[code]["findings"] == 0

    def test_json_checkers_block_is_stable(self, tmp_path):
        report = lint_file(
            tmp_path,
            "x.py",
            "flag = hit.t_start == 0\n"
            "ok = win.t_start == 0  # repro-lint: allow[REP101] -- local\n",
        )
        payload = json.loads(report.format_json())
        assert sorted(payload["checkers"]) == sorted(EXPECTED_CODES)
        block = payload["checkers"]["REP101"]
        assert block == {"files": 1, "findings": 1, "suppressed": 1}
        # Scoped checkers report how many files they actually looked at.
        assert payload["checkers"]["REP401"]["files"] == 0

    def test_cli_lint_src_json(self, capsys):
        code = main(["lint", str(SRC), "--format", "json"])
        out = capsys.readouterr().out
        assert code == 0
        payload = json.loads(out)
        assert payload["errors"] == 0
        assert payload["findings"] == []

    def test_cli_lint_reports_failures(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("flag = hit.t_start == 0\n")
        code = main(["lint", str(bad)])
        out = capsys.readouterr().out
        assert code == 1
        assert "REP101" in out

    def test_cli_list_checkers(self, capsys):
        code = main(["lint", "--list-checkers"])
        out = capsys.readouterr().out
        assert code == 0
        for expected in sorted(EXPECTED_CODES):
            assert expected in out

    def test_cli_missing_path_exits_2(self, capsys):
        code = main(["lint", "definitely/not/a/path"])
        assert code == 2
