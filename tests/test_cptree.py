"""Algorithm 2 (CONSTRUCTCPTREE): the common prefix tree of Sec. 4.2."""

import numpy as np
import pytest

from repro.core.cptree import construct_cp_tree


def brute_lcp(a: str, b: str) -> int:
    n = 0
    for x, y in zip(a, b):
        if x != y:
            break
        n += 1
    return n


class TestPaperExample:
    """P = CACGTATACG with j = 2, 4, 6, 8 (Fig. 6)."""

    QUERY = "CACGTATACG"
    COLUMNS = [2, 4, 6, 8]

    def test_all_suffixes_present(self):
        tree = construct_cp_tree(self.QUERY, self.COLUMNS)
        # Final tree holds ACGTATACG, GTATACG, ATACG, ACG (Fig. 6(d)).
        for j in self.COLUMNS:
            assert tree.contains_suffix(j)

    def test_absent_string(self):
        tree = construct_cp_tree(self.QUERY, self.COLUMNS)
        assert not tree.contains_suffix(1)  # CACGTATACG not inserted

    def test_lcp_pairs(self):
        tree = construct_cp_tree(self.QUERY, self.COLUMNS)
        # lcp(ACGTATACG, ACG) = 3 (the shared prefix ACG).
        assert tree.longest_common_prefix(2, 8) == 3
        # lcp(GTATACG, ATACG) = 0.
        assert tree.longest_common_prefix(4, 6) == 0

    def test_root_edge_split_happened(self):
        # Fig. 6(c): inserting AT after AC splits the A edge.
        tree = construct_cp_tree(self.QUERY, self.COLUMNS)
        root_edges = sorted(child.edge for child in tree.root.children.values())
        assert any(edge == "A" for edge in root_edges)


class TestGeneralProperties:
    @pytest.mark.parametrize("seed", range(6))
    def test_all_suffixes_random(self, seed):
        rng = np.random.default_rng(seed)
        query = "".join("ACGT"[int(c)] for c in rng.integers(0, 2, 40))
        k = int(rng.integers(2, 6))
        cols = sorted(
            rng.choice(np.arange(1, len(query)), size=k, replace=False).tolist()
        )
        tree = construct_cp_tree(query, cols)
        for j in cols:
            assert tree.contains_suffix(j)

    @pytest.mark.parametrize("seed", range(6))
    def test_lcp_matches_brute(self, seed):
        rng = np.random.default_rng(100 + seed)
        query = "".join("AC"[int(c)] for c in rng.integers(0, 2, 30))
        cols = sorted(
            rng.choice(np.arange(1, len(query)), size=4, replace=False).tolist()
        )
        tree = construct_cp_tree(query, cols)
        for a in cols:
            for b in cols:
                if a == b:
                    continue
                got = tree.longest_common_prefix(a, b)
                assert got == brute_lcp(query[a - 1 :], query[b - 1 :])

    def test_single_column(self):
        tree = construct_cp_tree("GATTACA", [3])
        assert tree.contains_suffix(3)
        assert tree.leaf_count() == 1

    def test_empty_columns(self):
        tree = construct_cp_tree("GATTACA", [])
        assert tree.leaf_count() == 1  # the bare root

    def test_unsorted_rejected(self):
        with pytest.raises(ValueError):
            construct_cp_tree("GATTACA", [4, 2])

    def test_repeated_query_shares_prefix(self):
        # P = (GCTA)^3: suffixes at 1 and 5 share a long prefix.
        query = "GCTA" * 3
        tree = construct_cp_tree(query, [1, 5, 9])
        assert tree.longest_common_prefix(1, 5) == 8
        assert tree.longest_common_prefix(5, 9) == 4

    def test_leaf_count_bounded(self):
        query = "GCTA" * 4
        cols = [1, 5, 9, 13]
        tree = construct_cp_tree(query, cols)
        assert tree.leaf_count() <= len(cols)
