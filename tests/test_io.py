"""FASTA parsing/writing and the concatenated sequence database."""

import pytest

from repro.align.types import Hit
from repro.errors import ReproError
from repro.io.database import SequenceDatabase
from repro.io.fasta import (
    FastaError,
    FastaRecord,
    parse_fasta,
    parse_fasta_file,
    write_fasta,
)


class TestParseFasta:
    def test_single_record(self):
        records = parse_fasta(">seq1 description\nACGT\nACGT\n")
        assert len(records) == 1
        assert records[0].header == "seq1 description"
        assert records[0].identifier == "seq1"
        assert records[0].sequence == "ACGTACGT"

    def test_multiple_records(self):
        text = ">a\nAC\nGT\n>b\nTTTT\n"
        records = parse_fasta(text)
        assert [r.identifier for r in records] == ["a", "b"]
        assert records[1].sequence == "TTTT"

    def test_lowercase_normalised(self):
        assert parse_fasta(">x\nacgt\n")[0].sequence == "ACGT"

    def test_comments_and_blanks_ignored(self):
        text = "; comment\n>x\n\nAC\n; mid comment\nGT\n"
        assert parse_fasta(text)[0].sequence == "ACGT"

    def test_data_before_header_rejected(self):
        with pytest.raises(FastaError):
            parse_fasta("ACGT\n>x\nAC\n")

    def test_empty_input_rejected(self):
        with pytest.raises(FastaError):
            parse_fasta("")


class TestRoundTrip:
    def test_write_and_parse(self, tmp_path):
        records = [
            FastaRecord("alpha test", "ACGT" * 40),
            FastaRecord("beta", "TTTTT"),
        ]
        path = tmp_path / "db.fa"
        write_fasta(records, path, width=30)
        loaded = parse_fasta_file(path)
        assert loaded == records

    def test_line_wrapping(self, tmp_path):
        path = tmp_path / "w.fa"
        write_fasta([FastaRecord("x", "A" * 100)], path, width=25)
        lines = path.read_text().splitlines()
        assert lines[0] == ">x"
        assert all(len(line) == 25 for line in lines[1:])

    def test_invalid_width(self, tmp_path):
        with pytest.raises(FastaError):
            write_fasta([FastaRecord("x", "A")], tmp_path / "x.fa", width=0)


class TestSequenceDatabase:
    def _db(self):
        return SequenceDatabase(
            [
                FastaRecord("s1", "AAAA"),
                FastaRecord("s2", "CCCCCC"),
                FastaRecord("s3", "GG"),
            ]
        )

    def test_concatenation(self):
        db = self._db()
        assert db.text == "AAAACCCCCCGG"
        assert db.total_length == 12
        assert len(db) == 3

    def test_sequence_at(self):
        db = self._db()
        assert db.sequence_at(1) == 0
        assert db.sequence_at(4) == 0
        assert db.sequence_at(5) == 1
        assert db.sequence_at(10) == 1
        assert db.sequence_at(11) == 2
        assert db.sequence_at(12) == 2

    def test_sequence_at_out_of_range(self):
        with pytest.raises(ReproError):
            self._db().sequence_at(0)
        with pytest.raises(ReproError):
            self._db().sequence_at(13)

    def test_locate_hit_local_positions(self):
        db = self._db()
        hit = Hit(t_end=8, p_end=3, score=4, t_start=6)
        located = db.locate_hit(hit)
        assert located.sequence_id == "s2"
        assert (located.t_start, located.t_end) == (2, 4)

    def test_boundary_spanning_hit_dropped(self):
        db = self._db()
        hit = Hit(t_end=6, p_end=3, score=4, t_start=3)  # spans s1|s2
        assert db.locate_hit(hit) is None
        assert db.locate_hits([hit]) == []

    def test_empty_database_rejected(self):
        with pytest.raises(ReproError):
            SequenceDatabase([])

    def test_empty_sequence_rejected(self):
        with pytest.raises(ReproError):
            SequenceDatabase([FastaRecord("x", "")])

    def test_identifiers_boundaries_offsets(self):
        db = self._db()
        assert db.identifiers == ["s1", "s2", "s3"]
        assert db.boundaries() == [0, 4, 10]
        assert [db.offset_of(i) for i in range(3)] == [0, 4, 10]

    def test_from_fasta_roundtrip(self, tmp_path):
        path = tmp_path / "db.fa"
        path.write_text(">s1\nAAAA\n>s2\nCCCCCC\n>s3\nGG\n")
        db = SequenceDatabase.from_fasta(path)
        assert db.text == self._db().text
        assert db.identifiers == ["s1", "s2", "s3"]

    def test_from_sequence(self):
        db = SequenceDatabase.from_sequence("acgt".upper(), identifier="solo")
        assert db.text == "ACGT"
        assert db.identifiers == ["solo"]
        assert db.boundaries() == [0]
