"""FASTA parsing/writing and the concatenated sequence database."""

import pytest

from repro.align.types import START_UNKNOWN, Hit
from repro.errors import ReproError
from repro.io.database import SequenceDatabase, ShardPlan
from repro.io.fasta import (
    FastaError,
    FastaRecord,
    parse_fasta,
    parse_fasta_file,
    write_fasta,
)


class TestParseFasta:
    def test_single_record(self):
        records = parse_fasta(">seq1 description\nACGT\nACGT\n")
        assert len(records) == 1
        assert records[0].header == "seq1 description"
        assert records[0].identifier == "seq1"
        assert records[0].sequence == "ACGTACGT"

    def test_multiple_records(self):
        text = ">a\nAC\nGT\n>b\nTTTT\n"
        records = parse_fasta(text)
        assert [r.identifier for r in records] == ["a", "b"]
        assert records[1].sequence == "TTTT"

    def test_lowercase_normalised(self):
        assert parse_fasta(">x\nacgt\n")[0].sequence == "ACGT"

    def test_comments_and_blanks_ignored(self):
        text = "; comment\n>x\n\nAC\n; mid comment\nGT\n"
        assert parse_fasta(text)[0].sequence == "ACGT"

    def test_data_before_header_rejected(self):
        with pytest.raises(FastaError):
            parse_fasta("ACGT\n>x\nAC\n")

    def test_empty_input_rejected(self):
        with pytest.raises(FastaError):
            parse_fasta("")


class TestRoundTrip:
    def test_write_and_parse(self, tmp_path):
        records = [
            FastaRecord("alpha test", "ACGT" * 40),
            FastaRecord("beta", "TTTTT"),
        ]
        path = tmp_path / "db.fa"
        write_fasta(records, path, width=30)
        loaded = parse_fasta_file(path)
        assert loaded == records

    def test_line_wrapping(self, tmp_path):
        path = tmp_path / "w.fa"
        write_fasta([FastaRecord("x", "A" * 100)], path, width=25)
        lines = path.read_text().splitlines()
        assert lines[0] == ">x"
        assert all(len(line) == 25 for line in lines[1:])

    def test_invalid_width(self, tmp_path):
        with pytest.raises(FastaError):
            write_fasta([FastaRecord("x", "A")], tmp_path / "x.fa", width=0)


class TestSequenceDatabase:
    def _db(self):
        return SequenceDatabase(
            [
                FastaRecord("s1", "AAAA"),
                FastaRecord("s2", "CCCCCC"),
                FastaRecord("s3", "GG"),
            ]
        )

    def test_concatenation(self):
        db = self._db()
        assert db.text == "AAAACCCCCCGG"
        assert db.total_length == 12
        assert len(db) == 3

    def test_sequence_at(self):
        db = self._db()
        assert db.sequence_at(1) == 0
        assert db.sequence_at(4) == 0
        assert db.sequence_at(5) == 1
        assert db.sequence_at(10) == 1
        assert db.sequence_at(11) == 2
        assert db.sequence_at(12) == 2

    def test_sequence_at_out_of_range(self):
        with pytest.raises(ReproError):
            self._db().sequence_at(0)
        with pytest.raises(ReproError):
            self._db().sequence_at(13)

    def test_locate_hit_local_positions(self):
        db = self._db()
        hit = Hit(t_end=8, p_end=3, score=4, t_start=6)
        located = db.locate_hit(hit)
        assert located.sequence_id == "s2"
        assert (located.t_start, located.t_end) == (2, 4)

    def test_boundary_spanning_hit_dropped(self):
        db = self._db()
        hit = Hit(t_end=6, p_end=3, score=4, t_start=3)  # spans s1|s2
        assert db.locate_hit(hit) is None
        assert db.locate_hits([hit]) == []

    def test_empty_database_rejected(self):
        with pytest.raises(ReproError):
            SequenceDatabase([])

    def test_empty_sequence_rejected(self):
        with pytest.raises(ReproError):
            SequenceDatabase([FastaRecord("x", "")])

    def test_identifiers_boundaries_offsets(self):
        db = self._db()
        assert db.identifiers == ["s1", "s2", "s3"]
        assert db.boundaries() == [0, 4, 10]
        assert [db.offset_of(i) for i in range(3)] == [0, 4, 10]

    def test_from_fasta_roundtrip(self, tmp_path):
        path = tmp_path / "db.fa"
        path.write_text(">s1\nAAAA\n>s2\nCCCCCC\n>s3\nGG\n")
        db = SequenceDatabase.from_fasta(path)
        assert db.text == self._db().text
        assert db.identifiers == ["s1", "s2", "s3"]

    def test_from_sequence(self):
        db = SequenceDatabase.from_sequence("acgt".upper(), identifier="solo")
        assert db.text == "ACGT"
        assert db.identifiers == ["solo"]
        assert db.boundaries() == [0]


class TestBoundaryAttribution:
    """locate_hit edge cases: record edges, sentinels, single records."""

    def _db(self):
        return SequenceDatabase(
            [
                FastaRecord("s1", "AAAA"),
                FastaRecord("s2", "CCCCCC"),
                FastaRecord("s3", "GG"),
            ]
        )

    def test_hit_ending_at_record_first_position(self):
        db = self._db()
        # Global position 5 is s2's first character.
        located = db.locate_hit(Hit(t_end=5, p_end=1, score=1, t_start=5))
        assert located.sequence_id == "s2"
        assert (located.t_start, located.t_end) == (1, 1)
        assert located.record_index == 1

    def test_hit_ending_at_record_last_position(self):
        db = self._db()
        # Global position 10 is s2's last character; 12 is s3's (and the
        # database's) last.
        located = db.locate_hit(Hit(t_end=10, p_end=4, score=4, t_start=7))
        assert located.sequence_id == "s2"
        assert (located.t_start, located.t_end) == (3, 6)
        last = db.locate_hit(Hit(t_end=12, p_end=2, score=2, t_start=11))
        assert last.sequence_id == "s3"
        assert (last.t_start, last.t_end) == (1, 2)
        assert last.record_index == 2

    def test_hit_spanning_into_record_start_dropped(self):
        db = self._db()
        # Starts on s1's last char, ends on s2's first: a boundary artifact.
        assert db.locate_hit(Hit(t_end=5, p_end=2, score=2, t_start=4)) is None

    def test_start_unknown_in_first_record_attributed(self):
        db = self._db()
        # t_start == 0 is the "engine did not track starts" sentinel.  A hit
        # ending in the first record provably cannot span a boundary.
        located = db.locate_hit(Hit(t_end=3, p_end=3, score=3, t_start=0))
        assert located.sequence_id == "s1"
        assert located.t_start == 0  # still unknown, never fabricated
        assert located.t_end == 3

    def test_start_unknown_beyond_first_record_rejected(self):
        db = self._db()
        # The regression this guards: t_start == 0 is falsy, so the old code
        # attributed such hits by their end record alone — even when the
        # alignment may have started in the previous record.
        assert db.locate_hit(Hit(t_end=6, p_end=4, score=4, t_start=0)) is None
        assert db.locate_hit(Hit(t_end=11, p_end=4, score=4, t_start=0)) is None

    def test_sentinel_constant_is_the_attribution_switch(self):
        # Pins the ISSUE 8 fix: locate_hit branches on the *named* sentinel,
        # so a hit carrying exactly START_UNKNOWN takes the conservative
        # first-record-only path, while the same end position with a known
        # start attributes normally.
        db = self._db()
        unknown = Hit(t_end=6, p_end=4, score=4, t_start=START_UNKNOWN)
        assert db.locate_hit(unknown) is None
        known = Hit(t_end=6, p_end=4, score=4, t_start=5)
        located = db.locate_hit(known)
        assert located.sequence_id == "s2"
        assert (located.t_start, located.t_end) == (1, 2)
        first = Hit(t_end=3, p_end=3, score=3, t_start=START_UNKNOWN)
        attributed = db.locate_hit(first)
        assert attributed.sequence_id == "s1"
        assert attributed.t_start == START_UNKNOWN

    def test_start_unknown_single_record_database(self):
        db = SequenceDatabase([FastaRecord("solo", "ACGTACGT")])
        located = db.locate_hit(Hit(t_end=8, p_end=5, score=5, t_start=0))
        assert located.sequence_id == "solo"
        assert located.t_end == 8
        assert located.record_index == 0

    def test_single_record_database_known_start(self):
        db = SequenceDatabase([FastaRecord("solo", "ACGTACGT")])
        located = db.locate_hit(Hit(t_end=6, p_end=4, score=4, t_start=3))
        assert (located.t_start, located.t_end) == (3, 6)

    def test_locate_hits_drops_unattributable(self):
        db = self._db()
        hits = [
            Hit(t_end=3, p_end=3, score=3, t_start=1),   # within s1
            Hit(t_end=6, p_end=4, score=4, t_start=0),   # unknown start, s2
            Hit(t_end=5, p_end=2, score=2, t_start=4),   # spans s1|s2
        ]
        located = db.locate_hits(hits)
        assert [h.sequence_id for h in located] == ["s1"]


class TestFromConcatenatedValidation:
    def test_duplicate_offsets_rejected_up_front(self):
        with pytest.raises(ReproError, match="strictly increasing"):
            SequenceDatabase.from_concatenated(
                "AAAACC", [0, 4, 4], ["a", "b", "c"]
            )

    def test_decreasing_offsets_rejected(self):
        with pytest.raises(ReproError, match="strictly increasing"):
            SequenceDatabase.from_concatenated(
                "AAAACC", [0, 4, 2], ["a", "b", "c"]
            )

    def test_last_offset_beyond_text_names_the_value(self):
        with pytest.raises(ReproError, match=r"offset 9.*length 6"):
            SequenceDatabase.from_concatenated("AAAACC", [0, 9], ["a", "b"])

    def test_offsets_must_start_at_zero(self):
        with pytest.raises(ReproError, match="start at 0"):
            SequenceDatabase.from_concatenated("AAAACC", [1, 4], ["a", "b"])

    def test_valid_round_trip_still_works(self):
        db = SequenceDatabase.from_concatenated(
            "AAAACCCCCCGG", [0, 4, 10], ["s1", "s2", "s3"]
        )
        assert [r.sequence for r in db.records] == ["AAAA", "CCCCCC", "GG"]


class TestShardPlan:
    def _db(self, lengths):
        return SequenceDatabase(
            [
                FastaRecord(f"r{i}", "A" * n)
                for i, n in enumerate(lengths)
            ]
        )

    def test_partition_is_exact_and_nonempty(self):
        db = self._db([70, 10, 40, 30, 20, 60])
        plan = ShardPlan.balanced(db, 3)
        assert plan.shard_count == 3
        seen = sorted(i for assigned in plan.assignments for i in assigned)
        assert seen == list(range(6))
        assert all(assigned for assigned in plan.assignments)

    def test_greedy_balance(self):
        db = self._db([70, 10, 40, 30, 20, 60])
        plan = ShardPlan.balanced(db, 3)
        loads = plan.shard_lengths(db)
        # Greedy longest-first bin packing: 70 | 60+10 | 40+30-ish.
        assert max(loads) - min(loads) <= 70
        assert sum(loads) == 230

    def test_k_clamped_to_record_count(self):
        db = self._db([5, 5])
        plan = ShardPlan.balanced(db, 8)
        assert plan.shard_count == 2

    def test_k_one_preserves_order(self):
        db = self._db([5, 9, 3])
        plan = ShardPlan.balanced(db, 1)
        assert plan.assignments == ((0, 1, 2),)
        assert plan.shard_database(db, 0).text == db.text

    def test_invalid_k_rejected(self):
        with pytest.raises(ReproError, match="shard count"):
            ShardPlan.balanced(self._db([5]), 0)

    def test_shard_of_and_database_views(self):
        db = self._db([70, 10, 40])
        plan = ShardPlan.balanced(db, 2)
        for shard, assigned in enumerate(plan.assignments):
            for index in assigned:
                assert plan.shard_of(index) == shard
            view = plan.shard_database(db, shard)
            assert [r.identifier for r in view.records] == [
                f"r{i}" for i in assigned
            ]

    def test_subset_out_of_range(self):
        with pytest.raises(ReproError, match="out of range"):
            self._db([4, 4]).subset([0, 5])

    def test_record_lengths(self):
        assert self._db([4, 7]).record_lengths() == [4, 7]
