"""The serving tier: protocol, batcher, cache, server round-trips, reload.

The integration tests run a real :class:`SearchServer` on an ephemeral port
(``port=0``) via :class:`ServerThread` and talk to it over real sockets, so
they cover the asyncio read/write paths, micro-batching, admission control
and hot reload end to end.  The robustness section feeds the server raw
garbage — the accept loop must survive everything a client can do to it.
"""

import asyncio
import socket
import struct
import threading
import time

import numpy as np
import pytest

from repro import IndexStore, SearchService, ShardedStore, genome, write_fasta
from repro.io.database import SequenceDatabase
from repro.io.fasta import FastaRecord
from repro.server import (
    BatchKey,
    CachedResult,
    LatencyWindow,
    MicroBatcher,
    Overloaded,
    ProtocolError,
    RateWindow,
    ResultCache,
    SearchServer,
    ServerClient,
    ServerError,
    ServerOverloaded,
    ServerThread,
    decode_length,
    decode_payload,
    encode_frame,
    index_epoch,
    wait_until_ready,
)
from repro.server.protocol import PREFIX
from repro.service import Query, ServiceError
from repro.service.sharded import ShardedSearchService

THRESHOLD = 30


@pytest.fixture(scope="module")
def serving_setup(tmp_path_factory):
    """A small multi-record database, its stores, and query material."""
    root = tmp_path_factory.mktemp("serving")
    rng = np.random.default_rng(17)
    records = [
        FastaRecord(f"chr{i}", genome(2_000 + 500 * i, rng))
        for i in range(1, 5)
    ]
    fasta = root / "db.fa"
    write_fasta(records, fasta)
    database = SequenceDatabase.from_fasta(fasta)
    mono = root / "db.idx"
    IndexStore.build(database).save(mono)
    sharded = root / "db.shd"
    ShardedStore.build(database, sharded, shards=3)
    queries = [
        ("q1", records[0].sequence[100:160]),
        ("q2", records[2].sequence[400:460]),
        # Crosses a deletion, so alignment (not just exact match) matters.
        ("q3", records[3].sequence[40:70] + records[3].sequence[76:106]),
    ]
    return {
        "root": root,
        "records": records,
        "database": database,
        "mono": mono,
        "sharded": sharded,
        "queries": queries,
    }


@pytest.fixture(scope="module")
def running_server(serving_setup):
    """One shared server over the monolithic store (ephemeral port)."""
    server = SearchServer(
        serving_setup["mono"], port=0, reload_poll=0, linger=0.001
    )
    with ServerThread(server) as handle:
        yield handle


def fresh_client(handle: ServerThread) -> ServerClient:
    return ServerClient(port=handle.port)


class TestProtocol:
    def test_round_trip(self):
        frame = encode_frame({"op": "ping", "n": 3})
        length = decode_length(frame[: PREFIX.size])
        assert length == len(frame) - PREFIX.size
        assert decode_payload(frame[PREFIX.size :]) == {"op": "ping", "n": 3}

    def test_truncated_prefix_rejected(self):
        with pytest.raises(ProtocolError, match="truncated"):
            decode_length(b"\x00\x01")

    def test_oversized_length_rejected(self):
        prefix = PREFIX.pack(10_000)
        with pytest.raises(ProtocolError, match="exceeds"):
            decode_length(prefix, max_frame=1_000)

    def test_garbage_payload_rejected(self):
        with pytest.raises(ProtocolError, match="not valid JSON"):
            decode_payload(b"\xff\xfe not json")

    def test_non_object_payload_rejected(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            decode_payload(b"[1,2,3]")

    def test_oversized_encode_rejected(self):
        with pytest.raises(ProtocolError, match="exceeding"):
            encode_frame({"blob": "x" * 100}, max_frame=10)


class TestLatencyWindow:
    def test_empty_reports_zeros(self):
        window = LatencyWindow()
        assert window.percentiles() == {
            "p50": 0.0, "p90": 0.0, "p99": 0.0, "max": 0.0,
        }

    def test_percentiles_ordered(self):
        window = LatencyWindow(size=100)
        for value in range(1, 101):
            window.observe(value / 1000.0)
        pts = window.percentiles()
        assert pts["p50"] <= pts["p90"] <= pts["p99"] <= pts["max"]
        assert pts["max"] == pytest.approx(0.1)

    def test_single_sample_everywhere(self):
        window = LatencyWindow()
        window.observe(0.042)
        pts = window.percentiles()
        assert pts == {
            "p50": 0.042, "p90": 0.042, "p99": 0.042, "max": 0.042,
        }

    def test_size_one_window_keeps_latest(self):
        window = LatencyWindow(size=1)
        for value in (0.5, 0.1, 0.3):
            window.observe(value)
        assert window.percentiles()["p50"] == pytest.approx(0.3)
        assert window.percentiles()["max"] == pytest.approx(0.3)

    def test_nearest_rank_boundaries(self):
        window = LatencyWindow(size=10)
        for value in range(1, 11):  # 1..10 ms
            window.observe(value / 1000.0)
        pts = window.percentiles()
        # Nearest-rank over 10 samples: rank 5 -> 6 ms, rank 9 -> 10 ms.
        assert pts["p50"] == pytest.approx(0.006)
        assert pts["p90"] == pytest.approx(0.010)
        assert pts["p99"] == pytest.approx(0.010)

    def test_eviction_drops_old_extremes(self):
        window = LatencyWindow(size=2)
        window.observe(1.0)  # evicted below
        window.observe(0.001)
        window.observe(0.002)
        assert window.percentiles()["max"] == pytest.approx(0.002)

    def test_bad_size_rejected(self):
        with pytest.raises(ValueError, match=">= 1"):
            LatencyWindow(size=0)


class TestRateWindow:
    class _Clock:
        def __init__(self, start=1000.0):
            self.now = start

        def __call__(self):
            return self.now

    @pytest.fixture()
    def clock(self, monkeypatch):
        clock = self._Clock()
        monkeypatch.setattr("repro.server.stats.time.monotonic", clock)
        return clock

    def test_empty_is_zero(self, clock):
        assert RateWindow().per_second() == 0.0

    def test_steady_rate(self, clock):
        window = RateWindow(horizon=60.0)
        for _ in range(600):
            window.mark()
            clock.now += 0.1
        # 600 events over the last 60s of a 60s-old window: ~10/s.
        assert window.per_second() == pytest.approx(10.0, rel=0.05)

    def test_young_window_uses_own_age(self, clock):
        window = RateWindow(horizon=60.0)
        for _ in range(10):
            window.mark()
            clock.now += 0.1
        # 10 events in the 1s the window has existed: 10/s, not 10/60.
        assert window.per_second() == pytest.approx(10.0, rel=0.05)

    def test_burst_after_idle_not_inflated(self, clock):
        window = RateWindow(horizon=60.0)
        window.mark()
        clock.now += 300.0  # idle stretch; the old stamp falls out
        window.mark()
        clock.now += 0.001
        window.mark()
        # Two events just after a long idle must read ~2/60s, not
        # 2 / 0.001s — the old stamp-spread denominator's failure mode.
        assert window.per_second() == pytest.approx(2 / 60.0, rel=0.05)

    def test_stale_stamps_pruned(self, clock):
        window = RateWindow(horizon=60.0)
        for _ in range(5):
            window.mark()
        clock.now += 120.0
        assert window.per_second() == 0.0

    def test_saturated_ring_measures_tail(self, clock):
        window = RateWindow(size=4, horizon=60.0)
        for _ in range(8):
            window.mark()
            clock.now += 1.0
        # The ring kept the last 4 stamps (ages 1..4s); counting them over
        # the window's full 8s age would halve the true rate.
        assert window.per_second() == pytest.approx(1.0, rel=0.35)


class TestResultCache:
    def _result(self, query_id="q", score=5):
        from repro.io.database import LocatedHit
        from repro.service import QueryResult
        from repro.align.types import SearchStats

        return QueryResult(
            query_id=query_id,
            hits=[LocatedHit("chr1", 1, 5, 5, score)],
            stats=SearchStats(),
            threshold=4,
            raw_hits=1,
            dropped_boundary=0,
        )

    def test_id_independent_round_trip(self):
        cache = ResultCache(4)
        key = ResultCache.key("ACGT", 4, None, None, epoch=123)
        cache.put(key, CachedResult.from_result(self._result("original")))
        entry = cache.get(key)
        revived = entry.to_result("renamed")
        assert revived.query_id == "renamed"
        assert revived.hits == self._result().hits
        assert revived.threshold == 4

    def test_epoch_partitions_entries(self):
        cache = ResultCache(4)
        old = ResultCache.key("ACGT", 4, None, None, epoch=1)
        cache.put(old, CachedResult.from_result(self._result()))
        assert cache.get(ResultCache.key("ACGT", 4, None, None, epoch=2)) is None

    def test_lru_evicts_oldest(self):
        cache = ResultCache(2)
        keys = [ResultCache.key(s, 4, None, None, 0) for s in "ABC"]
        for key in keys:
            cache.put(key, CachedResult.from_result(self._result()))
        assert cache.get(keys[0]) is None
        assert cache.get(keys[2]) is not None

    def test_zero_capacity_disables(self):
        cache = ResultCache(0)
        key = ResultCache.key("ACGT", 4, None, None, 0)
        cache.put(key, CachedResult.from_result(self._result()))
        assert cache.get(key) is None
        assert len(cache) == 0


class TestMicroBatcher:
    def _key(self, threshold=THRESHOLD):
        return BatchKey(threshold=threshold, e_value=None, top_k=None)

    def test_coalesces_concurrent_submissions(self):
        async def main():
            calls = []

            async def runner(queries, key):
                calls.append(len(queries))
                return [q.id for q in queries]

            batcher = MicroBatcher(runner, max_batch=8, linger=0.05)
            batcher.start()
            futures = [
                batcher.submit(Query(f"q{i}", "ACGT"), self._key())
                for i in range(5)
            ]
            results = await asyncio.gather(*futures)
            await batcher.stop()
            return calls, results

        calls, results = asyncio.run(main())
        assert calls == [5]  # one batch, not five
        assert results == [f"q{i}" for i in range(5)]

    def test_max_batch_splits(self):
        async def main():
            calls = []

            async def runner(queries, key):
                calls.append(len(queries))
                return [q.id for q in queries]

            batcher = MicroBatcher(runner, max_batch=2, linger=0.05)
            batcher.start()
            futures = [
                batcher.submit(Query(f"q{i}", "ACGT"), self._key())
                for i in range(5)
            ]
            await asyncio.gather(*futures)
            await batcher.stop()
            return calls

        calls = asyncio.run(main())
        assert max(calls) <= 2
        assert sum(calls) == 5

    def test_mismatched_keys_never_share_a_batch(self):
        async def main():
            calls = []

            async def runner(queries, key):
                calls.append((key.threshold, len(queries)))
                return [q.id for q in queries]

            batcher = MicroBatcher(runner, max_batch=8, linger=0.05)
            batcher.start()
            futures = [
                batcher.submit(Query(f"q{i}", "ACGT"), self._key(10 + i % 2))
                for i in range(4)
            ]
            await asyncio.gather(*futures)
            await batcher.stop()
            return calls

        calls = asyncio.run(main())
        for threshold, _count in calls:
            assert threshold in (10, 11)
        assert sum(count for _t, count in calls) == 4

    def test_overload_rejects_not_queues(self):
        async def main():
            release = asyncio.Event()

            async def runner(queries, key):
                await release.wait()
                return [q.id for q in queries]

            batcher = MicroBatcher(runner, max_batch=1, linger=0, max_queue=2)
            batcher.start()
            admitted = [
                batcher.submit(Query(f"q{i}", "ACGT"), self._key())
                for i in range(2)
            ]
            with pytest.raises(Overloaded):
                batcher.submit(Query("q-over", "ACGT"), self._key())
            release.set()
            await asyncio.gather(*admitted)
            await batcher.stop()

        asyncio.run(main())

    def test_runner_error_fails_the_batch(self):
        async def main():
            async def runner(queries, key):
                raise ValueError("engine exploded")

            batcher = MicroBatcher(runner, max_batch=4, linger=0.01)
            batcher.start()
            future = batcher.submit(Query("q", "ACGT"), self._key())
            with pytest.raises(ValueError, match="engine exploded"):
                await future
            await batcher.stop()

        asyncio.run(main())


class TestServedBitIdentical:
    def test_monolithic_matches_offline(self, serving_setup, running_server):
        offline = SearchService(store=serving_setup["mono"]).search_batch(
            serving_setup["queries"], threshold=THRESHOLD
        )
        with fresh_client(running_server) as client:
            served = client.search(serving_setup["queries"], threshold=THRESHOLD)
        assert served.total_hits > 0
        for off, srv in zip(offline.results, served.results):
            assert srv.query_id == off.query_id
            assert srv.threshold == off.threshold
            assert srv.hits == off.hits  # ids, positions, scores, order
            assert srv.raw_hits == off.raw_hits
            assert srv.dropped_boundary == off.dropped_boundary

    def test_sharded_matches_offline(self, serving_setup):
        offline = ShardedSearchService(serving_setup["sharded"]).search_batch(
            serving_setup["queries"], threshold=THRESHOLD
        )
        server = SearchServer(serving_setup["sharded"], port=0, reload_poll=0)
        with ServerThread(server) as handle:
            with fresh_client(handle) as client:
                served = client.search(
                    serving_setup["queries"], threshold=THRESHOLD
                )
        assert served.total_hits > 0
        for off, srv in zip(offline.results, served.results):
            assert srv.hits == off.hits

    def test_top_k_matches_offline(self, serving_setup, running_server):
        offline = SearchService(store=serving_setup["mono"]).search_batch(
            serving_setup["queries"], threshold=THRESHOLD, top_k=3
        )
        with fresh_client(running_server) as client:
            served = client.search(
                serving_setup["queries"], threshold=THRESHOLD, top_k=3
            )
        for off, srv in zip(offline.results, served.results):
            assert len(srv.hits) <= 3
            assert srv.hits == off.hits

    def test_e_value_requests_serve(self, serving_setup, running_server):
        offline = SearchService(store=serving_setup["mono"]).search_batch(
            serving_setup["queries"][:1], e_value=1e-5
        )
        with fresh_client(running_server) as client:
            served = client.search(serving_setup["queries"][:1], e_value=1e-5)
        assert served.results[0].hits == offline.results[0].hits
        assert served.results[0].threshold == offline.results[0].threshold


class TestServerBehaviour:
    def test_ping_and_stats(self, running_server):
        with fresh_client(running_server) as client:
            pong = client.ping()
            assert pong["pong"] is True
            assert pong["generation"] >= 1
            response = client.stats()
        assert response["engine"] == "alae"
        assert response["sharded"] is False
        stats = response["stats"]
        for field in (
            "uptime_seconds", "requests_total", "queries_total",
            "cache_hit_rate", "recent_qps", "latency_seconds",
            "queue_depth", "mean_batch_size", "generation",
            "overloaded_total", "max_batch",
        ):
            assert field in stats

    def test_repeat_query_hits_cache(self, serving_setup, running_server):
        query = [("cache-probe", serving_setup["records"][1].sequence[50:110])]
        with fresh_client(running_server) as client:
            first = client.search(query, threshold=THRESHOLD)
            second = client.search(query, threshold=THRESHOLD)
        assert not first.results[0].cached
        assert second.results[0].cached
        assert second.results[0].hits == first.results[0].hits

    def test_cached_and_fresh_mix_in_one_request(
        self, serving_setup, running_server
    ):
        records = serving_setup["records"]
        warm = ("mix-warm", records[0].sequence[300:360])
        cold = ("mix-cold", records[2].sequence[700:760])
        with fresh_client(running_server) as client:
            client.search([warm], threshold=THRESHOLD)
            served = client.search([warm, cold], threshold=THRESHOLD)
        assert served.results[0].cached
        assert not served.results[1].cached

    def test_oversized_request_is_overloaded_not_queued(self, serving_setup):
        server = SearchServer(
            serving_setup["mono"], port=0, reload_poll=0, max_queue=2,
            cache_size=0,
        )
        queries = [
            (f"flood{i}", serving_setup["records"][0].sequence[i : i + 40])
            for i in range(3)
        ]
        with ServerThread(server) as handle:
            with fresh_client(handle) as client:
                with pytest.raises(ServerOverloaded, match="queue is full"):
                    client.search(queries, threshold=THRESHOLD)
                # The server is still healthy for admissible requests.
                ok = client.search(queries[:1], threshold=THRESHOLD)
                assert ok.results[0].query_id == "flood0"

    def test_unknown_op_is_an_error_response(self, running_server):
        with fresh_client(running_server) as client:
            response = client.request({"op": "florble"})
        assert response["status"] == "error"
        assert "unknown op" in response["error"]

    def test_bad_search_arguments_reported(self, running_server):
        with fresh_client(running_server) as client:
            both = client.request(
                {"op": "search", "queries": [["q", "ACGT"]],
                 "threshold": 5, "e_value": 1.0}
            )
            empty = client.request({"op": "search", "queries": []})
            bad_type = client.request({"op": "search", "queries": [42]})
        assert both["status"] == "error" and "not both" in both["error"]
        assert empty["status"] == "error"
        assert bad_type["status"] == "error"

    def test_boolean_parameters_rejected(self, running_server):
        """JSON true must not slip through as threshold=1 / e_value=1.0."""
        with fresh_client(running_server) as client:
            for field in ("threshold", "e_value", "top_k"):
                response = client.request(
                    {"op": "search", "queries": [["q", "ACGT"]], field: True}
                )
                assert response["status"] == "error", field
                assert field in response["error"]

    def test_concurrent_clients_micro_batch(self, serving_setup):
        server = SearchServer(
            serving_setup["mono"], port=0, reload_poll=0,
            max_batch=8, linger=0.02, cache_size=0,
        )
        records = serving_setup["records"]
        errors: list = []

        with ServerThread(server) as handle:
            def worker(i: int) -> None:
                try:
                    with fresh_client(handle) as client:
                        start = 100 + 13 * i
                        batch = client.search(
                            [(f"w{i}", records[i % 4].sequence[start : start + 50])],
                            threshold=THRESHOLD,
                        )
                        assert batch.results[0].query_id == f"w{i}"
                except Exception as exc:  # surfaced after join
                    errors.append(exc)

            threads = [
                threading.Thread(target=worker, args=(i,)) for i in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            with fresh_client(handle) as client:
                stats = client.stats()["stats"]
        assert not errors
        assert stats["queries_total"] == 8
        # Coalescing happened: fewer engine batches than queries.
        assert stats["batches_total"] < 8
        assert stats["mean_batch_size"] > 1.0

    def test_graceful_shutdown_via_rpc(self, serving_setup):
        server = SearchServer(serving_setup["mono"], port=0, reload_poll=0)
        handle = ServerThread(server).start()
        with fresh_client(handle) as client:
            assert client.shutdown()["stopping"] is True
        handle._thread.join(30)
        assert not handle._thread.is_alive()
        with pytest.raises(ServerError):
            with ServerClient(port=handle.port) as client:
                client.ping()

    def test_client_rejects_unbound_port(self):
        with pytest.raises(ServerError, match="port"):
            ServerClient(port=0)

    def test_wait_until_ready_times_out_fast(self):
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            free_port = probe.getsockname()[1]
        with pytest.raises(ServerError, match="not ready"):
            wait_until_ready("127.0.0.1", free_port, timeout=0.3)


class TestHotReload:
    def _build(self, serving_setup, extra_seed):
        rng = np.random.default_rng(extra_seed)
        records = serving_setup["records"] + [
            FastaRecord(f"extra{extra_seed}", genome(1_500, rng))
        ]
        return records, SequenceDatabase(records)

    def test_reload_rpc_swaps_the_index(self, serving_setup, tmp_path):
        path = tmp_path / "reload.idx"
        IndexStore.build(serving_setup["database"]).save(path)
        epoch_before = index_epoch(path)
        server = SearchServer(path, port=0, reload_poll=0)
        with ServerThread(server) as handle:
            with fresh_client(handle) as client:
                query = [("probe", serving_setup["records"][0].sequence[100:160])]
                before = client.search(query, threshold=THRESHOLD)
                assert client.reload()["reloaded"] is False  # nothing changed
                records, database = self._build(serving_setup, 23)
                IndexStore.build(database).save(path)
                assert index_epoch(path) != epoch_before
                reloaded = client.reload()
                assert reloaded["reloaded"] is True
                assert reloaded["generation"] == before.generation + 1
                after = client.search(query, threshold=THRESHOLD)
                assert not after.results[0].cached  # cache was invalidated
                offline = SearchService(store=path).search_batch(
                    query, threshold=THRESHOLD
                )
                assert after.results[0].hits == offline.results[0].hits

    def test_poll_reloads_without_an_rpc(self, serving_setup, tmp_path):
        path = tmp_path / "poll.idx"
        IndexStore.build(serving_setup["database"]).save(path)
        server = SearchServer(path, port=0, reload_poll=0.1)
        with ServerThread(server) as handle:
            with fresh_client(handle) as client:
                generation = client.ping()["generation"]
                _records, database = self._build(serving_setup, 29)
                IndexStore.build(database).save(path)
                deadline = time.monotonic() + 20
                while time.monotonic() < deadline:
                    if client.ping()["generation"] > generation:
                        break
                    time.sleep(0.05)
                assert client.ping()["generation"] == generation + 1

    def test_sharded_manifest_reload(self, serving_setup, tmp_path):
        manifest = tmp_path / "reload.shd"
        ShardedStore.build(serving_setup["database"], manifest, shards=2)
        server = SearchServer(manifest, port=0, reload_poll=0)
        with ServerThread(server) as handle:
            with fresh_client(handle) as client:
                assert client.reload()["reloaded"] is False
                _records, database = self._build(serving_setup, 31)
                ShardedStore.build(database, manifest, shards=3)
                assert client.reload()["reloaded"] is True
                query = [("probe", serving_setup["records"][0].sequence[100:160])]
                served = client.search(query, threshold=THRESHOLD)
                offline = ShardedSearchService(manifest).search_batch(
                    query, threshold=THRESHOLD
                )
                assert served.results[0].hits == offline.results[0].hits


class TestProtocolRobustness:
    """Hostile bytes on the wire must never kill the accept loop."""

    def _raw(self, handle: ServerThread) -> socket.socket:
        return socket.create_connection(("127.0.0.1", handle.port), timeout=10)

    def _assert_alive(self, handle: ServerThread) -> None:
        with fresh_client(handle) as client:
            assert client.ping()["pong"] is True

    def test_garbage_bytes_answered_then_closed(self, running_server):
        with self._raw(running_server) as sock:
            # 'garb' as a u32 length is ~1.8 GB: over the frame cap.
            sock.sendall(b"garbage bytes, not a frame")
            length = decode_length(
                self._recv_exact(sock, PREFIX.size), max_frame=1 << 31
            )
            payload = decode_payload(self._recv_exact(sock, length))
            assert payload["status"] == "error"
            assert sock.recv(1) == b""  # server closed the connection
        self._assert_alive(running_server)

    def test_oversized_announced_payload_rejected(self, running_server):
        with self._raw(running_server) as sock:
            sock.sendall(PREFIX.pack(200 * 1024 * 1024))
            length = decode_length(
                self._recv_exact(sock, PREFIX.size), max_frame=1 << 31
            )
            payload = decode_payload(self._recv_exact(sock, length))
            assert payload["status"] == "error"
            assert "limit" in payload["error"]
        self._assert_alive(running_server)

    def test_non_json_payload_rejected(self, running_server):
        body = b"\xde\xad\xbe\xef" * 4
        with self._raw(running_server) as sock:
            sock.sendall(PREFIX.pack(len(body)) + body)
            length = decode_length(self._recv_exact(sock, PREFIX.size))
            payload = decode_payload(self._recv_exact(sock, length))
            assert payload["status"] == "error"
        self._assert_alive(running_server)

    def test_truncated_frame_then_disconnect(self, running_server):
        with self._raw(running_server) as sock:
            sock.sendall(PREFIX.pack(1000) + b"only a few bytes")
        self._assert_alive(running_server)

    def test_truncated_prefix_then_disconnect(self, running_server):
        with self._raw(running_server) as sock:
            sock.sendall(b"\x00")
        self._assert_alive(running_server)

    def test_disconnect_mid_response(self, serving_setup, running_server):
        frame = encode_frame(
            {
                "op": "search",
                "queries": [["bye", serving_setup["records"][0].sequence[:60]]],
                "threshold": THRESHOLD,
            }
        )
        with self._raw(running_server) as sock:
            sock.sendall(frame)
            # Vanish without reading the (possibly in-flight) response.
        time.sleep(0.3)
        self._assert_alive(running_server)

    def test_pipelined_requests_answered_in_order(self, running_server):
        with self._raw(running_server) as sock:
            sock.sendall(
                encode_frame({"op": "ping"})
                + encode_frame({"op": "stats"})
                + encode_frame({"op": "ping"})
            )
            kinds = []
            for _ in range(3):
                length = decode_length(self._recv_exact(sock, PREFIX.size))
                payload = decode_payload(self._recv_exact(sock, length))
                assert payload["status"] == "ok"
                kinds.append("stats" if "stats" in payload else "ping")
        assert kinds == ["ping", "stats", "ping"]

    @staticmethod
    def _recv_exact(sock: socket.socket, count: int) -> bytes:
        chunks = []
        while count:
            chunk = sock.recv(count)
            assert chunk, "server closed early"
            chunks.append(chunk)
            count -= len(chunk)
        return b"".join(chunks)


class TestServerConstruction:
    def test_missing_index_fails_to_start(self, tmp_path):
        server = SearchServer(tmp_path / "nope.idx", port=0)
        with pytest.raises(Exception):
            ServerThread(server, start_timeout=30).start()

    def test_invalid_shapes_rejected(self, serving_setup):
        with pytest.raises(ValueError):
            MicroBatcher(lambda q, k: None, max_batch=0)
        with pytest.raises(ValueError):
            MicroBatcher(lambda q, k: None, max_queue=0)
        with pytest.raises(ValueError):
            MicroBatcher(lambda q, k: None, linger=-1)
        with pytest.raises(ValueError):
            SearchServer(serving_setup["mono"], max_inflight=0)
        with pytest.raises(ValueError):
            ResultCache(-1)
