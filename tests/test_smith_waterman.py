"""Smith-Waterman oracle: vectorised sweep vs dense reference DP, traceback."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DEFAULT_SCHEME, ScoringScheme
from repro.align.smith_waterman import (
    align_pair,
    smith_waterman_all_hits,
    smith_waterman_best,
)

NEG = -(10**9)


def dense_reference(text, query, scheme):
    """Textbook three-matrix affine local DP (slow, trusted)."""
    n, m = len(text), len(query)
    sa, sb, ss, go = scheme.sa, scheme.sb, scheme.ss, scheme.sg + scheme.ss
    h = [[0] * (n + 1) for _ in range(m + 1)]
    e = [[NEG] * (n + 1) for _ in range(m + 1)]
    f = [[NEG] * (n + 1) for _ in range(m + 1)]
    for i in range(1, m + 1):
        for j in range(1, n + 1):
            f[i][j] = max(f[i - 1][j] + ss, h[i - 1][j] + go)
            e[i][j] = max(e[i][j - 1] + ss, h[i][j - 1] + go)
            d = h[i - 1][j - 1] + (sa if query[i - 1] == text[j - 1] else sb)
            h[i][j] = max(0, d, e[i][j], f[i][j])
    return h


def reference_hits(text, query, scheme, threshold):
    h = dense_reference(text, query, scheme)
    return {
        (j, i, h[i][j])
        for i in range(1, len(query) + 1)
        for j in range(1, len(text) + 1)
        if h[i][j] >= threshold
    }


class TestVectorisedSweep:
    def test_paper_example_cells(self):
        # Fig. 1: aligning X = GCTA against P = GCTAG; the diagonal carries
        # scores 1..4 and M_X(4, 5) (after the mismatch path) is negative.
        hits = smith_waterman_all_hits("GCTA", "GCTAG", DEFAULT_SCHEME, 1)
        scores = {(h.t_end, h.p_end): h.score for h in hits}
        assert scores[(1, 1)] == 1
        assert scores[(2, 2)] == 2
        assert scores[(3, 3)] == 3
        assert scores[(4, 4)] == 4

    def test_vs_reference_random(self, rng):
        for trial in range(25):
            n = int(rng.integers(5, 60))
            m = int(rng.integers(2, 30))
            k = 2 if trial % 2 else 4
            text = "".join("ACGT"[int(c)] for c in rng.integers(0, k, n))
            query = "".join("ACGT"[int(c)] for c in rng.integers(0, k, m))
            scheme = [
                DEFAULT_SCHEME,
                ScoringScheme(1, -1, -5, -2),
                ScoringScheme(2, -3, -2, -2),
            ][trial % 3]
            for threshold in (1, 3, 6):
                got = smith_waterman_all_hits(
                    text, query, scheme, threshold
                ).as_score_set()
                assert got == reference_hits(text, query, scheme, threshold)

    def test_empty_inputs(self):
        assert len(smith_waterman_all_hits("", "A", DEFAULT_SCHEME, 1)) == 0
        assert len(smith_waterman_all_hits("A", "", DEFAULT_SCHEME, 1)) == 0

    def test_no_hits_below_threshold(self):
        res = smith_waterman_all_hits("AAAA", "CCCC", DEFAULT_SCHEME, 1)
        assert len(res) == 0

    def test_long_gap_bridged(self):
        # Two 12-match blocks separated by a text-side insertion of 2 chars:
        # the bridged path scores 24 + (sg + 2*ss) = 15, beating the
        # suffix-block-only alignment (12), so the corner cell must be 15.
        block1, block2 = "ACGTCAACGTCA", "TGCATCTGCATC"
        text = block1 + "GG" + block2
        query = block1 + block2
        res = smith_waterman_all_hits(text, query, DEFAULT_SCHEME, 3)
        assert res.score_of(len(text), len(query)) == 24 - (5 + 2 * 2)

    @settings(max_examples=30, deadline=None)
    @given(
        st.text(alphabet="AC", min_size=1, max_size=40),
        st.text(alphabet="AC", min_size=1, max_size=15),
        st.integers(1, 8),
    )
    def test_property_vs_reference(self, text, query, threshold):
        got = smith_waterman_all_hits(
            text, query, DEFAULT_SCHEME, threshold
        ).as_score_set()
        assert got == reference_hits(text, query, DEFAULT_SCHEME, threshold)


class TestBest:
    def test_paper_similarity_example(self):
        # Sec. 2.1: sim(AAACG, AACCG) = 1*4 - 3 = 1 ... as a *global* value;
        # locally the best is the common prefix AA + suffix CG handling.
        # Check via reference instead of the paper's global number.
        best = smith_waterman_best("AAACG", "AACCG", DEFAULT_SCHEME)
        h = dense_reference("AAACG", "AACCG", DEFAULT_SCHEME)
        assert best == max(max(row) for row in h)

    def test_perfect_match(self):
        assert smith_waterman_best("ACGT", "ACGT", DEFAULT_SCHEME) == 4

    def test_empty(self):
        assert smith_waterman_best("", "ACGT", DEFAULT_SCHEME) == 0


class TestAlignPair:
    def test_identical(self):
        aln = align_pair("GATTACA", "GATTACA", DEFAULT_SCHEME)
        assert aln.score == 7
        assert aln.ops == "M" * 7
        assert aln.identity() == 1.0

    def test_substitution(self):
        aln = align_pair("AAAAATAAAAA", "AAAAACAAAAA", DEFAULT_SCHEME)
        assert aln.score == 10 - 3
        assert aln.ops.count("X") == 1

    def test_gap(self):
        aln = align_pair("AACGTACGTA" + "AACGTACGTA", "AACGTACGTAAACGTTACGTA".replace("TT", "TT"), DEFAULT_SCHEME)
        assert aln.score >= 10

    def test_score_matches_best(self, rng):
        for _ in range(10):
            s1 = "".join("ACGT"[int(c)] for c in rng.integers(0, 2, 30))
            s2 = "".join("ACGT"[int(c)] for c in rng.integers(0, 2, 20))
            aln = align_pair(s1, s2, DEFAULT_SCHEME)
            assert aln.score == smith_waterman_best(s1, s2, DEFAULT_SCHEME)

    def test_ops_rescore(self, rng):
        # Replaying the ops over the aligned windows reproduces the score.
        for _ in range(10):
            s1 = "".join("ACGT"[int(c)] for c in rng.integers(0, 2, 40))
            s2 = "".join("ACGT"[int(c)] for c in rng.integers(0, 2, 25))
            aln = align_pair(s1, s2, DEFAULT_SCHEME)
            if aln.score == 0:
                continue
            i, j, score = aln.s1_start - 1, aln.s2_start - 1, 0
            k = 0
            ops = aln.ops
            scheme = DEFAULT_SCHEME
            while k < len(ops):
                op = ops[k]
                if op in "MX":
                    score += scheme.sa if s1[i] == s2[j] else scheme.sb
                    i += 1
                    j += 1
                    k += 1
                else:
                    run = 0
                    kind = op
                    while k < len(ops) and ops[k] == kind:
                        run += 1
                        k += 1
                    score += scheme.sg + run * scheme.ss
                    if kind == "D":
                        i += run
                    else:
                        j += run
            assert i == aln.s1_end and j == aln.s2_end
            assert score == aln.score

    def test_no_alignment(self):
        aln = align_pair("AAAA", "CCCC", DEFAULT_SCHEME)
        assert aln.score == 0
        assert aln.ops == ""
