"""Result accumulator and statistics semantics."""

from repro.align.types import Hit, ResultSet, SearchStats


class TestHit:
    def test_key(self):
        assert Hit(t_end=5, p_end=3, score=7).key() == (5, 3)

    def test_ordering(self):
        a = Hit(t_end=1, p_end=1, score=5)
        b = Hit(t_end=2, p_end=1, score=3)
        assert a < b

    def test_frozen(self):
        hit = Hit(t_end=1, p_end=1, score=5)
        try:
            hit.score = 9
            assert False, "Hit must be immutable"
        except AttributeError:
            pass


class TestResultSet:
    def test_max_dedup(self):
        rs = ResultSet()
        rs.add(5, 3, 7, t_start=2)
        rs.add(5, 3, 9, t_start=1)
        rs.add(5, 3, 4, t_start=4)
        assert rs.score_of(5, 3) == 9
        assert len(rs) == 1

    def test_tie_prefers_earlier_start(self):
        rs = ResultSet()
        rs.add(5, 3, 7, t_start=4)
        rs.add(5, 3, 7, t_start=2)
        rs.add(5, 3, 7, t_start=6)
        hit = rs.hits()[0]
        assert hit.t_start == 2

    def test_hits_sorted(self):
        rs = ResultSet()
        rs.add(9, 1, 3)
        rs.add(1, 5, 4)
        rs.add(1, 2, 5)
        keys = [h.key() for h in rs.hits()]
        assert keys == sorted(keys)

    def test_merge(self):
        a, b = ResultSet(), ResultSet()
        a.add(1, 1, 5)
        b.add(1, 1, 8)
        b.add(2, 2, 3)
        a.merge(b)
        assert a.score_of(1, 1) == 8
        assert len(a) == 2

    def test_best(self):
        rs = ResultSet()
        assert rs.best() is None
        rs.add(1, 1, 5)
        rs.add(2, 2, 9)
        assert rs.best().score == 9

    def test_contains(self):
        rs = ResultSet()
        rs.add(3, 4, 2)
        assert (3, 4) in rs
        assert (4, 3) not in rs

    def test_as_score_set(self):
        rs = ResultSet()
        rs.add(1, 2, 3, t_start=1)
        rs.add(1, 2, 5, t_start=7)
        assert rs.as_score_set() == {(1, 2, 5)}

    def test_iter_yields_hits(self):
        rs = ResultSet()
        rs.add(1, 2, 3)
        assert [h.score for h in rs] == [3]


class TestSearchStats:
    def test_totals(self):
        st = SearchStats(calculated_x1=10, calculated_x2=5, calculated_x3=2)
        assert st.calculated == 17
        assert st.computation_cost == 10 + 10 + 6

    def test_accessed_and_reusing_ratio(self):
        st = SearchStats(calculated_x1=30, reused=10)
        assert st.accessed == 40
        assert st.reusing_ratio == 0.25

    def test_reusing_ratio_empty(self):
        assert SearchStats().reusing_ratio == 0.0

    def test_filtering_ratio(self):
        st = SearchStats(calculated_x1=30)
        assert st.filtering_ratio(100) == 0.7
        assert st.filtering_ratio(0) == 0.0
        # ALAE never filters negatively: clamp at 0.
        assert st.filtering_ratio(10) == 0.0
