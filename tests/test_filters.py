"""Local filtering (Sec. 3.1): FilterPlan bounds and their soundness."""

import numpy as np
import pytest

from repro import DEFAULT_SCHEME, ScoringScheme, smith_waterman_all_hits
from repro.core.filters import dead_threshold_cell, make_filter_plan


class TestFilterPlan:
    def test_plan_fields(self):
        plan = make_filter_plan(DEFAULT_SCHEME, m=100, threshold=10)
        assert plan.q == 4
        assert plan.min_row == 10
        assert plan.lmax == DEFAULT_SCHEME.max_alignment_length(100, 10)
        assert plan.fgoe_bound == 7
        assert plan.sa_cached == 1

    def test_row_live_threshold_monotone(self):
        plan = make_filter_plan(DEFAULT_SCHEME, m=100, threshold=30)
        values = [plan.row_live_threshold(i) for i in range(1, plan.lmax + 1)]
        assert values == sorted(values)
        assert values[-1] == 30 - 1  # at i = lmax nothing can be added

    def test_row_live_threshold_disabled(self):
        plan = make_filter_plan(DEFAULT_SCHEME, m=100, threshold=30)
        assert plan.row_live_threshold(plan.lmax, use_score_filter=False) == 0

    def test_row_live_floor_zero(self):
        plan = make_filter_plan(DEFAULT_SCHEME, m=100, threshold=10)
        assert plan.row_live_threshold(1) == 0

    def test_cell_dead_matches_scheme(self):
        plan = make_filter_plan(DEFAULT_SCHEME, m=50, threshold=12)
        for i in (1, 20, 40):
            for j in (1, 25, 49):
                bound = dead_threshold_cell(
                    DEFAULT_SCHEME, i, j, 50, 12, plan.lmax
                )
                assert plan.cell_dead(i, j, bound)
                assert not plan.cell_dead(i, j, bound + 1)


class TestLengthFilterSoundness:
    """No result alignment can be longer than Lmax or shorter than min_row."""

    def test_hit_lengths_within_bounds(self):
        rng = np.random.default_rng(3)
        text = "".join("AC"[int(c)] for c in rng.integers(0, 2, 200))
        query = "".join("AC"[int(c)] for c in rng.integers(0, 2, 30))
        threshold = 6
        plan = make_filter_plan(DEFAULT_SCHEME, len(query), threshold)
        from repro import ALAE

        res = ALAE(text).search(query, threshold=threshold)
        for hit in res.hits:
            length = hit.t_end - hit.t_start + 1
            assert plan.min_row <= length <= plan.lmax

    def test_theorem1_score_cap_by_length(self):
        # An alignment of text-length i scores at most sa*min(i, m) plus gap
        # penalties; verify the paper's example numerically via SW.
        text, query, h = "CTAGCTAG", "GCTAC", 3
        res = smith_waterman_all_hits(text, query, DEFAULT_SCHEME, h)
        assert all(hit.score <= 5 for hit in res)


class TestScoreFilterSoundness:
    def test_dead_cell_cannot_recover(self):
        # From a cell at (i, j) with score <= bound, even all-matches to the
        # end stay below H: verify the arithmetic of Theorem 2's budget.
        scheme = DEFAULT_SCHEME
        m, h = 40, 15
        lmax = scheme.max_alignment_length(m, h)
        for i in (5, 20):
            for j in (5, 30):
                bound = dead_threshold_cell(scheme, i, j, m, h, lmax)
                max_gain = min(m - j, lmax - i) * scheme.sa
                assert bound + max_gain < h or bound == 0


class TestQPrefixTheorem:
    """Theorem 3: surviving alignments start with q exact matches."""

    def test_no_hit_without_q_match(self):
        # Paper example: X = ACACAT vs P = GCGTGTGA share no 4-gram, so the
        # whole matrix is meaningless under the default scheme.
        from repro import ALAE

        res = ALAE("ACACAT").search("GCGTGTGA", threshold=4)
        assert len(res.hits) == 0

    def test_gram_absent_counted(self):
        from repro import ALAE

        engine = ALAE("ACACAT")
        res = engine.search("GCGTGTGA", threshold=4)
        assert res.stats.grams_absent_in_text == 5  # all P 4-grams miss T

    def test_small_threshold_short_matches(self):
        # H < q*sa: alignments shorter than q exist and are all-match.
        from repro import ALAE

        res = ALAE("GATTACA").search("TTA", threshold=2)
        sw = smith_waterman_all_hits("GATTACA", "TTA", DEFAULT_SCHEME, 2)
        assert res.hits.as_score_set() == sw.as_score_set()

    def test_q_respects_scheme(self):
        # For <1,-1,-5,-2> q = 2: a lone 2-gram match scores 2 >= H = 2.
        scheme = ScoringScheme(1, -1, -5, -2)
        from repro import ALAE

        res = ALAE("GGTTGG", scheme=scheme).search("TT", threshold=2)
        assert (4, 2, 2) in res.hits.as_score_set()
