"""The metrics layer: primitives, exposition, exporter, wire op, ``top``.

Exact-string exposition and thread-hammer tests run against private
:class:`MetricsRegistry` instances so they are independent of whatever the
process-wide registry has accumulated; the server integration tests use the
shared registry and therefore assert *deltas*, never absolutes.
"""

import json
import math
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro import IndexStore, SearchService, ShardedStore, genome, write_fasta
from repro.cli import main
from repro.io.database import SequenceDatabase
from repro.io.fasta import FastaRecord
from repro.obs.exporter import MetricsExporter
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    EWMA,
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
    family,
    format_value,
    histogram_quantile,
    metrics_enabled,
    sample_value,
    set_enabled,
)
from repro.obs.spans import span_tree
from repro.obs.top import TopSample, render_top, run_top
from repro.server import SearchServer, ServerClient, ServerThread

THRESHOLD = 30


@pytest.fixture(scope="module")
def serving_setup(tmp_path_factory):
    """A small sharded database and query material (mirrors test_server)."""
    root = tmp_path_factory.mktemp("metrics")
    rng = np.random.default_rng(23)
    records = [
        FastaRecord(f"chr{i}", genome(1_500 + 400 * i, rng))
        for i in range(1, 4)
    ]
    fasta = root / "db.fa"
    write_fasta(records, fasta)
    database = SequenceDatabase.from_fasta(fasta)
    mono = root / "db.idx"
    IndexStore.build(database).save(mono)
    sharded = root / "db.shd"
    ShardedStore.build(database, sharded, shards=2)
    queries = [
        ("q1", records[0].sequence[50:110]),
        ("q2", records[1].sequence[300:360]),
        ("q3", records[2].sequence[20:50] + records[2].sequence[56:86]),
    ]
    return {
        "root": root,
        "mono": mono,
        "sharded": sharded,
        "queries": queries,
    }


@pytest.fixture(scope="module")
def running_server(serving_setup):
    """One shared sharded server with an ephemeral metrics port."""
    server = SearchServer(
        serving_setup["sharded"], port=0, reload_poll=0, linger=0.001,
        metrics_port=0,
    )
    with ServerThread(server) as handle:
        yield handle


def families_of(client):
    return client.metrics()["families"]


class TestCounter:
    def test_inc_and_value(self):
        counter = Counter("t_c_total", "help", registry=None)
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_negative_inc_rejected(self):
        counter = Counter("t_c_neg_total", "help", registry=None)
        with pytest.raises(MetricsError, match="only go up"):
            counter.inc(-1)

    def test_labels_cached(self):
        counter = Counter("t_c_lab_total", "help", ("mode",), registry=None)
        assert counter.labels(mode="exact") is counter.labels("exact")

    def test_label_arity_enforced(self):
        counter = Counter("t_c_arity_total", "help", ("a", "b"), registry=None)
        with pytest.raises(MetricsError, match="2 label values"):
            counter.labels("only-one")
        with pytest.raises(MetricsError, match="missing label"):
            counter.labels(a="x")
        with pytest.raises(MetricsError, match="positionally or by name"):
            counter.labels("x", b="y")

    def test_invalid_names_rejected(self):
        with pytest.raises(MetricsError, match="invalid metric name"):
            Counter("0bad", "help", registry=None)
        with pytest.raises(MetricsError, match="invalid label name"):
            Counter("t_ok_total", "help", ("__reserved",), registry=None)


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("t_g", "help", registry=None)
        gauge.set(5)
        gauge.inc(2)
        gauge.dec(3)
        assert gauge.value == 4.0


class TestHistogram:
    def test_observe_counts_and_sum(self):
        histogram = Histogram(
            "t_h_seconds", "help", buckets=(1.0, 2.0, 4.0), registry=None
        )
        for value in (0.5, 1.5, 3.0, 9.0):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.sum == 14.0

    def test_quantile_is_upper_bucket_bound(self):
        histogram = Histogram(
            "t_h_q_seconds", "help", buckets=(1.0, 2.0, 4.0), registry=None
        )
        assert histogram.quantile(0.5) == 0.0  # empty
        for value in (0.5, 0.6, 1.5, 3.0):
            histogram.observe(value)
        assert histogram.quantile(0.5) == 1.0
        assert histogram.quantile(0.9) == 4.0
        histogram.observe(100.0)  # past the last bound -> largest finite
        assert histogram.quantile(1.0) == 4.0

    def test_bad_buckets_rejected(self):
        with pytest.raises(MetricsError, match="strictly increasing"):
            Histogram("t_h_bad", "help", buckets=(2.0, 1.0), registry=None)
        with pytest.raises(MetricsError, match="at least one"):
            Histogram("t_h_empty", "help", buckets=(), registry=None)
        with pytest.raises(MetricsError, match="reserved"):
            Histogram("t_h_le", "help", ("le",), registry=None)

    def test_explicit_inf_bucket_stripped(self):
        histogram = Histogram(
            "t_h_inf", "help", buckets=(1.0, math.inf), registry=None
        )
        assert histogram.buckets == (1.0,)


class TestRegistryBehaviour:
    def test_duplicate_registration_adopts_state(self):
        registry = MetricsRegistry()
        first = Counter("dup_total", "help", ("m",), registry=registry)
        first.labels(m="x").inc(3)
        second = Counter("dup_total", "help", ("m",), registry=registry)
        second.labels(m="x").inc()
        # Both instances share one series set (module re-import safety).
        assert first.labels(m="x").value == 4.0
        assert registry.get("dup_total").labels(m="x").value == 4.0

    def test_mismatched_signature_rejected(self):
        registry = MetricsRegistry()
        Counter("sig_total", "help", ("m",), registry=registry)
        with pytest.raises(MetricsError, match="already registered"):
            Counter("sig_total", "help", ("other",), registry=registry)
        with pytest.raises(MetricsError, match="already registered"):
            Gauge("sig_total", "help", ("m",), registry=registry)

    def test_registry_none_is_unregistered(self):
        registry = MetricsRegistry()
        Counter("loose_total", "help", registry=None)
        assert registry.names() == []
        assert REGISTRY.get("loose_total") is None

    def test_reset_zeroes_but_keeps_series(self):
        registry = MetricsRegistry()
        counter = Counter("r_total", "help", ("m",), registry=registry)
        counter.labels(m="a").inc(7)
        registry.reset()
        assert counter.labels(m="a").value == 0.0
        assert [s["labels"] for s in counter.collect_samples()] == [{"m": "a"}]


class TestExposition:
    def test_counter_exact_text(self):
        registry = MetricsRegistry()
        counter = Counter("jobs_total", "Jobs done.", ("mode",), registry=registry)
        counter.labels(mode="fast").inc(2)
        counter.labels(mode="exact").inc()
        assert registry.exposition() == (
            "# HELP jobs_total Jobs done.\n"
            "# TYPE jobs_total counter\n"
            'jobs_total{mode="exact"} 1\n'
            'jobs_total{mode="fast"} 2\n'
        )

    def test_histogram_exact_text(self):
        registry = MetricsRegistry()
        histogram = Histogram(
            "lat_seconds", "Latency.", buckets=(0.5, 1.0), registry=registry
        )
        for value in (0.25, 0.75, 2.5):
            histogram.observe(value)
        assert registry.exposition() == (
            "# HELP lat_seconds Latency.\n"
            "# TYPE lat_seconds histogram\n"
            'lat_seconds_bucket{le="0.5"} 1\n'
            'lat_seconds_bucket{le="1"} 2\n'
            'lat_seconds_bucket{le="+Inf"} 3\n'
            "lat_seconds_sum 3.5\n"
            "lat_seconds_count 3\n"
        )

    def test_families_sorted_by_name(self):
        registry = MetricsRegistry()
        Counter("zz_total", "z", registry=registry)
        Counter("aa_total", "a", registry=registry)
        text = registry.exposition()
        assert text.index("aa_total") < text.index("zz_total")

    def test_label_and_help_escaping(self):
        registry = MetricsRegistry()
        counter = Counter("esc_total", 'line\nbreak \\ "q"', ("p",), registry=registry)
        counter.labels(p='a"b\\c\nd').inc()
        text = registry.exposition()
        assert "# HELP esc_total line\\nbreak \\\\ \"q\"\n" in text
        assert 'esc_total{p="a\\"b\\\\c\\nd"} 1\n' in text

    def test_format_value(self):
        assert format_value(3.0) == "3"
        assert format_value(0.5) == "0.5"
        assert format_value(math.inf) == "+Inf"
        assert format_value(-math.inf) == "-Inf"

    def test_collect_mirrors_exposition(self):
        registry = MetricsRegistry()
        histogram = Histogram("c_seconds", "h", buckets=(1.0,), registry=registry)
        histogram.observe(0.5)
        (fam,) = registry.collect()
        assert fam["name"] == "c_seconds"
        assert fam["type"] == "histogram"
        (sample,) = fam["samples"]
        assert sample["buckets"] == [["1", 1], ["+Inf", 1]]
        assert sample["count"] == 1
        assert sample["sum"] == 0.5


class TestConcurrency:
    """Counters and histograms promise *exact* totals under threads."""

    THREADS = 8
    PER_THREAD = 5_000

    def _hammer(self, work):
        threads = [
            threading.Thread(target=work) for _ in range(self.THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    def test_counter_exact_under_threads(self):
        counter = Counter("hammer_total", "h", ("m",), registry=None)

        def work():
            child = counter.labels(m="x")
            for _ in range(self.PER_THREAD):
                child.inc()

        self._hammer(work)
        assert counter.labels(m="x").value == self.THREADS * self.PER_THREAD

    def test_histogram_exact_under_threads(self):
        histogram = Histogram(
            "hammer_seconds", "h", buckets=(0.5, 1.0), registry=None
        )

        def work():
            for index in range(self.PER_THREAD):
                histogram.observe(0.25 if index % 2 else 0.75)

        self._hammer(work)
        total = self.THREADS * self.PER_THREAD
        assert histogram.count == total
        assert histogram.sum == pytest.approx(total * 0.5, rel=1e-9)
        (sample,) = histogram.collect_samples()
        # Exact per-bucket counts, not just the total.
        assert sample["buckets"] == [
            ["0.5", total // 2], ["1", total], ["+Inf", total],
        ]

    def test_concurrent_label_creation_single_child(self):
        counter = Counter("race_total", "h", ("m",), registry=None)
        children = []
        barrier = threading.Barrier(self.THREADS)

        def work():
            barrier.wait()
            children.append(counter.labels(m="same"))

        self._hammer(work)
        assert all(child is children[0] for child in children)

    def test_disabled_mutators_are_noops(self):
        counter = Counter("off_total", "h", registry=None)
        set_enabled(False)
        try:
            counter.inc(5)
            assert not metrics_enabled()
        finally:
            set_enabled(True)
        assert counter.value == 0.0
        counter.inc()
        assert counter.value == 1.0


class TestEWMA:
    def test_first_sample_primes(self):
        ewma = EWMA(alpha=0.5)
        assert ewma.update(10.0) == 10.0
        assert ewma.update(0.0) == 5.0
        assert ewma.value == 5.0

    def test_bad_alpha_rejected(self):
        with pytest.raises(MetricsError, match="alpha"):
            EWMA(alpha=0.0)


class TestHelpers:
    def test_family_and_sample_value(self):
        registry = MetricsRegistry()
        counter = Counter("h_total", "h", ("m",), registry=registry)
        counter.labels(m="a").inc(4)
        families = registry.collect()
        assert family(families, "h_total")["type"] == "counter"
        assert family(families, "missing") is None
        assert sample_value(families, "h_total", m="a") == 4.0
        assert sample_value(families, "h_total", m="zz") is None

    def test_histogram_quantile_from_sample(self):
        registry = MetricsRegistry()
        histogram = Histogram("hq_seconds", "h", buckets=(1.0, 2.0), registry=registry)
        for value in (0.5, 1.5, 1.6, 9.0):
            histogram.observe(value)
        (fam,) = registry.collect()
        (sample,) = fam["samples"]
        assert histogram_quantile(sample, 0.5) == 2.0
        assert histogram_quantile(sample, 1.0) == 2.0  # +Inf falls back
        assert histogram_quantile({"count": 0, "buckets": []}, 0.5) == 0.0


class TestExporter:
    def _get(self, port, path):
        return urllib.request.urlopen(
            f"http://127.0.0.1:{port}{path}", timeout=10
        )

    def test_metrics_endpoint_serves_exposition(self):
        registry = MetricsRegistry()
        Counter("exp_total", "h", registry=registry).inc(3)
        with MetricsExporter(registry, port=0) as exporter:
            with self._get(exporter.port, "/metrics") as response:
                body = response.read().decode("utf-8")
                content_type = response.headers["Content-Type"]
        assert content_type.startswith("text/plain; version=0.0.4")
        assert "exp_total 3\n" in body
        assert body == registry.exposition()

    def test_index_and_404(self):
        registry = MetricsRegistry()
        with MetricsExporter(registry, port=0) as exporter:
            with self._get(exporter.port, "/") as response:
                assert b"/metrics" in response.read()
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                self._get(exporter.port, "/nope")
            assert excinfo.value.code == 404


class TestServerIntegration:
    """Shared-registry assertions are deltas: other tests also serve."""

    def test_metrics_op_shape(self, running_server):
        with ServerClient(port=running_server.port) as client:
            response = client.metrics()
        assert response["enabled"] is True
        assert response["generation"] >= 1
        routing = response["routing"]
        assert set(routing) == {
            "queue_depth", "ewma_queue_depth", "latency_quantiles",
        }
        names = [fam["name"] for fam in response["families"]]
        assert names == sorted(names)
        assert "repro_server_requests_total" in names

    def test_search_moves_counters_and_histograms(
        self, serving_setup, running_server
    ):
        with ServerClient(port=running_server.port) as client:
            before = families_of(client)
            client.search(serving_setup["queries"], threshold=THRESHOLD)
            after = families_of(client)
        served = family(after, "repro_server_request_seconds")["samples"]
        exact = next(s for s in served if s["labels"] == {"mode": "exact"})
        was = family(before, "repro_server_request_seconds")
        was_count = 0
        if was:
            for sample in was["samples"]:
                if sample["labels"] == {"mode": "exact"}:
                    was_count = sample["count"]
        assert exact["count"] == was_count + len(serving_setup["queries"])
        delta = (
            sample_value(after, "repro_server_requests_total", op="search")
            - (sample_value(before, "repro_server_requests_total", op="search") or 0)
        )
        assert delta == 1.0

    def test_sharded_and_engine_families_populate(
        self, serving_setup, running_server
    ):
        with ServerClient(port=running_server.port) as client:
            client.search(serving_setup["queries"], threshold=THRESHOLD)
            families = families_of(client)
        shard = family(families, "repro_sharded_shard_seconds")
        shards = {s["labels"]["shard"] for s in shard["samples"]}
        # Superset, not equality: other test modules' sharded servers share
        # the process-wide registry and may have minted more shard labels.
        assert {"0", "1"} <= shards
        engine = family(families, "repro_engine_searches_total")
        assert any(
            s["labels"]["mode"] == "exact" and s["value"] > 0
            for s in engine["samples"]
        )

    def test_routing_quantiles_after_traffic(
        self, serving_setup, running_server
    ):
        with ServerClient(port=running_server.port) as client:
            client.search(serving_setup["queries"], threshold=THRESHOLD)
            routing = client.metrics()["routing"]
        quantiles = routing["latency_quantiles"]["exact"]
        assert quantiles["p50"] <= quantiles["p90"] <= quantiles["p99"]
        assert quantiles["p99"] in DEFAULT_LATENCY_BUCKETS
        assert routing["ewma_queue_depth"] >= 0.0

    def test_stats_gains_span_counts_and_means(
        self, serving_setup, running_server
    ):
        with ServerClient(port=running_server.port) as client:
            client.search(serving_setup["queries"], threshold=THRESHOLD)
            stats = client.stats()["stats"]
        assert "routing" in stats
        counts = stats["spans_count"]
        means = stats["spans_mean_seconds"]
        assert set(counts) == set(stats["spans_seconds"])
        assert set(means) == set(counts)
        for name, count in counts.items():
            assert count >= 1
            assert means[name] == pytest.approx(
                round(stats["spans_seconds"][name] / count, 6), abs=1e-6
            )

    def test_unknown_op_folds_to_unknown_label(self, running_server):
        with ServerClient(port=running_server.port) as client:
            before = sample_value(
                families_of(client), "repro_server_requests_total", op="unknown"
            ) or 0
            response = client.request({"op": "bogus-op"})
            assert response.get("status") == "error"
            after = sample_value(
                families_of(client), "repro_server_requests_total", op="unknown"
            )
        assert after == before + 1

    def test_http_exporter_attached_to_server(self, running_server):
        port = running_server.server.metrics_port
        assert port  # ephemeral port resolved after start
        with urllib.request.urlopen(
            f"http://127.0.0.1:{port}/metrics", timeout=10
        ) as response:
            body = response.read().decode("utf-8")
        assert "# TYPE repro_server_requests_total counter" in body


def _top_sample(at, counts, extra_families=(), **stats):
    buckets = [["0.001", counts], ["+Inf", counts]]
    families = [
        {
            "name": "repro_server_request_seconds",
            "type": "histogram",
            "help": "h",
            "samples": [
                {
                    "labels": {"mode": "exact"},
                    "buckets": buckets,
                    "sum": counts * 0.0005,
                    "count": counts,
                }
            ],
        },
        {
            "name": "repro_server_inflight_requests",
            "type": "gauge",
            "help": "h",
            "samples": [{"labels": {}, "value": 2}],
        },
        *extra_families,
    ]
    base_stats = {
        "generation": 3,
        "uptime_seconds": 12.0,
        "queue_depth": 1,
        "overloaded_total": 0,
        "cache_hits": 3,
        "cache_misses": 1,
        "cache_size": 4,
    }
    base_stats.update(stats)
    return TopSample(
        at=at,
        stats=base_stats,
        families=families,
        routing={"ewma_queue_depth": 0.75},
        index="db.shd",
        mode="exact",
    )


class TestTopRender:
    def test_frame_is_deterministic(self):
        frame = render_top(_top_sample(10.0, counts=4))
        assert frame == render_top(_top_sample(10.0, counts=4))
        assert frame.splitlines()[0] == (
            "repro top — db.shd — mode exact — generation 3 — uptime 12s"
        )
        assert "exact" in frame
        assert "       -" in frame  # no previous sample -> qps placeholder
        assert "queue: depth 1 (ewma 0.75)  inflight 2  overloaded 0" in frame
        assert "cache: 75.0% hit (3 hits / 1 misses, 4 entries)" in frame

    def test_qps_from_counter_differencing(self):
        previous = _top_sample(10.0, counts=4)
        current = _top_sample(12.0, counts=10)
        frame = render_top(current, previous)
        assert "     3.0" in frame  # (10 - 4) / 2s

    def test_empty_sample_fallback(self):
        frame = render_top(TopSample(at=0.0))
        assert "(no served queries yet)" in frame

    def test_shard_and_reqlog_lines(self):
        shard_family = {
            "name": "repro_sharded_shard_seconds",
            "type": "histogram",
            "help": "h",
            "samples": [
                {"labels": {"shard": "0"}, "buckets": [], "sum": 0.25, "count": 5},
                {"labels": {"shard": "1"}, "buckets": [], "sum": 0.75, "count": 5},
            ],
        }
        sample = _top_sample(
            1.0, counts=2, extra_families=(shard_family,),
            request_log={"written": 9, "dropped": 1, "pending": 0},
        )
        frame = render_top(sample)
        assert "reqlog: written 9 dropped 1 pending 0" in frame
        assert "shards: 2 reporting, hottest shard1 (0.750s of 1.000s work)" in frame

    def test_run_top_once_writes_single_frame(self, running_server):
        frames = []
        with ServerClient(port=running_server.port) as client:
            code = run_top(client, once=True, write=frames.append)
        assert code == 0
        assert len(frames) == 1
        assert frames[0].startswith("repro top — ")


class TestSpanTree:
    def test_shards_split_from_spans(self):
        tree = span_tree(
            {"engine": 0.5, "merge": 0.25, "shard1": 0.1, "shard0": 0.2}
        )
        assert tree == {
            "spans": {"engine": 0.5, "merge": 0.25},
            "shards": {"0": 0.2, "1": 0.1},
        }

    def test_rounding_and_empty(self):
        # "shards" is omitted (not empty) when nothing attributes to shards.
        assert span_tree({"engine": 0.123456789}) == {
            "spans": {"engine": 0.123457},
        }
        assert span_tree({}) == {"spans": {}}


class TestCliByteIdentity:
    """Exact-mode stdout must not change with metrics on, off, or traced."""

    def _query_stdout(
        self, capsys, running_server, serving_setup, *extra,
        threshold=THRESHOLD,
    ):
        queries = serving_setup["root"] / "queries.fa"
        if not queries.exists():
            write_fasta(
                [FastaRecord(qid, seq) for qid, seq in serving_setup["queries"]],
                queries,
            )
        code = main([
            "query", str(queries),
            "--port", str(running_server.port),
            "--threshold", str(threshold),
            "--mode", "exact",
            *extra,
        ])
        assert code == 0
        return capsys.readouterr().out

    def test_stdout_identical_metrics_on_off(
        self, capsys, serving_setup, running_server
    ):
        enabled = self._query_stdout(capsys, running_server, serving_setup)
        set_enabled(False)
        try:
            disabled = self._query_stdout(capsys, running_server, serving_setup)
        finally:
            set_enabled(True)
        assert enabled == disabled

    def test_stdout_identical_with_trace_out(
        self, capsys, serving_setup, running_server, tmp_path
    ):
        # A threshold the other tests don't use keys fresh cache entries,
        # so the traced run (first) serves uncached and carries spans.
        trace_path = tmp_path / "trace.json"
        traced = self._query_stdout(
            capsys, running_server, serving_setup,
            "--trace-out", str(trace_path), threshold=THRESHOLD + 2,
        )
        plain = self._query_stdout(
            capsys, running_server, serving_setup, threshold=THRESHOLD + 2
        )
        assert traced == plain
        document = json.loads(trace_path.read_text())
        assert trace_path.read_text().endswith("\n")
        assert document["mode"] == "exact"
        assert [q["id"] for q in document["queries"]] == ["q1", "q2", "q3"]
        assert not any(q["cached"] for q in document["queries"])
        for query in document["queries"]:
            assert set(query["shards"]) == {"0", "1"}
            assert "merge" in query["spans"]

    def test_served_stdout_matches_offline_cli(
        self, capsys, serving_setup, running_server
    ):
        served = self._query_stdout(capsys, running_server, serving_setup)
        code = main([
            "search-db", "--index", str(serving_setup["mono"]),
            str(serving_setup["root"] / "queries.fa"),
            "--threshold", str(THRESHOLD),
        ])
        assert code == 0
        offline = capsys.readouterr().out
        assert served == offline
