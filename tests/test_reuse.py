"""Score reuse (Sec. 4): frontier memoisation correctness and accounting."""

import numpy as np
import pytest

from repro import ALAE, DEFAULT_SCHEME, DNA, ScoringScheme, smith_waterman_all_hits
from repro.align.recurrences import NEG, CostCounter, advance_row
from repro.core.reuse import ReuseEngine, frontier_reuse_key


class TestReuseKey:
    def test_shifted_frontiers_same_key(self):
        query = "GCTAGCTAGCTAGCTA"  # (GCTA)^4 — suffixes repeat
        fr1 = {4: (8, NEG), 5: (3, NEG)}
        fr2 = {8: (8, NEG), 9: (3, NEG)}
        k1 = frontier_reuse_key(fr1, query, len(query), DEFAULT_SCHEME)
        k2 = frontier_reuse_key(fr2, query, len(query), DEFAULT_SCHEME)
        assert k1 == k2

    def test_different_scores_different_key(self):
        query = "GCTAGCTAGCTAGCTA"
        fr1 = {4: (8, NEG)}
        fr2 = {8: (9, NEG)}
        assert frontier_reuse_key(
            fr1, query, len(query), DEFAULT_SCHEME
        ) != frontier_reuse_key(fr2, query, len(query), DEFAULT_SCHEME)

    def test_different_upcoming_chars_different_key(self):
        query = "GCTAACTA"  # suffix after col 4 is A..., after col 8 none
        fr1 = {2: (8, NEG)}
        fr2 = {6: (8, NEG)}
        # P[3] = 'T', P[7] = 'T' equal here; craft a differing case:
        query2 = "GCTAGATA"
        k1 = frontier_reuse_key(fr1, query2, len(query2), DEFAULT_SCHEME)
        k2 = frontier_reuse_key(fr2, query2, len(query2), DEFAULT_SCHEME)
        assert k1 != k2  # upcoming chars T vs T? positions 3 vs 7: T vs T...
        # (keys also encode relative columns, so equality only holds when the
        # full window matches; this asserts the conservative direction)

    def test_edge_distance_in_key_near_query_end(self):
        query = "GCTAGCTA"
        fr_far = {2: (30, NEG)}
        fr_near = {6: (30, NEG)}
        k_far = frontier_reuse_key(fr_far, query, len(query), DEFAULT_SCHEME)
        k_near = frontier_reuse_key(fr_near, query, len(query), DEFAULT_SCHEME)
        # A score of 30 can reach past column 8 from either start, so the
        # edge distances (6 vs 2) must differ and so must the keys.
        assert k_far != k_near


class TestRightEdgeReachBound:
    """Regression: the reach bound must cover the diagonal step (+sa).

    A row advance can first step diagonally past the last column and only
    then open the horizontal gap chain, so with schemes where ``sa > -ss``
    the bare ``(max_m + sg + ss) // (-ss) + 2`` budget classed two forks at
    genuinely divergent distances from column ``m`` both as "far" and let
    them share one advance.  The shifted copy then gained phantom columns
    past ``m`` (reported as hits with ``p_end > len(query)``) or lost
    legitimate cells at the truncation boundary.
    """

    def test_truncation_divergent_forks_key_apart(self):
        # sa = 3 > -ss = 1: the diagonal step reaches 3 extra chain columns.
        scheme = ScoringScheme(3, -3, -2, -1)
        query = "A" * 10
        fr_near = {6: (4, NEG)}  # room 4: the chain is truncated at m = 10
        fr_far = {5: (4, NEG)}  # room 5: one more legitimate cell survives
        k_near = frontier_reuse_key(fr_near, query, len(query), scheme)
        k_far = frontier_reuse_key(fr_far, query, len(query), scheme)
        assert k_near != k_far

    def test_shared_advance_matches_direct_at_truncation(self):
        # Failing-first shape of the bug: under the old bound both frontiers
        # keyed ("far", -1), the memo copied the near fork's truncated row
        # onto the far fork and dropped its column-10 cell.
        scheme = ScoringScheme(3, -3, -2, -1)
        query = "A" * 10
        frontiers = [{6: (4, NEG)}, {5: (4, NEG)}]
        engine = ReuseEngine(enabled=True)
        shared = engine.advance_forks(
            [dict(fr) for fr in frontiers], "A", query, len(query), scheme, 0, None
        )
        direct = [
            advance_row(dict(fr), "A", query, len(query), scheme, 0, None)
            for fr in frontiers
        ]
        assert shared == direct

    @pytest.mark.parametrize(
        "text,query",
        [
            ("CCAAAACACAACCAACAACAACCCCCAA", "A" * 12),
            ("ACACAAAAAAACACACCCCAACAACACACACCAAAACCCCCAA", "A" * 14),
            ("AACCCACAAAAAAACCACCCCCCAAAAACACCC", "A" * 13),
        ],
    )
    def test_engine_no_phantom_hits_past_query_end(self, text, query):
        # End-to-end repro: with the old bound each of these searches
        # reported a phantom hit with p_end == len(query) + 1.
        scheme = ScoringScheme(5, -5, -4, -2)  # sa = 5 > -ss = 2
        sw = smith_waterman_all_hits(text, query, scheme, 1)
        res = ALAE(text, DNA, scheme, use_reuse=True).search(query, threshold=1)
        assert res.hits.as_score_set() == sw.as_score_set()
        assert all(hit.p_end <= len(query) for hit in res.hits)

    @pytest.mark.parametrize("seed", range(8))
    def test_property_reuse_on_off_equivalence_random_schemes(self, seed):
        # Random schemes *including* sa > -ss, near-periodic queries (the
        # fork-collision regime), reuse on vs off vs Smith-Waterman.
        rng = np.random.default_rng(seed)
        sa = int(rng.integers(1, 6))
        scheme = ScoringScheme(
            sa,
            -int(rng.integers(1, 6)),
            -int(rng.integers(1, 6)),
            -int(rng.integers(1, max(2, sa + 1))),  # biased towards -ss <= sa
        )
        n = int(rng.integers(20, 90))
        text = "".join(DNA.chars[c] for c in rng.integers(0, 2, n))
        period = int(rng.integers(1, 4))
        m = int(rng.integers(6, 18))
        query = (("ACG"[:period]) * m)[:m]
        for threshold in (1, 2, scheme.sa + 1):
            sw = smith_waterman_all_hits(text, query, scheme, threshold)
            on = ALAE(text, DNA, scheme, use_reuse=True).search(
                query, threshold=threshold
            )
            off = ALAE(text, DNA, scheme, use_reuse=False).search(
                query, threshold=threshold
            )
            assert on.hits.as_score_set() == sw.as_score_set()
            assert off.hits.as_score_set() == sw.as_score_set()
            assert all(hit.p_end <= len(query) for hit in on.hits)


class TestReuseEngineEquivalence:
    def _advance_all(self, frontiers, char, query, enabled):
        engine = ReuseEngine(enabled=enabled)
        counter = CostCounter()
        out = engine.advance_forks(
            list(frontiers), char, query, len(query), DEFAULT_SCHEME, 0, counter
        )
        return out, engine

    def test_memo_matches_direct(self):
        query = "GCTAGCTAGCTAGCTAGG"
        # Two identical forks shifted by the repeat period, one different.
        frontiers = [
            {4: (10, NEG), 5: (4, NEG)},
            {8: (10, NEG), 9: (4, NEG)},
            {3: (6, NEG)},
        ]
        with_memo, engine = self._advance_all(frontiers, "G", query, True)
        without, _ = self._advance_all(frontiers, "G", query, False)
        assert with_memo == without
        assert engine.memo_hits == 1
        assert engine.reused_cells == len(with_memo[1])

    def test_disabled_engine_never_reuses(self):
        query = "GCTAGCTA"
        frontiers = [{2: (10, NEG)}, {6: (10, NEG)}]
        _out, engine = self._advance_all(frontiers, "G", query, False)
        assert engine.reused_cells == 0
        assert engine.memo_hits == 0

    def test_dead_fork_passthrough(self):
        out, _ = self._advance_all([{}, {2: (5, NEG)}], "G", "GCTAGCTA", True)
        assert out[0] == {}

    def test_search_results_identical_with_and_without_reuse(self):
        rng = np.random.default_rng(8)
        # Tandem query maximizes duplicate forks.
        text = "".join("ACGT"[int(c)] for c in rng.integers(0, 4, 300))
        query = ("GCTA" * 6) + text[40:60] + ("GCTA" * 6)
        sw = smith_waterman_all_hits(text, query, DEFAULT_SCHEME, 6)
        with_r = ALAE(text, use_reuse=True).search(query, threshold=6)
        without = ALAE(text, use_reuse=False).search(query, threshold=6)
        assert with_r.hits.as_score_set() == sw.as_score_set()
        assert without.hits.as_score_set() == sw.as_score_set()

    def test_repetitive_query_reuses_entries(self):
        # Query made of one repeated unit against a text containing the unit:
        # forks at every period are identical -> reuse must trigger.
        unit = "GCATTCGA"
        text = ("AACGTTGCA" * 10) + unit * 3 + ("TTGACGGAT" * 10)
        query = unit * 8
        res = ALAE(text, use_reuse=True).search(query, threshold=10)
        assert res.stats.reused > 0
        assert res.stats.reusing_ratio > 0

    def test_reusing_ratio_bounds(self):
        text = "GCTA" * 40
        query = "GCTA" * 10
        res = ALAE(text, use_reuse=True).search(query, threshold=8)
        assert 0.0 <= res.stats.reusing_ratio < 1.0
        assert res.stats.accessed == res.stats.calculated + res.stats.reused
