"""The durable control plane: catalog, request log, spans, replay.

Covers the observability subsystem end to end: SQLite catalog schema and
its v1 -> v2 migration, store registration/verification (including
deliberate corruption), the lock-free request log, trace-span plumbing
through the service layers, and deterministic workload replay.
"""

import json
import sqlite3
import time

import numpy as np
import pytest

from repro import IndexStore, SearchService, ShardedStore, genome
from repro.align.types import SearchStats
from repro.io.database import SequenceDatabase
from repro.io.fasta import FastaRecord
from repro.obs import (
    Catalog,
    CatalogError,
    RequestLog,
    ReplayError,
    ReplayPlan,
    SCHEMA_VERSION,
    add_span,
    apply_migrations,
    connect,
    format_spans,
    maybe_record_bench,
    maybe_register_build,
    query_hash,
    replay_plan,
    shard_seconds,
    shard_span,
    synthesize_queries,
)
from repro.obs.reqlog import REQUEST_COLUMNS
from repro.service.sharded import ShardedSearchService

THRESHOLD = 30


@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    """A small database, a saved store, and a sharded manifest."""
    root = tmp_path_factory.mktemp("obs")
    rng = np.random.default_rng(23)
    records = [
        FastaRecord(f"chr{i}", genome(3_000 + 400 * i, rng)) for i in range(1, 4)
    ]
    database = SequenceDatabase(records)
    mono = root / "db.idx"
    IndexStore.build(database).save(mono)
    sharded = root / "db.shards"
    ShardedStore.build(database, sharded, shards=2)
    return {"root": root, "database": database, "mono": mono, "sharded": sharded}


def _log_requests(path, rows):
    """Write rows through the real log so tests exercise the writer thread."""
    with RequestLog(path, flush_interval=0.01) as log:
        for row in rows:
            log.record(row)
        deadline = time.monotonic() + 5.0
        while log.pending and time.monotonic() < deadline:
            time.sleep(0.01)


def _request_row(
    length=60,
    mode="exact",
    threshold=THRESHOLD,
    e_value=None,
    top_k=None,
    latency=0.01,
    status="ok",
):
    return (
        1.0,
        query_hash("A" * length),
        length,
        mode,
        threshold,
        e_value,
        top_k,
        latency,
        0,
        1,
        None,
        1,
        status,
    )


class TestCatalog:
    def test_register_store_records_layout(self, corpus, tmp_path):
        with Catalog(tmp_path / "cat.db") as cat:
            store_id = cat.register_store(corpus["mono"], build_seconds=1.25)
            row = cat.store(store_id)
            assert row["kind"] == "store"
            assert row["records"] == 3
            assert row["total_length"] == sum(
                len(r.sequence) for r in corpus["database"].records
            )
            assert row["build_seconds"] == pytest.approx(1.25)
            # shard rows describe manifests only; a monolith has none
            assert cat.shards(store_id) == []

    def test_reregister_same_identity_upserts(self, corpus, tmp_path):
        with Catalog(tmp_path / "cat.db") as cat:
            first = cat.register_store(corpus["mono"])
            second = cat.register_store(corpus["mono"], build_seconds=2.0)
            assert first == second
            assert len(cat.stores()) == 1
            # COALESCE keeps the measured build time once it is known.
            assert cat.store(first)["build_seconds"] == pytest.approx(2.0)

    def test_register_sharded_manifest(self, corpus, tmp_path):
        with Catalog(tmp_path / "cat.db") as cat:
            store_id = cat.register_store(corpus["sharded"])
            row = cat.store(store_id)
            assert row["kind"] == "manifest"
            assert row["shard_count"] == 2
            assert len(cat.shards(store_id)) == 2

    def test_verify_all_clean(self, corpus, tmp_path):
        with Catalog(tmp_path / "cat.db") as cat:
            cat.register_store(corpus["mono"])
            cat.register_store(corpus["sharded"])
            assert cat.verify_all() == []

    def test_verify_all_detects_corruption(self, corpus, tmp_path):
        copy = tmp_path / "corrupt.idx"
        payload = bytearray(corpus["mono"].read_bytes())
        with Catalog(tmp_path / "cat.db") as cat:
            copy.write_bytes(bytes(payload))
            cat.register_store(copy)
            payload[len(payload) // 2] ^= 0xFF
            copy.write_bytes(bytes(payload))
            problems = cat.verify_all()
            assert problems
            assert any("corrupt.idx" in p for p in problems)

    def test_verify_all_detects_missing_file(self, corpus, tmp_path):
        copy = tmp_path / "gone.idx"
        copy.write_bytes(corpus["mono"].read_bytes())
        with Catalog(tmp_path / "cat.db") as cat:
            cat.register_store(copy)
            copy.unlink()
            problems = cat.verify_all()
            assert problems and any("gone.idx" in p for p in problems)

    def test_record_bench_auto_registers(self, corpus, tmp_path):
        with Catalog(tmp_path / "cat.db") as cat:
            bench_id = cat.record_bench(
                "smoke", {"qps": 12.5}, store_path=corpus["mono"]
            )
            rows = cat.benchmarks()
            assert [r["bench_id"] for r in rows] == [bench_id]
            assert json.loads(rows[0]["metrics"]) == {"qps": 12.5}
            # The store it names was registered on the fly.
            assert cat.store_id_for(corpus["mono"]) is not None

    def test_env_gated_helpers_noop_without_catalog(
        self, corpus, monkeypatch
    ):
        monkeypatch.delenv("REPRO_CATALOG", raising=False)
        assert maybe_register_build(corpus["mono"]) is None
        assert maybe_record_bench("noop", {}) is None

    def test_env_gated_helpers_write_when_set(
        self, corpus, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CATALOG", str(tmp_path / "env.db"))
        store_id = maybe_register_build(corpus["mono"], build_seconds=0.5)
        bench_id = maybe_record_bench("env", {"ok": True})
        assert store_id is not None and bench_id is not None
        with Catalog(tmp_path / "env.db") as cat:
            assert cat.store(store_id)["build_seconds"] == pytest.approx(0.5)


class TestMigration:
    def test_fresh_catalog_is_current_version(self, tmp_path):
        with Catalog(tmp_path / "cat.db") as cat:
            assert cat.schema_version == SCHEMA_VERSION

    def test_v1_upgrades_to_v2_preserving_rows(self, corpus, tmp_path):
        path = tmp_path / "old.db"
        conn = connect(path)
        assert apply_migrations(conn, upto=1) == 1
        columns = [
            r[1] for r in conn.execute("PRAGMA table_info(stores)").fetchall()
        ]
        assert "build_seconds" not in columns
        with conn:
            conn.execute(
                "INSERT INTO stores (path, kind, fingerprint, identity_crc, "
                "records, total_length, shard_count, file_bytes, created_utc) "
                "VALUES (?, 'store', 'fp', 1, 3, 9000, 1, 100, 't')",
                (str(corpus["mono"]),),
            )
        conn.close()

        with Catalog(path) as cat:  # opening migrates v1 -> v2
            assert cat.schema_version == SCHEMA_VERSION
            rows = cat.stores()
            assert len(rows) == 1
            assert rows[0]["fingerprint"] == "fp"
            assert rows[0]["build_seconds"] is None  # new column backfills NULL
            # The v2 benchmarks table exists and is usable post-migration.
            cat.record_bench("post-migration", {"ok": 1})
            assert len(cat.benchmarks()) == 1

    def test_newer_schema_refused(self, tmp_path):
        path = tmp_path / "future.db"
        conn = connect(path)
        apply_migrations(conn)
        with conn:
            conn.execute("PRAGMA user_version = 99")
        conn.close()
        with pytest.raises(CatalogError, match="newer"):
            Catalog(path)


class TestRequestLog:
    def test_rows_drain_to_sqlite(self, tmp_path):
        path = tmp_path / "cat.db"
        rows = [_request_row(length=40 + i) for i in range(5)]
        _log_requests(path, rows)
        with Catalog(path) as cat:
            assert cat.request_count() == 5

    def test_counters_and_column_order(self, tmp_path):
        path = tmp_path / "cat.db"
        with RequestLog(path, flush_interval=0.01) as log:
            log.record(_request_row())
            deadline = time.monotonic() + 5.0
            while log.pending and time.monotonic() < deadline:
                time.sleep(0.01)
            counters = log.counters()
        assert counters["written"] == 1
        assert counters["dropped"] == 0
        conn = sqlite3.connect(path)
        names = [
            r[1] for r in conn.execute("PRAGMA table_info(requests)").fetchall()
        ]
        conn.close()
        assert [c for c in REQUEST_COLUMNS if c in names] == list(REQUEST_COLUMNS)

    def test_bounded_drop_over_max_pending(self, tmp_path):
        log = RequestLog(
            tmp_path / "cat.db", flush_interval=60.0, max_pending=3
        )
        try:
            for _ in range(10):
                log.record(_request_row())
            assert log.dropped >= 7  # writer may drain a few before the cap
        finally:
            log.close()

    def test_query_hash_is_stable_and_short(self):
        assert query_hash("ACGT") == query_hash("ACGT")
        assert query_hash("ACGT") != query_hash("ACGA")
        assert len(query_hash("ACGT")) == 16
        int(query_hash("ACGT"), 16)  # hex


class TestSpans:
    def test_add_span_accumulates(self):
        spans = {}
        add_span(spans, "engine", 0.25)
        add_span(spans, "engine", 0.5)
        assert spans["engine"] == pytest.approx(0.75)

    def test_stats_merge_sums_spans(self):
        left = SearchStats(spans={"engine": 0.1, "locate": 0.01})
        right = SearchStats(spans={"engine": 0.2, "merge": 0.05})
        left.merge(right)
        assert left.spans["engine"] == pytest.approx(0.3)
        assert left.spans["locate"] == pytest.approx(0.01)
        assert left.spans["merge"] == pytest.approx(0.05)

    def test_shard_seconds_ordering(self):
        spans = {shard_span(2): 0.3, shard_span(0): 0.1, "engine": 9.0}
        assert shard_seconds(spans) == [0.1, 0.3]
        assert shard_seconds({"engine": 1.0}) == []

    def test_format_spans_stable(self):
        text = format_spans({"locate": 0.001, "engine": 0.002})
        assert text == "engine=2.000ms locate=1.000ms"

    def test_service_search_populates_spans(self, corpus):
        service = SearchService(store=corpus["mono"])
        sequence = corpus["database"].records[0].sequence[100:160]
        result = service.search(sequence, threshold=THRESHOLD)
        assert "engine" in result.stats.spans
        assert result.stats.spans["engine"] >= 0.0
        assert "locate" in result.stats.spans

    def test_sharded_search_attributes_shards(self, corpus):
        service = ShardedSearchService(corpus["sharded"])
        sequence = corpus["database"].records[0].sequence[100:160]
        result = service.search(sequence, threshold=THRESHOLD)
        assert "merge" in result.stats.spans
        assert len(shard_seconds(result.stats.spans)) == 2


class TestReplayPlan:
    def _catalog_with_traffic(self, tmp_path, name="cat.db"):
        path = tmp_path / name
        rows = [
            _request_row(length=40, mode="exact"),
            _request_row(length=40, mode="exact"),
            _request_row(length=60, mode="fast", threshold=None, e_value=5.0),
            _request_row(length=80, mode="verified", top_k=3),
            _request_row(length=200, status="error"),  # must be excluded
        ]
        _log_requests(path, rows)
        return path

    def test_same_seed_byte_identical(self, tmp_path):
        path = self._catalog_with_traffic(tmp_path)
        one = ReplayPlan.from_catalog(path, seed=7)
        two = ReplayPlan.from_catalog(path, seed=7)
        assert one.to_json() == two.to_json()

    def test_different_seed_differs(self, tmp_path):
        path = self._catalog_with_traffic(tmp_path)
        one = ReplayPlan.from_catalog(path, seed=1, count=16)
        two = ReplayPlan.from_catalog(path, seed=2, count=16)
        assert one.to_json() != two.to_json()

    def test_round_trips_through_json(self, tmp_path):
        path = self._catalog_with_traffic(tmp_path)
        plan = ReplayPlan.from_catalog(path, seed=3, count=8)
        again = ReplayPlan.from_json(plan.to_json())
        assert again.to_json() == plan.to_json()
        assert again.events == plan.events

    def test_mix_reflects_log_not_errors(self, tmp_path):
        path = self._catalog_with_traffic(tmp_path)
        plan = ReplayPlan.from_catalog(path, seed=0, count=64)
        lengths = {e.length for e in plan.events}
        assert lengths <= {40, 60, 80}  # the error row's 200 never drawn
        modes = {e.mode for e in plan.events}
        assert modes <= {"exact", "fast", "verified"}

    def test_empty_log_refused(self, tmp_path):
        with Catalog(tmp_path / "empty.db"):
            pass
        with pytest.raises(ReplayError, match="request log is empty"):
            ReplayPlan.from_catalog(tmp_path / "empty.db")

    def test_synthesized_queries_deterministic_substrings(self, tmp_path):
        path = self._catalog_with_traffic(tmp_path)
        plan = ReplayPlan.from_catalog(path, seed=5, count=6)
        text = genome(2_000, np.random.default_rng(3))
        one = synthesize_queries(plan, text)
        two = synthesize_queries(plan, text)
        assert one == two
        for event, query in zip(plan.events, one):
            assert len(query) == event.length
            assert query in text

    def test_replay_against_local_service(self, corpus, tmp_path):
        path = self._catalog_with_traffic(tmp_path)
        plan = ReplayPlan.from_catalog(path, seed=11, count=4)
        service = SearchService(store=corpus["mono"])
        report = replay_plan(plan, service=service)
        assert report.queries == 4
        assert report.errors == 0
        assert set(report.latency) == {"p50", "p90", "p99"}
        assert sum(report.mode_counts.values()) == 4
        assert "replayed 4 queries" in report.format()

    def test_replay_sharded_names_hottest_shard(self, corpus, tmp_path):
        path = self._catalog_with_traffic(tmp_path)
        plan = ReplayPlan.from_catalog(path, seed=13, count=4)
        service = ShardedSearchService(corpus["sharded"])
        text = corpus["database"].text
        report = replay_plan(plan, service=service, text=text)
        assert set(report.per_shard) == {0, 1}
        assert report.hottest_shard in (0, 1)
        assert "<- hottest" in report.format()

    def test_replay_requires_exactly_one_target(self, corpus, tmp_path):
        path = self._catalog_with_traffic(tmp_path)
        plan = ReplayPlan.from_catalog(path, seed=0, count=1)
        with pytest.raises(ReplayError, match="either service"):
            replay_plan(plan)
        with pytest.raises(ReplayError, match="either service"):
            replay_plan(
                plan, service=SearchService(store=corpus["mono"]),
                host="127.0.0.1", port=1,
            )
