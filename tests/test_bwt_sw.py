"""BWT-SW engine specifics: pruning, constraint, threshold resolution."""

import numpy as np
import pytest

from repro import BwtSw, DEFAULT_SCHEME, DNA, ScoringScheme, smith_waterman_all_hits
from repro.align.bwt_sw import resolve_threshold
from repro.errors import SearchError


class TestResolveThreshold:
    def test_explicit_threshold(self):
        assert resolve_threshold(7, None, DEFAULT_SCHEME, 4, 10, 100) == 7

    def test_both_rejected(self):
        with pytest.raises(SearchError):
            resolve_threshold(7, 10.0, DEFAULT_SCHEME, 4, 10, 100)

    def test_default_evalue_is_ten(self):
        # No threshold and no E-value -> the BLAST/BWT-SW default E = 10.
        h_default = resolve_threshold(None, None, DEFAULT_SCHEME, 4, 1000, 10**6)
        h_ten = resolve_threshold(None, 10.0, DEFAULT_SCHEME, 4, 1000, 10**6)
        assert h_default == h_ten

    def test_threshold_below_one_rejected(self):
        with pytest.raises(SearchError):
            resolve_threshold(0, None, DEFAULT_SCHEME, 4, 10, 100)


class TestStrictConstraint:
    def test_strict_rejects_weak_mismatch(self):
        # Sec. 2.4: "BWT-SW requires |sb| >= 3 |sa|".
        with pytest.raises(SearchError):
            BwtSw("ACGT", scheme=ScoringScheme(1, -1, -5, -2), strict=True)

    def test_strict_accepts_default(self):
        BwtSw("ACGT", scheme=DEFAULT_SCHEME, strict=True)

    def test_lenient_accepts_any(self):
        BwtSw("ACGT", scheme=ScoringScheme(1, -1, -5, -2), strict=False)


class TestPruning:
    def test_no_hits_on_disjoint_alphabet_halves(self):
        res = BwtSw("AAAAAAAA").search("CCCCCCCC", threshold=1)
        assert len(res.hits) == 0

    def test_entry_cost_is_x3(self):
        res = BwtSw("GCTAGCTAGCAT").search("GCTAG", threshold=3)
        assert res.stats.calculated_x1 == 0
        assert res.stats.calculated_x2 == 0
        assert res.stats.computation_cost == 3 * res.stats.calculated

    def test_dense_first_row_accounting(self):
        # Every root character present in the text charges m dense cells.
        text, query = "GCTAGCAT", "GCTAG"
        res = BwtSw(text).search(query, threshold=3)
        roots = len(set(text))
        assert res.stats.calculated >= roots * len(query)

    def test_never_reuses(self):
        res = BwtSw("GCTA" * 20).search("GCTAGCTA", threshold=4)
        assert res.stats.reused == 0
        assert res.stats.reusing_ratio == 0.0

    def test_nodes_visited_positive(self):
        res = BwtSw("GCTAGCAT").search("GCTAG", threshold=3)
        assert res.stats.nodes_visited > 0


class TestExactness:
    def test_matches_sw_on_protein_like(self, rng):
        text = "".join("ACDE"[int(c)] for c in rng.integers(0, 4, 120))
        query = "".join("ACDE"[int(c)] for c in rng.integers(0, 4, 18))
        from repro import PROTEIN

        for threshold in (2, 5):
            sw = smith_waterman_all_hits(text, query, DEFAULT_SCHEME, threshold)
            bw = BwtSw(text, PROTEIN).search(query, threshold=threshold)
            assert bw.hits.as_score_set() == sw.as_score_set()

    def test_finds_gapped_alignment(self):
        block1, block2 = "ACGTCAACGTCA", "TGCATCTGCATC"
        text = block1 + "GG" + block2
        res = BwtSw(text).search(block1 + block2, threshold=3)
        assert res.hits.score_of(len(text), 24) == 24 - 9

    def test_elapsed_recorded(self):
        res = BwtSw("GCTAGCAT").search("GCTAG", threshold=3)
        assert res.stats.elapsed_seconds > 0
