"""ALAE engine edge cases and API contract checks."""

import pytest

from repro import ALAE, DEFAULT_SCHEME, DNA, PROTEIN, ScoringScheme
from repro.align.recurrences import NEG, CostCounter
from repro.align.smith_waterman import smith_waterman_all_hits
from repro.align.types import START_UNKNOWN, Hit, ResultSet, SearchStats
from repro.core.filters import make_filter_plan
from repro.core.forks import GAP, Fork
from repro.core.reuse import ReuseEngine
from repro.errors import AlphabetError, SearchError


class TestInputValidation:
    def test_text_validated(self):
        with pytest.raises(AlphabetError):
            ALAE("ACGU")

    def test_query_validated(self):
        engine = ALAE("ACGT")
        with pytest.raises(AlphabetError):
            engine.search("ACGU", threshold=2)

    def test_threshold_and_evalue_conflict(self):
        engine = ALAE("ACGTACGT")
        with pytest.raises(SearchError):
            engine.search("ACGT", threshold=3, e_value=10.0)

    def test_zero_threshold_rejected(self):
        engine = ALAE("ACGTACGT")
        with pytest.raises(SearchError):
            engine.search("ACGT", threshold=0)


class TestDegenerateQueries:
    def test_query_shorter_than_q_high_threshold(self):
        # m = 2 < q = 4 and H = 3 > m * sa: nothing can reach the threshold.
        engine = ALAE("GCTAGCTA")
        assert len(engine.search("GC", threshold=3).hits) == 0

    def test_query_shorter_than_q_low_threshold(self):
        # m = 2, H = 2: the exact 2-gram matches are the full answer.
        engine = ALAE("GCTAGCTA")
        res = engine.search("GC", threshold=2)
        sw = smith_waterman_all_hits("GCTAGCTA", "GC", DEFAULT_SCHEME, 2)
        assert res.hits.as_score_set() == sw.as_score_set()
        assert len(res.hits) == 2

    def test_unreachable_threshold(self):
        engine = ALAE("GCTAGCTA")
        res = engine.search("GCTA", threshold=100)
        assert len(res.hits) == 0

    def test_query_chars_absent_from_text(self):
        engine = ALAE("AAAAAAAA")
        res = engine.search("CGTCGT", threshold=2)
        assert len(res.hits) == 0

    def test_single_char_text(self):
        engine = ALAE("A")
        res = engine.search("A", threshold=1)
        assert res.hits.as_score_set() == {(1, 1, 1)}


class TestEngineLifecycle:
    def test_engine_reusable_across_searches(self):
        text = "GCTAGCTAGCATGCAT"
        engine = ALAE(text)
        first = engine.search("GCTAG", threshold=4)
        second = engine.search("GCAT", threshold=4)
        third = engine.search("GCTAG", threshold=4)
        assert first.hits.as_score_set() == third.hits.as_score_set()
        assert len(second.hits) > 0

    def test_domination_cache_per_q(self):
        engine = ALAE("GCTAGCTAGCAT")
        a = engine.domination_index(3)
        b = engine.domination_index(3)
        c = engine.domination_index(4)
        assert a is b
        assert a is not c

    def test_searches_with_different_schemes_need_new_engine(self):
        # Scheme is fixed at construction; verify two engines differ.
        text = "GCTAGCTAGCAT"
        default = ALAE(text).search("GCTAG", threshold=2)
        harsh = ALAE(text, scheme=ScoringScheme(1, -4, -5, -2)).search(
            "GCTAG", threshold=2
        )
        sw_default = smith_waterman_all_hits(text, "GCTAG", DEFAULT_SCHEME, 2)
        sw_harsh = smith_waterman_all_hits(
            text, "GCTAG", ScoringScheme(1, -4, -5, -2), 2
        )
        assert default.hits.as_score_set() == sw_default.as_score_set()
        assert harsh.hits.as_score_set() == sw_harsh.as_score_set()

    def test_index_size_reporting(self):
        engine = ALAE("GCTAGCTAGCAT" * 10)
        sizes = engine.index_size_bytes()
        assert sizes["total"] == sizes["bwt_index"] + sizes["dominate_index"]
        no_dom = ALAE("GCTAGCTAGCAT" * 10, use_domination=False)
        assert no_dom.index_size_bytes()["dominate_index"] == 0


class TestMaterialize:
    def test_alignment_reaches_hit_score(self):
        text = "TTTT" + "GATTACAGATTACA" + "TTTT"
        engine = ALAE(text)
        res = engine.search("GATTACAGATTACA", threshold=10)
        best = res.hits.best()
        alignment = engine.materialize(best, "GATTACAGATTACA")
        assert alignment.score >= best.score

    def test_protein_materialize(self):
        text = PROTEIN.chars * 3
        engine = ALAE(text, alphabet=PROTEIN, scheme=ScoringScheme(1, -3, -11, -1))
        res = engine.search(PROTEIN.chars[:10], threshold=6)
        best = res.hits.best()
        assert best is not None
        alignment = engine.materialize(best, PROTEIN.chars[:10])
        assert alignment.score >= best.score

    def test_double_gapped_hit_recovers_full_score(self):
        """Regression: two insertion runs overflow the old ``+ |sg|`` pad.

        The query carries two 4-char insertions, so its aligned region is 8
        chars longer than the text side; the single-shot window (text span
        plus one |sg|) truncated the query start and recovered score 32 for
        a score-34 hit.
        """
        import numpy as np

        from repro import genome

        rng = np.random.default_rng(7)
        text = genome(60, rng)
        query = text[:20] + "AAAA" + text[20:40] + "CCCC" + text[40:60]
        engine = ALAE(text)
        best = engine.search(query, threshold=30).hits.best()
        assert best is not None
        assert best.score == 34  # 60 matches minus two (sg + 4*ss) gap runs
        alignment = engine.materialize(best, query)
        assert alignment.score >= best.score
        assert alignment.ops.count("I") == 8  # both insertion runs survive


class TestPhantomColumnGuard:
    """Defense in depth: frontier cells past column m must never be hits.

    The reuse-key fix stops bad shifted copies at the source, but a phantom
    column that somehow reaches a GAP frontier must still be dropped at
    emission time rather than reported as a hit with ``p_end > len(query)``.
    """

    class _PhantomReuse:
        """A reuse engine returning a copy with columns past the query end.

        Emulates the pre-fix Sec. 4 failure mode: a truncation-divergent
        shifted copy whose tail extends beyond column ``m``.
        """

        enabled = True

        def __init__(self, m):
            self.m = m

        def advance_forks(self, frontiers, *args, **kwargs):
            return [
                {self.m: (6, NEG), self.m + 1: (6, NEG)} for _ in frontiers
            ]

    def test_scalar_gap_emission_guards_p_end(self):
        text = "GCTAGCTAGCAT"
        query = "GCTAG"
        engine = ALAE(text, use_vectorized=False)
        m = len(query)
        plan = make_filter_plan(engine.scheme, m, 3)
        results = ResultSet()
        gap_fork = Fork(pip=1, phase=GAP, frontier={3: (5, NEG)})
        engine._advance_forks(
            [gap_fork], "C", query, 3, plan, 3, CostCounter("alae"),
            self._PhantomReuse(m), engine.csa.range_of("G"), results,
            SearchStats(), None,
        )
        hits = results.hits()
        assert len(hits) > 0  # the in-range cell at column m is reported
        assert all(hit.p_end <= m for hit in hits)

    def test_search_never_reports_past_query_end(self):
        # End-to-end sweep over both engines on a hit-dense configuration.
        text = "AACCAAACCCAAAACCCCAAAAA"
        query = "AAAA"
        for vec in (False, True):
            res = ALAE(text, use_vectorized=vec).search(query, threshold=1)
            assert len(res.hits) > 0
            assert all(hit.p_end <= len(query) for hit in res.hits)


class TestMaterializeStartSentinel:
    """Regression: start-unknown hits must be detected by explicit sentinel.

    ``hit.t_start if hit.t_start else ...`` conflated the 0 sentinel with
    falsiness — the exact pattern PR 3 eradicated from ``locate_hit``.  The
    window fallback must trigger exactly on ``t_start == START_UNKNOWN``.
    """

    def test_start_unknown_hit_materializes(self):
        text = "TTTT" + "GATTACAGATTACA" + "TTTT"
        query = "GATTACAGATTACA"
        engine = ALAE(text)
        best = engine.search(query, threshold=10).hits.best()
        assert best is not None and best.t_start != START_UNKNOWN
        # Strip the start: the engine must fall back to the pessimistic
        # window and still recover the full alignment score.
        unknown = Hit(
            t_end=best.t_end, p_end=best.p_end, score=best.score,
            t_start=START_UNKNOWN,
        )
        alignment = engine.materialize(unknown, query)
        assert alignment.score >= best.score

    def test_known_start_uses_tight_window(self):
        text = "A" * 30 + "GATTACA" + "C" * 30
        engine = ALAE(text)
        best = engine.search("GATTACA", threshold=6).hits.best()
        assert best is not None
        assert best.t_start == 31
        alignment = engine.materialize(best, "GATTACA")
        assert alignment.score >= best.score


class TestVectorizedToggleContract:
    def test_toggle_exposed_and_default_on(self):
        engine = ALAE("GCTAGCTA")
        assert engine.use_vectorized is True
        ref = ALAE("GCTAGCTA", use_vectorized=False)
        assert ref.use_vectorized is False

    def test_from_prebuilt_carries_toggle(self):
        engine = ALAE("GCTAGCTAGCAT")
        rebuilt = ALAE.from_prebuilt(engine.csa, use_vectorized=False)
        assert rebuilt.use_vectorized is False
        a = rebuilt.search("GCTAG", threshold=4)
        b = engine.search("GCTAG", threshold=4)
        assert a.hits.hits() == b.hits.hits()


class TestStatsContract:
    def test_elapsed_and_nodes(self):
        engine = ALAE("GCTAGCTAGCATGCAT")
        stats = engine.search("GCTAG", threshold=4).stats
        assert stats.elapsed_seconds > 0
        assert stats.nodes_visited >= 0
        assert stats.forks_seeded >= 1

    def test_emr_assigned_counts(self):
        # Each seeded fork assigns q EMR cells without calculating them.
        engine = ALAE("GCTAGCTAGCAT")
        stats = engine.search("GCTAG", threshold=4).stats
        assert stats.emr_assigned >= 4 * stats.forks_seeded
