"""ALAE engine edge cases and API contract checks."""

import pytest

from repro import ALAE, DEFAULT_SCHEME, DNA, PROTEIN, ScoringScheme
from repro.align.smith_waterman import smith_waterman_all_hits
from repro.errors import AlphabetError, SearchError


class TestInputValidation:
    def test_text_validated(self):
        with pytest.raises(AlphabetError):
            ALAE("ACGU")

    def test_query_validated(self):
        engine = ALAE("ACGT")
        with pytest.raises(AlphabetError):
            engine.search("ACGU", threshold=2)

    def test_threshold_and_evalue_conflict(self):
        engine = ALAE("ACGTACGT")
        with pytest.raises(SearchError):
            engine.search("ACGT", threshold=3, e_value=10.0)

    def test_zero_threshold_rejected(self):
        engine = ALAE("ACGTACGT")
        with pytest.raises(SearchError):
            engine.search("ACGT", threshold=0)


class TestDegenerateQueries:
    def test_query_shorter_than_q_high_threshold(self):
        # m = 2 < q = 4 and H = 3 > m * sa: nothing can reach the threshold.
        engine = ALAE("GCTAGCTA")
        assert len(engine.search("GC", threshold=3).hits) == 0

    def test_query_shorter_than_q_low_threshold(self):
        # m = 2, H = 2: the exact 2-gram matches are the full answer.
        engine = ALAE("GCTAGCTA")
        res = engine.search("GC", threshold=2)
        sw = smith_waterman_all_hits("GCTAGCTA", "GC", DEFAULT_SCHEME, 2)
        assert res.hits.as_score_set() == sw.as_score_set()
        assert len(res.hits) == 2

    def test_unreachable_threshold(self):
        engine = ALAE("GCTAGCTA")
        res = engine.search("GCTA", threshold=100)
        assert len(res.hits) == 0

    def test_query_chars_absent_from_text(self):
        engine = ALAE("AAAAAAAA")
        res = engine.search("CGTCGT", threshold=2)
        assert len(res.hits) == 0

    def test_single_char_text(self):
        engine = ALAE("A")
        res = engine.search("A", threshold=1)
        assert res.hits.as_score_set() == {(1, 1, 1)}


class TestEngineLifecycle:
    def test_engine_reusable_across_searches(self):
        text = "GCTAGCTAGCATGCAT"
        engine = ALAE(text)
        first = engine.search("GCTAG", threshold=4)
        second = engine.search("GCAT", threshold=4)
        third = engine.search("GCTAG", threshold=4)
        assert first.hits.as_score_set() == third.hits.as_score_set()
        assert len(second.hits) > 0

    def test_domination_cache_per_q(self):
        engine = ALAE("GCTAGCTAGCAT")
        a = engine.domination_index(3)
        b = engine.domination_index(3)
        c = engine.domination_index(4)
        assert a is b
        assert a is not c

    def test_searches_with_different_schemes_need_new_engine(self):
        # Scheme is fixed at construction; verify two engines differ.
        text = "GCTAGCTAGCAT"
        default = ALAE(text).search("GCTAG", threshold=2)
        harsh = ALAE(text, scheme=ScoringScheme(1, -4, -5, -2)).search(
            "GCTAG", threshold=2
        )
        sw_default = smith_waterman_all_hits(text, "GCTAG", DEFAULT_SCHEME, 2)
        sw_harsh = smith_waterman_all_hits(
            text, "GCTAG", ScoringScheme(1, -4, -5, -2), 2
        )
        assert default.hits.as_score_set() == sw_default.as_score_set()
        assert harsh.hits.as_score_set() == sw_harsh.as_score_set()

    def test_index_size_reporting(self):
        engine = ALAE("GCTAGCTAGCAT" * 10)
        sizes = engine.index_size_bytes()
        assert sizes["total"] == sizes["bwt_index"] + sizes["dominate_index"]
        no_dom = ALAE("GCTAGCTAGCAT" * 10, use_domination=False)
        assert no_dom.index_size_bytes()["dominate_index"] == 0


class TestMaterialize:
    def test_alignment_reaches_hit_score(self):
        text = "TTTT" + "GATTACAGATTACA" + "TTTT"
        engine = ALAE(text)
        res = engine.search("GATTACAGATTACA", threshold=10)
        best = res.hits.best()
        alignment = engine.materialize(best, "GATTACAGATTACA")
        assert alignment.score >= best.score

    def test_protein_materialize(self):
        text = PROTEIN.chars * 3
        engine = ALAE(text, alphabet=PROTEIN, scheme=ScoringScheme(1, -3, -11, -1))
        res = engine.search(PROTEIN.chars[:10], threshold=6)
        best = res.hits.best()
        assert best is not None
        alignment = engine.materialize(best, PROTEIN.chars[:10])
        assert alignment.score >= best.score

    def test_double_gapped_hit_recovers_full_score(self):
        """Regression: two insertion runs overflow the old ``+ |sg|`` pad.

        The query carries two 4-char insertions, so its aligned region is 8
        chars longer than the text side; the single-shot window (text span
        plus one |sg|) truncated the query start and recovered score 32 for
        a score-34 hit.
        """
        import numpy as np

        from repro import genome

        rng = np.random.default_rng(7)
        text = genome(60, rng)
        query = text[:20] + "AAAA" + text[20:40] + "CCCC" + text[40:60]
        engine = ALAE(text)
        best = engine.search(query, threshold=30).hits.best()
        assert best is not None
        assert best.score == 34  # 60 matches minus two (sg + 4*ss) gap runs
        alignment = engine.materialize(best, query)
        assert alignment.score >= best.score
        assert alignment.ops.count("I") == 8  # both insertion runs survive


class TestStatsContract:
    def test_elapsed_and_nodes(self):
        engine = ALAE("GCTAGCTAGCATGCAT")
        stats = engine.search("GCTAG", threshold=4).stats
        assert stats.elapsed_seconds > 0
        assert stats.nodes_visited >= 0
        assert stats.forks_seeded >= 1

    def test_emr_assigned_counts(self):
        # Each seeded fork assigns q EMR cells without calculating them.
        engine = ALAE("GCTAGCTAGCAT")
        stats = engine.search("GCTAG", threshold=4).stats
        assert stats.emr_assigned >= 4 * stats.forks_seeded
