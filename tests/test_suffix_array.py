"""Suffix array construction vs the naive oracle, plus BWT round-trips."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DNA
from repro.errors import IndexError_
from repro.index.bwt import bwt_from_suffix_array, bwt_inverse, bwt_transform
from repro.index.suffix_array import suffix_array, suffix_array_naive


def codes_of(text: str) -> np.ndarray:
    return DNA.encode(text).astype(np.int64) + 1


class TestSuffixArray:
    def test_paper_example(self):
        # Sec. 2.3: SA of GCTAGC$ is {7, 4, 6, 2, 5, 1, 3} (1-based);
        # 0-based that is [6, 3, 5, 1, 4, 0, 2].
        sa = suffix_array(codes_of("GCTAGC"))
        assert sa.tolist() == [6, 3, 5, 1, 4, 0, 2]

    def test_empty_text(self):
        sa = suffix_array(np.array([], dtype=np.int64))
        assert sa.tolist() == [0]

    def test_single_char(self):
        sa = suffix_array(np.array([1]))
        assert sa.tolist() == [1, 0]

    def test_repetitive(self):
        text = "A" * 50
        sa = suffix_array(codes_of(text))
        # Suffixes of A^n sort by decreasing start position (shorter first).
        assert sa.tolist() == list(range(50, -1, -1))

    def test_matches_naive_random(self, rng):
        for _ in range(20):
            n = int(rng.integers(1, 120))
            codes = rng.integers(1, 5, n)
            assert suffix_array(codes).tolist() == suffix_array_naive(codes).tolist()

    def test_sentinel_first(self, rng):
        codes = rng.integers(1, 5, 64)
        sa = suffix_array(codes)
        assert sa[0] == 64  # the sentinel suffix is smallest

    def test_is_permutation(self, rng):
        codes = rng.integers(1, 5, 200)
        sa = suffix_array(codes)
        assert sorted(sa.tolist()) == list(range(201))

    def test_rejects_zero_codes(self):
        with pytest.raises(IndexError_):
            suffix_array(np.array([0, 1, 2]))

    def test_rejects_2d(self):
        with pytest.raises(IndexError_):
            suffix_array(np.zeros((2, 2), dtype=np.int64))

    @settings(max_examples=40, deadline=None)
    @given(st.text(alphabet="ACGT", min_size=1, max_size=60))
    def test_property_sorted_suffixes(self, text):
        sa = suffix_array(codes_of(text))
        padded = text + "$"
        suffixes = [padded[i:] for i in sa]
        # '$' sorts below every alphabet character in ASCII, matching code 0.
        assert suffixes == sorted(suffixes)


class TestBWT:
    def test_paper_example(self):
        # Sec. 2.3: BWT of GCTAGC$ is CTGGA$C.
        bwt, _sa = bwt_transform(codes_of("GCTAGC"))
        decoded = "".join("$" if c == 0 else DNA.chars[c - 1] for c in bwt)
        assert decoded == "CTGGA$C"

    def test_roundtrip_random(self, rng):
        for _ in range(15):
            codes = rng.integers(1, 5, int(rng.integers(1, 150)))
            bwt, _ = bwt_transform(codes)
            assert bwt_inverse(bwt).tolist() == codes.tolist()

    def test_one_sentinel(self, rng):
        codes = rng.integers(1, 5, 80)
        bwt, _ = bwt_transform(codes)
        assert int(np.count_nonzero(bwt == 0)) == 1

    def test_bwt_is_permutation_of_text(self, rng):
        codes = rng.integers(1, 5, 80)
        bwt, _ = bwt_transform(codes)
        assert sorted(bwt.tolist()) == sorted(codes.tolist() + [0])

    def test_from_sa_size_mismatch(self):
        with pytest.raises(IndexError_):
            bwt_from_suffix_array(np.array([1, 2]), np.array([0, 1]))

    @settings(max_examples=30, deadline=None)
    @given(st.text(alphabet="ACGT", min_size=1, max_size=80))
    def test_property_roundtrip(self, text):
        codes = codes_of(text)
        bwt, _ = bwt_transform(codes)
        assert bwt_inverse(bwt).tolist() == codes.tolist()
