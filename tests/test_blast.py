"""BLAST baseline: seeding, extension, heuristic behaviour."""

import numpy as np
import pytest

from repro import ALAE, Blast, DEFAULT_SCHEME, genome
from repro.blast.extension import ungapped_xdrop
from repro.blast.seeding import Seed, find_seeds
from repro.errors import SearchError
from repro.index.kmer_index import KmerIndex


class TestSeeding:
    def test_finds_exact_words(self):
        text = "GCTAGCTAGCAT"
        idx = KmerIndex(text, 4)
        seeds = list(find_seeds(idx, "GCTA"))
        assert {s.t_start for s in seeds} == {1, 5}
        assert all(s.q_start == 1 and s.length == 4 for s in seeds)

    def test_diagonal(self):
        assert Seed(t_start=10, q_start=3, length=4).diagonal == 7

    def test_no_seeds_for_foreign_query(self):
        idx = KmerIndex("AAAA", 2)
        assert list(find_seeds(idx, "CCCC")) == []


class TestUngappedExtension:
    def test_extends_to_full_match(self):
        text = "TTTT" + "GATTACAGATTACA" + "TTTT"
        query = "GATTACAGATTACA"
        seed = Seed(t_start=5, q_start=1, length=4)
        seg = ungapped_xdrop(text, query, seed, DEFAULT_SCHEME, x_drop=10)
        assert seg.score == len(query)
        assert (seg.t_start, seg.t_end) == (5, 18)

    def test_xdrop_stops_extension(self):
        # After the seed, pure mismatches: X-drop terminates quickly.
        text = "GATT" + "CCCCCCCCCC"
        query = "GATT" + "AAAAAAAAAA"
        seed = Seed(t_start=1, q_start=1, length=4)
        seg = ungapped_xdrop(text, query, seed, DEFAULT_SCHEME, x_drop=6)
        assert seg.score == 4
        assert seg.t_end == 4

    def test_leftward_extension(self):
        text = "GATTACA" + "GGGG"
        query = "GATTACA" + "TTTT"
        seed = Seed(t_start=4, q_start=4, length=4)
        seg = ungapped_xdrop(text, query, seed, DEFAULT_SCHEME, x_drop=10)
        assert seg.t_start == 1
        assert seg.score >= 7


class TestBlastEngine:
    def test_finds_perfect_copy(self, rng):
        text = genome(5_000, rng)
        query = text[2_000:2_100]
        res = Blast(text, word_size=11).search(query, threshold=50)
        assert len(res.hits) >= 1
        assert res.hits.best().score >= 90

    def test_heuristic_misses_vs_exact(self, rng):
        # A query whose only alignments lack an 11-char exact core is
        # invisible to BLAST but found by ALAE.
        text = genome(3_000, rng)
        fragment = list(text[1_000:1_060])
        for pos in range(5, 60, 8):  # mutation every 8 chars < word_size 11
            fragment[pos] = "A" if fragment[pos] != "A" else "C"
        query = "".join(fragment)
        h = 20
        exact = ALAE(text).search(query, threshold=h)
        blast = Blast(text, word_size=11).search(query, threshold=h)
        assert len(blast.hits) < len(exact.hits)

    def test_subset_of_exact_results(self, rng):
        # Every BLAST hit cell must also be an exact-engine hit cell
        # with at least BLAST's score (BLAST can't overcount).
        text = genome(4_000, rng)
        query = text[1_500:1_580]
        h = 30
        exact = ALAE(text).search(query, threshold=h).hits
        blast = Blast(text).search(query, threshold=h).hits
        for hit in blast:
            exact_score = exact.score_of(hit.t_end, hit.p_end)
            assert exact_score is not None and exact_score >= hit.score

    def test_word_size_sensitivity(self, rng):
        text = genome(4_000, rng)
        fragment = list(text[1_000:1_080])
        for pos in range(6, 80, 13):
            fragment[pos] = "A" if fragment[pos] != "A" else "C"
        query = "".join(fragment)
        small = Blast(text, word_size=8).search(query, threshold=25)
        large = Blast(text, word_size=13).search(query, threshold=25)
        assert len(small.hits) >= len(large.hits)

    def test_stats_exposed(self, rng):
        text = genome(2_000, rng)
        res = Blast(text).search(text[500:560], threshold=30)
        assert res.stats.extra["seeds"] > 0
        assert res.stats.extra["ungapped_extensions"] > 0

    def test_invalid_word_size(self):
        with pytest.raises(SearchError):
            Blast("ACGT", word_size=0)

    def test_gapped_alignment_found(self, rng):
        # Two exact blocks separated by a small text-side insertion: the
        # gapped extension bridges them.
        text = genome(3_000, rng)
        block = text[1_000:1_030]
        query = block + text[1_032:1_062]  # skips 2 chars of text
        res = Blast(text, word_size=11).search(query, threshold=40)
        assert res.hits.best() is not None
        assert res.hits.best().score >= 60 - 9  # 60 matches, one 2-gap
