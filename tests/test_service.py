"""SearchService: batch exactness, pooling invariance, attribution, stats."""

import numpy as np
import pytest

from repro import (
    DEFAULT_SCHEME,
    SearchService,
    genome,
    smith_waterman_all_hits,
    write_fasta,
)
from repro.io.database import SequenceDatabase
from repro.io.fasta import FastaRecord
from repro.service import Query, ServiceError


@pytest.fixture(scope="module")
def database() -> SequenceDatabase:
    rng = np.random.default_rng(11)
    records = [
        FastaRecord(header=f"chr{i}", sequence=genome(400, rng))
        for i in range(1, 4)
    ]
    return SequenceDatabase(records)


@pytest.fixture(scope="module")
def queries(database) -> list[Query]:
    text = database.text
    chr2 = database.records[1].sequence
    return [
        Query("exact", chr2[100:160]),
        Query("deletion", chr2[200:230] + chr2[236:266]),
        # Spans the chr1|chr2 concatenation boundary: its strongest raw hit
        # must be attributed to no sequence and dropped.
        Query("straddle", text[380:420]),
        Query("random", "ACGTACGTACGTACGTACGTACGTACGTAC"),
    ]


@pytest.fixture(scope="module")
def service(database) -> SearchService:
    return SearchService(database)


THRESHOLD = 30


def _hit_key(result):
    """Comparison key ignoring hit order."""
    return sorted(
        (h.sequence_id, h.t_start, h.t_end, h.p_end, h.score) for h in result.hits
    )


class TestExactness:
    def test_batch_matches_per_sequence_smith_waterman(self, database, service, queries):
        """Attributed non-boundary hits == union of per-sequence SW answers."""
        report = service.search_batch(queries, threshold=THRESHOLD)
        assert len(report.results) == len(queries)
        for query, result in zip(queries, report.results):
            expected = set()
            for record in database.records:
                sw = smith_waterman_all_hits(
                    record.sequence, query.sequence, DEFAULT_SCHEME, THRESHOLD
                )
                for hit in sw.hits():
                    expected.add(
                        (record.identifier, hit.t_end, hit.p_end, hit.score)
                    )
            got = {
                (h.sequence_id, h.t_end, h.p_end, h.score) for h in result.hits
            }
            assert got == expected, f"mismatch for query {query.id}"

    def test_straddle_query_drops_boundary_hits(self, service, queries):
        report = service.search_batch(queries, threshold=THRESHOLD)
        straddle = next(r for r in report.results if r.query_id == "straddle")
        assert straddle.raw_hits > 0
        assert straddle.dropped_boundary > 0
        assert len(straddle.hits) == straddle.raw_hits - straddle.dropped_boundary

    def test_single_query_search_equals_batch_entry(self, service, queries):
        single = service.search(queries[0], threshold=THRESHOLD)
        report = service.search_batch(queries, threshold=THRESHOLD)
        assert _hit_key(single) == _hit_key(report.results[0])

    def test_shadowed_within_record_hit_recovered(self):
        """A straddling alignment must not swallow a real within-record one.

        Every ``(t_end, p_end)`` cell in r2's homopolymer run is best
        reached by an alignment starting inside r1 (dropped as a boundary
        artifact), but a shorter within-r2 alignment at the same cell still
        clears the threshold and must be reported with its own score.
        """
        records = [
            FastaRecord("r1", "GCGCAAAA"), FastaRecord("r2", "AAAAGCGC")
        ]
        service = SearchService(records)
        report = service.search_batch(["AAAAAAAA"], threshold=4)
        result = report.results[0]
        expected = set()
        for record in records:
            sw = smith_waterman_all_hits(
                record.sequence, "AAAAAAAA", DEFAULT_SCHEME, 4
            )
            expected |= {
                (record.identifier, h.t_end, h.p_end, h.score)
                for h in sw.hits()
            }
        got = {(h.sequence_id, h.t_end, h.p_end, h.score) for h in result.hits}
        assert got == expected
        # The straddling best alignments themselves are still not reported.
        assert all(h.t_start >= 1 for h in result.hits)

    def test_engines_agree_through_service(self, database, queries):
        alae = SearchService(database, engine="alae")
        bwtsw = SearchService(database, engine="bwtsw")
        ra = alae.search_batch(queries, threshold=THRESHOLD)
        rb = bwtsw.search_batch(queries, threshold=THRESHOLD)
        for a, b in zip(ra.results, rb.results):
            assert {(h.sequence_id, h.t_end, h.p_end, h.score) for h in a.hits} == {
                (h.sequence_id, h.t_end, h.p_end, h.score) for h in b.hits
            }


class TestPooling:
    def test_worker_count_invariance_threads(self, service, queries):
        base = service.search_batch(queries, threshold=THRESHOLD, workers=1)
        for workers in (2, 4):
            pooled = service.search_batch(
                queries, threshold=THRESHOLD, workers=workers
            )
            assert [r.query_id for r in pooled.results] == [
                r.query_id for r in base.results
            ]
            assert [_hit_key(r) for r in pooled.results] == [
                _hit_key(r) for r in base.results
            ]

    def test_process_pool_matches_threads(self, service, queries):
        base = service.search_batch(queries, threshold=THRESHOLD)
        forked = service.search_batch(
            queries, threshold=THRESHOLD, workers=2, executor="processes"
        )
        assert forked.executor == "processes"
        assert [_hit_key(r) for r in forked.results] == [
            _hit_key(r) for r in base.results
        ]

    def test_iter_results_validates_eagerly(self, service):
        """Bad pool parameters fail at call time, not at first iteration."""
        with pytest.raises(ServiceError, match="workers"):
            service.iter_results(["ACGT"], threshold=4, workers=0)
        with pytest.raises(ServiceError, match="executor"):
            service.iter_results(["ACGT"], threshold=4, executor="greenlets")
        with pytest.raises(ServiceError, match="at least one query"):
            service.iter_results([], threshold=4)

    def test_iter_results_streams_in_order(self, service, queries):
        ids = [
            r.query_id
            for r in service.iter_results(queries, threshold=THRESHOLD, workers=3)
        ]
        assert ids == [q.id for q in queries]


class TestStats:
    def test_stats_aggregation_sums_counters(self, service, queries):
        report = service.search_batch(queries, threshold=THRESHOLD)
        assert report.stats.calculated == sum(
            r.stats.calculated for r in report.results
        )
        assert report.stats.nodes_visited == sum(
            r.stats.nodes_visited for r in report.results
        )
        assert report.stats.reused == sum(r.stats.reused for r in report.results)
        assert report.stats.elapsed_seconds == pytest.approx(
            sum(r.stats.elapsed_seconds for r in report.results)
        )

    def test_report_totals(self, service, queries):
        report = service.search_batch(queries, threshold=THRESHOLD)
        assert report.total_hits == sum(len(r.hits) for r in report.results)
        assert report.total_dropped == sum(
            r.dropped_boundary for r in report.results
        )
        assert report.wall_seconds > 0
        assert report.queries_per_second > 0


class TestInputs:
    def test_bare_string_is_one_query_not_characters(self, service):
        report = service.search_batch("ACGTACGTAC", threshold=8)
        assert [r.query_id for r in report.results] == ["q1"]

    def test_accepts_strings_tuples_records(self, service):
        report = service.search_batch(
            ["ACGTACGTAC", ("named", "ACGTACGTAC"),
             FastaRecord("rec", "ACGTACGTAC")],
            threshold=8,
        )
        assert [r.query_id for r in report.results] == ["q1", "named", "rec"]

    def test_search_fasta(self, tmp_path, database, service, queries):
        path = tmp_path / "queries.fa"
        write_fasta(
            [FastaRecord(q.id, q.sequence) for q in queries], path
        )
        from_file = service.search_fasta(path, threshold=THRESHOLD)
        direct = service.search_batch(queries, threshold=THRESHOLD)
        assert [_hit_key(r) for r in from_file.results] == [
            _hit_key(r) for r in direct.results
        ]

    def test_service_from_fasta_path(self, tmp_path, database, queries):
        path = tmp_path / "db.fa"
        write_fasta(database.records, path)
        service = SearchService(path)
        report = service.search_batch(queries, threshold=THRESHOLD)
        assert report.total_hits > 0

    def test_empty_batch_rejected(self, service):
        with pytest.raises(ServiceError, match="at least one query"):
            service.search_batch([], threshold=10)

    def test_bad_query_type_rejected(self, service):
        with pytest.raises(ServiceError, match="query #1"):
            service.search_batch([42], threshold=10)

    def test_bad_executor_rejected(self, database):
        with pytest.raises(ServiceError, match="executor"):
            SearchService(database, executor="greenlets")

    def test_bad_workers_rejected(self, database):
        with pytest.raises(ServiceError, match="workers"):
            SearchService(database, workers=0)

    def test_unknown_engine_rejected(self, database):
        with pytest.raises(ServiceError, match="unknown engine"):
            SearchService(database, engine="ssearch")


class TestTopK:
    def test_top_k_equals_ranked_truncation(self, service, queries):
        full = service.search_batch(queries, threshold=THRESHOLD)
        topped = service.search_batch(queries, threshold=THRESHOLD, top_k=2)
        for base, result in zip(full.results, topped.results):
            # Positional order is global (t_end, p_end), so ranking by
            # (-score, position) is ranking by (-score, t_end, p_end).
            expected = [
                hit
                for _i, hit in sorted(
                    enumerate(base.hits),
                    key=lambda item: (-item[1].score, item[0]),
                )[:2]
            ]
            assert result.hits == expected
            assert result.raw_hits == base.raw_hits
            assert result.threshold == base.threshold

    def test_scores_descending_and_truncated(self, service, queries):
        result = service.search(queries[0], threshold=THRESHOLD, top_k=3)
        scores = [hit.score for hit in result.hits]
        assert scores == sorted(scores, reverse=True)
        assert len(result.hits) <= 3

    def test_single_search_top_k_keeps_best(self, service, queries):
        full = service.search(queries[0], threshold=THRESHOLD)
        best = service.search(queries[0], threshold=THRESHOLD, top_k=1)
        assert len(best.hits) == 1
        assert best.hits[0].score == max(hit.score for hit in full.hits)

    def test_invalid_top_k_rejected(self, service, queries):
        with pytest.raises(ServiceError, match="top_k"):
            service.search(queries[0], threshold=THRESHOLD, top_k=0)
        with pytest.raises(ServiceError, match="top_k"):
            service.search_batch(queries, threshold=THRESHOLD, top_k=-1)
