"""Flow-layer tests: symbol tables, call graph, and REP801/802/803.

Each checker gets a good/bad/suppressed fixture package (including the
A->B->A two-function lock cycle and a cross-file one for REP801), the
graph dump is pinned byte-identical across runs, the SARIF serializer
round-trips, and an inverted acquisition injected into a copy of the
*real* ``server/cache.py`` must trip REP801 — the gate the ISSUE names.
"""

import json
from pathlib import Path

from repro.analysis import LintConfig, run_lint
from repro.analysis.flow import build_flow_index
from repro.analysis.base import Project, ParsedFile
from repro.cli import main

import ast

REPO = Path(__file__).resolve().parents[1]
SRC = REPO / "src"


def write_tree(tmp_path, files):
    root = tmp_path / "proj"
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
    return root


def lint_tree(tmp_path, files):
    return run_lint([write_tree(tmp_path, files)], config=LintConfig())


def codes(report, code=None):
    found = [f.code for f in report.findings]
    return [c for c in found if c == code] if code else found


def index_for(tmp_path, files):
    root = write_tree(tmp_path, files)
    parsed = []
    for path in sorted(root.rglob("*.py")):
        rel = path.as_posix()
        parsed.append(
            ParsedFile(rel=rel, source=path.read_text(),
                       tree=ast.parse(path.read_text(), filename=rel))
        )
    return build_flow_index(Project(files=parsed))


# --------------------------------------------------------------- fixtures

CYCLE_ONE_MODULE = {
    "pkg/pair.py": (
        "import threading\n"
        "\n"
        "\n"
        "class A:\n"
        '    def __init__(self, b: "B") -> None:\n'
        "        self._lock = threading.Lock()\n"
        "        self._b = b\n"
        "\n"
        "    def forward(self):\n"
        "        with self._lock:\n"
        "            self._b.poke()\n"
        "\n"
        "    def reenter(self):\n"
        "        with self._lock:\n"
        "            pass\n"
        "\n"
        "\n"
        "class B:\n"
        '    def __init__(self, a: "A") -> None:\n'
        "        self._lock = threading.Lock()\n"
        "        self._a = a\n"
        "\n"
        "    def poke(self):\n"
        "        with self._lock:\n"
        "            pass\n"
        "\n"
        "    def backward(self):\n"
        "        with self._lock:\n"
        "            self._a.reenter()\n"
    ),
}

CYCLE_CROSS_FILE = {
    "pkg/a.py": (
        "import threading\n"
        "\n"
        "from pkg.b import B\n"
        "\n"
        "\n"
        "class A:\n"
        "    def __init__(self) -> None:\n"
        "        self._lock = threading.Lock()\n"
        "        self._b = B(self)\n"
        "\n"
        "    def forward(self):\n"
        "        with self._lock:\n"
        "            self._b.poke()\n"
        "\n"
        "    def reenter(self):\n"
        "        with self._lock:\n"
        "            pass\n"
    ),
    "pkg/b.py": (
        "import threading\n"
        "\n"
        "from pkg.a import A\n"
        "\n"
        "\n"
        "class B:\n"
        '    def __init__(self, a: "A") -> None:\n'
        "        self._lock = threading.Lock()\n"
        "        self._a = a\n"
        "\n"
        "    def poke(self):\n"
        "        with self._lock:\n"
        "            pass\n"
        "\n"
        "    def backward(self):\n"
        "        with self._lock:\n"
        "            self._a.reenter()\n"
    ),
}

CONSISTENT_ORDER = {
    "pkg/pair.py": (
        "import threading\n"
        "\n"
        "\n"
        "class Outer:\n"
        '    def __init__(self, inner: "Inner") -> None:\n'
        "        self._lock = threading.Lock()\n"
        "        self._inner = inner\n"
        "\n"
        "    def one(self):\n"
        "        with self._lock:\n"
        "            self._inner.poke()\n"
        "\n"
        "    def two(self):\n"
        "        with self._lock:\n"
        "            self._inner.poke()\n"
        "\n"
        "\n"
        "class Inner:\n"
        "    def __init__(self) -> None:\n"
        "        self._lock = threading.Lock()\n"
        "\n"
        "    def poke(self):\n"
        "        with self._lock:\n"
        "            pass\n"
    ),
}


class TestLockOrder:
    def test_two_function_cycle_in_one_module(self, tmp_path):
        report = lint_tree(tmp_path, CYCLE_ONE_MODULE)
        findings = [f for f in report.findings if f.code == "REP801"]
        assert len(findings) == 1
        message = findings[0].message
        assert "lock-order cycle" in message
        assert "A._lock" in message and "B._lock" in message
        # both acquisition sites are named, so the fix is mechanical
        assert message.count("taken at") >= 2

    def test_cross_file_cycle(self, tmp_path):
        report = lint_tree(tmp_path, CYCLE_CROSS_FILE)
        findings = [f for f in report.findings if f.code == "REP801"]
        assert len(findings) == 1
        assert "a.py" in findings[0].message
        assert "b.py" in findings[0].message

    def test_consistent_order_is_clean(self, tmp_path):
        report = lint_tree(tmp_path, CONSISTENT_ORDER)
        assert codes(report, "REP801") == []

    def test_plain_lock_self_reacquire_is_a_deadlock(self, tmp_path):
        report = lint_tree(tmp_path, {
            "pkg/m.py": (
                "import threading\n"
                "\n"
                "\n"
                "class R:\n"
                "    def __init__(self) -> None:\n"
                "        self._lock = threading.Lock()\n"
                "\n"
                "    def outer(self):\n"
                "        with self._lock:\n"
                "            self.inner()\n"
                "\n"
                "    def inner(self):\n"
                "        with self._lock:\n"
                "            pass\n"
            ),
        })
        findings = [f for f in report.findings if f.code == "REP801"]
        assert len(findings) == 1
        assert "self-deadlock" in findings[0].message

    def test_rlock_reentry_is_legal(self, tmp_path):
        report = lint_tree(tmp_path, {
            "pkg/m.py": (
                "import threading\n"
                "\n"
                "\n"
                "class R:\n"
                "    def __init__(self) -> None:\n"
                "        self._lock = threading.RLock()\n"
                "\n"
                "    def outer(self):\n"
                "        with self._lock:\n"
                "            self.inner()\n"
                "\n"
                "    def inner(self):\n"
                "        with self._lock:\n"
                "            pass\n"
            ),
        })
        assert codes(report, "REP801") == []

    def test_reasoned_suppression_silences(self, tmp_path):
        report = lint_tree(tmp_path, {
            "pkg/m.py": (
                "import threading\n"
                "\n"
                "\n"
                "class R:\n"
                "    def __init__(self) -> None:\n"
                "        self._lock = threading.Lock()\n"
                "\n"
                "    def outer(self):\n"
                "        with self._lock:\n"
                "            self.inner()\n"
                "\n"
                "    def inner(self):\n"
                "        # repro-lint: allow[REP801] -- fixture: outer()'s\n"
                "        # with-block releases before this path in prod.\n"
                "        with self._lock:\n"
                "            pass\n"
            ),
        })
        assert codes(report, "REP801") == []
        assert report.suppressed == 1

    def test_injected_inversion_in_real_cache_sources(self, tmp_path):
        """The ISSUE's gate: inverting acquisition order against the real
        ``ResultCache`` must trip REP801; the pristine copy stays clean."""
        source = (SRC / "repro" / "server" / "cache.py").read_text()
        clean = lint_tree(tmp_path, {"server/cache.py": source})
        assert codes(clean, "REP801") == []

        probe = (
            "\n\n"
            "class _InvertedProbe:\n"
            '    def __init__(self, cache: "ResultCache") -> None:\n'
            "        self._lock = threading.Lock()\n"
            "        self._cache = cache\n"
            "\n"
            "    def poke(self) -> None:\n"
            "        with self._lock:\n"
            "            pass\n"
            "\n"
            "    def probe(self, key) -> None:\n"
            "        with self._lock:\n"
            "            self._cache.get(key)\n"
            "\n"
            "\n"
            "class _ProbedCache(ResultCache):\n"
            "    def attach(self) -> None:\n"
            "        self._probe = _InvertedProbe(self)\n"
            "\n"
            "    def inverted(self) -> None:\n"
            "        with self._lock:\n"
            "            self._probe.poke()\n"
        )
        report = lint_tree(
            tmp_path.joinpath("mutated"),
            {"server/cache.py": source + probe},
        )
        findings = [f for f in report.findings if f.code == "REP801"]
        assert findings, "inverted acquisition order must be detected"
        message = " ".join(f.message for f in findings)
        assert "ResultCache._lock" in message
        assert "_InvertedProbe._lock" in message


class TestBlockingUnderLock:
    def test_direct_io_under_lock(self, tmp_path):
        report = lint_tree(tmp_path, {
            "pkg/m.py": (
                "import threading\n"
                "\n"
                "\n"
                "class S:\n"
                "    def __init__(self) -> None:\n"
                "        self._lock = threading.Lock()\n"
                "\n"
                "    def load(self, path):\n"
                "        with self._lock:\n"
                "            return open(path).read()\n"
            ),
        })
        findings = [f for f in report.findings if f.code == "REP802"]
        assert len(findings) == 1
        assert "open()" in findings[0].message
        assert findings[0].line == 10  # the open() call, not the with

    def test_interprocedural_sleep_via_helper(self, tmp_path):
        report = lint_tree(tmp_path, {
            "pkg/m.py": (
                "import threading\n"
                "import time\n"
                "\n"
                "\n"
                "def backoff():\n"
                "    time.sleep(0.1)\n"
                "\n"
                "\n"
                "class S:\n"
                "    def __init__(self) -> None:\n"
                "        self._lock = threading.Lock()\n"
                "\n"
                "    def tick(self):\n"
                "        with self._lock:\n"
                "            backoff()\n"
            ),
        })
        findings = [f for f in report.findings if f.code == "REP802"]
        assert len(findings) == 1
        message = findings[0].message
        # the witness chain names the path to the sleep
        assert "backoff" in message and "time.sleep" in message
        assert "via" in message

    def test_io_outside_lock_is_clean(self, tmp_path):
        report = lint_tree(tmp_path, {
            "pkg/m.py": (
                "import threading\n"
                "\n"
                "\n"
                "class S:\n"
                "    def __init__(self) -> None:\n"
                "        self._lock = threading.Lock()\n"
                "        self._data = None\n"
                "\n"
                "    def load(self, path):\n"
                "        blob = open(path).read()\n"
                "        with self._lock:\n"
                "            self._data = blob\n"
            ),
        })
        assert codes(report, "REP802") == []

    def test_reasoned_suppression_silences(self, tmp_path):
        report = lint_tree(tmp_path, {
            "pkg/m.py": (
                "import threading\n"
                "\n"
                "\n"
                "class S:\n"
                "    def __init__(self) -> None:\n"
                "        self._lock = threading.Lock()\n"
                "\n"
                "    def load(self, path):\n"
                "        with self._lock:\n"
                "            # repro-lint: allow[REP802] -- fixture: the\n"
                "            # swap design reopens under the lock on purpose.\n"
                "            return open(path).read()\n"
            ),
        })
        assert codes(report, "REP802") == []
        assert report.suppressed == 1


SHARED_STATE_BAD = {
    "pkg/m.py": (
        "import threading\n"
        "\n"
        "\n"
        "class W:\n"
        "    def __init__(self) -> None:\n"
        "        self.count = 0\n"
        "        self._thread = threading.Thread(target=self._run)\n"
        "\n"
        "    def _run(self):\n"
        "        self.count += 1\n"
        "\n"
        "    def snapshot(self):\n"
        "        return self.count\n"
    ),
}


class TestUnguardedSharedState:
    def test_thread_written_attr_read_unlocked(self, tmp_path):
        report = lint_tree(tmp_path, SHARED_STATE_BAD)
        findings = [f for f in report.findings if f.code == "REP803"]
        assert len(findings) == 1
        message = findings[0].message
        assert "'count'" in message
        assert "_run" in message  # names the thread-entry root
        assert "no common lock" in message

    def test_common_lock_on_both_sides_is_clean(self, tmp_path):
        report = lint_tree(tmp_path, {
            "pkg/m.py": (
                "import threading\n"
                "\n"
                "\n"
                "class W:\n"
                "    def __init__(self) -> None:\n"
                "        self._lock = threading.Lock()\n"
                "        self.count = 0\n"
                "        self._thread = threading.Thread(target=self._run)\n"
                "\n"
                "    def _run(self):\n"
                "        with self._lock:\n"
                "            self.count += 1\n"
                "\n"
                "    def snapshot(self):\n"
                "        with self._lock:\n"
                "            return self.count\n"
            ),
        })
        assert codes(report, "REP803") == []

    def test_executor_submit_counts_as_thread_entry(self, tmp_path):
        report = lint_tree(tmp_path, {
            "pkg/m.py": (
                "class E:\n"
                "    def __init__(self, pool) -> None:\n"
                "        self._pool = pool\n"
                "        self.done = 0\n"
                "\n"
                "    def kick(self):\n"
                "        self._pool.submit(self._work)\n"
                "\n"
                "    def _work(self):\n"
                "        self.done += 1\n"
                "\n"
                "    def status(self):\n"
                "        return self.done\n"
            ),
        })
        findings = [f for f in report.findings if f.code == "REP803"]
        assert len(findings) == 1
        assert "'done'" in findings[0].message

    def test_event_attr_is_self_synchronized(self, tmp_path):
        report = lint_tree(tmp_path, {
            "pkg/m.py": (
                "import threading\n"
                "\n"
                "\n"
                "class W:\n"
                "    def __init__(self) -> None:\n"
                "        self._wake = threading.Event()\n"
                "        self._thread = threading.Thread(target=self._run)\n"
                "\n"
                "    def _run(self):\n"
                "        self._wake.set()\n"
                "\n"
                "    def poll(self):\n"
                "        return self._wake.is_set()\n"
            ),
        })
        assert codes(report, "REP803") == []

    def test_reasoned_suppression_silences(self, tmp_path):
        files = dict(SHARED_STATE_BAD)
        files["pkg/m.py"] = files["pkg/m.py"].replace(
            "        self.count += 1\n",
            "        # repro-lint: allow[REP803] -- fixture: single-writer\n"
            "        # counter, stale reads are fine for monitoring.\n"
            "        self.count += 1\n",
        )
        report = lint_tree(tmp_path, files)
        assert codes(report, "REP803") == []
        assert report.suppressed == 1


class TestFlowIndex:
    def test_thread_roots_and_origins(self, tmp_path):
        index = index_for(tmp_path, SHARED_STATE_BAD)
        roots = [q for q in index.thread_roots if q.endswith("W._run")]
        assert len(roots) == 1
        assert index.thread_roots[roots[0]][0].via == "thread"
        assert roots[0] in index.thread_reachable
        assert index.thread_origins[roots[0]] == (roots[0],)

    def test_entry_held_propagates_with_provenance(self, tmp_path):
        index = index_for(tmp_path, CYCLE_ONE_MODULE)
        poke = next(q for q in index.summaries if q.endswith("B.poke"))
        held = index.entry_held[poke]
        assert any(ident.endswith("A._lock") for ident in held)
        (rel, line), = [
            site for ident, site in held.items()
            if ident.endswith("A._lock")
        ]
        assert rel.endswith("pair.py") and line == 10  # the with in forward

    def test_dump_is_byte_identical_across_runs(self, tmp_path):
        root = write_tree(tmp_path, CYCLE_CROSS_FILE)
        first, second = tmp_path / "g1.json", tmp_path / "g2.json"
        run_lint([root], config=LintConfig(), dump_graph=first)
        run_lint([root], config=LintConfig(), dump_graph=second)
        assert first.read_bytes() == second.read_bytes()
        doc = json.loads(first.read_text())
        assert set(doc) == {
            "locks", "functions", "edges", "thread_roots",
            "lock_order_edges",
        }
        assert any(
            lock["ident"].endswith("A._lock") for lock in doc["locks"]
        )
        assert doc["lock_order_edges"]  # the cycle's edges are visible

    def test_cli_dump_graph_flag(self, tmp_path, capsys):
        root = write_tree(tmp_path, CONSISTENT_ORDER)
        out = tmp_path / "graph.json"
        code = main(["lint", str(root), "--dump-graph", str(out)])
        captured = capsys.readouterr()
        assert code == 0
        assert "flow graph written" in captured.err
        assert json.loads(out.read_text())["functions"]


class TestRequireAndDedupe:
    def test_ambiguous_anchor_warns_instead_of_silent_pass(self, tmp_path):
        server = (
            "class SearchServer:\n"
            "    def _parse_search(self, payload):\n"
            '        threshold = payload.get("threshold")\n'
            "        return [threshold]\n"
        )
        report = lint_tree(tmp_path, {
            "one/server/server.py": server,
            "two/server/server.py": server,
        })
        warnings = [f for f in report.findings if f.code == "REP301"]
        assert len(warnings) == 1
        assert warnings[0].severity == "warning"
        assert "ambiguous" in warnings[0].message
        assert "one/server/server.py" in warnings[0].message
        assert "two/server/server.py" in warnings[0].message
        assert report.exit_code == 0  # a warning, not an error

    def test_overlapping_targets_lint_once(self, tmp_path):
        root = write_tree(tmp_path, CYCLE_CROSS_FILE)
        once = run_lint([root], config=LintConfig())
        twice = run_lint(
            [root / "pkg" / "a.py", root], config=LintConfig()
        )
        assert twice.files == once.files == 2
        assert codes(twice) == codes(once)


class TestSarif:
    def test_sarif_round_trip_minimal_fields(self, tmp_path):
        report = lint_tree(tmp_path, SHARED_STATE_BAD)
        doc = json.loads(report.format_sarif())
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        rule_ids = {rule["id"] for rule in driver["rules"]}
        assert {"REP000", "REP801", "REP802", "REP803"} <= rule_ids
        assert run["results"], "the fixture finding must serialize"
        result = run["results"][0]
        assert result["ruleId"] == "REP803"
        assert result["level"] == "error"
        assert result["message"]["text"]
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"].endswith("pkg/m.py")
        assert location["region"]["startLine"] >= 1

    def test_clean_run_serializes_empty_results(self, tmp_path):
        report = lint_tree(tmp_path, CONSISTENT_ORDER)
        doc = json.loads(report.format_sarif())
        assert doc["runs"][0]["results"] == []

    def test_cli_sarif_format(self, tmp_path, capsys):
        root = write_tree(tmp_path, CONSISTENT_ORDER)
        code = main(["lint", str(root), "--format", "sarif"])
        out = capsys.readouterr().out
        assert code == 0
        assert json.loads(out)["version"] == "2.1.0"
