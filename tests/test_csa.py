"""Reversed-text CSA: rightward extension and end-position location (Sec. 5)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DNA
from repro.errors import IndexError_
from repro.index.csa import EMPTY_RANGE, ReversedTextIndex


def brute_end_positions(text: str, sub: str) -> list[int]:
    """1-based end positions of every occurrence of sub in text."""
    return [
        i + len(sub)
        for i in range(len(text) - len(sub) + 1)
        if text[i : i + len(sub)] == sub
    ]


class TestExtension:
    def test_paper_example_gc(self):
        # Sec. 5 example: T = GCTAGC, substring GC occurs ending at 2 and 6.
        csa = ReversedTextIndex("GCTAGC", DNA)
        rng = csa.range_of("GC")
        assert sorted(csa.end_positions(rng)) == [2, 6]

    def test_root_covers_everything(self):
        csa = ReversedTextIndex("ACGT", DNA)
        lo, hi = csa.root()
        assert hi - lo == 5  # n + 1 rows including the sentinel

    def test_extend_step_by_step(self):
        text = "GCTAGCTA"
        csa = ReversedTextIndex(text, DNA)
        rng = csa.root()
        for i, c in enumerate("GCTA", start=1):
            rng = csa.extend(rng, c)
            assert csa.occurrence_count(rng) == text.count("GCTA"[:i])

    def test_absent_substring(self):
        csa = ReversedTextIndex("AAAA", DNA)
        assert csa.range_of("C") == EMPTY_RANGE
        assert not csa.contains("AC")

    def test_contains(self):
        csa = ReversedTextIndex("GATTACA", DNA)
        for length in range(1, 8):
            for start in range(0, 8 - length):
                assert csa.contains("GATTACA"[start : start + length])

    def test_extend_from_empty_stays_empty(self):
        csa = ReversedTextIndex("ACGT", DNA)
        assert csa.extend(EMPTY_RANGE, "A") == EMPTY_RANGE

    def test_empty_text_rejected(self):
        with pytest.raises(IndexError_):
            ReversedTextIndex("", DNA)


class TestEndPositions:
    def test_vs_brute_force(self, rng):
        text = "".join(DNA.chars[int(c)] for c in rng.integers(0, 2, 150))
        csa = ReversedTextIndex(text, DNA, sa_sample=4)
        for length in (1, 2, 4, 7):
            for _ in range(5):
                start = int(rng.integers(0, 150 - length))
                sub = text[start : start + length]
                got = sorted(csa.end_positions(csa.range_of(sub)))
                assert got == brute_end_positions(text, sub)

    def test_full_text_occurrence(self):
        text = "GATTACA"
        csa = ReversedTextIndex(text, DNA)
        assert csa.end_positions(csa.range_of(text)) == [7]

    def test_count_matches_positions(self, rng):
        text = "".join(DNA.chars[int(c)] for c in rng.integers(0, 4, 200))
        csa = ReversedTextIndex(text, DNA)
        sub = text[50:54]
        rng_ = csa.range_of(sub)
        assert csa.occurrence_count(rng_) == len(csa.end_positions(rng_))

    @settings(max_examples=25, deadline=None)
    @given(st.text(alphabet="ACGT", min_size=3, max_size=80))
    def test_property_every_substring_found(self, text):
        csa = ReversedTextIndex(text, DNA, occ_block=8, sa_sample=4)
        # every length-3 substring is found with all its end positions
        for start in range(len(text) - 2):
            sub = text[start : start + 3]
            got = sorted(csa.end_positions(csa.range_of(sub)))
            assert got == brute_end_positions(text, sub)


class TestSize:
    def test_size_reported(self):
        csa = ReversedTextIndex("ACGT" * 100, DNA)
        sizes = csa.size_bytes()
        assert sizes["total"] > 0
        assert sizes["bwt"] > 0

    def test_size_scales_with_text(self):
        small = ReversedTextIndex("ACGT" * 50, DNA).size_bytes()["total"]
        large = ReversedTextIndex("ACGT" * 500, DNA).size_bytes()["total"]
        assert large > small
