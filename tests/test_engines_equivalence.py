"""The central correctness property: ALAE == BWT-SW == BASIC == Smith-Waterman.

The paper's guarantee is exactness — "ALAE guarantees correctness" — so every
engine must return the identical set of ``(t_end, p_end, score)`` cells for
any text, query, scheme and threshold.  These tests sweep randomized and
adversarial inputs, all filter toggles, and hypothesis-generated cases.
"""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    ALAE,
    DEFAULT_SCHEME,
    DNA,
    PROTEIN,
    BwtSw,
    ScoringScheme,
    basic_search,
    smith_waterman_all_hits,
)

SCHEMES = [
    DEFAULT_SCHEME,
    ScoringScheme(1, -4, -5, -2),
    ScoringScheme(1, -1, -5, -2),
    ScoringScheme(1, -3, -2, -2),
    ScoringScheme(2, -3, -10, -4),
    ScoringScheme(1, -3, -11, -1),
]


def rand_seq(rng, alphabet, length, distinct):
    return "".join(alphabet.chars[int(c)] for c in rng.integers(0, distinct, length))


class TestFourEngineEquivalence:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_small(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(15, 90))
        m = int(rng.integers(4, 35))
        alpha = DNA if seed % 2 else PROTEIN
        distinct = 2 if seed % 3 == 0 else min(4, alpha.size)
        text = rand_seq(rng, alpha, n, distinct)
        query = rand_seq(rng, alpha, m, distinct)
        scheme = SCHEMES[seed % len(SCHEMES)]
        for threshold in (1, 3, 7):
            sw = smith_waterman_all_hits(text, query, scheme, threshold)
            ba = basic_search(text, query, scheme, threshold)
            bw = BwtSw(text, alpha, scheme).search(query, threshold=threshold)
            al = ALAE(text, alpha, scheme).search(query, threshold=threshold)
            assert sw.as_score_set() == ba.as_score_set()
            assert sw.as_score_set() == bw.hits.as_score_set()
            assert sw.as_score_set() == al.hits.as_score_set()

    def test_paper_running_example(self):
        # T = CTAGCTAG, P = GCTAC, H = 3 (Sec. 3.1.1 example universe).
        text, query, h = "CTAGCTAG", "GCTAC", 3
        sw = smith_waterman_all_hits(text, query, DEFAULT_SCHEME, h)
        al = ALAE(text).search(query, threshold=h)
        assert sw.as_score_set() == al.hits.as_score_set()

    def test_tandem_repeat_text(self):
        text = "GCTA" * 25
        query = "GCTAGCTA"
        for threshold in (4, 8):
            sw = smith_waterman_all_hits(text, query, DEFAULT_SCHEME, threshold)
            al = ALAE(text).search(query, threshold=threshold)
            bw = BwtSw(text).search(query, threshold=threshold)
            assert sw.as_score_set() == al.hits.as_score_set()
            assert sw.as_score_set() == bw.hits.as_score_set()

    def test_homopolymer(self):
        # A^n vs A^m exercises maximal fork overlap and reuse.
        text, query = "A" * 60, "A" * 12
        for threshold in (1, 5, 12):
            sw = smith_waterman_all_hits(text, query, DEFAULT_SCHEME, threshold)
            al = ALAE(text).search(query, threshold=threshold)
            assert sw.as_score_set() == al.hits.as_score_set()

    def test_gapped_alignment_required(self):
        # The best alignment at the corner cell bridges an internal gap;
        # catches engines that drop gap regions (the FGOE row tail
        # regression caught during development).
        block1, block2 = "ACGTCAACGTCA", "TGCATCTGCATC"
        text = "TTTTT" + block1 + "GG" + block2 + "TTTTT"
        query = block1 + block2
        h = 3
        sw = smith_waterman_all_hits(text, query, DEFAULT_SCHEME, h)
        al = ALAE(text).search(query, threshold=h)
        bw = BwtSw(text).search(query, threshold=h)
        assert sw.as_score_set() == al.hits.as_score_set()
        assert sw.as_score_set() == bw.hits.as_score_set()
        corner = al.hits.score_of(5 + len(block1) + 2 + len(block2), len(query))
        assert corner == 24 - 9

    def test_query_longer_than_text(self):
        text = "GATTACA"
        query = "GATTACAGATTACAGATTACA"
        sw = smith_waterman_all_hits(text, query, DEFAULT_SCHEME, 4)
        al = ALAE(text).search(query, threshold=4)
        assert sw.as_score_set() == al.hits.as_score_set()

    def test_single_char_query(self):
        text = "GATTACA"
        sw = smith_waterman_all_hits(text, "A", DEFAULT_SCHEME, 1)
        al = ALAE(text).search("A", threshold=1)
        assert sw.as_score_set() == al.hits.as_score_set()
        assert len(al.hits) == 3

    def test_protein_scheme(self):
        rng = np.random.default_rng(5)
        text = rand_seq(rng, PROTEIN, 120, 6)
        query = rand_seq(rng, PROTEIN, 25, 6)
        scheme = ScoringScheme(1, -3, -11, -1)
        for threshold in (2, 6):
            sw = smith_waterman_all_hits(text, query, scheme, threshold)
            al = ALAE(text, PROTEIN, scheme).search(query, threshold=threshold)
            assert sw.as_score_set() == al.hits.as_score_set()


class TestFilterTogglesExact:
    """Every combination of filter switches must preserve the answer set."""

    @pytest.mark.parametrize(
        "dom,reuse,gbm,score_f",
        list(itertools.product([False, True], repeat=4)),
    )
    def test_toggle_matrix(self, dom, reuse, gbm, score_f):
        rng = np.random.default_rng(11)
        text = rand_seq(rng, DNA, 150, 2)
        query = rand_seq(rng, DNA, 30, 2)
        sw = smith_waterman_all_hits(text, query, DEFAULT_SCHEME, 4)
        engine = ALAE(
            text,
            use_domination=dom,
            use_reuse=reuse,
            use_global_bitmask=gbm,
            use_score_filter=score_f,
        )
        assert engine.search(query, threshold=4).hits.as_score_set() == (
            sw.as_score_set()
        )

    def test_no_length_filter(self):
        rng = np.random.default_rng(12)
        text = rand_seq(rng, DNA, 100, 2)
        query = rand_seq(rng, DNA, 20, 2)
        sw = smith_waterman_all_hits(text, query, DEFAULT_SCHEME, 3)
        engine = ALAE(text, use_length_filter=False)
        assert engine.search(query, threshold=3).hits.as_score_set() == (
            sw.as_score_set()
        )


class TestHitMetadata:
    def test_t_start_consistent(self):
        # Re-aligning the reported text window must reproduce >= the score.
        rng = np.random.default_rng(13)
        text = rand_seq(rng, DNA, 200, 4)
        query = text[40:60]  # exact 20-char copy
        res = ALAE(text).search(query, threshold=10)
        assert len(res.hits) > 0
        for hit in res.hits:
            assert 1 <= hit.t_start <= hit.t_end <= len(text)
            window = text[hit.t_start - 1 : hit.t_end]
            best = smith_waterman_all_hits(
                window, query, DEFAULT_SCHEME, hit.score
            )
            assert len(best) > 0  # the window really contains the alignment

    def test_evalue_threshold_resolution(self):
        rng = np.random.default_rng(14)
        text = rand_seq(rng, DNA, 300, 4)
        query = text[100:140]
        res = ALAE(text).search(query, e_value=10.0)
        assert res.threshold >= 1
        sw = smith_waterman_all_hits(text, query, DEFAULT_SCHEME, res.threshold)
        assert sw.as_score_set() == res.hits.as_score_set()


class TestHypothesisEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(
        st.text(alphabet="AC", min_size=10, max_size=80),
        st.text(alphabet="AC", min_size=3, max_size=20),
        st.integers(1, 8),
    )
    def test_alae_equals_sw(self, text, query, threshold):
        sw = smith_waterman_all_hits(text, query, DEFAULT_SCHEME, threshold)
        al = ALAE(text).search(query, threshold=threshold)
        assert sw.as_score_set() == al.hits.as_score_set()

    @settings(max_examples=25, deadline=None)
    @given(
        st.text(alphabet="ACGT", min_size=10, max_size=60),
        st.text(alphabet="ACGT", min_size=3, max_size=15),
    )
    def test_bwtsw_equals_sw_scheme_variants(self, text, query):
        for scheme in (DEFAULT_SCHEME, ScoringScheme(1, -1, -5, -2)):
            sw = smith_waterman_all_hits(text, query, scheme, 2)
            bw = BwtSw(text, DNA, scheme).search(query, threshold=2)
            assert sw.as_score_set() == bw.hits.as_score_set()
