"""The tiered search-backend layer: protocol, modes, soundness, isolation.

Covers the PR 6 invariants end to end:

* every adapter satisfies the :class:`~repro.engine.SearchBackend` protocol
  and declares honest metadata (mode, exactness, hit ordering);
* ``verified`` hits are a **subset** of ``exact`` hits with bit-equal
  scores, end positions and start attributions (Theorem 1 windowing), on
  random texts, both alphabets and multiple schemes;
* measured recall is reported, correctly normalised, and hits 1.0 on
  workloads whose only above-threshold alignments are seeded;
* the service layers thread ``mode`` through (per-call override, pinned
  legacy engines, sharded parity), and the serving tier's batch and cache
  keys isolate modes — a cached exact answer can never answer ``fast``.
"""

import asyncio

import numpy as np
import pytest

from repro import DNA, PROTEIN, IndexStore, ScoringScheme, genome
from repro.align.types import START_UNKNOWN
from repro.blast.engine import Blast
from repro.core.alae import ALAE
from repro.data.synthetic import sample_homologous_queries
from repro.engine import (
    MODE_ENGINE_NAMES,
    MODE_ORDERINGS,
    MODES,
    ORDER_POSITION,
    ORDER_SCORE,
    AlaeBackend,
    BlastBackend,
    BwtSwBackend,
    SearchBackend,
    VerifiedBackend,
    backend_from_store,
    backend_from_text,
    check_mode,
    split_engine_kwargs,
)
from repro.errors import SearchError
from repro.index.kmer_index import DEFAULT_WORD_SIZE, KmerIndex
from repro.io.database import SequenceDatabase
from repro.io.fasta import FastaRecord
from repro.server import (
    BatchKey,
    CachedResult,
    MicroBatcher,
    ResultCache,
    SearchServer,
    ServerClient,
    ServerThread,
)
from repro.service import Query, SearchService, ServiceError
from repro.service.sharded import ShardedSearchService
from repro.store import ShardedStore


def _planted_text_and_query(rng, n=2_000, qlen=60, alphabet=DNA):
    """A text plus a query that is an exact copy of one of its windows."""
    text = alphabet.random_sequence(n, rng)
    start = int(rng.integers(0, n - qlen))
    return text, text[start : start + qlen]


def _hit_map(result):
    """``(t_end, p_end) -> (score, t_start)`` for subset comparisons."""
    return {
        (hit.t_end, hit.p_end): (hit.score, hit.t_start)
        for hit in result.hits.hits()
    }


# ---------------------------------------------------------------- protocol
class TestBackendProtocol:
    def test_adapters_satisfy_protocol(self):
        text = "ACGTACGTACGTACGTACGT"
        exact = AlaeBackend(ALAE(text))
        fast = BlastBackend(Blast(text, word_size=4))
        tiers = [
            exact,
            fast,
            VerifiedBackend(Blast(text, word_size=4), exact.engine),
        ]
        for backend in tiers:
            assert isinstance(backend, SearchBackend)
            assert backend.info.mode in MODES
            description = backend.describe()
            assert description["name"] == backend.info.name
            assert description["text_length"] == len(text)

    def test_declared_metadata(self):
        assert AlaeBackend.info.exact and AlaeBackend.info.ordering == ORDER_POSITION
        assert BwtSwBackend.info.exact
        assert not BlastBackend.info.exact
        assert BlastBackend.info.ordering == ORDER_SCORE
        assert not VerifiedBackend.info.exact
        assert MODE_ORDERINGS == {
            "exact": AlaeBackend.info.ordering,
            "fast": BlastBackend.info.ordering,
            "verified": VerifiedBackend.info.ordering,
        }
        assert set(MODE_ENGINE_NAMES) == set(MODES)

    def test_check_mode(self):
        assert check_mode(None) == "exact"
        assert check_mode("verified") == "verified"
        with pytest.raises(SearchError, match="unknown search mode"):
            check_mode("turbo")

    def test_split_engine_kwargs_routes_by_key(self):
        exact, blast, verified = split_engine_kwargs(
            {
                "use_vectorized": False,
                "word_size": 8,
                "gap_trigger": 20,
                "measure_recall": False,
            }
        )
        assert exact == {"use_vectorized": False}
        assert blast == {"word_size": 8, "gap_trigger": 20}
        assert verified == {"measure_recall": False}

    def test_verified_rejects_mismatched_engines(self):
        rng = np.random.default_rng(0)
        text = DNA.random_sequence(300, rng)
        with pytest.raises(SearchError, match="same text"):
            VerifiedBackend(Blast(text), ALAE(text[:200]))
        with pytest.raises(SearchError, match="same scoring scheme"):
            VerifiedBackend(
                Blast(text),
                ALAE(text, scheme=ScoringScheme(2, -3, -7, -2)),
            )


# -------------------------------------------------------------- satellites
class TestSatellites:
    def test_resolve_threshold_reexport_is_same_object(self):
        import warnings

        from repro.scoring.evalue import resolve_threshold as canonical

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            from repro.align.bwt_sw import resolve_threshold as legacy
        assert legacy is canonical

    def test_blast_counters_populated(self):
        rng = np.random.default_rng(3)
        text, query = _planted_text_and_query(rng)
        result = Blast(text, word_size=8).search(query, threshold=40)
        stats = result.stats
        assert stats.extra["seeds"] > 0
        assert stats.calculated_x1 > 0  # ungapped x-drop walks
        assert stats.calculated_x3 > 0  # gapped window DP cells
        assert len(result.hits) >= 1


# ---------------------------------------------------- verified tier proofs
class TestVerifiedSubsetOfExact:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    @pytest.mark.parametrize(
        "scheme",
        [ScoringScheme(1, -3, -5, -2), ScoringScheme(2, -3, -7, -2)],
    )
    def test_dna_random_homologs(self, seed, scheme):
        rng = np.random.default_rng(seed)
        text = genome(2_000, rng)
        queries = sample_homologous_queries(
            text, count=2, length=120, rng=rng, sub_rate=0.03
        )
        exact_engine = ALAE(text, scheme=scheme)
        verified = VerifiedBackend(
            Blast(text, scheme=scheme, word_size=8), exact_engine
        )
        for query in queries:
            for threshold in (25, 40):
                exact = exact_engine.search(query, threshold=threshold)
                ver = verified.search(query, threshold=threshold)
                exact_map = _hit_map(exact)
                for cell, payload in _hit_map(ver).items():
                    assert cell in exact_map, (
                        f"verified emitted {cell} not in exact"
                    )
                    assert exact_map[cell] == payload, (
                        f"verified cell {cell} differs: {payload} vs "
                        f"{exact_map[cell]}"
                    )
                extra = ver.stats.extra
                assert extra["exact_hits"] == len(exact.hits)
                assert 0.0 <= extra["recall_vs_exact"] <= 1.0

    def test_protein_alphabet(self):
        rng = np.random.default_rng(11)
        text = PROTEIN.random_sequence(1_200, rng)
        start = int(rng.integers(0, 1_140))
        query = text[start : start + 50]
        exact_engine = ALAE(text, alphabet=PROTEIN)
        ver = VerifiedBackend(
            Blast(text, alphabet=PROTEIN, word_size=5), exact_engine
        ).search(query, threshold=30)
        exact_map = _hit_map(exact_engine.search(query, threshold=30))
        for cell, payload in _hit_map(ver).items():
            assert exact_map[cell] == payload

    def test_start_attribution_bit_equal(self):
        rng = np.random.default_rng(23)
        text, query = _planted_text_and_query(rng, n=1_500, qlen=80)
        exact_engine = ALAE(text)
        ver = VerifiedBackend(Blast(text), exact_engine).search(
            query, threshold=50
        )
        exact_map = _hit_map(exact_engine.search(query, threshold=50))
        assert len(ver.hits) > 0
        for cell, (score, t_start) in _hit_map(ver).items():
            assert t_start != START_UNKNOWN
            assert exact_map[cell] == (score, t_start)


class TestMeasuredRecall:
    def test_seeded_workload_hits_full_recall(self):
        # Threshold high enough that only the planted (seeded) alignment
        # clears it: BLAST proposes it, the window rescoring recovers every
        # exact cell, so measured recall must be exactly 1.0.
        rng = np.random.default_rng(5)
        text, query = _planted_text_and_query(rng, n=3_000, qlen=60)
        result = VerifiedBackend(Blast(text), ALAE(text)).search(
            query, threshold=45
        )
        extra = result.stats.extra
        assert extra["exact_hits"] > 0
        assert extra["recall_vs_exact"] == 1.0
        assert len(result.hits) == extra["exact_hits"]

    def test_homolog_workload_reports_recall(self):
        rng = np.random.default_rng(9)
        text = genome(4_000, rng)
        queries = sample_homologous_queries(
            text, count=3, length=150, rng=rng
        )
        verified = VerifiedBackend(Blast(text, word_size=8), ALAE(text))
        recalls = []
        for query in queries:
            extra = verified.search(query, threshold=30).stats.extra
            assert {"candidate_hits", "verify_windows", "verified_hits",
                    "exact_hits", "recall_vs_exact"} <= set(extra)
            recalls.append(extra["recall_vs_exact"])
        assert all(0.0 <= r <= 1.0 for r in recalls)
        # Seeded segments exist in every query; the tier must find *some*.
        assert max(recalls) > 0.0

    def test_measure_recall_off_skips_exact_run(self):
        rng = np.random.default_rng(13)
        text, query = _planted_text_and_query(rng)
        result = VerifiedBackend(
            Blast(text), ALAE(text), measure_recall=False
        ).search(query, threshold=45)
        assert "recall_vs_exact" not in result.stats.extra
        assert "verified_hits" in result.stats.extra


# ------------------------------------------------------------- store aux
class TestStoreKmerAux:
    @pytest.fixture()
    def database(self):
        rng = np.random.default_rng(21)
        return SequenceDatabase(
            [FastaRecord(f"r{i}", genome(1_200, rng)) for i in range(2)]
        )

    def test_aux_roundtrip_matches_in_memory_index(self, database, tmp_path):
        store = IndexStore.build(database, kmer_k=6)
        path = store.save(tmp_path / "db.idx")
        reopened = IndexStore.open(path)
        assert reopened.header["aux"]["kmer"]["k"] == 6
        persisted = reopened.kmer_index()
        fresh = KmerIndex(database.text, 6)
        assert persisted.k == 6
        assert len(persisted) == len(fresh)
        for start0 in range(0, len(database.text) - 6 + 1, 7):
            kmer = database.text[start0 : start0 + 6]
            assert list(persisted.positions(kmer)) == list(
                fresh.positions(kmer)
            )

    def test_lazy_fallback_for_other_k(self, database, tmp_path):
        store = IndexStore.open(
            IndexStore.build(database, kmer_k=6).save(tmp_path / "db.idx")
        )
        other = store.kmer_index(9)
        assert other.k == 9
        assert store.kmer_index(9) is other  # cached per k

    def test_no_aux_when_disabled(self, database, tmp_path):
        store = IndexStore.build(database, kmer_k=None)
        assert "kmer" not in store.header.get("aux", {})
        path = store.save(tmp_path / "db.idx")
        reopened = IndexStore.open(path)
        # Lazy build still serves the fast tier.
        assert reopened.kmer_index().k == DEFAULT_WORD_SIZE

    def test_fast_from_store_matches_from_text(self, database, tmp_path):
        store = IndexStore.open(
            IndexStore.build(
                database, kmer_k=DEFAULT_WORD_SIZE
            ).save(tmp_path / "db.idx")
        )
        query = database.text[300:360]
        from_store = backend_from_store("fast", store).search(
            query, threshold=40
        )
        from_text = backend_from_text("fast", database.text).search(
            query, threshold=40
        )
        assert _hit_map(from_store) == _hit_map(from_text)


# ---------------------------------------------------------- service modes
class TestServiceModes:
    @pytest.fixture(scope="class")
    def database(self):
        rng = np.random.default_rng(31)
        return SequenceDatabase(
            [FastaRecord(f"chr{i}", genome(1_500, rng)) for i in range(3)]
        )

    @pytest.fixture(scope="class")
    def query(self, database):
        return database.records[1].sequence[200:260]

    def test_per_call_mode_override(self, database, query):
        service = SearchService(database)
        exact = service.search(query, threshold=40)
        ver = service.search(query, threshold=40, mode="verified")
        exact_cells = {
            (hit.sequence_id, hit.t_end, hit.p_end, hit.score, hit.t_start)
            for hit in exact.hits
        }
        ver_cells = {
            (hit.sequence_id, hit.t_end, hit.p_end, hit.score, hit.t_start)
            for hit in ver.hits
        }
        assert ver_cells <= exact_cells
        assert "recall_vs_exact" in ver.stats.extra

    def test_fast_mode_orders_by_score(self, database, query):
        service = SearchService(database, mode="fast")
        result = service.search(query, threshold=30)
        scores = [hit.score for hit in result.hits]
        assert scores == sorted(scores, reverse=True)
        assert result.stats.extra["seeds"] > 0

    def test_unknown_mode_rejected(self, database, query):
        service = SearchService(database)
        with pytest.raises(SearchError, match="unknown search mode"):
            service.search(query, mode="turbo")

    def test_pinned_engine_serves_exact_only(self, database, query):
        service = SearchService(database, engine="bwtsw")
        service.search(query, threshold=40)  # exact still works
        with pytest.raises(ServiceError, match="serves 'exact' only"):
            service.search(query, threshold=40, mode="fast")
        with pytest.raises(ServiceError):
            SearchService(database, engine="blast", mode="fast")


class TestShardedModes:
    @pytest.fixture(scope="class")
    def setup(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("tiered_shards")
        rng = np.random.default_rng(41)
        database = SequenceDatabase(
            [FastaRecord(f"chr{i}", genome(1_500, rng)) for i in range(4)]
        )
        ShardedStore.build(database, root / "db.shards", shards=2)
        return database, root / "db.shards"

    def test_sharded_verified_subset_of_sharded_exact(self, setup):
        database, manifest = setup
        service = ShardedSearchService(manifest)
        query = database.records[2].sequence[100:160]
        exact = service.search(query, threshold=40)
        ver = service.search(query, threshold=40, mode="verified")
        exact_cells = {
            (hit.sequence_id, hit.t_end, hit.p_end, hit.score, hit.t_start)
            for hit in exact.hits
        }
        for hit in ver.hits:
            assert (
                hit.sequence_id, hit.t_end, hit.p_end, hit.score, hit.t_start
            ) in exact_cells

    def test_sharded_recall_is_ratio_of_sums(self, setup):
        database, manifest = setup
        service = ShardedSearchService(manifest)
        query = database.records[0].sequence[50:110]
        result = service.search(query, threshold=40, mode="verified")
        extra = result.stats.extra
        assert extra["exact_hits"] > 0
        assert extra["recall_vs_exact"] == pytest.approx(
            extra["verified_hits"] / extra["exact_hits"]
        )
        assert extra["recall_vs_exact"] <= 1.0

    def test_sharded_default_mode_constructor(self, setup):
        database, manifest = setup
        service = ShardedSearchService(manifest, mode="fast")
        query = database.records[1].sequence[700:760]
        result = service.search(query, threshold=35)
        scores = [hit.score for hit in result.hits]
        assert scores == sorted(scores, reverse=True)
        with pytest.raises(SearchError, match="unknown search mode"):
            ShardedSearchService(manifest, mode="nope")


# ---------------------------------------------------------- mode isolation
class TestModeKeyIsolation:
    def test_batch_key_includes_mode(self):
        base = BatchKey(threshold=30, e_value=None, top_k=None)
        assert base.mode == "exact"
        assert base != BatchKey(
            threshold=30, e_value=None, top_k=None, mode="fast"
        )

    def test_cache_key_includes_mode(self):
        exact_key = ResultCache.key("ACGT", 30, None, None, 1, "exact")
        fast_key = ResultCache.key("ACGT", 30, None, None, 1, "fast")
        assert exact_key != fast_key
        cache = ResultCache(8)
        cache.put(
            exact_key,
            CachedResult(threshold=30, hits=(), raw_hits=0, dropped_boundary=0),
        )
        assert cache.get(fast_key) is None
        assert cache.get(exact_key) is not None

    def test_cached_result_preserves_extra(self):
        entry = CachedResult(
            threshold=30, hits=(), raw_hits=0, dropped_boundary=0,
            extra={"recall_vs_exact": 0.75, "seeds": 4},
        )
        restored = entry.to_result("q1")
        assert restored.stats.extra["recall_vs_exact"] == 0.75
        assert restored.stats.extra["seeds"] == 4

    def test_batcher_never_mixes_modes(self):
        async def main():
            sizes = []

            async def runner(queries, key):
                sizes.append((len(queries), key.mode))
                return [None] * len(queries)

            batcher = MicroBatcher(runner, max_batch=8, linger=0.01)
            batcher.start()
            exact_key = BatchKey(threshold=30, e_value=None, top_k=None)
            fast_key = BatchKey(
                threshold=30, e_value=None, top_k=None, mode="fast"
            )
            futures = [
                batcher.submit(Query(id=f"q{i}", sequence="ACGT"), key)
                for i, key in enumerate(
                    [exact_key, fast_key, exact_key, fast_key]
                )
            ]
            await asyncio.gather(*futures)
            await batcher.stop()
            return sizes

        sizes = asyncio.run(main())
        assert all(size == 1 for size, _mode in sizes)
        assert [mode for _s, mode in sizes] == [
            "exact", "fast", "exact", "fast",
        ]


class TestServedModes:
    @pytest.fixture(scope="class")
    def served(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("tiered_server")
        rng = np.random.default_rng(51)
        database = SequenceDatabase(
            [FastaRecord(f"chr{i}", genome(1_200, rng)) for i in range(2)]
        )
        path = IndexStore.build(database).save(root / "db.idx")
        with ServerThread(
            SearchServer(path, port=0, reload_poll=0)
        ) as handle:
            yield database, handle

    def test_modes_round_trip_and_do_not_share_cache(self, served):
        database, handle = served
        query = database.records[0].sequence[100:160]
        with ServerClient(port=handle.port) as client:
            exact = client.search([query], threshold=40)
            exact_again = client.search([query], threshold=40)
            fast = client.search([query], threshold=40, mode="fast")
            ver = client.search([query], threshold=40, mode="verified")
        assert exact.mode == "exact" and exact.engine == "alae"
        assert exact_again.results[0].cached  # same-mode cache hit works
        assert fast.mode == "fast" and fast.engine == "blast"
        assert not fast.results[0].cached  # exact's entry must not answer fast
        assert ver.engine == "verified"
        assert "recall_vs_exact" in ver.results[0].extra
        exact_cells = {
            (h.sequence_id, h.t_end, h.p_end, h.score, h.t_start)
            for h in exact.results[0].hits
        }
        for hit in ver.results[0].hits:
            assert (
                hit.sequence_id, hit.t_end, hit.p_end, hit.score, hit.t_start
            ) in exact_cells

    def test_cached_verified_keeps_recall(self, served):
        database, handle = served
        query = database.records[1].sequence[300:360]
        with ServerClient(port=handle.port) as client:
            first = client.search([query], threshold=40, mode="verified")
            second = client.search([query], threshold=40, mode="verified")
        assert not first.results[0].cached
        assert second.results[0].cached
        assert first.results[0].extra == second.results[0].extra

    def test_unknown_mode_is_client_error(self, served):
        _database, handle = served
        from repro.server import ServerError

        with ServerClient(port=handle.port) as client:
            with pytest.raises(ServerError, match="unknown search mode"):
                client.search(["ACGTACGT"], threshold=40, mode="turbo")
