"""Differential fuzz: vectorized engine vs scalar reference vs ground truth.

The vectorized traversal (code-point cohorts, lazy child-range probing,
text-mode chain runs, batched locate) must be *bit-identical* to the
pre-vectorization per-fork reference path — not just the same hit set, but
the same hit ordering, the same ``t_start`` attribution and the same cost
accounting (x1/x2/x3 cell classes, reuse counters, node visits).  Any
divergence in these counters is the earliest possible tripwire for a subtly
wrong shortcut, so the suite compares them everywhere.

Layers:

* random texts/queries/schemes (including ``sa > -ss``, the reuse-key
  regression regime) across every filter-toggle combination;
* adversarial shapes: homologous queries, tandem repeats, homopolymers;
* Smith-Waterman as the external ground truth;
* the ``p_end <= len(query)`` invariant (phantom-column guard);
* sharded vs unsharded serving on top of the vectorized engine.
"""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    ALAE,
    DEFAULT_SCHEME,
    DNA,
    PROTEIN,
    ScoringScheme,
    smith_waterman_all_hits,
)

SCHEMES = [
    DEFAULT_SCHEME,
    ScoringScheme(1, -4, -5, -2),
    ScoringScheme(1, -1, -5, -2),
    ScoringScheme(2, -3, -10, -4),
    ScoringScheme(5, -5, -4, -2),  # sa > -ss: right-edge reuse regime
    ScoringScheme(3, -3, -2, -1),  # sa > -ss
    ScoringScheme(1, -3, -11, -1),  # the paper's protein scheme
]


def stats_signature(stats):
    """Every deterministic counter of one search (timing excluded)."""
    return (
        stats.calculated_x1,
        stats.calculated_x2,
        stats.calculated_x3,
        stats.reused,
        stats.emr_assigned,
        stats.forks_seeded,
        stats.forks_skipped_domination,
        stats.forks_skipped_global,
        stats.grams_absent_in_text,
        stats.nodes_visited,
        stats.extra.get("memo_hits"),
        stats.extra.get("memo_misses"),
    )


def make_case(seed):
    """One reproducible (text, query, alphabet, scheme) fuzz case."""
    rng = np.random.default_rng(seed)
    alpha = PROTEIN if seed % 5 == 0 else DNA
    n = int(rng.integers(20, 320))
    m = int(rng.integers(4, 45))
    distinct = int(rng.integers(2, min(5, alpha.size) + 1))
    text = "".join(alpha.chars[c] for c in rng.integers(0, distinct, n))
    shape = seed % 4
    if shape == 0 and n > m:  # homologous: exact substring of the text
        p = int(rng.integers(0, n - m))
        query = text[p : p + m]
    elif shape == 1:  # tandem repeat (maximal fork overlap / reuse)
        unit = "".join(alpha.chars[c] for c in rng.integers(0, distinct, 4))
        query = (unit * (m // len(unit) + 1))[:m]
    elif shape == 2:  # near-homopolymer (period-1 reuse collisions)
        query = alpha.chars[0] * m
    else:
        query = "".join(alpha.chars[c] for c in rng.integers(0, distinct, m))
    scheme = SCHEMES[seed % len(SCHEMES)]
    return text, query, alpha, scheme


def assert_engines_agree(text, query, alpha, scheme, threshold, **toggles):
    sw = smith_waterman_all_hits(text, query, scheme, threshold)
    vec = ALAE(text, alpha, scheme, use_vectorized=True, **toggles).search(
        query, threshold=threshold
    )
    ref = ALAE(text, alpha, scheme, use_vectorized=False, **toggles).search(
        query, threshold=threshold
    )
    # Ground truth on (t_end, p_end, score) cells.
    assert vec.hits.as_score_set() == sw.as_score_set()
    # Bit-identical to the reference: ordering and t_start included.
    assert vec.hits.hits() == ref.hits.hits()
    # Bit-identical cost accounting.
    assert stats_signature(vec.stats) == stats_signature(ref.stats)
    # No hit may ever report a query end past the query.
    assert all(hit.p_end <= len(query) for hit in vec.hits)
    assert all(1 <= hit.t_end <= len(text) for hit in vec.hits)


class TestVectorizedEqualsReference:
    @pytest.mark.parametrize("seed", range(40))
    def test_random_cases_default_toggles(self, seed):
        text, query, alpha, scheme = make_case(seed)
        for threshold in (1, 3, 8):
            assert_engines_agree(text, query, alpha, scheme, threshold)

    @pytest.mark.parametrize(
        "dom,reuse,gbm,score_f,length_f",
        list(itertools.product([False, True], repeat=5)),
    )
    def test_all_toggle_combinations(self, dom, reuse, gbm, score_f, length_f):
        text, query, alpha, scheme = make_case(17)
        assert_engines_agree(
            text, query, alpha, scheme, 3,
            use_domination=dom,
            use_reuse=reuse,
            use_global_bitmask=gbm,
            use_score_filter=score_f,
            use_length_filter=length_f,
        )

    @pytest.mark.parametrize("seed", range(40, 60))
    def test_random_toggles_random_cases(self, seed):
        text, query, alpha, scheme = make_case(seed)
        toggles = dict(
            use_domination=bool(seed & 1),
            use_reuse=bool(seed & 2),
            use_global_bitmask=bool(seed & 4),
            use_score_filter=bool(seed & 8),
            use_length_filter=(seed % 7 != 0),
        )
        for threshold in (1, 2, 6):
            assert_engines_agree(text, query, alpha, scheme, threshold, **toggles)

    def test_long_homology_chain_run(self):
        # A long exact embedded copy drives the unary-chain diagonal run and
        # its FGOE-crossing resume path.
        rng = np.random.default_rng(99)
        text = "".join(DNA.chars[c] for c in rng.integers(0, 4, 4000))
        query = text[1500:1620]
        for threshold in (20, 60, 110):
            assert_engines_agree(text, query, DNA, DEFAULT_SCHEME, threshold)

    def test_mutated_homology(self):
        rng = np.random.default_rng(7)
        text = "".join(DNA.chars[c] for c in rng.integers(0, 4, 2000))
        q = list(text[800:880])
        for pos in (10, 30, 31, 55):  # substitutions split the chain
            q[pos] = DNA.chars[(DNA.chars.index(q[pos]) + 1) % 4]
        query = "".join(q[:40]) + "ACG" + "".join(q[40:])  # plus an insertion
        for threshold in (15, 35):
            assert_engines_agree(text, query, DNA, DEFAULT_SCHEME, threshold)

    def test_evalue_resolution_identical(self):
        rng = np.random.default_rng(23)
        text = "".join(DNA.chars[c] for c in rng.integers(0, 4, 600))
        query = text[100:160]
        vec = ALAE(text, use_vectorized=True).search(query, e_value=10.0)
        ref = ALAE(text, use_vectorized=False).search(query, e_value=10.0)
        assert vec.threshold == ref.threshold
        assert vec.hits.hits() == ref.hits.hits()
        assert stats_signature(vec.stats) == stats_signature(ref.stats)


class TestHypothesisVectorized:
    @settings(max_examples=30, deadline=None)
    @given(
        st.text(alphabet="ACGT", min_size=10, max_size=80),
        st.text(alphabet="ACGT", min_size=3, max_size=18),
        st.integers(1, 8),
    )
    def test_vec_equals_sw_and_reference(self, text, query, threshold):
        assert_engines_agree(text, query, DNA, DEFAULT_SCHEME, threshold)

    @settings(max_examples=20, deadline=None)
    @given(
        st.text(alphabet="AC", min_size=8, max_size=60),
        st.integers(2, 12),
        st.integers(1, 4),
    )
    def test_homopolymerish_low_thresholds(self, text, m, threshold):
        # The phantom-hit regime of the reuse-key regression: period-1
        # queries, low thresholds, sa > -ss.
        query = "A" * m
        scheme = ScoringScheme(5, -5, -4, -2)
        assert_engines_agree(text, query, DNA, scheme, threshold)


class TestShardedEqualsUnsharded:
    def test_sharded_vs_unsharded_vectorized(self, tmp_path):
        from repro import (
            IndexStore,
            SearchService,
            ShardedSearchService,
            ShardedStore,
        )
        from repro.io.database import SequenceDatabase
        from repro.io.fasta import FastaRecord

        rng = np.random.default_rng(41)
        records = [
            FastaRecord(
                f"chr{i}",
                "".join(DNA.chars[c] for c in rng.integers(0, 4, 900 + 150 * i)),
            )
            for i in range(1, 6)
        ]
        database = SequenceDatabase(records)
        queries = [
            records[0].sequence[100:160],
            records[2].sequence[300:360],
            records[4].sequence[50:90] + records[4].sequence[95:135],
        ]

        plain = SearchService(database)
        plain_report = plain.search_batch(queries, threshold=30)

        manifest = tmp_path / "db.idx"
        ShardedStore.build(database, manifest, shards=3)
        sharded = ShardedSearchService(manifest)
        sharded_report = sharded.search_batch(queries, threshold=30)
        assert plain_report.total_hits > 0
        for query, mono, shard in zip(
            queries, plain_report.results, sharded_report.results
        ):
            mono_hits = [
                (h.sequence_id, h.t_start, h.t_end, h.p_end, h.score)
                for h in mono.hits
            ]
            shard_hits = [
                (h.sequence_id, h.t_start, h.t_end, h.p_end, h.score)
                for h in shard.hits
            ]
            assert mono_hits == shard_hits
            for h in shard.hits:
                assert h.p_end <= len(query)
