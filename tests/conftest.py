"""Shared fixtures: deterministic RNGs and small reference sequences."""

from __future__ import annotations

import numpy as np
import pytest

from repro import DEFAULT_SCHEME, DNA, PROTEIN


@pytest.fixture
def rng():
    """Fresh deterministic generator per test."""
    return np.random.default_rng(20120827)


@pytest.fixture
def paper_text():
    """The running example text of Sec. 2.3 (T = GCTAGC)."""
    return "GCTAGC"


@pytest.fixture
def paper_query():
    """The running example query of Fig. 1 (P = GCTAG)."""
    return "GCTAG"


@pytest.fixture
def default_scheme():
    return DEFAULT_SCHEME


@pytest.fixture
def dna():
    return DNA


@pytest.fixture
def protein():
    return PROTEIN


def random_string(rng, alphabet, length, distinct=None):
    """Random sequence, optionally restricted to the first ``distinct`` chars."""
    k = distinct if distinct is not None else alphabet.size
    return "".join(alphabet.chars[int(c)] for c in rng.integers(0, k, length))
