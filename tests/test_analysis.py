"""Section 6 analysis: reproduce the paper's upper-bound constants exactly."""

import pytest

from repro import DEFAULT_SCHEME, ScoringScheme
from repro.core.analysis import (
    bwt_sw_bound,
    entry_bound,
    lemma4_constants,
    paper_bound_extremes,
)
from repro.errors import ScoringError


class TestLemma4Constants:
    def test_default_scheme_k2(self):
        # s = 4, sigma = 4: k2 = 4 / sqrt(3) ~ 2.3094.
        _k1, k2 = lemma4_constants(DEFAULT_SCHEME, 4)
        assert k2 == pytest.approx(4.0 / 3.0**0.5, rel=1e-12)

    def test_k1_positive_and_below_one(self):
        k1, _k2 = lemma4_constants(DEFAULT_SCHEME, 4)
        assert 0 < k1 < 1

    def test_sigma_two_rejected(self):
        with pytest.raises(ScoringError):
            lemma4_constants(DEFAULT_SCHEME, 2)


class TestPaperConstants:
    """The exact numbers quoted in Sec. 6 / the abstract."""

    def test_default_dna_exponent(self):
        # "using ALAE the number is upper bounded by 4.47 m n^0.6038"
        bound = entry_bound(DEFAULT_SCHEME, 4)
        assert bound.exponent == pytest.approx(0.6038, abs=5e-4)
        assert bound.coefficient == pytest.approx(4.47, abs=0.02)

    def test_dna_minimum(self):
        # "vary from 4.50 m n^0.520 ..." (scheme (1,-4), deep q-prefix)
        lo, _hi = paper_bound_extremes(4)
        assert lo.exponent == pytest.approx(0.520, abs=1e-3)
        assert lo.coefficient == pytest.approx(4.50, abs=0.02)
        assert (lo.scheme.sa, lo.scheme.sb) == (1, -4)

    def test_dna_maximum(self):
        # "... to 9.05 m n^0.896" (scheme (1,-1))
        _lo, hi = paper_bound_extremes(4)
        assert hi.exponent == pytest.approx(0.896, abs=1e-3)
        assert hi.coefficient == pytest.approx(9.05, abs=0.02)
        assert (hi.scheme.sa, hi.scheme.sb) == (1, -1)

    def test_protein_minimum(self):
        # "vary from 8.28 m n^0.364 ..." for proteins
        lo, _hi = paper_bound_extremes(20)
        assert lo.exponent == pytest.approx(0.364, abs=1e-3)
        assert lo.coefficient == pytest.approx(8.28, abs=0.02)

    def test_protein_maximum(self):
        # "... to 7.49 m n^0.723"
        _lo, hi = paper_bound_extremes(20)
        assert hi.exponent == pytest.approx(0.723, abs=1e-3)
        assert hi.coefficient == pytest.approx(7.49, abs=0.02)

    def test_alae_beats_bwt_sw_bound(self):
        # 4.47 m n^0.6038 < 69 m n^0.628 for every realistic n.
        bound = entry_bound(DEFAULT_SCHEME, 4)
        for n in (10**6, 10**9):
            assert bound.entries(1000, n) < bwt_sw_bound(1000, n)

    def test_bwt_sw_bound_value(self):
        assert bwt_sw_bound(1, 1) == 69.0


class TestBoundBehaviour:
    def test_entries_monotone_in_n(self):
        bound = entry_bound(DEFAULT_SCHEME, 4)
        assert bound.entries(100, 10**6) < bound.entries(100, 10**7)

    def test_entries_linear_in_m(self):
        bound = entry_bound(DEFAULT_SCHEME, 4)
        assert bound.entries(200, 10**6) == pytest.approx(
            2 * bound.entries(100, 10**6)
        )

    def test_harsher_mismatch_smaller_exponent(self):
        e2 = entry_bound(ScoringScheme(1, -2, -5, -2), 4).exponent
        e4 = entry_bound(ScoringScheme(1, -4, -5, -2), 4).exponent
        assert e4 < e2

    def test_protein_exponent_below_dna(self):
        dna = entry_bound(DEFAULT_SCHEME, 4).exponent
        prot = entry_bound(DEFAULT_SCHEME, 20).exponent
        assert prot < dna

    def test_k2_below_sigma_on_grid(self):
        # Eq. 4 converges iff k2 < sigma; for sigma >= 3 one can show
        # k2 = s(sigma-1)^(1/s)/(s-1)^((s-1)/s) < sigma for all s >= 2,
        # so the whole BLAST grid is applicable — verify numerically.
        from repro.scoring.scheme import blast_scheme_grid

        for sigma in (3, 4, 20):
            for scheme in blast_scheme_grid():
                b = entry_bound(scheme, sigma)
                assert b.k2 < sigma

    def test_exponent_in_unit_interval(self):
        for scheme in (DEFAULT_SCHEME, ScoringScheme(1, -2, -5, -2)):
            b = entry_bound(scheme, 4)
            assert 0 < b.exponent < 1
