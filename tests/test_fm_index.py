"""FM-index: occ/rank, backward search, locate — against brute force."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DNA
from repro.errors import IndexError_
from repro.index.fm_index import FMIndex


def codes_of(text: str) -> np.ndarray:
    return DNA.encode(text).astype(np.int64) + 1


def brute_occurrences(text: str, pattern: str) -> list[int]:
    """0-based start positions of pattern in text, brute force."""
    return [
        i for i in range(len(text) - len(pattern) + 1)
        if text[i : i + len(pattern)] == pattern
    ]


@pytest.fixture
def fm_small():
    return FMIndex(codes_of("GCTAGCTAGCATGC"), sigma=4, occ_block=4, sa_sample=4)


class TestOcc:
    def test_occ_matches_bwt_prefix_counts(self, rng):
        text = "".join(DNA.chars[int(c)] for c in rng.integers(0, 4, 100))
        fm = FMIndex(codes_of(text), sigma=4, occ_block=8, sa_sample=4)
        bwt = np.frombuffer(fm._bwt, dtype=np.uint8)
        for c in range(5):
            for i in (0, 1, 7, 8, 9, 50, 100, len(bwt)):
                assert fm.occ(c, i) == int(np.count_nonzero(bwt[:i] == c))

    def test_lf_is_permutation(self, fm_small):
        size = fm_small.n + 1
        targets = sorted(fm_small.lf(i) for i in range(size))
        assert targets == list(range(size))


class TestBackwardSearch:
    def test_count_vs_brute(self, rng):
        text = "".join(DNA.chars[int(c)] for c in rng.integers(0, 4, 300))
        fm = FMIndex(codes_of(text), sigma=4)
        for length in (1, 2, 3, 5, 8):
            for _ in range(10):
                start = int(rng.integers(0, 300 - length))
                pattern = text[start : start + length]
                assert fm.count(codes_of(pattern)) == len(
                    brute_occurrences(text, pattern)
                )

    def test_absent_pattern(self):
        fm = FMIndex(codes_of("AAAA"), sigma=4)
        assert fm.count(codes_of("C")) == 0
        assert fm.count(codes_of("AC")) == 0

    def test_empty_pattern_full_range(self, fm_small):
        lo, hi = fm_small.backward_search(np.array([], dtype=np.int64))
        assert (lo, hi) == (0, fm_small.n + 1)

    def test_extend_left_incremental(self):
        text = "GCTAGC"
        fm = FMIndex(codes_of(text), sigma=4)
        # Ranges must agree with direct backward search at each step.
        pattern = "AGC"
        rng_ = fm.full_range()
        for i in range(len(pattern) - 1, -1, -1):
            rng_ = fm.extend_left(rng_, int(codes_of(pattern[i])[0]))
            direct = fm.backward_search(codes_of(pattern[i:]))
            assert rng_ == direct

    def test_extend_empty_range_stays_empty(self, fm_small):
        assert fm_small.extend_left((0, 0), 1) == (0, 0)


class TestLocate:
    def test_locate_vs_brute(self, rng):
        text = "".join(DNA.chars[int(c)] for c in rng.integers(0, 4, 200))
        fm = FMIndex(codes_of(text), sigma=4, sa_sample=8)
        for length in (2, 4, 6):
            start = int(rng.integers(0, 200 - length))
            pattern = text[start : start + length]
            got = sorted(fm.locate(fm.backward_search(codes_of(pattern))))
            assert got == brute_occurrences(text, pattern)

    def test_locate_every_row(self, fm_small):
        # locate_row over the whole SA must be a permutation of positions.
        size = fm_small.n + 1
        positions = sorted(fm_small.locate_row(r) for r in range(size))
        assert positions == list(range(size))

    @settings(max_examples=25, deadline=None)
    @given(st.text(alphabet="ACGT", min_size=4, max_size=100), st.integers(0, 200))
    def test_property_locate(self, text, seed):
        rng = np.random.default_rng(seed)
        fm = FMIndex(codes_of(text), sigma=4, occ_block=8, sa_sample=4)
        length = int(rng.integers(1, min(6, len(text)) + 1))
        start = int(rng.integers(0, len(text) - length + 1))
        pattern = text[start : start + length]
        got = sorted(fm.locate(fm.backward_search(codes_of(pattern))))
        assert got == brute_occurrences(text, pattern)


class TestSizeAndValidation:
    def test_size_breakdown_totals(self, fm_small):
        sizes = fm_small.size_bytes()
        parts = sizes["bwt"] + sizes["occ_checkpoints"] + sizes["sa_samples"]
        parts += sizes["c_array"]
        assert sizes["total"] == parts

    def test_dna_bwt_two_bits_per_char(self):
        fm = FMIndex(codes_of("ACGT" * 256), sigma=4)
        # ceil(log2(5)) = 3 bits per char in our model (sentinel included).
        assert fm.size_bytes()["bwt"] == (1024 + 1) * 3 // 8 + 1

    def test_rejects_out_of_range_codes(self):
        with pytest.raises(IndexError_):
            FMIndex(np.array([1, 9]), sigma=4)
