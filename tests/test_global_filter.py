"""Online bit-matrix global filter (Sec. 3.2.1 / Theorem 4)."""

import numpy as np

from repro import ALAE, DEFAULT_SCHEME, smith_waterman_all_hits
from repro.core.global_filter import GlobalBitMatrix


class TestBitMatrix:
    def test_mark_and_check(self):
        g = GlobalBitMatrix(10, 5)
        g.mark([3, 7], 2)
        assert g.all_marked([3], 2)
        assert g.all_marked([3, 7], 2)
        assert not g.all_marked([3, 8], 2)
        assert not g.all_marked([3], 3)

    def test_empty_ends_never_marked(self):
        g = GlobalBitMatrix(10, 5)
        assert not g.all_marked([], 1)
        g.mark([], 1)  # no-op
        assert g.marked_cells() == 0

    def test_marked_cells_counts(self):
        g = GlobalBitMatrix(10, 5)
        g.mark([1, 2, 3], 4)
        g.mark([1], 4)  # idempotent
        assert g.marked_cells() == 3

    def test_size_one_bit_per_cell(self):
        g = GlobalBitMatrix(100, 50)
        assert g.size_bytes() == (101 * 51 + 7) // 8

    def test_paper_example_vector(self):
        # Sec. 3.2.1: after processing M_X' for X' = GCTA in T = GCTAGCTA,
        # the (1,2)-entry check for X = CTAG passes (z AND column == z).
        g = GlobalBitMatrix(8, 5)
        # Mark the diagonal of the GCTA fork at columns 1..4 and 5,
        # matching the example's boolean matrix (ends 1..8 diag pattern).
        for end, j in [(1, 1), (2, 2), (3, 3), (4, 4), (1, 5),
                       (5, 1), (6, 2), (7, 3), (8, 4)]:
            g.mark([end], j)
        # X = CTAG starts at position 2 -> its (1, 2)-entry has end 2.
        assert g.all_marked([2], 2)


class TestEngineWithBitmask:
    def test_exactness_preserved(self, rng):
        text = "".join("AC"[int(c)] for c in rng.integers(0, 2, 150))
        query = "".join("AC"[int(c)] for c in rng.integers(0, 2, 25))
        for threshold in (2, 5):
            sw = smith_waterman_all_hits(text, query, DEFAULT_SCHEME, threshold)
            res = ALAE(text, use_global_bitmask=True).search(
                query, threshold=threshold
            )
            assert res.hits.as_score_set() == sw.as_score_set()

    def test_bitmask_skips_on_repetitive_text(self):
        # Heavy repetition: later forks' seed cells are covered by earlier
        # longer paths, so Theorem 4 case 2 fires.
        text = "GCTA" * 30
        query = "GCTA" * 5
        res = ALAE(text, use_global_bitmask=True, use_domination=False).search(
            query, threshold=8
        )
        assert res.stats.forks_skipped_global > 0
        sw = smith_waterman_all_hits(text, query, DEFAULT_SCHEME, 8)
        assert res.hits.as_score_set() == sw.as_score_set()

    def test_stats_expose_bitmask_cells(self):
        text = "GCTA" * 10
        res = ALAE(text, use_global_bitmask=True).search("GCTAGCTA", threshold=4)
        assert res.stats.extra["bitmask_cells"] > 0

    def test_disabled_by_default(self):
        text = "GCTA" * 10
        res = ALAE(text).search("GCTAGCTA", threshold=4)
        assert "bitmask_cells" not in res.stats.extra
        assert res.stats.forks_skipped_global == 0
