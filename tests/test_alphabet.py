"""Alphabet validation, encoding and generation."""

import numpy as np
import pytest

from repro import DNA, PROTEIN
from repro.alphabet import Alphabet
from repro.alphabet.alphabet import SENTINEL, SEPARATOR
from repro.errors import AlphabetError


class TestAlphabetConstruction:
    def test_dna_size(self):
        assert DNA.size == 4
        assert len(DNA) == 4

    def test_protein_size(self):
        assert PROTEIN.size == 20

    def test_dna_chars_sorted(self):
        assert DNA.chars == "ACGT"

    def test_duplicate_chars_rejected(self):
        with pytest.raises(AlphabetError):
            Alphabet("bad", "AAC")

    def test_unsorted_chars_rejected(self):
        with pytest.raises(AlphabetError):
            Alphabet("bad", "CA")

    def test_sentinel_reserved(self):
        with pytest.raises(AlphabetError):
            Alphabet("bad", "$A")

    def test_separator_reserved(self):
        with pytest.raises(AlphabetError):
            Alphabet("bad", "#A")

    def test_reserved_chars_distinct(self):
        assert SENTINEL != SEPARATOR


class TestIndexing:
    def test_index_roundtrip(self):
        for i, c in enumerate(DNA.chars):
            assert DNA.index(c) == i

    def test_index_unknown_raises(self):
        with pytest.raises(AlphabetError):
            DNA.index("Z")

    def test_contains(self):
        assert "A" in DNA
        assert "B" not in DNA
        assert "B" in PROTEIN or "B" not in PROTEIN  # B is not an amino code
        assert "W" in PROTEIN


class TestValidation:
    def test_validate_ok(self):
        DNA.validate("ACGTACGT")

    def test_validate_empty_ok(self):
        DNA.validate("")

    def test_validate_bad(self):
        with pytest.raises(AlphabetError) as err:
            DNA.validate("ACGU")
        assert "U" in str(err.value)

    def test_is_valid(self):
        assert DNA.is_valid("GATTACA")
        assert not DNA.is_valid("GATTACA!")


class TestEncoding:
    def test_encode_decode_roundtrip(self):
        seq = "GATTACA"
        codes = DNA.encode(seq)
        assert codes.dtype == np.uint8
        assert DNA.decode(codes) == seq

    def test_encode_values(self):
        assert DNA.encode("ACGT").tolist() == [0, 1, 2, 3]

    def test_encode_rejects_foreign(self):
        with pytest.raises(AlphabetError):
            DNA.encode("ACGX")

    def test_protein_roundtrip(self):
        seq = "MKWVTFISLLLLFSSAYS".replace("B", "A")
        seq = "".join(c for c in seq if c in PROTEIN.chars)
        assert PROTEIN.decode(PROTEIN.encode(seq)) == seq


class TestRandom:
    def test_random_sequence_length_and_alphabet(self, rng):
        seq = DNA.random_sequence(500, rng)
        assert len(seq) == 500
        assert set(seq) <= set(DNA.chars)

    def test_random_sequence_zero(self, rng):
        assert DNA.random_sequence(0, rng) == ""

    def test_random_sequence_negative(self, rng):
        with pytest.raises(AlphabetError):
            DNA.random_sequence(-1, rng)

    def test_random_sequence_uses_all_chars(self, rng):
        seq = PROTEIN.random_sequence(5000, rng)
        assert set(seq) == set(PROTEIN.chars)
