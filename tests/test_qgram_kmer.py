"""Query q-gram inverted lists and text k-mer hash index."""

import pytest

from repro.index.kmer_index import KmerIndex
from repro.index.qgram import QGramIndex


class TestQGramIndex:
    def test_positions_sorted_1based(self):
        idx = QGramIndex("GCTAGCTA", 4)
        assert idx.positions("GCTA") == [1, 5]
        assert idx.positions("CTAG") == [2]

    def test_absent_gram(self):
        idx = QGramIndex("GCTAGCTA", 4)
        assert idx.positions("AAAA") == []
        assert "AAAA" not in idx

    def test_number_of_windows(self):
        query = "ACGTACGTAC"
        idx = QGramIndex(query, 3)
        total = sum(len(idx.positions(g)) for g in idx.grams())
        assert total == len(query) - 3 + 1

    def test_query_shorter_than_q(self):
        idx = QGramIndex("AC", 4)
        assert len(idx) == 0

    def test_q_one(self):
        idx = QGramIndex("AABA".replace("B", "C"), 1)
        assert idx.positions("A") == [1, 2, 4]

    def test_invalid_q(self):
        with pytest.raises(ValueError):
            QGramIndex("ACGT", 0)

    def test_grams_distinct(self):
        idx = QGramIndex("AAAAAA", 2)
        assert idx.grams() == ["AA"]
        assert idx.positions("AA") == [1, 2, 3, 4, 5]


class TestKmerIndex:
    def test_positions(self):
        idx = KmerIndex("GCTAGCTA", 4)
        assert idx.positions("GCTA").tolist() == [1, 5]

    def test_absent(self):
        idx = KmerIndex("GCTAGCTA", 4)
        assert idx.positions("TTTT").size == 0
        assert "TTTT" not in idx

    def test_len_counts_distinct(self):
        idx = KmerIndex("AAAA", 2)
        assert len(idx) == 1

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            KmerIndex("ACGT", 0)

    def test_text_shorter_than_k(self):
        idx = KmerIndex("AC", 4)
        assert len(idx) == 0
