"""CLI behaviour: search / analyze / generate."""

import pytest

from repro.cli import _load_sequence, _parse_scheme, build_parser, main


class TestHelpers:
    def test_parse_scheme(self):
        scheme = _parse_scheme("1,-3,-5,-2")
        assert scheme.as_tuple() == (1, -3, -5, -2)

    def test_parse_scheme_angled(self):
        assert _parse_scheme("<1,-4,-5,-2>").sb == -4

    def test_parse_scheme_invalid(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            _parse_scheme("1,-3,-5")

    def test_load_sequence_literal(self):
        assert _load_sequence("acgt") == "ACGT"

    def test_load_sequence_fasta(self, tmp_path):
        path = tmp_path / "x.fa"
        path.write_text(">a\nAC\n>b\nGT\n")
        assert _load_sequence(str(path)) == "ACGT"


class TestCommands:
    def test_search_alae(self, capsys):
        code = main(
            ["search", "GCTAGCTAGCAT", "GCTAG", "--threshold", "4"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "H=4" in out
        assert "\t5\t5\t5" in out  # the perfect GCTAG match

    def test_search_each_engine(self, capsys):
        for engine in ("alae", "bwtsw", "blast"):
            code = main(
                ["search", "GCTAGCTAGCATGCTAG", "GCTAG",
                 "--threshold", "5", "--engine", engine]
            )
            assert code == 0

    def test_search_custom_scheme(self, capsys):
        code = main(
            ["search", "GCTAGCTA", "GCTA", "--threshold", "3",
             "--scheme", "1,-4,-5,-2"]
        )
        assert code == 0

    def test_analyze(self, capsys):
        assert main(["analyze"]) == 0
        out = capsys.readouterr().out
        assert "0.6038" in out  # the default scheme's exponent appears

    def test_analyze_protein(self, capsys):
        assert main(["analyze", "--alphabet", "protein"]) == 0

    def test_generate(self, tmp_path, capsys):
        out_path = tmp_path / "g.fa"
        code = main(
            ["generate", "--length", "500", "--seed", "3",
             "--out", str(out_path)]
        )
        assert code == 0
        content = out_path.read_text()
        assert content.startswith(">synthetic_dna")
        assert sum(len(line) for line in content.splitlines()[1:]) == 500

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
