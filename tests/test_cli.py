"""CLI behaviour: search / search-db / analyze / generate."""

import argparse

import pytest

from repro.cli import _load_records, _parse_scheme, build_parser, main


class TestHelpers:
    def test_parse_scheme(self):
        scheme = _parse_scheme("1,-3,-5,-2")
        assert scheme.as_tuple() == (1, -3, -5, -2)

    def test_parse_scheme_angled(self):
        assert _parse_scheme("<1,-4,-5,-2>").sb == -4

    def test_parse_scheme_invalid(self):
        with pytest.raises(argparse.ArgumentTypeError):
            _parse_scheme("1,-3,-5")

    @pytest.mark.parametrize(
        "value", ["1,3,5,2", "0,-3,-5,-2", "1,-3,5,-2", "1,-3,-5,2", "-1,-3,-5,-2"]
    )
    def test_parse_scheme_rejects_bad_signs(self, value):
        """Positive penalties / non-positive match must fail at parse time."""
        with pytest.raises(argparse.ArgumentTypeError, match="invalid"):
            _parse_scheme(value)

    def test_parse_scheme_rejects_non_integer(self):
        with pytest.raises(argparse.ArgumentTypeError, match="integers"):
            _parse_scheme("1,-3,-5,x")

    def test_load_records_literal(self):
        (record,) = _load_records("acgt", default_id="query")
        assert record.identifier == "query"
        assert record.sequence == "ACGT"

    def test_load_records_fasta_keeps_records(self, tmp_path):
        path = tmp_path / "x.fa"
        path.write_text(">a\nAC\n>b\nGT\n")
        records = _load_records(str(path), default_id="x")
        assert [(r.identifier, r.sequence) for r in records] == [
            ("a", "AC"), ("b", "GT"),
        ]


class TestSearch:
    def test_search_alae(self, capsys):
        code = main(
            ["search", "GCTAGCTAGCAT", "GCTAG", "--threshold", "4"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "H=4" in out
        assert "query\ttext\t1\t5\t5\t5" in out  # the perfect GCTAG match

    def test_search_each_engine(self, capsys):
        for engine in ("alae", "bwtsw", "blast"):
            code = main(
                ["search", "GCTAGCTAGCATGCTAG", "GCTAG",
                 "--threshold", "5", "--engine", engine]
            )
            assert code == 0

    def test_search_custom_scheme(self, capsys):
        code = main(
            ["search", "GCTAGCTA", "GCTA", "--threshold", "3",
             "--scheme", "1,-4,-5,-2"]
        )
        assert code == 0

    def test_search_boundary_hit_dropped(self, tmp_path, capsys):
        """Regression: a hit spanning two database sequences is not reported.

        The only raw hit for the query is the concatenation artifact
        ``AT + TT`` across the record boundary; the old CLI concatenated the
        records without offsets and happily reported it.
        """
        db = tmp_path / "db.fa"
        db.write_text(">left\nGCGCGCAT\n>right\nTTGCGCGC\n")
        code = main(["search", str(db), "ATTT", "--threshold", "4"])
        assert code == 0
        captured = capsys.readouterr()
        assert "hits=0" in captured.out
        assert "dropped=1" in captured.out
        # No hit rows at all (every line is a comment).
        rows = [
            line for line in captured.out.splitlines()
            if line and not line.startswith("#")
        ]
        assert rows == []

    def test_search_multi_record_query(self, tmp_path, capsys):
        queries = tmp_path / "q.fa"
        queries.write_text(">q1\nGCTAG\n>q2\nAGCAT\n")
        code = main(
            ["search", "GCTAGCTAGCAT", str(queries), "--threshold", "5"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "query=q1" in out
        assert "query=q2" in out
        assert "q1\ttext\t1\t5\t5\t5" in out
        assert "q2\ttext\t8\t12\t5\t5" in out

    def test_search_hits_attributed_per_sequence(self, tmp_path, capsys):
        db = tmp_path / "db.fa"
        db.write_text(">chr1\nGCTAGAAAA\n>chr2\nAAAAGCTAG\n")
        code = main(["search", str(db), "GCTAG", "--threshold", "5"])
        assert code == 0
        out = capsys.readouterr().out
        # Same local coordinates in both records, attributed separately.
        assert "query\tchr1\t1\t5\t5\t5" in out
        assert "query\tchr2\t5\t9\t5\t5" in out

    def test_search_workers_same_output(self, tmp_path, capsys):
        queries = tmp_path / "q.fa"
        queries.write_text(">q1\nGCTAG\n>q2\nAGCAT\n>q3\nTAGCA\n")
        main(["search", "GCTAGCTAGCAT", str(queries), "--threshold", "4"])
        solo = capsys.readouterr().out
        main(
            ["search", "GCTAGCTAGCAT", str(queries), "--threshold", "4",
             "--workers", "3"]
        )
        pooled = capsys.readouterr().out
        assert solo == pooled


class TestSearchDb:
    def test_search_db(self, tmp_path, capsys):
        db = tmp_path / "db.fa"
        db.write_text(">a\nGCTAGCTAGCAT\n>b\nTTTTGCTAGTTT\n")
        queries = tmp_path / "q.fa"
        queries.write_text(">q1\nGCTAG\n")
        code = main(["search-db", str(db), str(queries), "--threshold", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "q1\ta\t1\t5\t5\t5" in out
        assert "q1\tb\t5\t9\t5\t5" in out

    def test_search_db_missing_file(self, tmp_path, capsys):
        db = tmp_path / "db.fa"
        db.write_text(">a\nGCTAG\n")
        code = main(["search-db", str(db), str(tmp_path / "nope.fa")])
        assert code == 2
        assert "does not exist" in capsys.readouterr().err

    def test_search_db_process_pool(self, tmp_path, capsys):
        db = tmp_path / "db.fa"
        db.write_text(">a\nGCTAGCTAGCAT\n")
        queries = tmp_path / "q.fa"
        queries.write_text(">q1\nGCTAG\n>q2\nAGCAT\n")
        code = main(
            ["search-db", str(db), str(queries), "--threshold", "5",
             "--workers", "2", "--executor", "processes"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "q1\ta\t1\t5\t5\t5" in out


class TestOtherCommands:
    def test_analyze(self, capsys):
        assert main(["analyze"]) == 0
        out = capsys.readouterr().out
        assert "0.6038" in out  # the default scheme's exponent appears

    def test_analyze_protein(self, capsys):
        assert main(["analyze", "--alphabet", "protein"]) == 0

    def test_generate(self, tmp_path, capsys):
        out_path = tmp_path / "g.fa"
        code = main(
            ["generate", "--length", "500", "--seed", "3",
             "--out", str(out_path)]
        )
        assert code == 0
        content = out_path.read_text()
        assert content.startswith(">synthetic_dna")
        assert sum(len(line) for line in content.splitlines()[1:]) == 500

    def test_invalid_alphabet_sequence_is_clean_error(self, capsys):
        code = main(["search", "GCTAG", "QQQQ", "--threshold", "4"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestTopKOption:
    def test_search_top_k_prints_only_best(self, capsys):
        full = main(["search", "GCTAGCTAGCAT", "GCTAG", "--threshold", "4"])
        assert full == 0
        full_out = capsys.readouterr().out
        code = main(
            ["search", "GCTAGCTAGCAT", "GCTAG", "--threshold", "4",
             "--top-k", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        (summary,) = [l for l in out.splitlines() if l.startswith("# query=")]
        assert "hits=1" in summary
        # The single kept hit is the best-scoring one of the full run.
        hit_lines = [l for l in out.splitlines() if not l.startswith("#")]
        full_scores = [
            int(l.split("\t")[-1])
            for l in full_out.splitlines()
            if not l.startswith("#")
        ]
        assert len(hit_lines) == 1
        assert int(hit_lines[0].split("\t")[-1]) == max(full_scores)


class TestServeQueryCli:
    @pytest.fixture(scope="class")
    def served(self, tmp_path_factory):
        """A built store, a query FASTA, and a live server for the class."""
        import numpy as np

        from repro import IndexStore, genome, write_fasta
        from repro.io.database import SequenceDatabase
        from repro.io.fasta import FastaRecord
        from repro.server import SearchServer, ServerThread

        root = tmp_path_factory.mktemp("cli-serving")
        rng = np.random.default_rng(41)
        records = [
            FastaRecord(f"chr{i}", genome(1_500, rng)) for i in range(1, 4)
        ]
        db_fa = root / "db.fa"
        write_fasta(records, db_fa)
        store_path = root / "db.idx"
        IndexStore.build(SequenceDatabase.from_fasta(db_fa)).save(store_path)
        queries_fa = root / "q.fa"
        write_fasta(
            [
                FastaRecord("q1", records[0].sequence[100:160]),
                FastaRecord("q2", records[2].sequence[300:360]),
            ],
            queries_fa,
        )
        server = SearchServer(store_path, port=0, reload_poll=0)
        with ServerThread(server) as handle:
            yield {
                "store": store_path,
                "queries": queries_fa,
                "port": handle.port,
            }

    def test_query_matches_search_db_byte_for_byte(self, served, capsys):
        code = main(
            ["search-db", "--index", str(served["store"]),
             str(served["queries"]), "--threshold", "30"]
        )
        assert code == 0
        offline = capsys.readouterr().out
        code = main(
            ["query", str(served["queries"]), "--port", str(served["port"]),
             "--threshold", "30"]
        )
        assert code == 0
        assert capsys.readouterr().out == offline

    def test_query_top_k_matches_search_db(self, served, capsys):
        code = main(
            ["search-db", "--index", str(served["store"]),
             str(served["queries"]), "--threshold", "30", "--top-k", "2"]
        )
        assert code == 0
        offline = capsys.readouterr().out
        code = main(
            ["query", str(served["queries"]), "--port", str(served["port"]),
             "--threshold", "30", "--top-k", "2"]
        )
        assert code == 0
        assert capsys.readouterr().out == offline

    def test_query_stats_prints_json(self, served, capsys):
        import json

        code = main(["query", "--stats", "--port", str(served["port"])])
        assert code == 0
        body = json.loads(capsys.readouterr().out)
        assert body["engine"] == "alae"
        assert "queries_total" in body["stats"]

    def test_query_requires_queries_or_stats(self, capsys):
        code = main(["query", "--port", "7781"])
        assert code == 2
        assert "queries argument" in capsys.readouterr().err

    def test_query_against_dead_port_is_clean_error(self, capsys):
        import socket

        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            free_port = probe.getsockname()[1]
        code = main(["query", "ACGTACGT", "--port", str(free_port)])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_serve_rejects_missing_index(self, tmp_path, capsys):
        code = main(["serve", "--index", str(tmp_path / "nope.idx")])
        assert code == 2
        assert "does not exist" in capsys.readouterr().err

    def test_serve_gates_shard_manifests(self, tmp_path, capsys):
        import numpy as np

        from repro import ShardedStore, genome
        from repro.io.database import SequenceDatabase
        from repro.io.fasta import FastaRecord

        rng = np.random.default_rng(43)
        database = SequenceDatabase(
            [FastaRecord(f"chr{i}", genome(600, rng)) for i in range(1, 4)]
        )
        manifest = tmp_path / "db.shd"
        ShardedStore.build(database, manifest, shards=2)
        code = main(["serve", "--index", str(manifest)])
        assert code == 2
        assert "--shards-ok" in capsys.readouterr().err
