"""BASIC algorithm (Algorithm 1) specifics beyond engine equivalence."""

from repro import DEFAULT_SCHEME, basic_search, smith_waterman_all_hits


class TestBasicSearch:
    def test_paper_figure1_matrix(self):
        # Fig. 1 computes M_X for X = GCTA vs P = GCTAG; the diagonal cells
        # 1..4 and the negative gap cells around them. The A-fold keeps the
        # positives that reach the threshold.
        res = basic_search("GCTA", "GCTAG", DEFAULT_SCHEME, 1)
        assert res.score_of(4, 4) == 4
        assert res.score_of(3, 3) == 3
        assert res.score_of(1, 1) == 1

    def test_fig1_gap_cell(self):
        # M_X(4, 5) in Fig. 1 is -3 (mismatch path) but the best alignment
        # ending at (4, 5) in the full problem is via the gap: 4 - 7 < 0, so
        # the cell never reaches a positive threshold.
        res = basic_search("GCTA", "GCTAG", DEFAULT_SCHEME, 1)
        assert res.score_of(4, 5) is None

    def test_empty_inputs(self):
        assert len(basic_search("", "ACGT", DEFAULT_SCHEME, 1)) == 0
        assert len(basic_search("ACGT", "", DEFAULT_SCHEME, 1)) == 0
        assert len(basic_search("ACGT", "ACGT", DEFAULT_SCHEME, 0)) == 0

    def test_threshold_monotonicity(self):
        text, query = "GCTAGCTAGG", "GCTAG"
        low = basic_search(text, query, DEFAULT_SCHEME, 1)
        high = basic_search(text, query, DEFAULT_SCHEME, 4)
        assert len(high) <= len(low)
        assert high.as_score_set() <= low.as_score_set()

    def test_t_start_recorded(self):
        res = basic_search("TTGCTATT", "GCTA", DEFAULT_SCHEME, 4)
        hits = res.hits()
        assert len(hits) == 1
        assert hits[0].t_start == 3
        assert hits[0].t_end == 6

    def test_matches_sw_on_repeat(self):
        text, query = "ATATATATAT", "TATA"
        for h in (1, 2, 4):
            assert (
                basic_search(text, query, DEFAULT_SCHEME, h).as_score_set()
                == smith_waterman_all_hits(
                    text, query, DEFAULT_SCHEME, h
                ).as_score_set()
            )
