"""Index store: round-trip exactness, corruption rejection, cache, serving."""

from __future__ import annotations

import multiprocessing
import struct

import numpy as np
import pytest

from repro import DNA, PROTEIN, SearchService, StoreError, genome, write_fasta
from repro.cli import main as cli_main
from repro.io.database import SequenceDatabase
from repro.io.fasta import FastaRecord
from repro.scoring.scheme import DEFAULT_SCHEME, ScoringScheme
from repro.service import ServiceError
from repro.store import FORMAT_VERSION, MAGIC, IndexStore, StoreCache
from repro.store.format import read_header


def make_database(alphabet=DNA, records=3, length=300, seed=11):
    rng = np.random.default_rng(seed)
    return SequenceDatabase(
        [
            FastaRecord(
                header=f"chr{i} synthetic",
                sequence=genome(length, rng, alphabet=alphabet),
            )
            for i in range(1, records + 1)
        ]
    )


@pytest.fixture(scope="module")
def dna_database():
    return make_database()


@pytest.fixture(scope="module")
def dna_store_path(dna_database, tmp_path_factory):
    path = tmp_path_factory.mktemp("store") / "dna.idx"
    IndexStore.build(dna_database).save(path)
    return path


def queries_for(database):
    chr2 = database.records[1].sequence
    return [chr2[50:110], chr2[120:150] + chr2[156:186]]


def stats_key(stats):
    """Every deterministic stats field (wall-clock excluded)."""
    return (
        stats.calculated_x1, stats.calculated_x2, stats.calculated_x3,
        stats.reused, stats.forks_seeded, stats.forks_skipped_domination,
        stats.nodes_visited, stats.emr_assigned, stats.grams_absent_in_text,
    )


class TestRoundTrip:
    @pytest.mark.parametrize(
        "alphabet,scheme",
        [
            (DNA, DEFAULT_SCHEME),
            (DNA, ScoringScheme(1, -4, -5, -2)),
            (DNA, ScoringScheme(2, -3, -4, -2)),
            (PROTEIN, ScoringScheme(1, -3, -11, -1)),
        ],
        ids=["dna-default", "dna-harsh", "dna-sa2", "protein"],
    )
    def test_loaded_engine_bit_identical(self, tmp_path, alphabet, scheme):
        """A reloaded engine returns identical hits *and* stats."""
        database = make_database(alphabet=alphabet, length=250)
        path = tmp_path / "store.idx"
        IndexStore.build(database, alphabet=alphabet, scheme=scheme).save(path)

        fresh = SearchService(database, alphabet=alphabet, scheme=scheme)
        loaded = SearchService.from_store(path)
        assert loaded.alphabet.chars == alphabet.chars
        assert loaded.scheme == scheme
        for query in queries_for(database):
            a = fresh.search(query, threshold=25)
            b = loaded.search(query, threshold=25)
            assert a.hits == b.hits
            assert a.threshold == b.threshold
            assert stats_key(a.stats) == stats_key(b.stats)

    def test_database_round_trip(self, dna_database, dna_store_path):
        reopened = IndexStore.open(dna_store_path).database()
        assert reopened.text == dna_database.text
        assert reopened.boundaries() == dna_database.boundaries()
        assert reopened.identifiers == dna_database.identifiers
        assert [r.header for r in reopened.records] == [
            r.header for r in dna_database.records
        ]

    def test_loaded_size_accounting_matches_store(
        self, dna_database, dna_store_path
    ):
        """`actual` size components equal the store's serialized bytes."""
        store = IndexStore.open(dna_store_path)
        sizes = store.engine().index_size_bytes()
        on_disk = store.size_bytes()
        fm_bytes = sum(
            size
            for name, size in on_disk.items()
            if name.startswith("fm_")
        )
        dom_bytes = sum(
            size
            for name, size in on_disk.items()
            if name.startswith("dom_")
        )
        assert sizes["bwt_index_actual"] == fm_bytes
        assert sizes["dominate_index_actual"] == dom_bytes

    def test_unsaved_store_serves_directly(self, dna_database):
        store = IndexStore.build(dna_database)
        assert store.path is None
        service = SearchService(store=store)
        result = service.search(queries_for(dna_database)[0], threshold=25)
        assert result.hits

    def test_newline_header_rejected(self):
        with pytest.raises(StoreError, match="newline"):
            IndexStore.build([FastaRecord(header="a\nb", sequence="ACGT" * 10)])


class TestServing:
    def test_spawn_and_fork_match_threads(self, dna_database, dna_store_path):
        """Acceptance: a store reopened in fresh processes (spawn) and in
        forked workers yields byte-identical hit sets and scores."""
        fresh = SearchService(dna_database)
        served = SearchService.from_store(dna_store_path)
        queries = queries_for(dna_database)
        baseline = fresh.search_batch(queries, threshold=25)
        for executor in ("threads", "processes", "spawn"):
            report = served.search_batch(
                queries, threshold=25, workers=2, executor=executor
            )
            assert report.executor == executor
            assert [r.hits for r in report.results] == [
                r.hits for r in baseline.results
            ]
            assert [stats_key(r.stats) for r in report.results] == [
                stats_key(r.stats) for r in baseline.results
            ]

    def test_spawn_needs_saved_store(self, dna_database):
        with pytest.raises(ServiceError, match="saved index store"):
            SearchService(dna_database, executor="spawn")
        unsaved = IndexStore.build(dna_database)
        with pytest.raises(ServiceError, match="saved index store"):
            SearchService(store=unsaved, executor="spawn")

    def test_processes_falls_back_to_spawn_with_store(
        self, dna_store_path, monkeypatch
    ):
        monkeypatch.setattr(
            multiprocessing, "get_all_start_methods", lambda: ["spawn"]
        )
        service = SearchService.from_store(dna_store_path)
        queries = queries_for(service.database)
        report = service.search_batch(
            queries, threshold=25, workers=2, executor="processes"
        )
        assert report.executor == "spawn"
        assert report.total_hits > 0

    def test_processes_degrades_to_threads_without_store(
        self, dna_database, monkeypatch
    ):
        monkeypatch.setattr(
            multiprocessing, "get_all_start_methods", lambda: ["spawn"]
        )
        with pytest.warns(RuntimeWarning, match="degrading to 'threads'"):
            service = SearchService(dna_database, executor="processes")
        assert service.executor == "threads"
        report = service.search_batch(
            queries_for(dna_database), threshold=25, workers=2
        )
        assert report.executor == "threads"
        assert report.total_hits > 0

    def test_spawn_rejects_store_rebuilt_in_place(self, tmp_path):
        """A store rewritten under a live service is a hard error, never
        a batch silently mixing results from two databases."""
        path = tmp_path / "live.idx"
        database = make_database(length=200, seed=3)
        IndexStore.build(database).save(path)
        service = SearchService.from_store(path)
        IndexStore.build(make_database(length=200, seed=4)).save(path)
        with pytest.raises(ServiceError, match="changed on disk"):
            list(
                service.iter_results(
                    queries_for(database), threshold=25,
                    workers=2, executor="spawn",
                )
            )

    def test_store_with_database_rejected(self, dna_database, dna_store_path):
        with pytest.raises(ServiceError, match="not both"):
            SearchService(dna_database, store=dna_store_path)

    def test_store_with_other_engine_rejected(self, dna_store_path):
        with pytest.raises(ServiceError, match="ALAE"):
            SearchService(store=dna_store_path, engine="bwtsw")

    def test_engine_toggles_forwarded(self, dna_store_path):
        service = SearchService(
            store=dna_store_path, engine_kwargs={"use_domination": False}
        )
        assert service.engine.use_domination is False
        with pytest.raises(StoreError, match="unsupported engine option"):
            SearchService(
                store=dna_store_path, engine_kwargs={"occ_block": 64}
            )


class TestRejection:
    def test_truncated_file(self, dna_store_path, tmp_path):
        raw = dna_store_path.read_bytes()
        clipped = tmp_path / "clipped.idx"
        clipped.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(StoreError, match="truncated"):
            IndexStore.open(clipped)
        assert IndexStore.verify(clipped)

    def test_truncated_header(self, tmp_path):
        stub = tmp_path / "stub.idx"
        stub.write_bytes(MAGIC[:4])
        with pytest.raises(StoreError, match="truncated"):
            IndexStore.open(stub)

    def test_bad_magic(self, dna_store_path, tmp_path):
        raw = bytearray(dna_store_path.read_bytes())
        raw[:8] = b"NOTANIDX"
        bad = tmp_path / "bad_magic.idx"
        bad.write_bytes(bytes(raw))
        with pytest.raises(StoreError, match="magic"):
            IndexStore.open(bad)

    def test_version_skew(self, dna_store_path, tmp_path):
        raw = bytearray(dna_store_path.read_bytes())
        raw[8:12] = struct.pack("<I", FORMAT_VERSION + 1)
        skewed = tmp_path / "skewed.idx"
        skewed.write_bytes(bytes(raw))
        with pytest.raises(StoreError, match="version"):
            IndexStore.open(skewed)

    def test_alphabet_fingerprint_mismatch(self, dna_store_path):
        with pytest.raises(StoreError, match="alphabet"):
            SearchService(store=dna_store_path, alphabet=PROTEIN)

    def test_scheme_fingerprint_mismatch(self, dna_store_path):
        with pytest.raises(StoreError, match="scheme"):
            SearchService(
                store=dna_store_path, scheme=ScoringScheme(1, -4, -5, -2)
            )

    def test_verify_detects_any_single_flipped_byte(
        self, dna_store_path, tmp_path
    ):
        """Acceptance: one flipped byte anywhere fails verification."""
        raw = dna_store_path.read_bytes()
        _, data_start = read_header(dna_store_path)
        # Header, data start, array interior, padding region, trailer.
        probes = [
            9, 17, 25, data_start, data_start + 100,
            len(raw) // 2, len(raw) - 10, len(raw) - 1,
        ]
        target = tmp_path / "flipped.idx"
        for offset in probes:
            flipped = bytearray(raw)
            flipped[offset] ^= 0x01
            target.write_bytes(bytes(flipped))
            problems = IndexStore.verify(target)
            assert problems, f"flip at offset {offset} went undetected"
        target.write_bytes(raw)
        assert IndexStore.verify(target) == []


class TestStoreCache:
    def test_same_file_shares_instance(self, dna_store_path):
        cache = StoreCache(capacity=4)
        first = cache.get(dna_store_path)
        assert cache.get(dna_store_path) is first
        assert len(cache) == 1

    def test_rewritten_file_reopens(self, tmp_path):
        path = tmp_path / "evolving.idx"
        IndexStore.build(make_database(length=200, seed=1)).save(path)
        cache = StoreCache(capacity=4)
        first = cache.get(path)
        IndexStore.build(make_database(length=260, seed=2)).save(path)
        second = cache.get(path)
        assert second is not first
        assert second.header["database"] != first.header["database"]

    def test_mtime_aliased_rewrite_misses(self, tmp_path, dna_database):
        """A rebuild the filesystem timestamps can't distinguish still
        misses: the header CRC in the key covers the fingerprint."""
        import os

        from repro.scoring.scheme import ScoringScheme

        path = tmp_path / "alias.idx"
        IndexStore.build(dna_database, scheme=DEFAULT_SCHEME).save(path)
        cache = StoreCache()
        first = cache.get(path)
        stat = path.stat()
        IndexStore.build(
            dna_database, scheme=ScoringScheme(1, -4, -5, -2)
        ).save(path)
        os.utime(path, ns=(stat.st_atime_ns, stat.st_mtime_ns))
        second = cache.get(path)
        assert second is not first
        assert second.scheme != first.scheme

    def test_lru_eviction(self, tmp_path):
        cache = StoreCache(capacity=1)
        paths = []
        for i in range(2):
            path = tmp_path / f"s{i}.idx"
            IndexStore.build(make_database(length=150 + 30 * i, seed=i)).save(
                path
            )
            paths.append(path)
        a = cache.get(paths[0])
        cache.get(paths[1])
        assert len(cache) == 1
        assert cache.get(paths[0]) is not a  # evicted, reopened

    def test_capacity_validated(self):
        with pytest.raises(ValueError, match="capacity"):
            StoreCache(capacity=0)


class TestCli:
    @pytest.fixture()
    def fasta_pair(self, tmp_path, dna_database):
        db_path = tmp_path / "db.fa"
        write_fasta(dna_database.records, db_path)
        query_path = tmp_path / "q.fa"
        write_fasta(
            [
                FastaRecord(header=f"q{i}", sequence=seq)
                for i, seq in enumerate(queries_for(dna_database), start=1)
            ],
            query_path,
        )
        return db_path, query_path

    def test_build_info_verify(self, tmp_path, fasta_pair, capsys):
        db_path, _ = fasta_pair
        out = tmp_path / "db.idx"
        assert cli_main(["index", "build", str(db_path), "--out", str(out)]) == 0
        assert out.exists()
        assert cli_main(["index", "info", str(out)]) == 0
        info = capsys.readouterr().out
        assert "fingerprint" in info and "db_text" in info
        assert cli_main(["index", "verify", str(out)]) == 0

    def test_verify_fails_on_corruption(self, tmp_path, fasta_pair, capsys):
        db_path, _ = fasta_pair
        out = tmp_path / "db.idx"
        cli_main(["index", "build", str(db_path), "--out", str(out)])
        raw = bytearray(out.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        out.write_bytes(bytes(raw))
        assert cli_main(["index", "verify", str(out)]) == 1
        assert "FAIL" in capsys.readouterr().err

    def test_search_db_with_index_matches_plain(
        self, tmp_path, fasta_pair, capsys
    ):
        db_path, query_path = fasta_pair
        out = tmp_path / "db.idx"
        cli_main(["index", "build", str(db_path), "--out", str(out)])
        assert (
            cli_main(
                ["search-db", str(db_path), str(query_path), "--threshold", "25"]
            )
            == 0
        )
        plain = capsys.readouterr().out
        assert (
            cli_main(
                [
                    "search-db", "--index", str(out), str(query_path),
                    "--threshold", "25",
                ]
            )
            == 0
        )
        indexed = capsys.readouterr().out
        assert indexed == plain
        assert "\t" in plain  # sanity: hits were actually printed

    def test_search_requires_exactly_one_source(
        self, tmp_path, fasta_pair, capsys
    ):
        db_path, _ = fasta_pair
        out = tmp_path / "db.idx"
        cli_main(["index", "build", str(db_path), "--out", str(out)])
        assert cli_main(["search", "ACGTACGT"]) == 2
        assert "required" in capsys.readouterr().err
        assert (
            cli_main(
                ["search", str(db_path), "ACGTACGT", "--index", str(out)]
            )
            == 2
        )
        assert "not both" in capsys.readouterr().err

    def test_bad_index_parameters_are_clean_errors(
        self, tmp_path, fasta_pair, capsys
    ):
        db_path, _ = fasta_pair
        out = tmp_path / "bad.idx"
        for flag, value in (("--occ-block", "0"), ("--sa-sample", "-1")):
            code = cli_main(
                ["index", "build", str(db_path), "--out", str(out), flag, value]
            )
            assert code == 2
            assert "error:" in capsys.readouterr().err

    def test_missing_index_path_is_clean_error(self, fasta_pair, capsys):
        _, query_path = fasta_pair
        code = cli_main(
            ["search-db", "--index", "/nonexistent/x.idx", str(query_path)]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_build_literal_database_requires_out(self, tmp_path, capsys):
        assert cli_main(["index", "build", "ACGTACGTACGTACGT"]) == 2
        assert "--out is required" in capsys.readouterr().err
        out = tmp_path / "lit.idx"
        assert (
            cli_main(["index", "build", "ACGTACGTACGTACGT", "--out", str(out)])
            == 0
        )
        assert out.exists()

    def test_search_explicit_mismatching_scheme_rejected(
        self, tmp_path, fasta_pair, capsys
    ):
        db_path, query_path = fasta_pair
        out = tmp_path / "db.idx"
        cli_main(["index", "build", str(db_path), "--out", str(out)])
        code = cli_main(
            [
                "search-db", "--index", str(out), str(query_path),
                "--scheme", "1,-4,-5,-2", "--threshold", "25",
            ]
        )
        assert code == 2
        assert "scheme" in capsys.readouterr().err
