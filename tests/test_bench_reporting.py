"""Bench-layer units: markdown rendering, outcome aggregation."""

from repro.bench.harness import run_query_set
from repro.bench.reporting import fmt_int, fmt_ratio, fmt_seconds, markdown_table


class TestMarkdown:
    def test_table_shape(self):
        table = markdown_table(["a", "b"], [[1, 2], [3, 4]])
        lines = table.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | 2 |"
        assert len(lines) == 4

    def test_formatters(self):
        assert fmt_seconds(1.23456) == "1.235"
        assert fmt_ratio(0.1234) == "12.3%"
        assert fmt_int(1234567) == "1,234,567"


class TestRunQuerySet:
    def test_aggregates_over_queries(self):
        from repro import ALAE

        text = "GCTAGCTAGCATGCATGCTA"
        engine = ALAE(text)
        outcome = run_query_set(
            engine, ["GCTAG", "GCATG"], "alae", e_value=None, threshold=4
        )
        assert outcome.engine == "alae"
        assert outcome.total_seconds > 0
        assert outcome.total_hits > 0
        assert outcome.threshold == 4
        assert outcome.accessed == outcome.calculated + outcome.reused

    def test_single_query_matches_direct_search(self):
        from repro import ALAE

        text = "GCTAGCTAGCATGCATGCTA"
        engine = ALAE(text)
        direct = engine.search("GCTAG", threshold=4)
        outcome = run_query_set(
            engine, ["GCTAG"], "alae", e_value=None, threshold=4
        )
        assert outcome.total_hits == len(direct.hits)
        assert outcome.calculated == direct.stats.calculated
