"""Scoring scheme invariants: q (Eq. 2), Theorem 1 bounds, validation."""

import pytest

from repro import DEFAULT_SCHEME, ScoringScheme
from repro.errors import ScoringError
from repro.scoring.scheme import (
    BLAST_DNA_SCHEMES,
    BLAST_PROTEIN_SCHEMES,
    blast_scheme_grid,
)


class TestValidation:
    def test_default_scheme_values(self):
        assert DEFAULT_SCHEME.as_tuple() == (1, -3, -5, -2)

    @pytest.mark.parametrize(
        "bad",
        [(0, -3, -5, -2), (-1, -3, -5, -2), (1, 0, -5, -2), (1, 3, -5, -2),
         (1, -3, 0, -2), (1, -3, 5, -2), (1, -3, -5, 0), (1, -3, -5, 2)],
    )
    def test_sign_constraints(self, bad):
        with pytest.raises(ScoringError):
            ScoringScheme(*bad)

    def test_str(self):
        assert str(DEFAULT_SCHEME) == "<1,-3,-5,-2>"


class TestDelta:
    def test_match(self):
        assert DEFAULT_SCHEME.delta("A", "A") == 1

    def test_mismatch(self):
        assert DEFAULT_SCHEME.delta("A", "C") == -3

    def test_gap_cost(self):
        # Paper Sec. 2.1: gap of r characters costs sg + r * ss.
        assert DEFAULT_SCHEME.gap_cost(1) == -7
        assert DEFAULT_SCHEME.gap_cost(3) == -11

    def test_gap_cost_zero_rejected(self):
        with pytest.raises(ScoringError):
            DEFAULT_SCHEME.gap_cost(0)

    def test_gap_open_extend(self):
        assert DEFAULT_SCHEME.gap_open_extend == -7


class TestQPrefix:
    def test_default_q_is_4(self):
        # q = floor(min(3, 7) / 1) + 1 = 4 (used in the paper's examples).
        assert DEFAULT_SCHEME.q == 4

    def test_q_small_mismatch(self):
        assert ScoringScheme(1, -1, -5, -2).q == 2

    def test_q_limited_by_gap(self):
        # |sg + ss| = 4 < |sb| = 6 -> q = 4/1 + 1 = 5
        assert ScoringScheme(1, -6, -2, -2).q == 5

    def test_q_scales_with_sa(self):
        # q = floor(min(3, 14) / 2) + 1 = 2
        assert ScoringScheme(2, -3, -10, -4).q == 2

    def test_paper_example_q4(self):
        # Sec. 3.1.3: "we could not find an exact match of X[1, q] in P,
        # where q = 4" under the default scheme.
        assert ScoringScheme(1, -3, -5, -2).q == 4


class TestTheorem1:
    def test_lmax_formula(self):
        # Lmax = max(m, m + floor((H - (sa*m + sg)) / ss))
        scheme = DEFAULT_SCHEME
        m, h = 5, 3
        # floor((3 - (5 - 5)) / -2) = floor(-1.5) = -2 -> max(5, 3) = 5
        assert scheme.max_alignment_length(m, h) == 5

    def test_lmax_longer_than_m(self):
        scheme = DEFAULT_SCHEME
        m, h = 100, 20
        lmax = scheme.max_alignment_length(m, h)
        assert lmax == max(m, m + (h - (m * 1 - 5)) // -2)
        assert lmax > m

    def test_min_row(self):
        assert DEFAULT_SCHEME.min_alignment_length(3) == 3
        assert ScoringScheme(2, -3, -5, -2).min_alignment_length(3) == 2

    def test_min_row_at_least_one(self):
        assert DEFAULT_SCHEME.min_alignment_length(0) == 1

    def test_length_bounds_ordering(self):
        lo, hi = DEFAULT_SCHEME.length_bounds(50, 10)
        assert 1 <= lo <= hi

    def test_paper_example_bounds(self):
        # Sec. 3.1.1 example: P = GCTAC (m = 5), H = 3.  The paper's prose
        # says "length in between 3 and 4", but Eq. 1's own upper bound is
        # max(m, m + floor((H - (sa*m + sg)) / ss)) = max(5, 3) = 5 — and a
        # length-5 all-match alignment (score 5 >= 3) is indeed valid, so we
        # follow Eq. 1 (the prose example appears to be an erratum).
        scheme = DEFAULT_SCHEME
        lo = scheme.min_alignment_length(3)
        hi = scheme.max_alignment_length(5, 3)
        assert (lo, hi) == (3, 5)

    def test_invalid_m(self):
        with pytest.raises(ScoringError):
            DEFAULT_SCHEME.max_alignment_length(0, 3)


class TestTheorem2:
    def test_dead_threshold_floor_zero(self):
        assert DEFAULT_SCHEME.dead_threshold(1, 1, 100, 10, 120) == 0

    def test_dead_threshold_near_query_end(self):
        # Close to the last column the remaining budget shrinks.
        val = DEFAULT_SCHEME.dead_threshold(5, 99, 100, 10, 120)
        assert val == 10 - 1 * 1 - 1 == 8

    def test_dead_threshold_near_lmax(self):
        val = DEFAULT_SCHEME.dead_threshold(119, 5, 100, 10, 120)
        assert val == 10 - 1 - 1


class TestMisc:
    def test_fgoe_bound(self):
        assert DEFAULT_SCHEME.fgoe_bound == 7

    def test_supports_bwt_sw(self):
        assert DEFAULT_SCHEME.supports_bwt_sw()
        assert not ScoringScheme(1, -1, -5, -2).supports_bwt_sw()
        assert not ScoringScheme(2, -3, -5, -2).supports_bwt_sw()

    def test_blast_grid_size(self):
        grid = blast_scheme_grid()
        assert len(grid) == 6 * 8
        assert all(isinstance(s, ScoringScheme) for s in grid)

    def test_named_schemes_parse(self):
        for name, scheme in BLAST_DNA_SCHEMES.items():
            assert str(scheme) == name
        for name, scheme in BLAST_PROTEIN_SCHEMES.items():
            assert str(scheme) == name

    def test_schemes_hashable(self):
        assert len({DEFAULT_SCHEME, ScoringScheme(1, -3, -5, -2)}) == 1
