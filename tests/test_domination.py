"""q-prefix domination (Sec. 3.2.2): construction, semantics, soundness."""

import numpy as np
import pytest

from repro import ALAE, DEFAULT_SCHEME, smith_waterman_all_hits
from repro.core.domination import DominationIndex


class TestConstruction:
    def test_unique_predecessor(self):
        # In GCTAGC every occurrence of CTA (pos 2) is preceded by GCT.
        idx = DominationIndex("GCTAGC", 3)
        assert idx.unique_predecessor("CTA") == "GCT"
        assert idx.unique_predecessor("TAG") == "CTA"

    def test_position_one_never_dominated(self):
        # GCT occurs at position 1 -> no predecessor -> not dominated.
        idx = DominationIndex("GCTAGC", 3)
        assert idx.unique_predecessor("GCT") is None

    def test_multiple_predecessors(self):
        # In ACTAGCTA, CTA occurs at 2 (pred ACT) and 6 (pred GCT) -> multi.
        idx = DominationIndex("ACTAGCTA", 3)
        assert idx.unique_predecessor("CTA") is None

    def test_absent_gram(self):
        idx = DominationIndex("GCTAGC", 3)
        assert idx.unique_predecessor("AAA") is None

    def test_paper_ab_example(self):
        # T = ABABAB-style: BA is always preceded by AB; AB occurs at pos 1.
        idx = DominationIndex("ACACAC", 2)
        assert idx.unique_predecessor("CA") == "AC"
        assert idx.unique_predecessor("AC") is None

    def test_homopolymer_self_predecessor_blocked_by_position_one(self):
        # In AAAA, AA at position 1 has no predecessor -> undominated, which
        # breaks the would-be self-domination cycle.
        idx = DominationIndex("AAAA", 2)
        assert idx.unique_predecessor("AA") is None

    def test_is_dominated_by(self):
        idx = DominationIndex("GCTAGC", 3)
        assert idx.is_dominated_by("CTA", "GCT")
        assert not idx.is_dominated_by("CTA", "AAA")
        assert not idx.is_dominated_by("GCT", "GCT")

    def test_len_counts_distinct_grams(self):
        idx = DominationIndex("GCTAGC", 3)
        assert len(idx) == 4  # GCT, CTA, TAG, AGC

    def test_invalid_q(self):
        with pytest.raises(ValueError):
            DominationIndex("ACGT", 0)


class TestSizeModel:
    def test_dominated_entries_cost_more(self):
        text = "GCTAGC"
        idx = DominationIndex(text, 3)
        expected = idx.dominated_count() * 6 + (len(idx) - idx.dominated_count()) * 4
        assert idx.size_bytes() == expected

    def test_random_text_mostly_undominated(self, rng):
        # Long random DNA: every 3-gram has many occurrences with diverse
        # predecessors, so domination is rare (the Fig. 11 DNA observation).
        text = "".join("ACGT"[int(c)] for c in rng.integers(0, 4, 20000))
        idx = DominationIndex(text, 3)
        assert idx.dominated_count() <= len(idx) * 0.05

    def test_short_text_mostly_dominated(self):
        # A text of unique q-grams chains predecessors uniquely.
        text = "ACGTGCA"
        idx = DominationIndex(text, 4)
        assert idx.dominated_count() == len(idx) - 1  # all but position 1


class TestFilterSoundness:
    """Skipping dominated forks must never lose results."""

    @pytest.mark.parametrize("seed", range(5))
    def test_vs_smith_waterman(self, seed):
        rng = np.random.default_rng(seed)
        # Low-entropy text maximizes domination opportunities.
        text = "".join("AC"[int(c)] for c in rng.integers(0, 2, 120))
        query = "".join("AC"[int(c)] for c in rng.integers(0, 2, 25))
        for threshold in (2, 5):
            sw = smith_waterman_all_hits(text, query, DEFAULT_SCHEME, threshold)
            with_dom = ALAE(text, use_domination=True).search(
                query, threshold=threshold
            )
            without = ALAE(text, use_domination=False).search(
                query, threshold=threshold
            )
            assert with_dom.hits.as_score_set() == sw.as_score_set()
            assert without.hits.as_score_set() == sw.as_score_set()

    def test_domination_actually_skips(self):
        # Unique-substring text and query aligned so predecessors match.
        text = "ACGTGCATTGCCAA"
        query = text  # P[j-1..] gram always equals the text predecessor
        engine = ALAE(text, use_domination=True)
        res = engine.search(query, threshold=8)
        assert res.stats.forks_skipped_domination > 0
        sw = smith_waterman_all_hits(text, query, DEFAULT_SCHEME, 8)
        assert res.hits.as_score_set() == sw.as_score_set()

    def test_skip_count_zero_when_disabled(self):
        text = "ACGTGCATTGCCAA"
        res = ALAE(text, use_domination=False).search(text, threshold=8)
        assert res.stats.forks_skipped_domination == 0
