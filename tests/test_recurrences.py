"""Unit tests of the sparse row advance and fork transitions."""

import pytest

from repro import DEFAULT_SCHEME, ScoringScheme
from repro.align.recurrences import (
    NEG,
    CostCounter,
    advance_row,
    dense_seed_row,
)
from repro.core.filters import make_filter_plan
from repro.core.forks import GAP, NGR, Fork, advance_ngr, fgoe_row_frontier, seed_fork


class TestAdvanceRow:
    def test_diagonal_match(self):
        # One live cell, matching next char -> diagonal grows by sa.
        frontier = {2: (5, NEG)}
        new = advance_row(frontier, "T", "ACTG", 4, DEFAULT_SCHEME, live=0)
        assert new[3][0] == 6

    def test_diagonal_mismatch_dies(self):
        frontier = {2: (2, NEG)}
        new = advance_row(frontier, "A", "ACTG", 4, DEFAULT_SCHEME, live=0)
        assert 3 not in new  # 2 - 3 < 0

    def test_vertical_gap_opens(self):
        # Score high enough to survive a gap-open downward (Ga).
        frontier = {2: (10, NEG)}
        new = advance_row(frontier, "A", "ACCG", 4, DEFAULT_SCHEME, live=0)
        assert new[2][0] == 10 - 7  # M + sg + ss
        assert new[2][1] == 3  # Ga stored

    def test_vertical_gap_extends(self):
        frontier = {2: (1, 8)}  # existing Ga = 8
        new = advance_row(frontier, "G", "ACCG", 4, DEFAULT_SCHEME, live=0)
        assert new[2][0] == 8 - 2  # Ga + ss beats M + sg + ss

    def test_horizontal_gap_chain(self):
        # A single strong cell spawns rightward Gb cells along the row.
        frontier = {1: (12, NEG)}
        new = advance_row(frontier, "A", "AAAAAAA", 7, DEFAULT_SCHEME, live=0)
        # diag at 2 = 13; gb from col2 onward: 13-7=6 at col3, 4 at col4, ...
        assert new[2][0] == 13
        assert new[3][0] == 6
        assert new[4][0] == 4
        assert new[5][0] == 2
        assert 7 not in new  # decayed to <= 0

    def test_live_threshold_prunes(self):
        frontier = {2: (5, NEG)}
        new = advance_row(frontier, "T", "ACTG", 4, DEFAULT_SCHEME, live=6)
        assert new == {}

    def test_empty_frontier(self):
        assert advance_row({}, "A", "ACGT", 4, DEFAULT_SCHEME, live=0) == {}

    def test_query_boundary(self):
        frontier = {4: (5, NEG)}  # at the last column: no diagonal target
        new = advance_row(frontier, "A", "ACGT", 4, DEFAULT_SCHEME, live=0)
        assert 5 not in new

    def test_counter_dense_counts_dead_candidates(self):
        frontier = {2: (2, NEG)}
        sparse = CostCounter("bwtsw")
        advance_row(frontier, "A", "ACTG", 4, DEFAULT_SCHEME, 0, sparse)
        dense = CostCounter("bwtsw")
        advance_row(
            frontier, "A", "ACTG", 4, DEFAULT_SCHEME, 0, dense, dense=True
        )
        assert dense.total >= sparse.total

    def test_merge_of_two_parents(self):
        # Two cells feeding the same target column: max wins.
        frontier = {2: (5, NEG), 3: (1, NEG)}
        new = advance_row(frontier, "T", "ACTT", 4, DEFAULT_SCHEME, live=0)
        # col 4 candidates: diag from 3 (1+1=2), vertical from... -> 2 wins
        # col 3 diag from 2 (5+1=6).
        assert new[3][0] == 6
        assert new[4][0] >= 2


class TestCostCounter:
    def test_alae_classes(self):
        c = CostCounter("alae")
        c.cell(1)
        c.cell(2)
        c.cell(3)
        c.cell(0)
        assert (c.x1, c.x2, c.x3) == (2, 1, 1)

    def test_bwtsw_all_x3(self):
        c = CostCounter("bwtsw")
        c.cell(1)
        c.cell(2)
        assert (c.x1, c.x2, c.x3) == (0, 0, 2)

    def test_total(self):
        c = CostCounter()
        c.cell(1)
        c.cell(3)
        assert c.total == 2


class TestDenseSeedRow:
    def test_match_columns_only(self):
        positions = {"A": [1, 4], "C": [2]}
        row = dense_seed_row("A", positions, DEFAULT_SCHEME, None, m=4)
        assert set(row) == {1, 4}
        assert all(cell == (1, NEG) for cell in row.values())

    def test_counter_charged_m_cells(self):
        c = CostCounter("bwtsw")
        dense_seed_row("A", {"A": [1]}, DEFAULT_SCHEME, c, m=7)
        assert c.x3 == 7


class TestForkTransitions:
    def test_seed_stays_ngr_default_scheme(self):
        plan = make_filter_plan(DEFAULT_SCHEME, m=50, threshold=10)
        fork = seed_fork(5, plan, DEFAULT_SCHEME)
        assert fork.phase == NGR
        assert fork.score == 4  # q * sa = 4 <= FGOE bound 7

    def test_seed_born_in_gap_phase(self):
        # <1,-6,-2,-2>: q = 5, q*sa = 5 > |sg+ss| = 4 -> gap at birth.
        scheme = ScoringScheme(1, -6, -2, -2)
        plan = make_filter_plan(scheme, m=50, threshold=10)
        fork = seed_fork(3, plan, scheme)
        assert fork.phase == GAP
        assert fork.frontier[3 + plan.q - 1][0] == 5

    def test_fgoe_row_tail(self):
        # Score 12 at col 5: tail cells 12-7=5 at col 6, 3 at 7, 1 at 8.
        frontier = fgoe_row_frontier(12, 5, 20, DEFAULT_SCHEME, live=0)
        assert frontier[5][0] == 12
        assert frontier[6][0] == 5
        assert frontier[7][0] == 3
        assert frontier[8][0] == 1
        assert 9 not in frontier

    def test_fgoe_tail_respects_query_end(self):
        frontier = fgoe_row_frontier(12, 5, 6, DEFAULT_SCHEME, live=0)
        assert set(frontier) == {5, 6}

    def test_ngr_advance_match(self):
        plan = make_filter_plan(DEFAULT_SCHEME, m=20, threshold=10)
        fork = Fork(pip=1, phase=NGR, score=4)
        advance_ngr(fork, "A", "GCTAA" + "C" * 15, 5, plan, DEFAULT_SCHEME, None)
        assert fork.phase == NGR
        assert fork.score == 5

    def test_ngr_transition_to_gap(self):
        plan = make_filter_plan(DEFAULT_SCHEME, m=20, threshold=10)
        fork = Fork(pip=1, phase=NGR, score=7)
        advance_ngr(fork, "A", "GCTAA" + "C" * 15, 5, plan, DEFAULT_SCHEME, None)
        assert fork.phase == GAP
        assert fork.frontier[5][0] == 8

    def test_ngr_dies_off_query(self):
        plan = make_filter_plan(DEFAULT_SCHEME, m=4, threshold=2)
        fork = Fork(pip=3, phase=NGR, score=4)
        advance_ngr(fork, "A", "GCTA", 3, plan, DEFAULT_SCHEME, None)
        # diagonal column = 3 + 3 - 1 = 5 > m = 4 -> dead
        assert fork.phase == "dead"
