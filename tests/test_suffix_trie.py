"""Explicit suffix trie: structure, occurrence lists, path iteration."""

from repro.index.suffix_trie import SuffixTrie


class TestStructure:
    def test_contains_every_substring(self):
        text = "GCTAGC"
        trie = SuffixTrie(text)
        for i in range(len(text)):
            for j in range(i + 1, len(text) + 1):
                assert trie.contains(text[i:j])

    def test_rejects_foreign_substring(self):
        trie = SuffixTrie("AAAA")
        assert not trie.contains("C")
        assert not trie.contains("AAAAA")

    def test_end_positions(self):
        trie = SuffixTrie("GCTAGC")
        assert trie.end_positions("GC") == [2, 6]
        assert trie.end_positions("GCTA") == [4]
        assert trie.end_positions("C") == [2, 6]
        assert trie.end_positions("ZZ") == []

    def test_end_positions_overlapping(self):
        trie = SuffixTrie("AAAA")
        assert trie.end_positions("AA") == [2, 3, 4]

    def test_leaf_paths_are_suffixes(self):
        text = "GATTACA"
        trie = SuffixTrie(text)
        leaves = set(trie.iter_leaf_paths())
        suffixes = {text[i:] for i in range(len(text))}
        # Every suffix is represented; a suffix that is a prefix of another
        # substring may end at an internal node, so leaves <= suffixes holds
        # only for suffix-free texts; here compare via containment.
        assert leaves <= {text[i:] for i in range(len(text))} | suffixes
        assert text in leaves  # the full text is always a leaf

    def test_max_depth_truncation(self):
        trie = SuffixTrie("GATTACA", max_depth=3)
        assert trie.contains("GAT")
        assert not trie.contains("GATT")

    def test_iter_paths_preorder_count(self):
        text = "ABAB".replace("B", "C")  # ACAC over DNA letters
        trie = SuffixTrie(text)
        paths = dict(trie.iter_paths())
        distinct = {
            text[i:j] for i in range(len(text)) for j in range(i + 1, len(text) + 1)
        }
        assert set(paths) == distinct

    def test_node_depth_tracks_path_length(self):
        trie = SuffixTrie("GATTACA")
        for path, node in trie.iter_paths():
            assert node.depth == len(path)

    def test_single_char_text(self):
        trie = SuffixTrie("A")
        assert trie.contains("A")
        assert trie.end_positions("A") == [1]
