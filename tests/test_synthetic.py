"""Synthetic data generators and workload construction."""

import numpy as np
import pytest

from repro import DNA, PROTEIN, genome, mutate, sample_homologous_queries
from repro.data.synthetic import random_sequence
from repro.errors import ReproError
from repro.workloads import make_workload


class TestRandomSequence:
    def test_length_and_alphabet(self, rng):
        seq = random_sequence(1000, DNA, rng)
        assert len(seq) == 1000
        assert set(seq) <= set(DNA.chars)


class TestMutate:
    def test_zero_rates_identity(self, rng):
        seq = random_sequence(200, DNA, rng)
        assert mutate(seq, rng, sub_rate=0.0, indel_rate=0.0) == seq

    def test_substitutions_change_characters(self, rng):
        seq = "A" * 500
        out = mutate(seq, rng, sub_rate=0.2, indel_rate=0.0)
        assert len(out) == 500
        changed = sum(1 for c in out if c != "A")
        assert 40 <= changed <= 180  # ~20% +- slack

    def test_substitution_never_identical(self, rng):
        seq = "A" * 300
        out = mutate(seq, rng, sub_rate=1.0, indel_rate=0.0)
        assert "A" not in out

    def test_indels_change_length(self, rng):
        seq = random_sequence(2000, DNA, rng)
        out = mutate(seq, rng, sub_rate=0.0, indel_rate=0.2)
        assert len(out) != 2000  # overwhelmingly likely

    def test_invalid_rates(self, rng):
        with pytest.raises(ReproError):
            mutate("ACGT", rng, sub_rate=1.5)

    def test_protein_alphabet(self, rng):
        seq = random_sequence(200, PROTEIN, rng)
        out = mutate(seq, rng, sub_rate=0.3, alphabet=PROTEIN)
        assert set(out) <= set(PROTEIN.chars)


class TestGenome:
    def test_length_exact(self, rng):
        assert len(genome(5_000, rng)) == 5_000

    def test_alphabet(self, rng):
        assert set(genome(2_000, rng)) <= set(DNA.chars)

    def test_repeats_increase_duplication(self, rng):
        # A repeat-rich genome shares more 20-mers with itself than a
        # uniform random sequence of the same length.
        def duplicated_kmers(text, k=20):
            seen, dup = set(), 0
            for i in range(len(text) - k + 1):
                kmer = text[i : i + k]
                if kmer in seen:
                    dup += 1
                seen.add(kmer)
            return dup

        rich = genome(20_000, rng, repeat_fraction=0.4, tandem_fraction=0.1)
        plain = genome(20_000, rng, repeat_fraction=0.0, tandem_fraction=0.0)
        assert duplicated_kmers(rich) > duplicated_kmers(plain)

    def test_invalid_length(self, rng):
        with pytest.raises(ReproError):
            genome(0, rng)

    def test_deterministic_given_seed(self):
        a = genome(3_000, np.random.default_rng(5))
        b = genome(3_000, np.random.default_rng(5))
        assert a == b


class TestHomologousQueries:
    def test_count_and_length(self, rng):
        text = genome(10_000, rng)
        queries = sample_homologous_queries(text, 5, 400, rng)
        assert len(queries) == 5
        assert all(len(q) == 400 for q in queries)

    def test_queries_contain_homology(self, rng):
        # A planted segment must share a long exact run with the text.
        from repro import smith_waterman_best, DEFAULT_SCHEME

        text = genome(10_000, rng, repeat_fraction=0.0)
        query = sample_homologous_queries(
            text, 1, 500, rng, sub_rate=0.05, indel_rate=0.0
        )[0]
        assert smith_waterman_best(text, query, DEFAULT_SCHEME) >= 40

    def test_query_longer_than_text_rejected(self, rng):
        with pytest.raises(ReproError):
            sample_homologous_queries("ACGT", 1, 100, rng)


class TestWorkload:
    def test_cached_identity(self):
        a = make_workload(2_000, 100)
        b = make_workload(2_000, 100)
        assert a is b

    def test_uncached_fresh(self):
        a = make_workload(2_000, 100, cached=False)
        b = make_workload(2_000, 100, cached=False)
        assert a is not b
        assert a.text == b.text  # same seed -> same content

    def test_properties(self):
        wl = make_workload(3_000, 150, query_count=4)
        assert wl.n == 3_000
        assert wl.m == 150
        assert len(wl.queries) == 4
        assert all(len(q) == 150 for q in wl.queries)


class TestMixedLengthWorkload:
    def test_lengths_within_range(self):
        wl = make_workload(
            4_000, 200, query_count=8, query_length_range=(50, 200),
            cached=False,
        )
        assert len(wl.queries) == 8
        assert all(50 <= length <= 200 for length in wl.query_lengths)
        assert wl.is_mixed_length

    def test_deterministic_for_a_seed(self):
        a = make_workload(
            3_000, 150, query_count=6, query_length_range=(40, 150),
            cached=False,
        )
        b = make_workload(
            3_000, 150, query_count=6, query_length_range=(40, 150),
            cached=False,
        )
        assert a.queries == b.queries

    def test_cache_key_distinguishes_ranges(self):
        fixed = make_workload(2_500, 120, query_count=4)
        mixed = make_workload(
            2_500, 120, query_count=4, query_length_range=(60, 120)
        )
        assert fixed is not mixed
        assert not fixed.is_mixed_length
        assert fixed.query_lengths == [120] * 4

    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError, match="query_length_range"):
            make_workload(2_000, 100, query_length_range=(80, 40))
        with pytest.raises(ValueError, match="query_length_range"):
            make_workload(2_000, 100, query_length_range=(0, 40))
