"""Sharding: manifest integrity, shard-merged exactness, top-k, CLI."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import (
    SearchService,
    ShardedSearchService,
    ShardedStore,
    StoreError,
    genome,
    write_fasta,
)
from repro.align.types import SearchStats
from repro.cli import main as cli_main
from repro.io.database import SequenceDatabase
from repro.io.fasta import FastaRecord
from repro.service import Query, ServiceError
from repro.service.sharded import ShardedBatchReport, _ScoreFloor
from repro.store import IndexStore, is_manifest
from repro.store.sharded import read_manifest, write_manifest


def make_database(records=7, base_length=160, seed=3):
    rng = np.random.default_rng(seed)
    return SequenceDatabase(
        [
            FastaRecord(
                header=f"chr{i}",
                sequence=genome(base_length + 25 * i, rng),
            )
            for i in range(1, records + 1)
        ]
    )


THRESHOLD = 30


@pytest.fixture(scope="module")
def database():
    return make_database()


@pytest.fixture(scope="module")
def queries(database):
    text = database.text
    chr4 = database.records[3].sequence
    return [
        Query("exact", chr4[40:100]),
        Query("deletion", chr4[10:40] + chr4[46:76]),
        # Crosses the first concatenation boundary of the original order.
        Query("straddle", text[150:195]),
        Query("random", "ACGTACGTACGTACGTACGTACGTACGTAC"),
    ]


@pytest.fixture(scope="module")
def unsharded(database):
    return SearchService(database)


@pytest.fixture(scope="module")
def manifests(database, tmp_path_factory):
    root = tmp_path_factory.mktemp("sharded")
    paths = {}
    for k in (1, 2, 4):
        path = root / f"db{k}.idx"
        ShardedStore.build(database, path, shards=k)
        paths[k] = path
    return paths


def hit_tuple(hit):
    return (
        hit.sequence_id,
        hit.record_index,
        hit.t_start,
        hit.t_end,
        hit.p_end,
        hit.score,
    )


class TestShardedStore:
    def test_manifest_round_trip(self, database, manifests):
        store = ShardedStore.open(manifests[4])
        assert store.shard_count == 4
        assert store.record_count == len(database)
        assert store.total_length == database.total_length
        assert store.record_ids == database.identifiers
        assert store.global_offsets == database.boundaries()
        assert sum(store.shard_lengths()) == database.total_length

    def test_original_database_reconstructed(self, database, manifests):
        store = ShardedStore.open(manifests[2])
        rebuilt = store.database()
        assert rebuilt.text == database.text
        assert rebuilt.identifiers == database.identifiers

    def test_verify_clean(self, manifests):
        for path in manifests.values():
            assert ShardedStore.verify(path) == []

    def test_is_manifest_sniffs_both_layouts(self, database, manifests, tmp_path):
        single = tmp_path / "single.idx"
        IndexStore.build(database).save(single)
        assert is_manifest(manifests[2])
        assert not is_manifest(single)

    def test_corrupt_manifest_rejected(self, manifests, tmp_path):
        path = tmp_path / "corrupt.idx"
        raw = json.loads(manifests[2].read_text())
        raw["payload"]["shards"][0]["total_length"] += 1  # tamper
        path.write_text(json.dumps(raw))
        with pytest.raises(StoreError, match="checksum"):
            read_manifest(path)

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "bad.idx"
        path.write_text(json.dumps({"magic": "NOTSHARD"}))
        with pytest.raises(StoreError, match="magic"):
            read_manifest(path)

    def test_version_skew_rejected(self, manifests, tmp_path):
        path = tmp_path / "skew.idx"
        raw = json.loads(manifests[2].read_text())
        raw["format_version"] = 99
        path.write_text(json.dumps(raw))
        with pytest.raises(StoreError, match="version"):
            read_manifest(path)

    def test_incomplete_assignment_rejected(self, database, tmp_path):
        path = tmp_path / "gap.idx"
        ShardedStore.build(database, path, shards=2)
        payload = read_manifest(path)
        payload["shards"][0]["records"] = payload["shards"][0]["records"][1:]
        write_manifest(path, payload)
        with pytest.raises(StoreError, match="cover"):
            ShardedStore.open(path)

    def test_rebuilt_shard_behind_manifest_is_hard_error(
        self, database, tmp_path
    ):
        path = tmp_path / "swap.idx"
        store = ShardedStore.build(database, path, shards=2)
        # Rebuild shard 0's file in place with different contents.
        shard_path = store.shard_path(0)
        IndexStore.build(make_database(records=2, seed=9)).save(shard_path)
        problems = ShardedStore.verify(path)
        assert any("header CRC" in p or "records disagree" in p for p in problems)
        fresh = ShardedStore.open(path)
        with pytest.raises(StoreError, match="rebuilt or replaced"):
            fresh.store(0)

    def test_missing_shard_file_reported(self, database, tmp_path):
        path = tmp_path / "missing.idx"
        store = ShardedStore.build(database, path, shards=2)
        store.shard_path(1).unlink()
        problems = ShardedStore.verify(path)
        assert any("missing" in p for p in problems)

    def test_parallel_build_matches_serial(self, database, tmp_path):
        serial = tmp_path / "serial.idx"
        parallel = tmp_path / "parallel.idx"
        ShardedStore.build(database, serial, shards=3, build_workers=1)
        ShardedStore.build(database, parallel, shards=3, build_workers=3)
        a, b = ShardedStore.open(serial), ShardedStore.open(parallel)
        assert a.payload["records"] == b.payload["records"]
        assert [s["records"] for s in a.payload["shards"]] == [
            s["records"] for s in b.payload["shards"]
        ]
        # Same plan, same parameters: the stores must be byte-identical.
        for i in range(3):
            assert (
                a.shard_path(i).read_bytes() == b.shard_path(i).read_bytes()
            )

    def test_fingerprint_checks(self, manifests):
        from repro import PROTEIN, ScoringScheme

        store = ShardedStore.open(manifests[2])
        with pytest.raises(StoreError, match="alphabet"):
            store.check_alphabet(PROTEIN)
        with pytest.raises(StoreError, match="scheme"):
            store.check_scheme(ScoringScheme(1, -4, -5, -2))


class TestShardedExactness:
    @pytest.mark.parametrize("k", [1, 2, 4])
    def test_bit_identical_to_unsharded(
        self, k, manifests, unsharded, queries
    ):
        """Hit sets — ids, positions, scores, ordering — match exactly."""
        service = ShardedSearchService(manifests[k])
        base = [
            unsharded.search(query, threshold=THRESHOLD) for query in queries
        ]
        got = list(service.iter_results(queries, threshold=THRESHOLD))
        for expected, result in zip(base, got):
            assert result.threshold == expected.threshold
            assert [hit_tuple(h) for h in result.hits] == [
                hit_tuple(h) for h in expected.hits
            ]
            assert result.hits == expected.hits  # full dataclass equality

    def test_e_value_resolves_against_global_length(
        self, manifests, unsharded, queries
    ):
        """Per-shard text is shorter, but H must come from the global n."""
        service = ShardedSearchService(manifests[4])
        for query in queries:
            expected = unsharded.search(query, e_value=1.0)
            result = service.search(query, e_value=1.0)
            assert result.threshold == expected.threshold
            assert result.hits == expected.hits

    def test_straddle_artifacts_never_leak(self, manifests, queries):
        """Boundary artifacts are per-shard concerns; none survive the merge
        with a bogus attribution."""
        service = ShardedSearchService(manifests[2])
        result = service.search(queries[2], threshold=THRESHOLD)
        for hit in result.hits:
            record = service.store.database().records[hit.record_index]
            assert hit.sequence_id == record.identifier
            assert 1 <= hit.t_end <= len(record.sequence)

    def test_thread_pool_matches_serial(self, manifests, queries):
        service = ShardedSearchService(manifests[4])
        serial = list(service.iter_results(queries, threshold=THRESHOLD))
        pooled = list(
            service.iter_results(
                queries, threshold=THRESHOLD, workers=4, executor="threads"
            )
        )
        for a, b in zip(serial, pooled):
            assert a.hits == b.hits
            assert a.raw_hits == b.raw_hits

    @pytest.mark.parametrize("executor", ["processes", "spawn"])
    def test_process_pools_match_threads(self, executor, tmp_path, queries):
        import multiprocessing

        if executor == "spawn" and (
            "spawn" not in multiprocessing.get_all_start_methods()
        ):
            pytest.skip("spawn unavailable")
        database = make_database(records=4, base_length=120)
        path = tmp_path / "small.idx"
        ShardedStore.build(database, path, shards=2)
        service = ShardedSearchService(path)
        small_queries = [
            Query("exact", database.records[1].sequence[20:70]),
            Query("straddle", database.text[110:150]),
        ]
        base = list(service.iter_results(small_queries, threshold=THRESHOLD))
        got = list(
            service.iter_results(
                small_queries,
                threshold=THRESHOLD,
                workers=2,
                executor=executor,
            )
        )
        for a, b in zip(base, got):
            assert a.hits == b.hits
            assert a.threshold == b.threshold


class TestTopK:
    def test_top_k_equals_ranked_truncation(self, manifests, queries):
        service = ShardedSearchService(manifests[4])
        full = list(service.iter_results(queries, threshold=THRESHOLD))
        for workers in (1, 3):
            topped = list(
                service.iter_results(
                    queries, threshold=THRESHOLD, top_k=3, workers=workers
                )
            )
            for base, result in zip(full, topped):
                merged = [
                    (base.hits.index(h), h) for h in base.hits
                ]  # positional order is global (t_end, p_end)
                expected = sorted(
                    merged, key=lambda item: (-item[1].score, item[0])
                )[:3]
                assert [hit_tuple(h) for _i, h in expected] == [
                    hit_tuple(h) for h in result.hits
                ]

    def test_top_k_scores_descending(self, manifests, queries):
        service = ShardedSearchService(manifests[2])
        result = service.search(queries[0], threshold=THRESHOLD, top_k=5)
        scores = [hit.score for hit in result.hits]
        assert scores == sorted(scores, reverse=True)
        assert len(result.hits) <= 5

    def test_invalid_top_k_rejected(self, manifests, queries):
        service = ShardedSearchService(manifests[2])
        with pytest.raises(ServiceError, match="top_k"):
            list(service.iter_results(queries, threshold=THRESHOLD, top_k=0))

    def test_unsharded_top_k_matches_sharded(
        self, unsharded, manifests, queries
    ):
        """The CLI's --top-k must not care which layout --index points at."""
        sharded = ShardedSearchService(manifests[4])
        flat = list(
            unsharded.iter_results(queries, threshold=THRESHOLD, top_k=3)
        )
        fanned = list(
            sharded.iter_results(queries, threshold=THRESHOLD, top_k=3)
        )
        for a, b in zip(flat, fanned):
            assert [hit_tuple(h) for h in a.hits] == [
                hit_tuple(h) for h in b.hits
            ]

    def test_score_floor_is_kth_best_of_subset(self):
        floor = _ScoreFloor(3)
        assert floor.floor(0) is None
        floor.offer(0, [10, 50])
        assert floor.floor(0) is None  # fewer than k scores so far
        floor.offer(0, [40])
        assert floor.floor(0) == 10
        floor.offer(0, [45, 5])  # 5 can never displace the top 3
        assert floor.floor(0) == 40
        assert floor.floor(1) is None  # floors are per query


class TestShardedBatch:
    def test_batch_report_accounting(self, manifests, queries, unsharded):
        service = ShardedSearchService(manifests[4])
        report = service.search_batch(queries, threshold=THRESHOLD)
        assert isinstance(report, ShardedBatchReport)
        assert len(report.results) == len(queries)
        assert len(report.shard_stats) == 4
        base = unsharded.search_batch(queries, threshold=THRESHOLD)
        assert report.total_hits == base.total_hits
        # Per-shard engine work sums to the batch aggregate.
        assert sum(
            s.calculated for s in report.shard_stats
        ) == report.stats.calculated

    def test_zero_width_shard_timings_guarded(self):
        report = ShardedBatchReport(
            results=[],
            stats=SearchStats(),
            wall_seconds=0.0,
            workers=1,
            executor="threads",
            shard_stats=[SearchStats(), SearchStats()],
            shard_work_seconds=[0.0, 0.0],
        )
        assert report.queries_per_second == 0.0
        assert report.shard_queries_per_second == [0.0, 0.0]

    def test_search_fasta(self, manifests, tmp_path, database, queries):
        path = tmp_path / "q.fa"
        write_fasta(
            [FastaRecord(q.id, q.sequence) for q in queries], path
        )
        service = ShardedSearchService(manifests[2])
        report = service.search_fasta(path, threshold=THRESHOLD)
        direct = service.search_batch(queries, threshold=THRESHOLD)
        assert [r.query_id for r in report.results] == [q.id for q in queries]
        assert report.total_hits == direct.total_hits

    def test_bad_executor_rejected(self, manifests):
        with pytest.raises(ServiceError, match="executor"):
            ShardedSearchService(manifests[2], executor="rocketship")

    def test_fingerprint_mismatch_rejected(self, manifests):
        from repro import PROTEIN

        with pytest.raises(StoreError, match="alphabet"):
            ShardedSearchService(manifests[2], alphabet=PROTEIN)


class TestShardedCli:
    @pytest.fixture()
    def fasta_pair(self, tmp_path, database, queries):
        db_path = tmp_path / "db.fa"
        write_fasta(database.records, db_path)
        query_path = tmp_path / "q.fa"
        write_fasta(
            [FastaRecord(q.id, q.sequence) for q in queries], query_path
        )
        return db_path, query_path

    def test_build_info_verify_sharded(self, tmp_path, fasta_pair, capsys):
        db_path, _ = fasta_pair
        out = tmp_path / "db.idx"
        assert (
            cli_main(
                [
                    "index", "build", str(db_path), "--out", str(out),
                    "--shards", "4",
                ]
            )
            == 0
        )
        err = capsys.readouterr().err
        assert "4 shard stores" in err
        assert cli_main(["index", "info", str(out)]) == 0
        info = capsys.readouterr().out
        assert "(sharded)" in info and "shard000" in info
        assert cli_main(["index", "verify", str(out)]) == 0
        assert "shards" in capsys.readouterr().err

    def test_sharded_search_db_matches_plain(
        self, tmp_path, fasta_pair, capsys
    ):
        db_path, query_path = fasta_pair
        out = tmp_path / "db.idx"
        cli_main(
            ["index", "build", str(db_path), "--out", str(out), "--shards", "4"]
        )
        capsys.readouterr()
        assert (
            cli_main(
                ["search-db", str(db_path), str(query_path), "--threshold", "30"]
            )
            == 0
        )
        plain = capsys.readouterr().out
        assert (
            cli_main(
                [
                    "search-db", "--index", str(out), str(query_path),
                    "--threshold", "30",
                ]
            )
            == 0
        )
        indexed = capsys.readouterr().out

        def hit_rows(output):
            return [l for l in output.splitlines() if not l.startswith("#")]

        def hit_counts(output):
            return [
                l.split("hits=")[1]
                for l in output.splitlines()
                if l.startswith("# query=")
            ]

        # Hit rows are bit-identical.  The per-query `dropped=` counters may
        # differ: boundary artifacts depend on which records are adjacent in
        # each concatenation, and shards have different neighbours.
        assert hit_rows(indexed) == hit_rows(plain)
        assert [c.split()[0] for c in hit_counts(indexed)] == [
            c.split()[0] for c in hit_counts(plain)
        ]
        assert any("\t" in row for row in hit_rows(plain))  # hits printed

    def test_sharded_verify_fails_on_flipped_byte(
        self, tmp_path, fasta_pair, capsys
    ):
        db_path, _ = fasta_pair
        out = tmp_path / "db.idx"
        cli_main(
            ["index", "build", str(db_path), "--out", str(out), "--shards", "2"]
        )
        shard = ShardedStore.open(out).shard_path(1)
        raw = bytearray(shard.read_bytes())
        raw[len(raw) // 2] ^= 1
        shard.write_bytes(bytes(raw))
        assert cli_main(["index", "verify", str(out)]) == 1
        assert "FAIL" in capsys.readouterr().err

    def test_sharded_index_rejects_other_engines(
        self, tmp_path, fasta_pair, capsys
    ):
        db_path, query_path = fasta_pair
        out = tmp_path / "db.idx"
        cli_main(
            ["index", "build", str(db_path), "--out", str(out), "--shards", "2"]
        )
        assert (
            cli_main(
                [
                    "search-db", "--index", str(out), str(query_path),
                    "--engine", "blast",
                ]
            )
            == 2
        )
        assert "ALAE" in capsys.readouterr().err
