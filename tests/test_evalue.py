"""Karlin-Altschul statistics: lambda root, K plausibility, E <-> H."""

import math

import pytest

from repro import DEFAULT_SCHEME, KarlinAltschul, ScoringScheme
from repro.errors import EValueError
from repro.scoring.evalue import (
    _score_distribution,
    _solve_lambda,
    evalue_to_score,
    score_to_evalue,
)


class TestLambda:
    def test_lambda_is_root(self):
        # sum p(s) e^(lambda s) must equal 1 at the computed lambda.
        dist = _score_distribution(DEFAULT_SCHEME, 4)
        lam = _solve_lambda(dist)
        total = sum(p * math.exp(lam * s) for s, p in dist.items())
        assert total == pytest.approx(1.0, abs=1e-9)

    def test_lambda_default_dna_value(self):
        # (1, -3) uniform DNA: known root ~1.374.
        ka = KarlinAltschul.from_scheme(DEFAULT_SCHEME, 4)
        assert 1.3 < ka.lam < 1.45

    def test_lambda_increases_with_mismatch_penalty(self):
        lam2 = KarlinAltschul.from_scheme(ScoringScheme(1, -2, -5, -2), 4).lam
        lam4 = KarlinAltschul.from_scheme(ScoringScheme(1, -4, -5, -2), 4).lam
        assert lam4 > lam2

    def test_lambda_protein_larger_than_dna(self):
        # Rarer matches (sigma = 20) push lambda up.
        dna = KarlinAltschul.from_scheme(DEFAULT_SCHEME, 4).lam
        prot = KarlinAltschul.from_scheme(DEFAULT_SCHEME, 20).lam
        assert prot > dna

    def test_positive_drift_rejected(self):
        # (1, -1) on DNA has mean 0.25 - 0.75 < 0, fine; craft a positive one.
        with pytest.raises(EValueError):
            KarlinAltschul.from_scheme(ScoringScheme(10, -1, -5, -2), 4)


class TestK:
    def test_k_in_plausible_range(self):
        ka = KarlinAltschul.from_scheme(DEFAULT_SCHEME, 4)
        # NCBI's ungapped (1,-3) K is ~0.71 with real base frequencies.
        assert 0.2 < ka.k < 1.0

    def test_k_positive_for_grid(self):
        for sb in (-1, -2, -3, -4):
            ka = KarlinAltschul.from_scheme(ScoringScheme(1, sb, -5, -2), 4)
            assert ka.k > 0


class TestEvalueThreshold:
    def test_threshold_formula(self):
        ka = KarlinAltschul.from_scheme(DEFAULT_SCHEME, 4)
        m, n, e = 1000, 100000, 10.0
        h = ka.score_threshold(e, m, n)
        expected = math.ceil((math.log(ka.k * m * n) - math.log(e)) / ka.lam)
        assert h == expected

    def test_smaller_evalue_larger_threshold(self):
        ka = KarlinAltschul.from_scheme(DEFAULT_SCHEME, 4)
        hs = [ka.score_threshold(e, 1000, 10**6) for e in (10, 1e-5, 1e-15)]
        assert hs[0] < hs[1] < hs[2]

    def test_threshold_grows_with_database(self):
        ka = KarlinAltschul.from_scheme(DEFAULT_SCHEME, 4)
        assert ka.score_threshold(10, 1000, 10**9) > ka.score_threshold(
            10, 1000, 10**5
        )

    def test_roundtrip_consistency(self):
        # The E-value of the returned threshold must be <= the requested E.
        ka = KarlinAltschul.from_scheme(DEFAULT_SCHEME, 4)
        m, n = 500, 200000
        for e in (10.0, 0.1, 1e-8):
            h = ka.score_threshold(e, m, n)
            assert ka.evalue(h, m, n) <= e
            assert ka.evalue(h - 1, m, n) > e * 0.9

    def test_invalid_evalue(self):
        ka = KarlinAltschul.from_scheme(DEFAULT_SCHEME, 4)
        with pytest.raises(EValueError):
            ka.score_threshold(0.0, 10, 10)

    def test_wrappers(self):
        h = evalue_to_score(DEFAULT_SCHEME, 4, 10.0, 1000, 100000)
        assert h >= 1
        e = score_to_evalue(DEFAULT_SCHEME, 4, h, 1000, 100000)
        assert e <= 10.0

    def test_threshold_floor(self):
        # Huge E-values must still produce a sane threshold >= 1.
        ka = KarlinAltschul.from_scheme(DEFAULT_SCHEME, 4)
        assert ka.score_threshold(1e12, 10, 10) >= 1

    def test_cache_identity(self):
        a = KarlinAltschul.from_scheme(DEFAULT_SCHEME, 4)
        b = KarlinAltschul.from_scheme(DEFAULT_SCHEME, 4)
        assert a is b
