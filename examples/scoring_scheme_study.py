"""Scoring-scheme study: how <sa,sb,sg,ss> drives ALAE's filters (Sec. 6/7.4).

Prints, for each BLAST DNA scheme: the derived q / Lmax / FGOE parameters,
the Section 6 entry-bound exponent, and measured entries on one workload.

Run:  python examples/scoring_scheme_study.py
"""

import numpy as np

from repro import ALAE, entry_bound, genome, sample_homologous_queries
from repro.scoring.scheme import BLAST_DNA_SCHEMES

def main() -> None:
    rng = np.random.default_rng(3)
    text = genome(20_000, rng, repeat_fraction=0.05)
    query = sample_homologous_queries(text, 1, 500, rng, sub_rate=0.08)[0]

    print(f"{'scheme':<14} {'q':>2} {'Lmax':>5} {'FGOE':>4} "
          f"{'bound n-exp':>11} {'entries':>10} {'reuse%':>7} {'hits':>6}")
    for name, scheme in BLAST_DNA_SCHEMES.items():
        engine = ALAE(text, scheme=scheme)
        result = engine.search(query, e_value=10.0)
        bound = entry_bound(scheme, 4)
        lmax = scheme.max_alignment_length(len(query), result.threshold)
        stats = result.stats
        print(
            f"{name:<14} {scheme.q:>2} {lmax:>5} {scheme.fgoe_bound:>4} "
            f"{bound.exponent:>11.4f} {stats.calculated:>10,} "
            f"{100 * stats.reusing_ratio:>6.1f}% {len(result.hits):>6,}"
        )

    print(
        "\nReading the table (paper Sec. 6 / 7.4): a harsher mismatch "
        "penalty raises q\nand lowers the exponent (fewer entries); "
        "<1,-1,-5,-2> is the worst case —\nits q = 2 prefix filter is weak "
        "and its gap regions expand."
    )


if __name__ == "__main__":
    main()
