"""Resident serving: start a server, query it, watch it hot-reload.

Builds a small multi-chromosome index store, starts a
:class:`repro.server.SearchServer` on an ephemeral port (in-process, via
:class:`~repro.server.ServerThread` — ``repro serve`` does the same from
the shell), then walks the serving tier's features with a blocking
:class:`~repro.server.ServerClient`:

1. a served batch whose hits are bit-identical to the offline
   ``SearchService`` run over the same store;
2. the result cache answering a repeated query without touching the engine;
3. micro-batching statistics (mean batch size > 1 under concurrency);
4. a hot reload: the store is rebuilt on disk with an extra chromosome and
   the server swaps it in without dropping the connection.

Run:  python examples/served_search.py
"""

import tempfile
import threading
from pathlib import Path

import numpy as np

from repro import IndexStore, SearchService, genome
from repro.io.database import SequenceDatabase
from repro.io.fasta import FastaRecord
from repro.server import SearchServer, ServerClient, ServerThread

THRESHOLD = 30


def build_database(chromosomes: int, seed: int) -> SequenceDatabase:
    rng = np.random.default_rng(seed)
    return SequenceDatabase(
        [
            FastaRecord(f"chr{i}", genome(3_000, rng))
            for i in range(1, chromosomes + 1)
        ]
    )


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="repro-served-") as tmp:
        store_path = Path(tmp) / "db.idx"
        database = build_database(chromosomes=4, seed=7)
        IndexStore.build(database).save(store_path)

        queries = [
            ("exact", database.records[1].sequence[400:460]),
            ("gapped", database.records[3].sequence[100:130]
             + database.records[3].sequence[136:166]),
        ]

        server = SearchServer(store_path, port=0, reload_poll=0.2)
        with ServerThread(server) as handle:
            print(f"server listening on 127.0.0.1:{handle.port}")
            with ServerClient(port=handle.port) as client:
                # 1. Served == offline, bit for bit.
                served = client.search(queries, threshold=THRESHOLD)
                offline = SearchService(store=store_path).search_batch(
                    queries, threshold=THRESHOLD
                )
                for offline_result, served_result in zip(
                    offline.results, served.results
                ):
                    assert served_result.hits == offline_result.hits
                print(
                    f"served {served.total_hits} hits, bit-identical to "
                    f"the offline run"
                )

                # 2. The repeat is a cache hit.
                again = client.search(queries, threshold=THRESHOLD)
                print(
                    "repeat served from cache:",
                    [r.cached for r in again.results],
                )

                # 3. Concurrency coalesces into micro-batches.
                def fire(i: int) -> None:
                    with ServerClient(port=handle.port) as worker:
                        sequence = database.records[i % 4].sequence
                        worker.search(
                            [(f"c{i}", sequence[200 + 9 * i : 260 + 9 * i])],
                            threshold=THRESHOLD,
                        )

                threads = [
                    threading.Thread(target=fire, args=(i,)) for i in range(8)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
                stats = client.stats()["stats"]
                print(
                    f"after 8 concurrent clients: "
                    f"batches={stats['batches_total']} "
                    f"mean_batch={stats['mean_batch_size']:.2f} "
                    f"p50={stats['latency_seconds']['p50'] * 1000:.1f}ms "
                    f"cache_hit_rate={stats['cache_hit_rate']:.2f}"
                )

                # 4. Rebuild on disk -> the server hot-swaps the index.
                generation = client.ping()["generation"]
                bigger = build_database(chromosomes=5, seed=7)
                IndexStore.build(bigger).save(store_path)
                reloaded = client.reload()
                print(
                    f"index rebuilt with a 5th chromosome: reloaded="
                    f"{reloaded['reloaded']} generation {generation} -> "
                    f"{reloaded['generation']}"
                )
                probe = ("new-chr", bigger.records[4].sequence[500:560])
                result = client.search([probe], threshold=THRESHOLD)
                hit_ids = {hit.sequence_id for hit in result.results[0].hits}
                print(f"query against the new chromosome hits: {sorted(hit_ids)}")
        print("server stopped cleanly")


if __name__ == "__main__":
    main()
