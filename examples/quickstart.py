"""Quickstart: index a sequence, search a query, inspect the hits.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import ALAE, DEFAULT_SCHEME, DNA, genome

def main() -> None:
    rng = np.random.default_rng(7)

    # 1. A synthetic "database" sequence (stand-in for a genome FASTA).
    text = genome(30_000, rng)
    print(f"text: {len(text):,} characters of synthetic DNA")

    # 2. A query: a fragment of the text with a few mutations.
    fragment = list(text[12_000:12_060])
    fragment[10] = "A" if fragment[10] != "A" else "C"   # substitution
    del fragment[35]                                     # deletion
    query = "".join(fragment)
    print(f"query: {len(query)} characters (1 substitution, 1 deletion)")

    # 3. Build the engine (FM-index of the reversed text + dominate index)
    #    and search with the community-standard E-value threshold.
    engine = ALAE(text, alphabet=DNA, scheme=DEFAULT_SCHEME)
    result = engine.search(query, e_value=1e-5)
    print(f"threshold H = {result.threshold} (from E = 1e-5)")
    print(f"hits: {len(result.hits)} end-position pairs with score >= H")

    # 4. The best hit, materialised into an alignment.
    best = result.hits.best()
    print(
        f"best: text[{best.t_start}..{best.t_end}] ~ query[..{best.p_end}] "
        f"score {best.score}"
    )
    alignment = engine.materialize(best, query)
    print(f"alignment ops: {alignment.ops}")
    print(f"identity: {alignment.identity():.1%}")

    # 5. What did the filters save? (Sec. 7.2-style accounting.)
    stats = result.stats
    print(
        f"entries calculated: {stats.calculated:,} "
        f"(x1 {stats.calculated_x1:,} / x2 {stats.calculated_x2:,} / "
        f"x3 {stats.calculated_x3:,}), reused: {stats.reused:,}"
    )
    print(f"naive Smith-Waterman would compute {len(text) * len(query):,} cells")


if __name__ == "__main__":
    main()
