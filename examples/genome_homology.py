"""Comparative genomics: align "mouse-like" queries against a "human-like"
genome and compare all four engines (the paper's Sec. 7 headline workload).

Run:  python examples/genome_homology.py
"""

import time

import numpy as np

from repro import ALAE, Blast, BwtSw, genome, sample_homologous_queries

def main() -> None:
    rng = np.random.default_rng(42)

    # The "human" genome substitute: random DNA with planted repeats.
    text = genome(40_000, rng, repeat_fraction=0.05)
    # "Mouse" queries: diverged background with short conserved segments.
    queries = sample_homologous_queries(
        text, count=3, length=1_500, rng=rng, sub_rate=0.08, indel_rate=0.02
    )
    print(f"text {len(text):,} chars, {len(queries)} queries of 1,500 chars")

    engines = {
        "ALAE   (exact)": ALAE(text),
        "BWT-SW (exact)": BwtSw(text),
        "BLAST  (heuristic)": Blast(text),
    }
    reference_hits = None
    for name, engine in engines.items():
        start = time.perf_counter()
        total_hits = 0
        for query in queries:
            result = engine.search(query, e_value=10.0)
            total_hits += len(result.hits)
        elapsed = time.perf_counter() - start
        marker = ""
        if "ALAE" in name:
            reference_hits = total_hits
        elif reference_hits is not None and total_hits < reference_hits:
            missed = reference_hits - total_hits
            marker = f"  <- missed {missed:,} results the exact engines find"
        print(f"{name}: {elapsed:6.2f}s, {total_hits:,} results{marker}")

    # Where are the conserved segments? Cluster ALAE's hits by text region.
    alae = engines["ALAE   (exact)"]
    result = alae.search(queries[0], e_value=1e-5)
    regions: list[tuple[int, int]] = []
    for hit in result.hits:
        if regions and hit.t_start <= regions[-1][1] + 50:
            regions[-1] = (regions[-1][0], max(regions[-1][1], hit.t_end))
        else:
            regions.append((hit.t_start, hit.t_end))
    print(f"\nquery 1 conserved regions in the text (E <= 1e-5):")
    for start, end in regions[:10]:
        print(f"  text[{start:,} .. {end:,}]  ({end - start + 1} chars)")


if __name__ == "__main__":
    main()
