"""Shard the database, build in parallel, serve fan-out/merge — exactly.

Partitions a multi-chromosome database into 4 balanced shards (greedy
bin-packing on sequence length, never splitting a record), builds one
:class:`repro.store.IndexStore` per shard in a process pool, and serves
queries through :class:`repro.service.ShardedSearchService`, which fans
each query across every shard and merges the per-shard hits into results
bit-identical to the unsharded :class:`repro.service.SearchService`.
Finishes with ranked ``top_k`` serving, where a shared score floor lets
late shard tasks skip hits that can no longer reach the top k.

Run:  python examples/sharded_search.py
"""

import tempfile
import time
from pathlib import Path

import numpy as np

from repro import (
    SearchService,
    ShardedSearchService,
    ShardedStore,
    ShardPlan,
    genome,
)
from repro.io.database import SequenceDatabase
from repro.io.fasta import FastaRecord


def main() -> None:
    rng = np.random.default_rng(9)
    records = [
        FastaRecord(header=f"chr{i}", sequence=genome(8_000 + 4_000 * i, rng))
        for i in range(1, 8)
    ]
    database = SequenceDatabase(records)

    plan = ShardPlan.balanced(database, 4)
    lengths = plan.shard_lengths(database)
    print(
        f"{len(records)} records, {database.total_length:,} chars -> "
        f"{plan.shard_count} shards of {'/'.join(str(n) for n in lengths)} "
        f"chars (spread {max(lengths) - min(lengths):,})"
    )

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "genome.idx"

        # Shard stores build independently — a process pool uses every core.
        started = time.perf_counter()
        store = ShardedStore.build(database, path, shards=4, build_workers=4)
        build_s = time.perf_counter() - started
        total = sum(
            store.shard_path(i).stat().st_size
            for i in range(store.shard_count)
        )
        print(
            f"built {store.shard_count} shard stores + manifest in "
            f"{build_s:.2f}s ({total:,} bytes, {store.fingerprint_key})"
        )

        sharded = ShardedSearchService(path, workers=4)
        unsharded = SearchService(database)

        query = records[3].sequence[2_000:2_080]
        merged = sharded.search(query, threshold=40)
        baseline = unsharded.search(query, threshold=40)
        assert merged.hits == baseline.hits
        print(
            f"merged hits identical to the unsharded service: "
            f"{len(merged.hits)} hits, best score {merged.best().score}"
        )

        # Fan a batch out as (query, shard) tasks across a thread pool.
        report = sharded.search_batch(
            [records[0].sequence[500:560], query, records[6].sequence[1:81]],
            threshold=40,
            workers=4,
        )
        print(
            f"batch of {len(report.results)} queries x "
            f"{sharded.shard_count} shards: {report.total_hits} hits, "
            f"shard work seconds "
            f"{'/'.join(f'{s:.3f}' for s in report.shard_work_seconds)}"
        )

        # Ranked serving: the shared score floor lets cheap shards stop
        # refining hits that can no longer reach the top k.
        top = sharded.search(query, threshold=40, top_k=3)
        print(
            f"top-3 by score: "
            f"{', '.join(f'{h.sequence_id}@{h.t_end}={h.score}' for h in top.hits)}"
        )


if __name__ == "__main__":
    main()
