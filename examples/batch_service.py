"""Batch serving end-to-end: one shared engine, many queries, attributed hits.

Builds a small multi-chromosome database, stands up a
:class:`repro.service.SearchService`, and runs a mixed batch: homologous
queries, an exact fragment, and a query that only matches *across* the
chr1|chr2 concatenation boundary (reported as dropped, never as a hit).

Run:  python examples/batch_service.py
"""

import numpy as np

from repro import SearchService, genome
from repro.io.fasta import FastaRecord
from repro.service import Query


def main() -> None:
    rng = np.random.default_rng(5)
    records = [
        FastaRecord(header=f"chr{i}", sequence=genome(6_000, rng))
        for i in range(1, 4)
    ]
    service = SearchService(records, workers=2)
    text = service.database.text
    chr2 = records[1].sequence

    batch = [
        Query("exact", chr2[1_000:1_080]),
        Query("deletion", chr2[2_000:2_040] + chr2[2_046:2_086]),
        Query("straddle", text[5_970:6_030]),  # spans the chr1|chr2 boundary
    ]
    report = service.search_batch(batch, threshold=40)

    print(
        f"database: {len(service.database)} sequences, "
        f"{service.database.total_length:,} chars"
    )
    print(
        f"batch: {len(report.results)} queries in {report.wall_seconds:.3f}s "
        f"({report.queries_per_second:.1f} q/s, workers={report.workers})"
    )
    for result in report.results:
        best = result.best()
        where = (
            f"best {best.score} at {best.sequence_id}:{best.t_start}-{best.t_end}"
            if best
            else "no attributable hit"
        )
        print(
            f"  {result.query_id:>9}: {len(result.hits)} hits "
            f"({result.dropped_boundary} boundary-spanning dropped) — {where}"
        )
    stats = report.stats
    print(
        f"aggregate: {stats.calculated:,} entries calculated, "
        f"{stats.reused:,} reused, cost {stats.computation_cost:,}"
    )


if __name__ == "__main__":
    main()
