"""Protein motif search: find a conserved domain across a protein database.

Demonstrates the sigma = 20 path: multi-sequence databases via
SequenceDatabase, the protein scoring scheme <1,-3,-11,-1> (Sec. 7.5), and
per-sequence hit attribution.

Run:  python examples/protein_motif.py
"""

import numpy as np

from repro import ALAE, PROTEIN, ScoringScheme, SequenceDatabase, mutate
from repro.io.fasta import FastaRecord

def main() -> None:
    rng = np.random.default_rng(11)
    scheme = ScoringScheme(1, -3, -11, -1)  # the paper's protein scheme

    # A conserved "domain" planted (with drift) into several proteins.
    domain = PROTEIN.random_sequence(40, rng)
    records = []
    for idx in range(6):
        body = PROTEIN.random_sequence(800, rng)
        if idx % 2 == 0:  # half the proteins carry a diverged domain copy
            site = int(rng.integers(100, 600))
            copy = mutate(domain, rng, sub_rate=0.10, indel_rate=0.0,
                          alphabet=PROTEIN)
            body = body[:site] + copy + body[site + len(copy):]
        records.append(FastaRecord(header=f"protein_{idx}", sequence=body))
    database = SequenceDatabase(records)
    print(f"database: {len(database)} proteins, {database.total_length:,} aa")

    engine = ALAE(database.text, alphabet=PROTEIN, scheme=scheme)
    result = engine.search(domain, e_value=1e-6)
    print(f"H = {result.threshold}, raw hits = {len(result.hits)}")

    located = database.locate_hits(result.hits.hits())
    carriers = {}
    for hit in located:
        best = carriers.get(hit.sequence_id)
        if best is None or hit.score > best.score:
            carriers[hit.sequence_id] = hit
    print("domain carriers:")
    for seq_id in sorted(carriers):
        hit = carriers[seq_id]
        print(
            f"  {seq_id}: positions {hit.t_start}-{hit.t_end}, "
            f"score {hit.score}"
        )
    expected = {f"protein_{i}" for i in range(6) if i % 2 == 0}
    found = set(carriers)
    print(f"expected carriers found: {sorted(found & expected)}")


if __name__ == "__main__":
    main()
