"""FASTA database search end-to-end: write a FASTA file, load it, search it.

Demonstrates the io layer (FASTA round-trip, multi-sequence concatenation)
together with E-value thresholds and hit materialisation.

Run:  python examples/database_search.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import ALAE, SequenceDatabase, genome, parse_fasta_file, write_fasta
from repro.io.fasta import FastaRecord

def main() -> None:
    rng = np.random.default_rng(23)

    # Build and save a small multi-chromosome database.
    records = [
        FastaRecord(header=f"chr{i} synthetic", sequence=genome(8_000, rng))
        for i in range(1, 5)
    ]
    fasta_path = Path(tempfile.gettempdir()) / "repro_example_db.fa"
    write_fasta(records, fasta_path)
    print(f"wrote {fasta_path} ({fasta_path.stat().st_size:,} bytes)")

    # Load it back and assemble the concatenated search text (Sec. 2.2).
    loaded = parse_fasta_file(fasta_path)
    database = SequenceDatabase(loaded)
    print(f"loaded {len(database)} sequences, {database.total_length:,} chars")

    # Query: a fragment of chr3 with a small deletion.
    chr3 = loaded[2].sequence
    query = chr3[4_000:4_050] + chr3[4_055:4_110]
    print(f"query: {len(query)} chars from chr3 (5-char deletion inside)")

    engine = ALAE(database.text)
    result = engine.search(query, e_value=1e-8)
    located = database.locate_hits(result.hits.hits())
    best_per_seq: dict[str, int] = {}
    for hit in located:
        best_per_seq[hit.sequence_id] = max(
            best_per_seq.get(hit.sequence_id, 0), hit.score
        )
    print(f"H = {result.threshold}; best score per sequence:")
    for seq_id, score in sorted(best_per_seq.items()):
        print(f"  {seq_id}: {score}")

    best = result.hits.best()
    alignment = engine.materialize(best, query)
    gaps = alignment.ops.count("I") + alignment.ops.count("D")
    print(
        f"best alignment: score {best.score}, {len(alignment.ops)} columns, "
        f"{gaps} gap columns (the planted deletion)"
    )


if __name__ == "__main__":
    main()
