"""Build once, mmap-serve forever: the persistent index store end-to-end.

Builds a multi-chromosome database, serializes every index (reversed-text
CSA, dominate index, offset table) into one store file, then cold-starts a
:class:`repro.service.SearchService` from that file — no suffix-array
construction — and shows the two services answering identically.  Finally
it corrupts a copy of the store and shows verification catching it.

Run:  python examples/index_store.py
"""

import tempfile
import time
from pathlib import Path

import numpy as np

from repro import IndexStore, SearchService, genome
from repro.io.fasta import FastaRecord


def main() -> None:
    rng = np.random.default_rng(5)
    records = [
        FastaRecord(header=f"chr{i}", sequence=genome(40_000, rng))
        for i in range(1, 4)
    ]

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "genome.idx"

        # Pay the construction cost exactly once.
        started = time.perf_counter()
        store = IndexStore.build(records)
        build_s = time.perf_counter() - started
        store.save(path)
        print(f"built + saved {path.name}: {path.stat().st_size:,} bytes "
              f"in {build_s:.2f}s ({store.fingerprint_key})")

        # Every later process opens in milliseconds via numpy.memmap.
        started = time.perf_counter()
        served = SearchService.from_store(path)
        open_s = time.perf_counter() - started
        print(f"cold-started a service from the store in {open_s * 1e3:.1f}ms "
              f"({build_s / open_s:.0f}x faster than rebuilding)")

        fresh = SearchService(records)
        query = records[1].sequence[1_000:1_080]
        a = fresh.search(query, threshold=40)
        b = served.search(query, threshold=40)
        assert a.hits == b.hits
        print(f"served hits identical to freshly built engine: "
              f"{len(b.hits)} hits, best score {b.best().score}")

        # Spawn workers reopen the store by path — no fork required.
        report = served.search_batch(
            [query, records[0].sequence[2_000:2_060]],
            threshold=40, workers=2, executor="spawn",
        )
        print(f"spawn pool served {len(report.results)} queries, "
              f"{report.total_hits} hits")

        # A single flipped byte never goes unnoticed.
        corrupt = Path(tmp) / "corrupt.idx"
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0x01
        corrupt.write_bytes(bytes(raw))
        problems = IndexStore.verify(corrupt)
        print(f"verification of a corrupted copy: {problems[0]}")


if __name__ == "__main__":
    main()
