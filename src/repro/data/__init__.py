"""Synthetic biosequence generators (substituting the paper's real datasets)."""

from repro.data.synthetic import (
    genome,
    mutate,
    random_sequence,
    sample_homologous_queries,
)

__all__ = ["genome", "mutate", "random_sequence", "sample_homologous_queries"]
