"""Synthetic sequence generation (the paper-data substitution layer).

The paper evaluates on GRCh37 human chromosomes, mouse chr1 queries and the
UniParc protein database.  Those are unavailable offline, so we generate
sequences that exercise the same engine behaviour:

* :func:`genome` — random background plus planted *tandem repeats* and
  *segmental duplications* (lightly mutated copies).  Repeat content is what
  drives ALAE's reuse ratio and the suffix-trie sharing, so it is modelled
  explicitly rather than left to uniform randomness.
* :func:`sample_homologous_queries` — queries cut from the text and mutated
  with point substitutions and short indels, reproducing the "align mouse
  against human" homology workload (queries genuinely align somewhere).
* :func:`mutate` — the mutation model itself (substitution + indel rates).

All functions take an explicit ``numpy.random.Generator`` so every experiment
is reproducible from a seed; when the caller passes none, the fallback is a
*fixed-seed* generator (never OS entropy), so even "just give me a sequence"
calls are reproducible — seedability is this module's contract, enforced by
the REP201 determinism checker.
"""

from __future__ import annotations

import numpy as np

from repro.alphabet import DNA, Alphabet
from repro.errors import ReproError

#: Seed of the fallback generator used when a caller passes ``rng=None``.
DEFAULT_SEED = 0


def _default_rng(rng):
    """The caller's generator, or the fixed-seed fallback (never OS entropy)."""
    return rng if rng is not None else np.random.default_rng(DEFAULT_SEED)


def random_sequence(length: int, alphabet: Alphabet = DNA, rng=None) -> str:
    """Uniform random sequence over ``alphabet``."""
    rng = _default_rng(rng)
    return alphabet.random_sequence(length, rng)


def mutate(
    sequence: str,
    rng,
    sub_rate: float = 0.05,
    indel_rate: float = 0.01,
    alphabet: Alphabet = DNA,
) -> str:
    """Apply point substitutions and single-character indels to a sequence."""
    if not 0 <= sub_rate <= 1 or not 0 <= indel_rate <= 1:
        raise ReproError("mutation rates must be within [0, 1]")
    out: list[str] = []
    chars = alphabet.chars
    for char in sequence:
        r = rng.random()
        if r < indel_rate / 2:
            continue  # deletion
        if r < indel_rate:
            out.append(chars[rng.integers(0, len(chars))])  # insertion
        if rng.random() < sub_rate:
            # Substitute with a *different* character.
            choices = [c for c in chars if c != char]
            out.append(choices[rng.integers(0, len(choices))])
        else:
            out.append(char)
    return "".join(out)


def genome(
    length: int,
    rng=None,
    alphabet: Alphabet = DNA,
    repeat_fraction: float = 0.3,
    segment_length: int = 500,
    tandem_fraction: float = 0.1,
    tandem_unit: int = 12,
    copy_sub_rate: float = 0.02,
) -> str:
    """A repeat-structured synthetic genome of ``length`` characters.

    Starts from a uniform background, then overwrites ``repeat_fraction`` of
    the sequence with lightly-mutated copies of earlier segments (segmental
    duplications) and ``tandem_fraction`` with short tandem arrays.
    """
    if length <= 0:
        raise ReproError(f"length must be positive, got {length}")
    rng = _default_rng(rng)
    base = list(alphabet.random_sequence(length, rng))

    # Segmental duplications: copy an earlier window onto a later one.
    budget = int(length * repeat_fraction)
    while budget > 0 and length > 2 * segment_length:
        seg_len = int(min(segment_length, budget, length // 4))
        if seg_len < 10:
            break
        src = int(rng.integers(0, length - 2 * seg_len))
        dst = int(rng.integers(src + seg_len, length - seg_len))
        copy = mutate(
            "".join(base[src : src + seg_len]),
            rng,
            sub_rate=copy_sub_rate,
            indel_rate=0.0,
            alphabet=alphabet,
        )[:seg_len]
        base[dst : dst + len(copy)] = list(copy)
        budget -= seg_len

    # Tandem repeats: short unit repeated in place.
    budget = int(length * tandem_fraction)
    while budget > 0 and length > 4 * tandem_unit:
        copies = int(rng.integers(3, 8))
        span = tandem_unit * copies
        if span > length // 4:
            break
        start = int(rng.integers(0, length - span))
        unit = "".join(base[start : start + tandem_unit])
        base[start : start + span] = list(unit * copies)
        budget -= span
    return "".join(base)


def sample_homologous_queries(
    text: str,
    count: int,
    length: int,
    rng=None,
    sub_rate: float = 0.05,
    indel_rate: float = 0.01,
    alphabet: Alphabet = DNA,
    segment_length: int = 150,
    planted_fraction: float = 0.15,
    duplicate_fraction: float = 0.5,
    tandem_unit: int = 25,
    tandem_copies: int = 6,
) -> list[str]:
    """Cross-species-style queries (the Sec. 7 mouse-vs-human workload).

    Real comparative-genomics queries are *not* end-to-end copies of the
    database: homology concentrates in short conserved segments embedded in
    diverged background, and genomic queries carry *internal repetition*
    (SINE/LINE-style elements occurring several times per query — the source
    of the paper's Sec. 4 reuse opportunities).  Each query is therefore:

    * a random background of ``length`` characters,
    * ``~ length * planted_fraction / segment_length`` mutated text windows
      at random offsets, where each window after the first repeats an
      earlier one with probability ``duplicate_fraction`` (duplicated
      segments => duplicated fork columns => reusable gap regions),
    * one tandem array (a ``tandem_unit``-char text window repeated
      ``tandem_copies`` times) when the query is long enough.

    Hit counts then grow linearly with query length (paper Table 2) and the
    random background — where the filtering techniques act — dominates.
    """
    if length > len(text):
        raise ReproError(
            f"query length {length} exceeds text length {len(text)}"
        )
    rng = _default_rng(rng)
    queries = []
    seg = min(segment_length, max(20, length // 2))
    n_segments = max(1, round(length * planted_fraction / seg))
    for _ in range(count):
        query = list(alphabet.random_sequence(length, rng))
        planted: list[str] = []
        for _seg in range(n_segments):
            if planted and rng.random() < duplicate_fraction:
                fragment = planted[int(rng.integers(0, len(planted)))]
            else:
                src = int(rng.integers(0, len(text) - seg + 1))
                fragment = mutate(
                    text[src : src + seg], rng, sub_rate=sub_rate,
                    indel_rate=indel_rate, alphabet=alphabet,
                )[:seg]
                planted.append(fragment)
            dst = int(rng.integers(0, length - len(fragment) + 1))
            query[dst : dst + len(fragment)] = list(fragment)
        array_len = tandem_unit * tandem_copies
        if tandem_copies > 0 and length >= 2 * array_len:
            src = int(rng.integers(0, len(text) - tandem_unit + 1))
            unit = text[src : src + tandem_unit]
            dst = int(rng.integers(0, length - array_len + 1))
            query[dst : dst + array_len] = list(unit * tandem_copies)
        queries.append("".join(query))
    return queries
