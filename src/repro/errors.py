"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause.
"""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class AlphabetError(ReproError):
    """A sequence contains characters outside the declared alphabet."""


class ScoringError(ReproError):
    """A scoring scheme violates the paper's sign/shape constraints."""


class IndexError_(ReproError):
    """An index (suffix array / FM-index / trie) was built or queried badly."""


class SearchError(ReproError):
    """A search was invoked with inconsistent parameters."""


class EValueError(ReproError):
    """Karlin-Altschul statistics could not be computed for a scheme."""


class StoreError(ReproError):
    """A persistent index store is corrupt, incompatible, or misused."""
