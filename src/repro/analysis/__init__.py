"""``repro/analysis`` — the repo's invariants as machine-enforced AST rules.

The same bug classes kept recurring across PRs (a falsy-sentinel test
fixed by hand in PR 3 and again in PR 5; a wire parameter threaded through
only two of the three keys it feeds in PR 6).  This subsystem turns each
of those classes into a registered :class:`~repro.analysis.base.Checker`
that walks the source AST on every CI run — reviewer memory becomes a
gate (``repro lint src/``).

See the README "Static analysis" section for the invariant catalog, and
``# repro-lint: allow[CODE] -- reason`` for the (reason-mandatory)
suppression syntax.
"""

from repro.analysis.base import CHECKERS, BaseChecker, Checker, LintError, register
from repro.analysis.config import LintConfig, load_config
from repro.analysis.findings import (
    SEVERITIES,
    SEVERITY_ERROR,
    SEVERITY_OFF,
    SEVERITY_WARNING,
    Finding,
)
from repro.analysis.runner import LintReport, run_lint
from repro.analysis.suppressions import SUPPRESSION_CODE

__all__ = [
    "CHECKERS",
    "BaseChecker",
    "Checker",
    "Finding",
    "LintConfig",
    "LintError",
    "LintReport",
    "SEVERITIES",
    "SEVERITY_ERROR",
    "SEVERITY_OFF",
    "SEVERITY_WARNING",
    "SUPPRESSION_CODE",
    "load_config",
    "register",
    "run_lint",
]
