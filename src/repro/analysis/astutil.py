"""Small AST conveniences shared by the checkers."""

from __future__ import annotations

import ast


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, None for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def module_path_matches(rel: str, patterns: "tuple[str, ...]") -> bool:
    """True when ``rel`` is covered by one of the path patterns.

    A pattern ending in ``/`` matches any file under a directory of that
    (possibly nested) name; anything else is a path-suffix match, so config
    entries stay short (``data/synthetic.py``) and survive repo moves.
    """
    probe = "/" + rel
    for pattern in patterns:
        if pattern.endswith("/"):
            if ("/" + pattern) in probe or rel.startswith(pattern):
                return True
        elif probe.endswith("/" + pattern) or rel == pattern:
            return True
    return False


def top_level_bindings(tree: ast.Module) -> tuple[dict[str, int], dict[str, int]]:
    """Names bound at module top level: ``(defined, imported)`` -> lineno.

    Descends into top-level ``if``/``try`` blocks (the conventional homes of
    guarded imports and version fallbacks) but not into function or class
    bodies.
    """
    defined: dict[str, int] = {}
    imported: dict[str, int] = {}

    def visit(statements) -> None:
        for node in statements:
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                defined.setdefault(node.name, node.lineno)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        defined.setdefault(target.id, node.lineno)
            elif isinstance(node, ast.AnnAssign):
                if isinstance(node.target, ast.Name):
                    defined.setdefault(node.target.id, node.lineno)
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                for alias in node.names:
                    bound = (alias.asname or alias.name).split(".")[0]
                    imported.setdefault(bound, node.lineno)
            elif isinstance(node, ast.If):
                visit(node.body)
                visit(node.orelse)
            elif isinstance(node, ast.Try):
                visit(node.body)
                for handler in node.handlers:
                    visit(handler.body)
                visit(node.orelse)
                visit(node.finalbody)

    visit(tree.body)
    return defined, imported


def literal_str_elements(node: ast.AST) -> "list[tuple[str, int]] | None":
    """``[(value, lineno), ...]`` for a list/tuple of string constants."""
    if not isinstance(node, (ast.List, ast.Tuple)):
        return None
    out: list[tuple[str, int]] = []
    for element in node.elts:
        if not (
            isinstance(element, ast.Constant)
            and isinstance(element.value, str)
        ):
            return None
        out.append((element.value, element.lineno))
    return out
