"""The blocking-call table shared by REP401 and REP802.

REP401 established the canonical list of "this call parks the thread"
primitives for the async serving tier; REP802 reuses the same table to
reason about lock-hold latency, plus the socket surface (the async
checker never sees raw sockets — the event loop owns them — but a
worker thread calling ``socket.recv`` while holding a lock is a classic
tail-latency bug).  Store opens need no entry of their own: the flow
call graph reaches the ``open()``/``read_bytes`` inside
``IndexStore.open``/``read_manifest`` transitively.
"""

from __future__ import annotations

import ast

from repro.analysis.astutil import dotted_name

#: ``Path`` content I/O spelled as attribute calls.
FILE_IO_ATTRS = frozenset(
    {"read_text", "write_text", "read_bytes", "write_bytes"}
)

#: Socket attribute calls that park the calling thread.  ``send`` and
#: ``connect`` are omitted: too many unrelated APIs share those names
#: (``BaseHTTPRequestHandler.send_response``, catalog ``connect``).
SOCKET_ATTRS = frozenset({"recv", "recv_into", "sendall", "accept"})


def blocking_label(call: ast.Call, is_awaited: bool) -> str | None:
    """Human label if ``call`` is a known blocking primitive, else None.

    This is REP401's original table: time.sleep, sqlite3, ``open()``,
    Path content I/O, and un-awaited ``.acquire()``.
    """
    name = dotted_name(call.func)
    if name == "time.sleep":
        return "time.sleep()"
    if name is not None and (name.startswith("sqlite3.") or name == "open"):
        return f"{name}()"
    if isinstance(call.func, ast.Attribute):
        if call.func.attr in FILE_IO_ATTRS:
            return f".{call.func.attr}() file I/O"
        if call.func.attr == "acquire" and not is_awaited:
            return "un-awaited .acquire()"
    return None


def flow_blocking_label(call: ast.Call, is_awaited: bool) -> str | None:
    """REP802's superset: the REP401 table plus the socket surface."""
    label = blocking_label(call, is_awaited)
    if label is not None:
        # a bare .acquire() is an *acquisition* to the flow layer, not a
        # blocking primitive — the lock-order pass models it instead.
        if label == "un-awaited .acquire()":
            return None
        return label
    name = dotted_name(call.func)
    if name is not None and name.startswith("socket."):
        return f"{name}()"
    if (
        isinstance(call.func, ast.Attribute)
        and call.func.attr in SOCKET_ATTRS
    ):
        return f".{call.func.attr}() socket I/O"
    return None
