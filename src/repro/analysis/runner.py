"""Lint runner: collect sources, run every registered checker, report.

One invocation parses each target file exactly once, hands the parsed
files to the per-file checkers and the whole set to the cross-file
(drift) checkers, applies reasoned suppressions, and folds everything
into a :class:`LintReport` with CI-ready exit semantics:

* exit 0 — no error-severity findings (warnings may exist);
* exit 1 — at least one unsuppressed error finding;
* usage problems (no such path, bad config) raise :class:`LintError`
  and exit 2 through the CLI's normal error path.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis import checkers as _checkers  # noqa: F401 (registers all)
from repro.analysis.astutil import module_path_matches
from repro.analysis.base import CHECKERS, LintError, ParsedFile, Project
from repro.analysis.config import LintConfig, load_config
from repro.analysis.findings import (
    SEVERITY_ERROR,
    SEVERITY_OFF,
    SEVERITY_WARNING,
    Finding,
)
from repro.analysis.flow import build_flow_index
from repro.analysis.sarif import format_sarif
from repro.analysis.suppressions import SUPPRESSION_CODE, scan_suppressions


@dataclass
class LintReport:
    """Everything one lint run learned."""

    findings: list[Finding] = field(default_factory=list)
    files: int = 0
    suppressed: int = 0
    #: code -> {"files": scanned, "findings": kept, "suppressed": count};
    #: a checker showing ``files: 0`` in CI is a checker whose scope
    #: matched nothing — the REP301 silent-skip failure mode, made loud.
    checkers: dict[str, dict[str, int]] = field(default_factory=dict)

    @property
    def errors(self) -> int:
        return sum(1 for f in self.findings if f.severity == SEVERITY_ERROR)

    @property
    def warnings(self) -> int:
        return sum(1 for f in self.findings if f.severity == SEVERITY_WARNING)

    @property
    def exit_code(self) -> int:
        return 1 if self.errors else 0

    def format_text(self) -> str:
        lines = [finding.render() for finding in self.findings]
        lines.append(
            f"{self.files} file(s) checked: {self.errors} error(s), "
            f"{self.warnings} warning(s), {self.suppressed} suppressed"
        )
        return "\n".join(lines)

    def format_json(self) -> str:
        return json.dumps(
            {
                "files": self.files,
                "errors": self.errors,
                "warnings": self.warnings,
                "suppressed": self.suppressed,
                "checkers": self.checkers,
                "findings": [f.to_dict() for f in self.findings],
            },
            indent=2,
            sort_keys=True,
        )

    def format_sarif(self) -> str:
        return format_sarif(self.findings)


def collect_files(
    paths: "list[str | Path]", config: LintConfig
) -> list[Path]:
    """Every ``.py`` file under the targets, deterministic order."""
    out: list[Path] = []
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            candidates = [path]
        elif path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        else:
            raise LintError(f"lint target {path} does not exist")
        for candidate in candidates:
            # dedupe on the resolved path: ``repro lint src/repro/cli.py
            # src/`` names the same file twice under different spellings
            resolved = candidate.resolve()
            if candidate.suffix != ".py" or resolved in seen:
                continue
            if module_path_matches(candidate.as_posix(), config.exclude):
                continue
            seen.add(resolved)
            out.append(candidate)
    return out


def _parse(path: Path) -> "tuple[ParsedFile | None, Finding | None]":
    rel = path.as_posix()
    try:
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=rel)
    except (OSError, SyntaxError, UnicodeDecodeError) as exc:
        return None, Finding(
            path=rel,
            line=getattr(exc, "lineno", None) or 1,
            code=SUPPRESSION_CODE,
            severity=SEVERITY_ERROR,
            message=f"cannot parse: {exc}",
        )
    return ParsedFile(rel=rel, source=source, tree=tree), None


def run_lint(
    paths: "list[str | Path]",
    config: LintConfig | None = None,
    dump_graph: "str | Path | None" = None,
) -> LintReport:
    """Lint the targets and return the full report (nothing is printed).

    ``dump_graph`` writes the flow index's canonical JSON (call graph,
    lock identities, order edges) to the given path — the debugging
    surface for the flow checkers, byte-identical across runs on the
    same tree.
    """
    if config is None:
        config = load_config(paths)
    report = LintReport()
    known_codes = set(CHECKERS) | {SUPPRESSION_CODE}
    parsed: list[ParsedFile] = []
    raw: list[Finding] = []
    for path in collect_files(paths, config):
        report.files += 1
        parsed_file, problem = _parse(path)
        if problem is not None:
            raw.append(problem)
            continue
        allowed, syntax_findings = scan_suppressions(
            parsed_file.rel, parsed_file.source, known_codes
        )
        parsed_file.allowed = allowed
        raw.extend(syntax_findings)
        parsed.append(parsed_file)
    by_rel = {f.rel: f for f in parsed}
    project = Project(files=parsed)
    flow_index = None
    needs_flow = dump_graph is not None or any(
        checker.scope == "flow" for checker in CHECKERS.values()
    )
    if needs_flow:
        flow_index = build_flow_index(project)
    for checker in CHECKERS.values():
        if checker.scope == "project":
            raw.extend(checker.check(project, config))
        elif checker.scope == "flow":
            raw.extend(checker.check(flow_index, config))
        else:
            for parsed_file in parsed:
                raw.extend(checker.check(parsed_file, config))
    if dump_graph is not None and flow_index is not None:
        Path(dump_graph).write_text(
            flow_index.to_json() + "\n", encoding="utf-8"
        )
    stats = {
        code: {
            "files": sum(
                1
                for parsed_file in parsed
                if checker.in_scope(parsed_file.rel, config)
            ),
            "findings": 0,
            "suppressed": 0,
        }
        for code, checker in CHECKERS.items()
    }
    for finding in raw:
        if finding.severity == SEVERITY_OFF:
            continue
        holder = by_rel.get(finding.path)
        if (
            holder is not None
            and finding.code != SUPPRESSION_CODE
            and finding.code in holder.allowed.get(finding.line, ())
        ):
            report.suppressed += 1
            if finding.code in stats:
                stats[finding.code]["suppressed"] += 1
            continue
        report.findings.append(finding)
        if finding.code in stats:
            stats[finding.code]["findings"] += 1
    report.checkers = dict(sorted(stats.items()))
    report.findings.sort()
    return report
