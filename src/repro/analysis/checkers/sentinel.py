"""REP101 sentinel-discipline: no truthiness or magic literals on sentinels.

The recurring bug: ``t_start == 0`` means "start unknown"
(:data:`repro.align.types.START_UNKNOWN`), and because 0 is falsy, code
keeps testing it with ``if hit.t_start:`` or comparing against the raw
literal — which reads as "position zero" and silently breaks when the
sentinel representation changes.  PR 3 fixed this in
``SequenceDatabase.locate_hit``, PR 5 fixed it again in
``ALAE.materialize``; this checker makes the third hand-fix the last one.

Flagged:

* truthiness tests on a sentinel-bearing attribute (``if x.t_start``,
  ``not x.t_start``, ``x.t_start or y``, ``a if x.t_start else b``);
* ``==``/``!=`` comparisons of a sentinel-bearing attribute or variable
  against the magic literal ``0``.

Ordering comparisons (``<``, ``>=``) and arithmetic are untouched — those
treat the value as a position, which is exactly what named-constant
discipline makes safe to do.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.base import BaseChecker, ParsedFile, register
from repro.analysis.findings import Finding

#: field name -> the named constant its sentinel must be spelled as.
SENTINEL_FIELDS = {
    "t_start": "START_UNKNOWN (repro.align.types)",
}


def _sentinel_attr(node: ast.AST) -> str | None:
    if isinstance(node, ast.Attribute) and node.attr in SENTINEL_FIELDS:
        return node.attr
    return None


def _sentinel_ref(node: ast.AST) -> str | None:
    """Attribute or bare-name reference to a sentinel-bearing field."""
    attr = _sentinel_attr(node)
    if attr is not None:
        return attr
    if isinstance(node, ast.Name) and node.id in SENTINEL_FIELDS:
        return node.id
    return None


def _is_zero(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Constant)
        and node.value == 0
        and not isinstance(node.value, bool)
    )


@register
class SentinelDiscipline(BaseChecker):
    code = "REP101"
    name = "sentinel-discipline"
    description = (
        "sentinel-bearing fields (t_start) must be compared against their "
        "named constant, never tested for truthiness or against a magic 0"
    )
    origin = "PR 3 (locate_hit), PR 5 (ALAE.materialize)"

    def check(self, target: ParsedFile, config) -> Iterable[Finding]:
        severity = config.severity_of(self.code, self.default_severity)
        for node in ast.walk(target.tree):
            if isinstance(node, ast.Compare):
                yield from self._compare(target, node, severity)
            elif isinstance(node, (ast.If, ast.While, ast.IfExp, ast.Assert)):
                yield from self._truthiness(target, node.test, severity)
            elif isinstance(node, ast.BoolOp):
                for value in node.values:
                    yield from self._truthiness(target, value, severity)
            elif isinstance(node, ast.UnaryOp) and isinstance(
                node.op, ast.Not
            ):
                yield from self._truthiness(target, node.operand, severity)

    def _compare(
        self, target: ParsedFile, node: ast.Compare, severity: str
    ) -> Iterable[Finding]:
        sides = [node.left, *node.comparators]
        for op, (lhs, rhs) in zip(node.ops, zip(sides, sides[1:])):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            for ref, other in ((lhs, rhs), (rhs, lhs)):
                field = _sentinel_ref(ref)
                if field is not None and _is_zero(other):
                    yield self.finding(
                        target.rel,
                        node.lineno,
                        f"magic-literal sentinel comparison on "
                        f"{field!r}; spell the sentinel as "
                        f"{SENTINEL_FIELDS[field]}",
                        severity,
                    )
                    break

    def _truthiness(
        self, target: ParsedFile, expr: ast.AST, severity: str
    ) -> Iterable[Finding]:
        field = _sentinel_attr(expr)
        if field is not None:
            yield self.finding(
                target.rel,
                expr.lineno,
                f"truthiness test on sentinel-bearing field {field!r} "
                f"(0 is the {SENTINEL_FIELDS[field]} sentinel, not "
                f"false); compare explicitly",
                severity,
            )
