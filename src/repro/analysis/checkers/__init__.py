"""Checker implementations; importing this package registers them all.

Each module defines one checker class decorated with
:func:`~repro.analysis.base.register`, so the import list below *is* the
active rule set — a checker missing here is a checker that never runs.
"""

from repro.analysis.checkers import (  # noqa: F401  (import-for-registration)
    async_blocking,
    blocking_lock,
    cache_key,
    determinism,
    exceptions,
    exports,
    lock_order,
    metrics_registration,
    sentinel,
    shared_state,
)

__all__ = [
    "async_blocking",
    "blocking_lock",
    "cache_key",
    "determinism",
    "exceptions",
    "exports",
    "lock_order",
    "metrics_registration",
    "sentinel",
    "shared_state",
]
