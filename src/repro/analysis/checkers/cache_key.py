"""REP301 cache-key drift: a wire parameter must reach every key it feeds.

PR 6 added ``mode`` to the search request and then had to hand-thread it
through :class:`~repro.server.batcher.BatchKey` (so tiers never share a
batch), :meth:`~repro.server.cache.ResultCache.key` (so a cached exact
answer is never replayed for a fast request) and the request-log columns
(so replay reconstructs the real traffic mix).  Forgetting any one of the
three is silent: results are *wrong* (stale cache hits across parameter
values) rather than failing.

This cross-file pass re-derives the contract from the AST on every run:

* the wire surface — every ``payload.get("<field>")`` inside
  ``SearchServer._parse_search`` / ``_handle_search``
  (``server/server.py``), minus the fields that cannot affect a result
  (:data:`NON_KEY_WIRE_FIELDS`);
* the batch key — field names of the ``BatchKey`` dataclass
  (``server/batcher.py``);
* the cache key — parameter names of ``ResultCache.key``
  (``server/cache.py``);
* the log schema — entries of ``REQUEST_COLUMNS`` (``obs/reqlog.py``).

Every wire field must appear in all three.  Counterpart files absent from
the lint target set are skipped (linting a subtree stays possible), but an
*ambiguous* anchor — two files matching a suffix — warns via
:meth:`Project.require` instead of silently checking nothing; the CI gate
lints ``src/`` whole, where all four are present and unique.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.astutil import literal_str_elements
from repro.analysis.base import BaseChecker, ParsedFile, Project, register
from repro.analysis.findings import Finding

#: Wire fields that can never affect a cached/batched/logged result:
#: ``op`` routes the request, ``queries`` carries the sequences themselves
#: (the cache keys on the sequence string directly), ``trace`` only toggles
#: response verbosity.  Adding a field here is an explicit decision that it
#: is result-neutral.
NON_KEY_WIRE_FIELDS = frozenset({"op", "queries", "trace"})

_PARSE_FUNCTIONS = ("_parse_search", "_handle_search")


def _payload_get_keys(func: ast.AST) -> "list[tuple[str, int]]":
    keys: list[tuple[str, int]] = []
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "get"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "payload"
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            keys.append((node.args[0].value, node.lineno))
    return keys


def _class_def(tree: ast.Module, name: str) -> ast.ClassDef | None:
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    return None


def _dataclass_fields(cls: ast.ClassDef) -> set[str]:
    return {
        node.target.id
        for node in cls.body
        if isinstance(node, ast.AnnAssign)
        and isinstance(node.target, ast.Name)
    }


def _method_params(cls: ast.ClassDef, method: str) -> set[str] | None:
    for node in cls.body:
        if isinstance(node, ast.FunctionDef) and node.name == method:
            args = node.args
            names = [
                a.arg
                for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
            ]
            return {n for n in names if n not in ("self", "cls")}
    return None


@register
class CacheKeyDrift(BaseChecker):
    code = "REP301"
    name = "cache-key-drift"
    description = (
        "every field parsed from the wire search request must appear in "
        "BatchKey, ResultCache.key, and the request-log columns"
    )
    origin = "PR 6 (the mode slot was hand-threaded through all three)"
    scope = "project"

    def in_scope(self, rel: str, config) -> bool:
        return any(
            rel.endswith(suffix)
            for suffix in (
                "server/server.py",
                "server/batcher.py",
                "server/cache.py",
                "obs/reqlog.py",
            )
        )

    def check(self, target: Project, config) -> Iterable[Finding]:
        severity = config.severity_of(self.code, self.default_severity)
        server, problem = target.require("server/server.py", self)
        if problem is not None:
            yield problem
        if server is None:
            return
        wire: dict[str, int] = {}
        for node in ast.walk(server.tree):
            if (
                isinstance(node, ast.FunctionDef)
                or isinstance(node, ast.AsyncFunctionDef)
            ) and node.name in _PARSE_FUNCTIONS:
                for key, line in _payload_get_keys(node):
                    wire.setdefault(key, line)
        params = {
            key: line
            for key, line in wire.items()
            if key not in NON_KEY_WIRE_FIELDS
        }
        if not params:
            return
        yield from self._check_batch_key(target, params, severity)
        yield from self._check_cache_key(target, params, severity)
        yield from self._check_request_log(target, params, severity)

    def _check_batch_key(
        self, project: Project, params: dict, severity: str
    ) -> Iterable[Finding]:
        batcher, problem = project.require("server/batcher.py", self)
        if problem is not None:
            yield problem
        if batcher is None:
            return
        cls = _class_def(batcher.tree, "BatchKey")
        if cls is None:
            yield self.finding(
                batcher.rel, 1, "BatchKey class not found", severity
            )
            return
        fields = _dataclass_fields(cls)
        for param in sorted(params):
            if param not in fields:
                yield self.finding(
                    batcher.rel,
                    cls.lineno,
                    f"wire search parameter {param!r} is missing from "
                    f"BatchKey: two requests differing only in "
                    f"{param!r} would share one engine batch",
                    severity,
                )

    def _check_cache_key(
        self, project: Project, params: dict, severity: str
    ) -> Iterable[Finding]:
        cache, problem = project.require("server/cache.py", self)
        if problem is not None:
            yield problem
        if cache is None:
            return
        cls = _class_def(cache.tree, "ResultCache")
        key_params = None if cls is None else _method_params(cls, "key")
        if key_params is None:
            yield self.finding(
                cache.rel, 1, "ResultCache.key not found", severity
            )
            return
        for param in sorted(params):
            if param not in key_params:
                yield self.finding(
                    cache.rel,
                    cls.lineno,
                    f"wire search parameter {param!r} is missing from "
                    f"ResultCache.key: a cached answer computed under a "
                    f"different {param!r} could be replayed",
                    severity,
                )

    def _check_request_log(
        self, project: Project, params: dict, severity: str
    ) -> Iterable[Finding]:
        reqlog, problem = project.require("obs/reqlog.py", self)
        if problem is not None:
            yield problem
        if reqlog is None:
            return
        columns = None
        line = 1
        for node in reqlog.tree.body:
            if isinstance(node, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == "REQUEST_COLUMNS"
                for t in node.targets
            ):
                elements = literal_str_elements(node.value)
                if elements is not None:
                    columns = {name for name, _ in elements}
                line = node.lineno
        if columns is None:
            yield self.finding(
                reqlog.rel, 1, "REQUEST_COLUMNS tuple not found", severity
            )
            return
        for param in sorted(params):
            if param not in columns:
                yield self.finding(
                    reqlog.rel,
                    line,
                    f"wire search parameter {param!r} is missing from the "
                    f"request-log columns: replay could not reconstruct "
                    f"the traffic mix over {param!r}",
                    severity,
                )
