"""REP201 determinism: seedable modules must not reach for ambient entropy.

Replay plans (``obs/replay.py``), workload generators (``workloads/``) and
the synthetic-data layer (``data/synthetic.py``) document the same
contract: *same seed, byte-identical output* — it is what lets a replay
plan be committed and diffed, and a benchmark be reproduced on another
machine.  One ``time.time()`` or argless ``default_rng()`` silently breaks
that while every test still passes.

Flagged inside the configured deterministic modules
(``[tool.repro-lint] deterministic-modules``):

* wall-clock reads: ``time.time()`` / ``time.time_ns()`` (monotonic
  ``perf_counter`` stays legal — measuring how long a replay took does not
  change what it replays);
* ``np.random.default_rng()`` with no seed argument;
* the stdlib ``random`` module (its global state is shared mutable
  entropy) and numpy's legacy global generator (``np.random.seed`` /
  ``np.random.rand`` / ...).
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.astutil import dotted_name, module_path_matches
from repro.analysis.base import BaseChecker, ParsedFile, register
from repro.analysis.findings import Finding

_WALL_CLOCK = {"time.time", "time.time_ns"}
_LEGACY_GLOBAL_PREFIXES = ("np.random.", "numpy.random.")
_LEGACY_GLOBAL_OK = {"default_rng", "Generator", "SeedSequence"}


@register
class Determinism(BaseChecker):
    code = "REP201"
    name = "determinism"
    description = (
        "deterministic modules (replay, workloads, synthetic data) must "
        "not use wall-clock time, argless default_rng(), or the global "
        "random state"
    )
    origin = "PR 7 (replay plans are committed and byte-diffed)"

    def in_scope(self, rel: str, config) -> bool:
        return module_path_matches(rel, config.deterministic_modules)

    def check(self, target: ParsedFile, config) -> Iterable[Finding]:
        if not self.in_scope(target.rel, config):
            return
        severity = config.severity_of(self.code, self.default_severity)
        for node in ast.walk(target.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[0] == "random":
                        yield self.finding(
                            target.rel,
                            node.lineno,
                            "stdlib 'random' in a deterministic module; "
                            "take an explicit numpy Generator instead",
                            severity,
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module and node.module.split(".")[0] == "random":
                    yield self.finding(
                        target.rel,
                        node.lineno,
                        "stdlib 'random' in a deterministic module; "
                        "take an explicit numpy Generator instead",
                        severity,
                    )
            elif isinstance(node, ast.Call):
                yield from self._call(target, node, severity)

    def _call(
        self, target: ParsedFile, node: ast.Call, severity: str
    ) -> Iterable[Finding]:
        name = dotted_name(node.func)
        if name is None:
            return
        if name in _WALL_CLOCK:
            yield self.finding(
                target.rel,
                node.lineno,
                f"wall-clock read {name}() in a deterministic module; "
                f"derive timestamps from the plan/seed (or measure with "
                f"perf_counter outside the deterministic path)",
                severity,
            )
            return
        if name.endswith("random.default_rng") and not (
            node.args or node.keywords
        ):
            yield self.finding(
                target.rel,
                node.lineno,
                "argless default_rng() draws an OS seed; thread the "
                "caller's seeded Generator through instead",
                severity,
            )
            return
        for prefix in _LEGACY_GLOBAL_PREFIXES:
            if name.startswith(prefix):
                tail = name[len(prefix):]
                if "." not in tail and tail not in _LEGACY_GLOBAL_OK:
                    yield self.finding(
                        target.rel,
                        node.lineno,
                        f"legacy global numpy RNG {name}(); use an "
                        f"explicit seeded Generator",
                        severity,
                    )
                return
