"""REP401 async-blocking: the serving event loop never waits on I/O.

The server's whole design hinges on one rule: alignment work, SQLite, and
file I/O happen on executor threads; the event loop only shuffles frames
(see ``repro/server/server.py`` — every blocking step goes through
``loop.run_in_executor``).  One direct ``sqlite3.connect`` or ``open()``
inside an ``async def`` stalls *every* connection, and nothing fails — the
server just gets mysteriously slow under load.

Flagged inside ``async def`` bodies of the configured async modules
(``[tool.repro-lint] async-modules``):

* ``time.sleep`` (use ``asyncio.sleep``);
* any ``sqlite3.*`` call;
* ``open()`` and Path content I/O (``read_text`` / ``write_text`` /
  ``read_bytes`` / ``write_bytes``);
* un-awaited ``.acquire()`` (a threading lock blocks; asyncio primitives
  are awaited, which is the legal spelling).

Nested ``def`` bodies are skipped: a closure handed to an executor runs
off-loop by construction.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.base import BaseChecker, ParsedFile, register
from repro.analysis.blocking import blocking_label
from repro.analysis.findings import Finding
from repro.analysis.astutil import module_path_matches


def _async_walk(func: ast.AsyncFunctionDef):
    """Walk one async body without descending into nested function defs."""
    stack = list(func.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


@register
class AsyncBlocking(BaseChecker):
    code = "REP401"
    name = "async-blocking"
    description = (
        "async def bodies in the serving tier must not call blocking "
        "primitives (time.sleep, sqlite3, file I/O, bare Lock.acquire) "
        "directly; route them through an executor"
    )
    origin = "PR 4 (the event loop never blocks on alignment work)"

    def in_scope(self, rel: str, config) -> bool:
        return module_path_matches(rel, config.async_modules)

    def check(self, target: ParsedFile, config) -> Iterable[Finding]:
        if not self.in_scope(target.rel, config):
            return
        severity = config.severity_of(self.code, self.default_severity)
        for node in ast.walk(target.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                yield from self._check_async(target, node, severity)

    def _check_async(
        self, target: ParsedFile, func: ast.AsyncFunctionDef, severity: str
    ) -> Iterable[Finding]:
        awaited: set[int] = set()
        calls: list[ast.Call] = []
        for node in _async_walk(func):
            if isinstance(node, ast.Await):
                awaited.add(id(node.value))
            elif isinstance(node, ast.Call):
                calls.append(node)
        for call in calls:
            label = blocking_label(call, id(call) in awaited)
            if label is not None:
                yield self.finding(
                    target.rel,
                    call.lineno,
                    f"{label} inside 'async def {func.name}' blocks the "
                    f"event loop; run it via loop.run_in_executor",
                    severity,
                )

