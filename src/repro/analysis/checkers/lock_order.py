"""REP801 lock-order: every pair of locks is taken in one global order.

A deadlock needs no traffic spike to reproduce — two threads, two
locks, opposite order, and the server hangs with zero CPU and no
traceback.  The flow index already knows every acquisition site and
which locks are held on entry to every function (propagated along the
call graph), so this checker only has to read the lock-acquisition
order graph it built: an edge ``A -> B`` means "B was acquired
somewhere while A was held".  Any cycle among those edges is a
potential deadlock; the finding names both acquisition sites so the
fix (pick one order, or collapse to one lock) is mechanical.

Re-entrancy is modeled: re-acquiring an ``RLock`` is legal and makes
no edge (the store's ``_materialize_lock`` does this on purpose);
re-acquiring a plain ``Lock`` or an ``asyncio.Lock`` on some path is
reported — both self-deadlock.
"""

from __future__ import annotations

from typing import Iterable

from repro.analysis.base import BaseChecker, register
from repro.analysis.findings import Finding
from repro.analysis.flow.graph import FlowIndex, OrderEdge


def _cycle_components(edges: "list[OrderEdge]") -> "list[list[str]]":
    """Strongly connected components with >1 node, sorted."""
    adjacency: dict[str, list[str]] = {}
    for edge in edges:
        adjacency.setdefault(edge.first, []).append(edge.second)
        adjacency.setdefault(edge.second, [])
    index_of: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    components: list[list[str]] = []
    counter = [0]

    def strongconnect(node: str) -> None:
        index_of[node] = low[node] = counter[0]
        counter[0] += 1
        stack.append(node)
        on_stack.add(node)
        for succ in adjacency[node]:
            if succ not in index_of:
                strongconnect(succ)
                low[node] = min(low[node], low[succ])
            elif succ in on_stack:
                low[node] = min(low[node], index_of[succ])
        if low[node] == index_of[node]:
            component = []
            while True:
                member = stack.pop()
                on_stack.discard(member)
                component.append(member)
                if member == node:
                    break
            if len(component) > 1:
                components.append(sorted(component))

    for node in sorted(adjacency):
        if node not in index_of:
            strongconnect(node)
    return sorted(components)


@register
class LockOrder(BaseChecker):
    code = "REP801"
    name = "lock-order"
    description = (
        "locks must be acquired in one global order: a cycle in the "
        "acquisition-order graph is a potential deadlock"
    )
    origin = "PR 9 (a per-metric lock on every hot-path counter)"
    scope = "flow"

    def check(self, target: FlowIndex, config) -> Iterable[Finding]:
        severity = config.severity_of(self.code, self.default_severity)
        edges = target.order_edges
        # self-deadlock: a non-reentrant lock re-acquired on some path
        # (RLock/assigned self-edges never enter the order graph)
        for edge in edges:
            if edge.first == edge.second:
                yield self.finding(
                    edge.rel,
                    edge.line,
                    f"non-reentrant lock {edge.second} acquired at "
                    f"{edge.rel}:{edge.line} while already held (taken at "
                    f"{edge.first_rel}:{edge.first_line}): this path "
                    f"self-deadlocks",
                    severity,
                )
        for component in _cycle_components(
            [e for e in edges if e.first != e.second]
        ):
            members = set(component)
            cycle_edges = sorted(
                (e for e in edges if e.first in members and e.second in members),
                key=lambda e: (e.rel, e.line, e.first, e.second),
            )
            sites = "; ".join(
                f"{e.second.rsplit('::', 1)[-1]} taken at {e.rel}:{e.line} "
                f"while holding {e.first.rsplit('::', 1)[-1]} "
                f"(taken at {e.first_rel}:{e.first_line})"
                for e in cycle_edges
            )
            anchor = cycle_edges[0]
            yield self.finding(
                anchor.rel,
                anchor.line,
                f"lock-order cycle between {', '.join(component)}: {sites} "
                f"— two threads on opposite paths deadlock; pick one "
                f"acquisition order",
                severity,
            )
