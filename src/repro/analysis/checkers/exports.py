"""REP601 export-consistency: ``__all__`` tells the truth.

Three ways an export list rots:

* a name listed in ``__all__`` that the module no longer defines or
  imports — ``from m import *`` and every doc generator break;
* a public top-level definition missing from an existing ``__all__`` — the
  module's declared surface silently diverges from its real one;
* a *re-export* (a name imported from elsewhere and published in
  ``__all__``) appearing in a non-package module without being tracked —
  that is how deprecated aliases outlive their deprecation unnoticed.

Sanctioned re-exports live in :data:`REEXPORT_REGISTRY`, keyed by path
suffix: deprecated aliases (``resolve_threshold`` kept in
``align/bwt_sw.py`` after PR 6 moved it to ``repro.scoring.evalue``) and
intentional facade re-exports.  Package ``__init__.py`` files are facades
by definition and only get the existence/duplicate checks.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.astutil import literal_str_elements, top_level_bindings
from repro.analysis.base import BaseChecker, ParsedFile, register
from repro.analysis.findings import Finding

#: (path suffix, exported name) -> why this re-export is sanctioned.
REEXPORT_REGISTRY = {
    ("align/bwt_sw.py", "resolve_threshold"): (
        "deprecated import location kept for compatibility; canonical home "
        "is repro.scoring.evalue (moved in PR 6)"
    ),
    ("engine/registry.py", "MODES"): (
        "facade re-export: the registry is the one-stop mode surface for "
        "service layers (defined in repro.engine.backend)"
    ),
    ("engine/registry.py", "MODE_ENGINE_NAMES"): (
        "facade re-export alongside MODES (defined in repro.engine.backend)"
    ),
}


def _find_all(tree: ast.Module):
    """``(names_with_lines, lineno)`` of a top-level ``__all__`` list."""
    for node in tree.body:
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__all__":
                return literal_str_elements(node.value), node.lineno
    return None, None


@register
class ExportConsistency(BaseChecker):
    code = "REP601"
    name = "export-consistency"
    description = (
        "__all__ entries must exist, public definitions must be exported, "
        "and re-exports in non-package modules must be in the sanctioned "
        "registry"
    )
    origin = "PR 6 (resolve_threshold deprecated re-export)"

    def check(self, target: ParsedFile, config) -> Iterable[Finding]:
        severity = config.severity_of(self.code, self.default_severity)
        names, all_line = _find_all(target.tree)
        if all_line is None:
            return  # modules without __all__ declare no public surface
        if names is None:
            yield self.finding(
                target.rel,
                all_line,
                "__all__ is not a literal list of strings; the export "
                "surface cannot be checked",
                severity,
            )
            return
        defined, imported = top_level_bindings(target.tree)
        seen: set[str] = set()
        for name, line in names:
            if name in seen:
                yield self.finding(
                    target.rel, line, f"duplicate __all__ entry {name!r}",
                    severity,
                )
                continue
            seen.add(name)
            if name not in defined and name not in imported:
                yield self.finding(
                    target.rel,
                    line,
                    f"__all__ exports {name!r} but the module neither "
                    f"defines nor imports it",
                    severity,
                )
            elif name not in defined and not target.is_init():
                if not self._sanctioned(target.rel, name):
                    yield self.finding(
                        target.rel,
                        line,
                        f"{name!r} is re-exported (imported, not defined "
                        f"here) but is not in the sanctioned re-export "
                        f"registry (repro.analysis.checkers.exports."
                        f"REEXPORT_REGISTRY)",
                        severity,
                    )
        if target.is_init():
            return
        for name, line in sorted(defined.items(), key=lambda kv: kv[1]):
            if name.startswith("_") or name == "__all__":
                continue
            if name not in seen:
                yield self.finding(
                    target.rel,
                    line,
                    f"public definition {name!r} is missing from __all__",
                    severity,
                )

    @staticmethod
    def _sanctioned(rel: str, name: str) -> bool:
        return any(
            rel.endswith(suffix) and export == name
            for (suffix, export) in REEXPORT_REGISTRY
        )
