"""REP701 metrics registration: metric families are import-time objects.

The metrics registry (``obs/metrics.py``) is process-wide and its
constructors register on it: a ``Counter``/``Gauge``/``Histogram`` built
inside a function body re-registers on every call (racing the duplicate
check), re-resolves its label children, and hides the family from scrapes
until the first request happens to run.  The contract every instrumented
module follows — and the one this rule enforces — is *define families at
module import, resolve label children near the hot path, only mutate per
request*.

Constructions that pass an explicit ``registry=`` keyword are exempt: a
private registry (or ``registry=None`` for an unregistered scratch metric)
is the caller's own to manage, which is exactly how tests and helpers
build throwaway metrics inside functions.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.astutil import dotted_name
from repro.analysis.base import BaseChecker, ParsedFile, register
from repro.analysis.findings import Finding

_CONSTRUCTORS = {"Counter", "Gauge", "Histogram"}
_METRICS_MODULE = "repro.obs.metrics"


@register
class MetricsRegistration(BaseChecker):
    code = "REP701"
    name = "metrics-registration"
    description = (
        "metric families must be created at module import, not inside "
        "functions (per-call construction races registration and leaks "
        "label series); pass registry= explicitly for scratch metrics"
    )
    origin = "PR 9 (process-wide metrics registry)"

    def check(self, target: ParsedFile, config) -> Iterable[Finding]:
        if target.rel.replace("\\", "/").endswith("obs/metrics.py"):
            return  # the registry defines the primitives; nothing to flag
        direct, modules = self._imported_names(target.tree)
        if not direct and not modules:
            return
        severity = config.severity_of(self.code, self.default_severity)
        seen: set[tuple[int, int]] = set()
        for func in ast.walk(target.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for node in ast.walk(func):
                if not isinstance(node, ast.Call):
                    continue
                key = (node.lineno, node.col_offset)
                if key in seen:  # nested defs walk the same calls twice
                    continue
                constructor = self._constructor_name(node, direct, modules)
                if constructor is None:
                    continue
                seen.add(key)
                if any(kw.arg == "registry" for kw in node.keywords):
                    continue  # caller manages its own registry lifecycle
                yield self.finding(
                    target.rel,
                    node.lineno,
                    f"{constructor}(...) constructed inside "
                    f"{func.name}() registers on the process-wide "
                    f"registry per call; move the family to module "
                    f"level (or pass registry= explicitly)",
                    severity,
                )

    @staticmethod
    def _imported_names(
        tree: ast.AST,
    ) -> tuple[dict[str, str], set[str]]:
        """Local bindings of the constructors and of the metrics module.

        Returns ``(direct, modules)``: ``direct`` maps a local name to the
        constructor it aliases (``from repro.obs.metrics import Counter as
        C``); ``modules`` holds local names whose attributes reach the
        module (``import repro.obs.metrics as m`` → ``m``, plain
        ``import repro.obs.metrics`` → ``repro.obs.metrics``, and
        ``from repro.obs import metrics`` → ``metrics``).
        """
        direct: dict[str, str] = {}
        modules: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom):
                if node.module == _METRICS_MODULE:
                    for alias in node.names:
                        if alias.name in _CONSTRUCTORS:
                            direct[alias.asname or alias.name] = alias.name
                elif node.module == "repro.obs":
                    for alias in node.names:
                        if alias.name in _CONSTRUCTORS:
                            direct[alias.asname or alias.name] = alias.name
                        elif alias.name == "metrics":
                            modules.add(alias.asname or "metrics")
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == _METRICS_MODULE:
                        modules.add(alias.asname or alias.name)
        return direct, modules

    @staticmethod
    def _constructor_name(
        node: ast.Call, direct: dict[str, str], modules: set[str]
    ) -> str | None:
        name = dotted_name(node.func)
        if name is None:
            return None
        if name in direct:
            return direct[name]
        head, _, tail = name.rpartition(".")
        if head in modules and tail in _CONSTRUCTORS:
            return tail
        return None
