"""REP803 unguarded-shared-state: cross-thread attributes need one lock.

The reqlog writer thread, the server's ``ServerThread``, and the
executor pools all mutate object attributes that the main path reads.
When both sides hold the same lock that is invisible maintenance cost;
when neither does it is a data race that only shows up as a corrupted
counter or a torn read under production load.  This checker uses the
flow index to find instance attributes that are **written from a
thread-entry path** and **accessed from code no thread reaches**, then
demands one common lock across every such site.

Construction is exempt (``__init__`` happens-before the thread start),
lock attributes and methods are exempt, and intentionally lock-free
designs — the reqlog deque with its single-writer counters, the
``Event``-published server-thread handshake — carry inline
``repro-lint: allow[REP803]`` suppressions whose reasons document the
happens-before argument.
"""

from __future__ import annotations

from typing import Iterable

from repro.analysis.base import BaseChecker, register
from repro.analysis.findings import Finding
from repro.analysis.flow.graph import FlowIndex, _lock_ident_filter
from repro.analysis.flow.summary import Access, FunctionSummary


#: Attribute types that synchronize internally — flagging an Event or a
#: Queue would demand a lock around a lock.  (A ``deque`` is *not* here:
#: its single-op atomicity is a CPython detail the reqlog documents with
#: an explicit suppression instead.)
SELF_SYNCHRONIZED = frozenset(
    {
        "threading.Event",
        "threading.Barrier",
        "asyncio.Event",
        "queue.Queue",
        "queue.SimpleQueue",
        "queue.LifoQueue",
        "queue.PriorityQueue",
        "multiprocessing.Queue",
    }
)


def _in_init(summary: FunctionSummary) -> bool:
    return summary.name == "__init__" or ".__init__." in summary.qualname


@register
class UnguardedSharedState(BaseChecker):
    code = "REP803"
    name = "unguarded-shared-state"
    description = (
        "an attribute written on a thread-entry path and accessed "
        "elsewhere must be guarded by one common lock at every site"
    )
    origin = "PR 7 (the reqlog writer thread is lock-free by design)"
    scope = "flow"

    def check(self, target: FlowIndex, config) -> Iterable[Finding]:
        severity = config.severity_of(self.code, self.default_severity)
        by_class: dict[tuple[str, str], list[FunctionSummary]] = {}
        for qual in sorted(target.summaries):
            summary = target.summaries[qual]
            if summary.cls is None or _in_init(summary):
                continue
            by_class.setdefault(
                (summary.cls.rel, summary.cls.name), []
            ).append(summary)
        for key in sorted(by_class):
            yield from self._check_class(target, by_class[key], severity)

    @staticmethod
    def _own_thread_roots(
        index: FlowIndex, cls, qualname: str
    ) -> "tuple[str, ...]":
        """Entry roots reaching ``qualname`` that are methods of ``cls``.

        A write only counts as thread-side when the class *threads
        itself* (the reqlog's writer, the server thread's ``_run``, an
        executor submit of its own method).  When some other class runs
        the whole object graph on its thread — ``ServerThread`` running
        the asyncio server — every unresolvable dynamic dispatch (RPC
        handlers, batcher callbacks) actually runs on that same thread,
        so "accessed elsewhere" would be noise, not signal.
        """
        roots = []
        for root in index.thread_origins.get(qualname, ()):
            root_cls = index.summaries[root].cls
            if (
                root_cls is not None
                and root_cls.rel == cls.rel
                and root_cls.name == cls.name
            ):
                roots.append(root)
        return tuple(roots)

    def _check_class(
        self,
        index: FlowIndex,
        summaries: "list[FunctionSummary]",
        severity: str,
    ) -> Iterable[Finding]:
        cls = summaries[0].cls
        module = index.symbols.modules.get(cls.rel)
        lock_attrs = _lock_ident_filter(index, cls)
        sites: dict[str, list[tuple[FunctionSummary, Access]]] = {}
        for summary in summaries:
            for access in summary.accesses:
                if access.attr in lock_attrs or access.attr in cls.methods:
                    continue
                type_token = cls.attr_types.get(access.attr)
                if (
                    type_token is not None
                    and module is not None
                    and module.expand(type_token) in SELF_SYNCHRONIZED
                ):
                    continue
                sites.setdefault(access.attr, []).append((summary, access))
        for attr in sorted(sites):
            pairs = sites[attr]
            thread_writes = [
                (s, a)
                for s, a in pairs
                if a.kind == "write"
                and self._own_thread_roots(index, cls, s.qualname)
            ]
            elsewhere = [
                (s, a)
                for s, a in pairs
                if s.qualname not in index.thread_reachable
            ]
            if not thread_writes or not elsewhere:
                continue
            involved = thread_writes + elsewhere
            guards = [
                set(index.held_idents(s, a.held)) for s, a in involved
            ]
            common = set.intersection(*guards)
            if common:
                continue
            anchor_summary, anchor = min(
                (
                    (s, a)
                    for (s, a), g in zip(involved, guards)
                    if not g
                ),
                key=lambda pair: (pair[0].rel, pair[1].line),
                default=thread_writes[0],
            )
            writer, write = thread_writes[0]
            other, other_access = elsewhere[0]
            root = self._own_thread_roots(index, cls, writer.qualname)[0]
            yield self.finding(
                anchor_summary.rel,
                anchor.line,
                f"attribute '{attr}' of {cls.name} is written at "
                f"{writer.rel}:{write.line} on a thread path entered via "
                f"{root.rsplit('::', 1)[-1]} and accessed at "
                f"{other.rel}:{other_access.line} with no common lock "
                f"across the sites: guard both with one lock or suppress "
                f"with the happens-before reason",
                severity,
            )
