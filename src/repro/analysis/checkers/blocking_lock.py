"""REP802 blocking-under-lock: lock-hold latency is tail latency.

Every lock in the serving path guards a few dict operations and is held
for microseconds — until someone slips a ``read_manifest`` or a
``time.sleep`` retry loop inside the ``with``.  Then every thread that
touches the same lock inherits the I/O latency, and p99 explodes under
load with no error anywhere.  This checker walks each function that
*acquires* a lock and reports any blocking primitive (REP401's table
plus sockets; store opens are reached transitively through the call
graph) reachable while the lock is held — either directly in the
``with`` body or through a resolved call chain, which the message
spells out.

Findings anchor inside the acquiring function (the call or blocking
site under the ``with``), so a justified exception — the server's
drain-and-swap reload deliberately reopens the store under the pause
lock — is suppressed exactly where the design decision lives.
"""

from __future__ import annotations

from typing import Iterable

from repro.analysis.base import BaseChecker, register
from repro.analysis.findings import Finding
from repro.analysis.flow.graph import FlowIndex
from repro.analysis.flow.summary import FunctionSummary


def _short(qualname: str) -> str:
    return qualname.rsplit("::", 1)[-1]


@register
class BlockingUnderLock(BaseChecker):
    code = "REP802"
    name = "blocking-under-lock"
    description = (
        "no blocking primitive (sleep, socket, sqlite, file I/O, store "
        "open) may be reachable while a lock is held"
    )
    origin = "PR 4 (the event loop never blocks on alignment work)"
    scope = "flow"

    def check(self, target: FlowIndex, config) -> Iterable[Finding]:
        severity = config.severity_of(self.code, self.default_severity)
        for qual in sorted(target.summaries):
            summary = target.summaries[qual]
            if not summary.acquires:
                continue
            yield from self._check_function(target, summary, severity)

    def _check_function(
        self, index: FlowIndex, summary: FunctionSummary, severity: str
    ) -> Iterable[Finding]:
        reported: set[int] = set()
        # direct blocking inside a lock-holding region
        for block in summary.blocking:
            held = index.held_idents(summary, block.held)
            if held and block.line not in reported:
                reported.add(block.line)
                yield self.finding(
                    summary.rel,
                    block.line,
                    f"{block.label} while holding {', '.join(held)}: "
                    f"lock-hold latency is tail latency — move the I/O "
                    f"outside the lock",
                    severity,
                )
        # calls under the lock that reach a blocking primitive
        for edge in index.edges.get(summary.qualname, ()):
            if not edge.held or edge.line in reported:
                continue
            witness = index.block_witness.get(edge.callee)
            if witness is None:
                continue
            reported.add(edge.line)
            chain = " -> ".join(_short(q) for q in witness.chain)
            yield self.finding(
                summary.rel,
                edge.line,
                f"call to {_short(edge.callee)} while holding "
                f"{', '.join(edge.held)} reaches {witness.label} "
                f"(via {chain} at {witness.rel}:{witness.line}): "
                f"lock-hold latency is tail latency",
                severity,
            )
