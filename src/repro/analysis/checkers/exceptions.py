"""REP501 exception-discipline: no unexplained swallow-all handlers.

``except Exception:`` at the wrong altitude turns real bugs (an engine
returning the wrong shape, a corrupted store) into silently degraded
behaviour.  Some sites legitimately must catch everything — a telemetry
writer that may never take the server down, a batch runner that must fail
every waiting future — but those are *decisions*, and decisions get written
down: a broad handler is legal only under a reasoned
``# repro-lint: allow[REP501] -- why`` suppression.

Flagged: ``except:``, ``except Exception``, ``except BaseException``
(bare, aliased in a tuple, or ``as exc``).
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.base import BaseChecker, ParsedFile, register
from repro.analysis.findings import Finding

_BROAD = {"Exception", "BaseException"}


def _broad_name(node: ast.AST | None) -> str | None:
    if node is None:
        return "bare except"
    if isinstance(node, ast.Name) and node.id in _BROAD:
        return f"except {node.id}"
    if isinstance(node, ast.Tuple):
        for element in node.elts:
            if isinstance(element, ast.Name) and element.id in _BROAD:
                return f"except (... {element.id} ...)"
    return None


@register
class ExceptionDiscipline(BaseChecker):
    code = "REP501"
    name = "exception-discipline"
    description = (
        "broad except handlers (bare / Exception / BaseException) must be "
        "narrowed or carry a reasoned suppression"
    )
    origin = "PR 7 (reqlog writer), PR 4 (server loops)"

    def check(self, target: ParsedFile, config) -> Iterable[Finding]:
        severity = config.severity_of(self.code, self.default_severity)
        for node in ast.walk(target.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            label = _broad_name(node.type)
            if label is None:
                continue
            yield self.finding(
                target.rel,
                node.lineno,
                f"{label} swallows every failure; catch the specific "
                f"exceptions or justify with "
                f"'# repro-lint: allow[{self.code}] -- why'",
                severity,
            )
