"""Finding records and severities for the repro lint subsystem.

A :class:`Finding` is one rule violation at one source location.  Severity
is resolved by the runner from :class:`~repro.analysis.config.LintConfig`
(checker defaults, overridable per code in ``pyproject.toml``), so checkers
only decide *what* is wrong, never how loudly to say it.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Finding stops the build (non-zero exit).
SEVERITY_ERROR = "error"
#: Finding is reported but does not affect the exit code.
SEVERITY_WARNING = "warning"
#: Finding is dropped entirely.
SEVERITY_OFF = "off"

SEVERITIES = (SEVERITY_ERROR, SEVERITY_WARNING, SEVERITY_OFF)


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation: where, which rule, how severe, and why.

    ``path`` is the file as given to the runner (kept relative when the
    lint root was relative, so output is stable across machines).  ``line``
    is 1-based; cross-file checkers that describe a *missing* construct
    anchor to the closest related line they have (e.g. the ``BatchKey``
    class statement).
    """

    path: str
    line: int
    code: str
    severity: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.code} [{self.severity}] {self.message}"

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
        }
