"""Minimal SARIF 2.1.0 serialization for lint reports.

Just enough of the standard for GitHub code scanning to ingest via
``upload-sarif`` and annotate PR diffs inline: one run, one driver,
every registered checker as a rule, every finding as a result with a
physical location.  Output is deterministic (sorted keys, findings
already sorted by the runner) so the artifact diffs cleanly.
"""

from __future__ import annotations

import json

from repro.analysis.base import CHECKERS
from repro.analysis.findings import SEVERITY_ERROR, Finding
from repro.analysis.suppressions import SUPPRESSION_CODE

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _rules() -> list[dict]:
    rules = [
        {
            "id": code,
            "name": checker.name,
            "shortDescription": {"text": checker.description},
            "properties": {"origin": checker.origin, "scope": checker.scope},
        }
        for code, checker in sorted(CHECKERS.items())
    ]
    rules.append(
        {
            "id": SUPPRESSION_CODE,
            "name": "suppression-syntax",
            "shortDescription": {
                "text": "malformed or reasonless suppression directive"
            },
            "properties": {"origin": "PR 8", "scope": "file"},
        }
    )
    return sorted(rules, key=lambda r: r["id"])


def _result(finding: Finding) -> dict:
    return {
        "ruleId": finding.code,
        "level": (
            "error" if finding.severity == SEVERITY_ERROR else "warning"
        ),
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.path},
                    "region": {"startLine": finding.line},
                }
            }
        ],
    }


def format_sarif(findings: "list[Finding]") -> str:
    doc = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "rules": _rules(),
                    }
                },
                "results": [_result(f) for f in findings],
            }
        ],
    }
    return json.dumps(doc, indent=2, sort_keys=True)
