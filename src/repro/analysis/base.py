"""Checker protocol and registry (mirrors the ``repro/engine`` idiom).

A checker is a small object that declares an identity (``code``, ``name``,
``description``, the PR where its bug class originally bit) and walks parsed
source.  Two scopes exist:

* ``file`` checkers see one :class:`ParsedFile` at a time — most invariants
  are local (a truthiness test on a sentinel field is wrong wherever it is);
* ``project`` checkers see the whole :class:`Project` and catch *drift*
  between files (a wire parameter parsed in ``server.py`` but missing from
  the cache key in ``cache.py``);
* ``flow`` checkers receive the shared
  :class:`~repro.analysis.flow.FlowIndex` — the resolved call graph with
  lock identities and held-lock sets — built once per invocation by the
  runner (REP801/REP802/REP803 all read the same index).

Registration is declarative: defining a checker class decorated with
:func:`register` adds it to :data:`CHECKERS`, exactly as engine backends
join the mode registry — the CLI, the runner and the docs all iterate the
same table, so a new checker cannot be half-wired.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Protocol, runtime_checkable

from repro.analysis.findings import SEVERITY_ERROR, SEVERITY_WARNING, Finding
from repro.errors import ReproError


class LintError(ReproError):
    """Lint could not run (bad path, bad config, duplicate checker code)."""


@dataclass
class ParsedFile:
    """One source file, parsed once and shared by every checker.

    ``rel`` is the posix-style path string used in findings and for
    path-suffix matching (``rel.endswith("server/cache.py")``), so checkers
    never re-derive module identity from the filesystem.
    """

    rel: str
    source: str
    tree: ast.Module
    #: line -> set of codes allowed by an inline suppression directive
    #: (populated by the suppression scanner before checkers run).
    allowed: dict[int, set[str]] = field(default_factory=dict)

    def is_init(self) -> bool:
        return self.rel.endswith("__init__.py")


@dataclass
class Project:
    """Every parsed file of one lint invocation, for cross-file passes."""

    files: list[ParsedFile]

    def find(self, suffix: str) -> ParsedFile | None:
        """The unique file whose path ends with ``suffix`` (None if absent)."""
        matches = [f for f in self.files if f.rel.endswith(suffix)]
        return matches[0] if len(matches) == 1 else None

    def require(
        self, suffix: str, checker: "BaseChecker"
    ) -> "tuple[ParsedFile | None, Finding | None]":
        """Like :meth:`find`, but an *ambiguous* suffix is reported.

        ``find`` returns None both when an anchor file is absent (normal
        when linting a subtree — the pass just skips) and when two files
        match (the pass silently checks nothing, which once hid REP301
        entirely).  ``require`` keeps the silent skip for absence but
        yields a warning-severity finding naming every match when the
        anchor is ambiguous, so a duplicated or vendored copy cannot
        disable a drift gate unnoticed.
        """
        matches = [f for f in self.files if f.rel.endswith(suffix)]
        if len(matches) == 1:
            return matches[0], None
        if not matches:
            return None, None
        return None, checker.finding(
            matches[0].rel,
            1,
            f"anchor {suffix!r} is ambiguous in this lint run "
            f"({', '.join(sorted(f.rel for f in matches))}): the "
            f"{checker.code} pass cannot pick one and checks nothing",
            SEVERITY_WARNING,
        )


@runtime_checkable
class Checker(Protocol):
    """What the runner requires of a checker instance."""

    code: str
    name: str
    description: str
    origin: str  # the PR where this bug class originally bit
    scope: str  # "file", "project" or "flow"
    default_severity: str

    def check(
        self, target: "ParsedFile | Project", config
    ) -> Iterable[Finding]: ...


#: code -> checker instance, in registration order.
CHECKERS: dict[str, Checker] = {}


def register(cls):
    """Class decorator: instantiate and add to :data:`CHECKERS` by code."""
    checker = cls()
    if checker.code in CHECKERS:
        raise LintError(f"duplicate checker code {checker.code}")
    CHECKERS[checker.code] = checker
    return cls


class BaseChecker:
    """Shared defaults so concrete checkers only declare what differs."""

    scope = "file"
    default_severity = SEVERITY_ERROR
    origin = ""

    def in_scope(self, rel: str, config) -> bool:
        """Whether ``rel`` counts toward this checker's scanned-file tally.

        Module-scoped checkers override this with their config patterns;
        the runner's per-checker activity block uses it, so a checker
        whose scope matches nothing shows ``files: 0`` in CI instead of
        silently passing.
        """
        return True

    def finding(
        self, rel: str, line: int, message: str, severity: str
    ) -> Finding:
        return Finding(
            path=rel,
            line=line,
            code=self.code,
            severity=severity,
            message=message,
        )
