"""Lint configuration: checker severities and module scoping.

Configuration lives in ``pyproject.toml`` under ``[tool.repro-lint]``::

    [tool.repro-lint]
    deterministic-modules = ["obs/replay.py", "workloads/", "data/synthetic.py"]
    async-modules = ["repro/server/"]
    exclude = []

    [tool.repro-lint.severity]
    REP601 = "warning"   # error (default) | warning | off

Severity is the only per-repo policy knob: checkers stay code, the repo
decides how loudly each rule fails.  Unknown codes and invalid severities
are hard errors so a typo cannot silently disable a gate.
"""

from __future__ import annotations

import tomllib
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.base import LintError
from repro.analysis.findings import SEVERITIES

#: Modules whose documented contract is "reproducible from a seed".
DEFAULT_DETERMINISTIC_MODULES = (
    "obs/replay.py",
    "workloads/",
    "data/synthetic.py",
)

#: Packages whose ``async def`` bodies must never block the event loop.
DEFAULT_ASYNC_MODULES = ("repro/server/",)


@dataclass
class LintConfig:
    """Resolved lint policy for one run."""

    severity_overrides: dict[str, str] = field(default_factory=dict)
    deterministic_modules: tuple[str, ...] = DEFAULT_DETERMINISTIC_MODULES
    async_modules: tuple[str, ...] = DEFAULT_ASYNC_MODULES
    exclude: tuple[str, ...] = ()
    source: str | None = None  # pyproject path, for diagnostics

    def severity_of(self, code: str, default: str) -> str:
        return self.severity_overrides.get(code, default)

    @classmethod
    def from_pyproject(cls, path: str | Path) -> "LintConfig":
        raw = tomllib.loads(Path(path).read_text(encoding="utf-8"))
        section = raw.get("tool", {}).get("repro-lint", {})
        overrides: dict[str, str] = {}
        for code, severity in section.get("severity", {}).items():
            if severity not in SEVERITIES:
                raise LintError(
                    f"{path}: severity for {code} must be one of "
                    f"{', '.join(SEVERITIES)}, got {severity!r}"
                )
            overrides[str(code)] = severity
        config = cls(
            severity_overrides=overrides,
            deterministic_modules=tuple(
                section.get(
                    "deterministic-modules", DEFAULT_DETERMINISTIC_MODULES
                )
            ),
            async_modules=tuple(
                section.get("async-modules", DEFAULT_ASYNC_MODULES)
            ),
            exclude=tuple(section.get("exclude", ())),
            source=str(path),
        )
        return config


def locate_pyproject(start: str | Path) -> Path | None:
    """The nearest ``pyproject.toml`` at or above ``start`` (None if none)."""
    node = Path(start).resolve()
    if node.is_file():
        node = node.parent
    for candidate in (node, *node.parents):
        pyproject = candidate / "pyproject.toml"
        if pyproject.is_file():
            return pyproject
    return None


def load_config(paths: "list[str | Path]") -> LintConfig:
    """Config for a lint run: nearest pyproject above the first target."""
    for path in paths:
        pyproject = locate_pyproject(path)
        if pyproject is not None:
            return LintConfig.from_pyproject(pyproject)
    return LintConfig()
