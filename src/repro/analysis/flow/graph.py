"""The FlowIndex: resolved call graph, lock identities, held-set flow.

Built once per lint invocation from the symbol tables and function
summaries, then shared by every flow-scope checker:

* **call edges** — each syntactic call token resolved to a project
  function: ``self.m`` through the class MRO, ``self.x.m`` through the
  recorded attribute type, bare names through module functions then the
  import map (with one-hop re-export chasing through package
  ``__init__``s), ``ClassName(...)`` to ``__init__``.  Unresolvable
  tokens (stdlib, chained calls) simply produce no edge — the analysis
  is deliberately under-approximate on calls and precise on locks;
* **lock resolution** — ``self._lock`` to the constructor-seeded
  :class:`LockDecl` of the defining class (walking bases, so every
  ``_CounterChild`` shares the ``_Child`` identity); unseeded
  attributes that *look* like locks (``lock`` in the name) get an
  ``assigned`` identity so ``with self._lock:`` over an injected lock
  still orders; anything else is not a lock;
* **thread-entry roots** — targets of ``Thread(target=)``, ``submit``
  and ``run_in_executor`` registrations, plus which functions are
  reachable from them;
* **entry-held sets** — a fixed point propagating "locks possibly held
  by some caller on entry", with one provenance site per (function,
  lock) so reports can name where the lock was actually taken;
* **lock-order edges** — ``A -> B`` whenever B is acquired while A is
  held (entry-held or locally), each edge carrying both sites; cycles
  among them are REP801's deadlocks (RLock self-edges are legal
  re-entrancy and carry no edge);
* **blocking reachability** — which functions can reach a blocking
  primitive, with a witness call chain for REP802's messages.

Everything is ordered: dict iteration is over sorted qualnames, sets
are materialized sorted, so ``to_json`` is byte-identical across runs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.analysis.base import Project
from repro.analysis.flow.symbols import (
    ClassTable,
    LockDecl,
    ModuleTable,
    SymbolTable,
    build_symbols,
)
from repro.analysis.flow.summary import FunctionSummary, summarize_module

_RESOLVE_DEPTH = 6


@dataclass(frozen=True)
class Edge:
    caller: str
    callee: str
    line: int
    held: tuple[str, ...]  # lock identities held at the call site
    kind: str  # "call" | "run_in_executor"


@dataclass(frozen=True)
class RootSite:
    registered_by: str
    line: int
    via: str  # "thread" | "submit" | "run_in_executor"


@dataclass(frozen=True)
class OrderEdge:
    """``second`` acquired while ``first`` was held."""

    first: str
    second: str
    rel: str
    line: int  # where ``second`` was acquired
    first_rel: str
    first_line: int  # where ``first`` was acquired


@dataclass(frozen=True)
class BlockWitness:
    label: str
    rel: str
    line: int
    chain: tuple[str, ...]  # qualnames from the queried function inward


@dataclass
class FlowIndex:
    project: Project
    symbols: SymbolTable
    summaries: dict[str, FunctionSummary]
    edges: dict[str, list[Edge]] = field(default_factory=dict)
    thread_roots: dict[str, list[RootSite]] = field(default_factory=dict)
    thread_reachable: set[str] = field(default_factory=set)
    #: reachable function -> every thread-entry root it descends from
    thread_origins: dict[str, tuple[str, ...]] = field(default_factory=dict)
    locks: dict[str, LockDecl] = field(default_factory=dict)
    #: qualname -> lock ident -> provenance (rel, line) of an acquisition
    entry_held: dict[str, dict[str, tuple[str, int]]] = field(
        default_factory=dict
    )
    order_edges: list[OrderEdge] = field(default_factory=list)
    #: qualname -> nearest blocking witness (None if unreachable)
    block_witness: dict[str, BlockWitness] = field(default_factory=dict)

    # -- resolution ------------------------------------------------------

    def resolve_class(
        self, module: ModuleTable, token: str, _depth: int = 0
    ) -> ClassTable | None:
        if _depth > _RESOLVE_DEPTH:
            return None
        expanded = module.expand(token)
        if "." not in token and token in module.classes:
            return module.classes[token]
        head, _, tail = expanded.rpartition(".")
        if not head:
            return None
        owner = self.symbols.module_for_dotted(head)
        if owner is None:
            return None
        if tail in owner.classes:
            return owner.classes[tail]
        if tail in owner.imports:  # re-export
            return self.resolve_class(owner, tail, _depth + 1)
        return None

    def _method_qualname(
        self, cls: ClassTable, name: str, _seen: frozenset = frozenset()
    ) -> str | None:
        if cls.name in _seen:
            return None
        if name in cls.methods:
            qual = f"{cls.rel}::{cls.name}.{name}"
            return qual if qual in self.summaries else None
        module = self.symbols.modules.get(cls.rel)
        if module is None:
            return None
        for base in cls.bases:
            base_cls = self.resolve_class(module, base)
            if base_cls is not None:
                found = self._method_qualname(
                    base_cls, name, _seen | {cls.name}
                )
                if found is not None:
                    return found
        return None

    def _lock_decl_for_attr(
        self, cls: ClassTable, attr: str, _seen: frozenset = frozenset()
    ) -> "LockDecl | None":
        """Seeded decl via MRO; synthesized for assigned lock-ish attrs."""
        if cls.name in _seen:
            return None
        if attr in cls.locks:
            return cls.locks[attr]
        module = self.symbols.modules.get(cls.rel)
        if module is not None:
            for base in cls.bases:
                base_cls = self.resolve_class(module, base)
                if base_cls is not None:
                    found = self._lock_decl_for_attr(
                        base_cls, attr, _seen | {cls.name}
                    )
                    if found is not None:
                        return found
        if attr in cls.assigned and "lock" in attr.lower():
            return LockDecl(
                ident=f"{cls.rel}::{cls.name}.{attr}",
                kind="assigned",
                rel=cls.rel,
                line=cls.assigned[attr],
            )
        return None

    def resolve_lock(
        self, summary: FunctionSummary, token: str
    ) -> "LockDecl | None":
        parts = token.split(".")
        if parts[0] == "self":
            if len(parts) != 2 or summary.cls is None:
                return None
            return self._lock_decl_for_attr(summary.cls, parts[1])
        if len(parts) == 1:
            module = summary.module
            for _ in range(_RESOLVE_DEPTH):
                decl = module.global_locks.get(parts[0])
                if decl is not None:
                    return decl
                target = module.imports.get(parts[0])
                if target is None:
                    return None
                head, _, tail = target.rpartition(".")
                owner = self.symbols.module_for_dotted(head) if head else None
                if owner is None:
                    return None
                module, parts = owner, [tail]
        return None

    def resolve_call(
        self, summary: FunctionSummary, token: str
    ) -> str | None:
        """Qualname of the summarized function ``token`` calls, or None."""
        parts = token.split(".")
        if parts[0] == "self":
            if summary.cls is None:
                return None
            if len(parts) == 2:
                return self._method_qualname(summary.cls, parts[1])
            if len(parts) == 3:
                type_token = summary.cls.attr_types.get(parts[1])
                if type_token is None:
                    return None
                cls = self.resolve_class(summary.module, type_token)
                if cls is None:
                    return None
                return self._method_qualname(cls, parts[2])
            return None
        if len(parts) == 1:
            local = summary.local_defs.get(parts[0])
            if local is not None:
                return local
            return self._resolve_in_module(summary.module, parts[0])
        # NAME.m where NAME is a module-level instance
        type_token = summary.module.global_types.get(parts[0])
        if type_token is not None and len(parts) == 2:
            cls = self.resolve_class(summary.module, type_token)
            if cls is not None:
                return self._method_qualname(cls, parts[1])
            return None
        return self._resolve_dotted(summary.module.expand(token))

    def _resolve_in_module(
        self, module: ModuleTable, name: str, _depth: int = 0
    ) -> str | None:
        if _depth > _RESOLVE_DEPTH:
            return None
        if name in module.functions:
            qual = f"{module.rel}::{name}"
            return qual if qual in self.summaries else None
        if name in module.classes:
            return self._method_qualname(module.classes[name], "__init__")
        target = module.imports.get(name)
        if target is not None:
            return self._resolve_dotted(target, _depth + 1)
        return None

    def _resolve_dotted(self, dotted: str, _depth: int = 0) -> str | None:
        if _depth > _RESOLVE_DEPTH or "." not in dotted:
            return None
        head, _, tail = dotted.rpartition(".")
        owner = self.symbols.module_for_dotted(head)
        if owner is not None:
            return self._resolve_in_module(owner, tail, _depth + 1)
        # maybe the tail is Class.method with the module one level up
        mod_head, _, cls_name = head.rpartition(".")
        if mod_head:
            owner = self.symbols.module_for_dotted(mod_head)
            if owner is not None and cls_name in owner.classes:
                return self._method_qualname(owner.classes[cls_name], tail)
        return None

    def held_idents(
        self, summary: FunctionSummary, tokens: "tuple[str, ...]"
    ) -> tuple[str, ...]:
        out = []
        for token in tokens:
            decl = self.resolve_lock(summary, token)
            if decl is not None and decl.ident not in out:
                out.append(decl.ident)
        return tuple(out)

    # -- serialization ---------------------------------------------------

    def to_json(self) -> str:
        doc = {
            "locks": [
                {
                    "ident": decl.ident,
                    "kind": decl.kind,
                    "line": decl.line,
                }
                for _, decl in sorted(self.locks.items())
            ],
            "functions": [
                {
                    "qualname": qual,
                    "acquires": [
                        {
                            "lock": (
                                self.resolve_lock(s, a.token).ident
                                if self.resolve_lock(s, a.token)
                                else a.token
                            ),
                            "line": a.line,
                            "via": a.via,
                        }
                        for a in s.acquires
                    ],
                    "entry_held": sorted(self.entry_held.get(qual, ())),
                    "blocking": [
                        {"label": b.label, "line": b.line} for b in s.blocking
                    ],
                    "thread_root": qual in self.thread_roots,
                }
                for qual, s in sorted(self.summaries.items())
            ],
            "edges": [
                {
                    "caller": e.caller,
                    "callee": e.callee,
                    "line": e.line,
                    "held": list(e.held),
                    "kind": e.kind,
                }
                for qual in sorted(self.edges)
                for e in self.edges[qual]
            ],
            "thread_roots": [
                {
                    "qualname": qual,
                    "sites": [
                        {
                            "registered_by": site.registered_by,
                            "line": site.line,
                            "via": site.via,
                        }
                        for site in sites
                    ],
                }
                for qual, sites in sorted(self.thread_roots.items())
            ],
            "lock_order_edges": [
                {
                    "first": e.first,
                    "second": e.second,
                    "site": f"{e.rel}:{e.line}",
                    "first_site": f"{e.first_rel}:{e.first_line}",
                }
                for e in self.order_edges
            ],
        }
        return json.dumps(doc, indent=2, sort_keys=True)


def _lock_ident_filter(index: FlowIndex, cls: ClassTable) -> set[str]:
    """Attr names of ``cls`` that resolve to locks (MRO included)."""
    out = set()
    for attr in set(cls.assigned) | set(cls.locks):
        if index._lock_decl_for_attr(cls, attr) is not None:
            out.add(attr)
    return out


def build_flow_index(project: Project) -> FlowIndex:
    symbols = build_symbols(project)
    summaries: dict[str, FunctionSummary] = {}
    for parsed in project.files:
        module = symbols.modules[parsed.rel]
        summaries.update(summarize_module(module, parsed.tree))
    index = FlowIndex(project=project, symbols=symbols, summaries=summaries)

    # lock declarations (+ any synthesized "assigned" identities that
    # actually get acquired, discovered while resolving acquisitions)
    for module in symbols.modules.values():
        for decl in module.global_locks.values():
            index.locks[decl.ident] = decl
        for cls in module.classes.values():
            for decl in cls.locks.values():
                index.locks[decl.ident] = decl

    # call edges + thread roots
    for qual in sorted(summaries):
        summary = summaries[qual]
        edges: list[Edge] = []
        for call in summary.calls:
            callee = index.resolve_call(summary, call.token)
            if callee is not None:
                edges.append(
                    Edge(
                        caller=qual,
                        callee=callee,
                        line=call.line,
                        held=index.held_idents(summary, call.held),
                        kind="call",
                    )
                )
        for target in summary.thread_targets:
            callee = index.resolve_call(summary, target.token)
            if callee is None:
                continue
            index.thread_roots.setdefault(callee, []).append(
                RootSite(registered_by=qual, line=target.line, via=target.via)
            )
            if target.via == "run_in_executor" and target.awaited:
                # the caller parks on the future: its locks are held for
                # the callee's whole run, so this is also a call edge
                edges.append(
                    Edge(
                        caller=qual,
                        callee=callee,
                        line=target.line,
                        held=index.held_idents(summary, target.held),
                        kind="run_in_executor",
                    )
                )
        index.edges[qual] = edges
        for acq in summary.acquires:
            decl = index.resolve_lock(summary, acq.token)
            if decl is not None:
                index.locks.setdefault(decl.ident, decl)

    # thread reachability, tracking every entry root a function descends
    # from (REP803 scopes writes by the root's class)
    origins: dict[str, set[str]] = {
        qual: {qual} for qual in index.thread_roots
    }
    frontier = sorted(origins)
    while frontier:
        next_frontier: set[str] = set()
        for qual in frontier:
            for edge in index.edges.get(qual, ()):
                target = origins.setdefault(edge.callee, set())
                if not origins[qual] <= target:
                    target |= origins[qual]
                    next_frontier.add(edge.callee)
        frontier = sorted(next_frontier)
    index.thread_reachable = set(origins)
    index.thread_origins = {
        qual: tuple(sorted(roots)) for qual, roots in origins.items()
    }

    # entry-held fixed point with provenance
    entry: dict[str, dict[str, tuple[str, int]]] = {
        qual: {} for qual in summaries
    }
    index.entry_held = entry  # aliased now: the provenance helper reads it
    worklist = sorted(summaries)
    in_list = set(worklist)
    while worklist:
        qual = worklist.pop(0)
        in_list.discard(qual)
        summary = summaries[qual]
        incoming = entry[qual]
        for edge in index.edges.get(qual, ()):
            if edge.callee not in entry:
                continue
            target = entry[edge.callee]
            changed = False
            carried = dict(incoming)
            for ident in edge.held:
                prov = _acquisition_site(index, summary, ident)
                carried[ident] = prov or (summary.rel, edge.line)
            for ident, prov in sorted(carried.items()):
                if ident not in target:
                    target[ident] = prov
                    changed = True
            if changed and edge.callee not in in_list:
                worklist.append(edge.callee)
                in_list.add(edge.callee)

    # lock-order edges
    order: list[OrderEdge] = []
    for qual in sorted(summaries):
        summary = summaries[qual]
        for acq in summary.acquires:
            decl = index.resolve_lock(summary, acq.token)
            if decl is None:
                continue
            held_now: dict[str, tuple[str, int]] = dict(
                entry[qual]
            )
            for token in acq.held:
                inner = index.resolve_lock(summary, token)
                if inner is not None:
                    site = _local_acquire_line(summary, token)
                    held_now[inner.ident] = (summary.rel, site)
            for first, (first_rel, first_line) in sorted(held_now.items()):
                if first == decl.ident:
                    kind = index.locks[first].kind
                    if kind in ("rlock", "assigned"):
                        continue  # legal re-entrancy / aliasing risk
                order.append(
                    OrderEdge(
                        first=first,
                        second=decl.ident,
                        rel=summary.rel,
                        line=acq.line,
                        first_rel=first_rel,
                        first_line=first_line,
                    )
                )
    index.order_edges = sorted(
        set(order),
        key=lambda e: (e.first, e.second, e.rel, e.line),
    )

    # blocking reachability witnesses (shortest-first BFS per function
    # would be costly; a reverse fixed point gives one stable witness)
    witness: dict[str, BlockWitness] = {}
    for qual in sorted(summaries):
        summary = summaries[qual]
        if summary.blocking:
            block = min(summary.blocking, key=lambda b: b.line)
            witness[qual] = BlockWitness(
                label=block.label,
                rel=summary.rel,
                line=block.line,
                chain=(qual,),
            )
    changed = True
    while changed:
        changed = False
        for qual in sorted(summaries):
            if qual in witness:
                continue
            for edge in sorted(
                index.edges.get(qual, ()), key=lambda e: e.line
            ):
                hit = witness.get(edge.callee)
                if hit is not None and qual not in hit.chain:
                    witness[qual] = BlockWitness(
                        label=hit.label,
                        rel=hit.rel,
                        line=hit.line,
                        chain=(qual,) + hit.chain,
                    )
                    changed = True
                    break
    index.block_witness = witness
    return index


def _acquisition_site(
    index: FlowIndex, summary: FunctionSummary, ident: str
) -> "tuple[str, int] | None":
    for acq in summary.acquires:
        decl = index.resolve_lock(summary, acq.token)
        if decl is not None and decl.ident == ident:
            return summary.rel, acq.line
    prov = index.entry_held.get(summary.qualname, {}).get(ident)
    return prov


def _local_acquire_line(summary: FunctionSummary, token: str) -> int:
    for acq in summary.acquires:
        if acq.token == token:
            return acq.line
    return summary.line
