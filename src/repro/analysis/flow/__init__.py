"""Project-wide semantic layer for concurrency checkers.

``build_flow_index`` turns a :class:`~repro.analysis.base.Project` into
a :class:`FlowIndex`: per-class lock identities, per-function summaries
(acquisitions, calls, attribute accesses, blocking primitives), a
resolved call graph with thread-entry roots, propagated held-lock sets,
and the lock-acquisition order graph.  The runner builds it once per
invocation and hands it to every checker whose ``scope`` is ``"flow"``
(REP801 lock-order, REP802 blocking-under-lock, REP803
unguarded-shared-state).
"""

from repro.analysis.flow.graph import (
    BlockWitness,
    Edge,
    FlowIndex,
    OrderEdge,
    RootSite,
    build_flow_index,
)
from repro.analysis.flow.symbols import LockDecl, SymbolTable, build_symbols
from repro.analysis.flow.summary import FunctionSummary

__all__ = [
    "BlockWitness",
    "Edge",
    "FlowIndex",
    "FunctionSummary",
    "LockDecl",
    "OrderEdge",
    "RootSite",
    "SymbolTable",
    "build_flow_index",
    "build_symbols",
]
