"""Intra-procedural function summaries for the flow layer.

One :class:`FunctionSummary` per function/method records, with the
*syntactic* lock-hold context of every event (the graph resolves tokens
to identities later):

* lock acquisitions — ``with <token>:`` where the context expression is
  a plain name/attribute chain, and bare ``<token>.acquire()`` (held
  until a matching ``.release()`` in the same statement list, else to
  the end of that list);
* calls — dotted callee token, line, held tokens, awaited flag;
* attribute accesses on ``self`` — reads, writes, and *mutations*
  (``self.events.append(...)``-style calls through a known mutator
  method, which is how lock-free structures like the reqlog deque are
  written);
* blocking primitives (the shared REP401/REP802 table);
* thread-target registrations: ``threading.Thread(target=f)``,
  ``pool.submit(f, ...)`` and ``loop.run_in_executor(pool, f, ...)``.
  An *awaited* ``run_in_executor`` is also a call edge — the caller
  parks on the result, so its locks stay held for the callee's whole
  wall-clock run.

Nested ``def``s get their own summaries (they are the repo's idiom for
closures handed to executors); lambdas are skipped.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.astutil import dotted_name
from repro.analysis.blocking import flow_blocking_label
from repro.analysis.flow.symbols import ClassTable, ModuleTable

#: Method names that mutate their receiver in place — calling one of
#: these on ``self.x`` counts as a *write* to ``x`` for the
#: shared-state pass.
MUTATOR_ATTRS = frozenset(
    {
        "append",
        "appendleft",
        "extend",
        "extendleft",
        "insert",
        "pop",
        "popleft",
        "popitem",
        "remove",
        "discard",
        "add",
        "clear",
        "update",
        "setdefault",
        "move_to_end",
        "put",
        "put_nowait",
        "sort",
    }
)


@dataclass(frozen=True)
class Acquire:
    token: str
    line: int
    via: str  # "with" | "acquire"
    held: tuple[str, ...]  # tokens already held at this acquisition


@dataclass(frozen=True)
class CallSite:
    token: str
    line: int
    held: tuple[str, ...]
    awaited: bool


@dataclass(frozen=True)
class Access:
    attr: str
    line: int
    kind: str  # "read" | "write"
    held: tuple[str, ...]


@dataclass(frozen=True)
class Blocking:
    label: str
    line: int
    held: tuple[str, ...]


@dataclass(frozen=True)
class ThreadTarget:
    token: str
    line: int
    via: str  # "thread" | "submit" | "run_in_executor"
    held: tuple[str, ...]
    awaited: bool


@dataclass
class FunctionSummary:
    qualname: str  # "<rel>::Class.method" | "<rel>::func" | "...outer.inner"
    rel: str
    name: str
    line: int
    cls: ClassTable | None
    module: ModuleTable
    is_async: bool
    acquires: list[Acquire] = field(default_factory=list)
    calls: list[CallSite] = field(default_factory=list)
    accesses: list[Access] = field(default_factory=list)
    blocking: list[Blocking] = field(default_factory=list)
    thread_targets: list[ThreadTarget] = field(default_factory=list)
    #: nested def name -> qualname of its own summary
    local_defs: dict[str, str] = field(default_factory=dict)


def _lock_token(expr: ast.AST) -> str | None:
    """A with-item expression that could be a held lock (no calls)."""
    if isinstance(expr, (ast.Name, ast.Attribute)):
        return dotted_name(expr)
    return None


class _Summarizer:
    def __init__(
        self,
        module: ModuleTable,
        cls: ClassTable | None,
        qualname: str,
        func: ast.AST,
        out: "dict[str, FunctionSummary]",
    ) -> None:
        self.module = module
        self.cls = cls
        self.out = out
        self.summary = FunctionSummary(
            qualname=qualname,
            rel=module.rel,
            name=func.name,
            line=func.lineno,
            cls=cls,
            module=module,
            is_async=isinstance(func, ast.AsyncFunctionDef),
        )
        out[qualname] = self.summary
        self._body(func.body, ())

    # -- statement lists -------------------------------------------------

    def _body(self, stmts: list[ast.stmt], held: tuple[str, ...]) -> None:
        """Walk one statement list, tracking bare acquire()/release()."""
        live = list(held)
        for stmt in stmts:
            self._stmt(stmt, tuple(live))
            for token, op, line in self._bare_lock_ops(stmt):
                if op == "acquire":
                    self.summary.acquires.append(
                        Acquire(token, line, "acquire", tuple(live))
                    )
                    live.append(token)
                elif token in live:
                    live.remove(token)

    @staticmethod
    def _bare_lock_ops(stmt: ast.stmt):
        """Top-level ``x.acquire()`` / ``x.release()`` expression stmts."""
        if not isinstance(stmt, ast.Expr):
            return
        call = stmt.value
        if (
            isinstance(call, ast.Call)
            and isinstance(call.func, ast.Attribute)
            and call.func.attr in ("acquire", "release")
        ):
            token = dotted_name(call.func.value)
            if token is not None:
                yield token, call.func.attr, call.lineno

    def _stmt(self, stmt: ast.stmt, held: tuple[str, ...]) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            child_qual = f"{self.summary.qualname}.{stmt.name}"
            self.summary.local_defs[stmt.name] = child_qual
            _Summarizer(self.module, self.cls, child_qual, stmt, self.out)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            inner = held
            for item in stmt.items:
                self._expr(item.context_expr, inner)
                token = _lock_token(item.context_expr)
                if token is not None:
                    self.summary.acquires.append(
                        Acquire(token, item.context_expr.lineno, "with", inner)
                    )
                    inner = inner + (token,)
            self._body(stmt.body, inner)
            return
        if isinstance(stmt, ast.If):
            self._expr(stmt.test, held)
            self._body(stmt.body, held)
            self._body(stmt.orelse, held)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._expr(stmt.iter, held)
            self._store_target(stmt.target, held)
            self._body(stmt.body, held)
            self._body(stmt.orelse, held)
            return
        if isinstance(stmt, ast.While):
            self._expr(stmt.test, held)
            self._body(stmt.body, held)
            self._body(stmt.orelse, held)
            return
        if isinstance(stmt, ast.Try):
            self._body(stmt.body, held)
            for handler in stmt.handlers:
                self._body(handler.body, held)
            self._body(stmt.orelse, held)
            self._body(stmt.finalbody, held)
            return
        if isinstance(stmt, ast.Assign):
            self._expr(stmt.value, held)
            for target in stmt.targets:
                self._store_target(target, held)
            return
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._expr(stmt.value, held)
            self._store_target(stmt.target, held)
            return
        if isinstance(stmt, ast.AugAssign):
            self._expr(stmt.value, held)
            attr = self._self_attr(stmt.target)
            if attr is not None:
                # += reads then writes
                self.summary.accesses.append(
                    Access(attr, stmt.lineno, "read", held)
                )
            self._store_target(stmt.target, held)
            return
        if isinstance(stmt, ast.ClassDef):
            return  # classes nested in functions: out of model
        # Return/Expr/Raise/Assert/Delete/... — scan expressions generically
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._expr(child, held)
            elif isinstance(child, ast.stmt):  # pragma: no cover - safety
                self._stmt(child, held)

    def _store_target(self, target: ast.AST, held: tuple[str, ...]) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._store_target(elt, held)
            return
        if isinstance(target, ast.Starred):
            self._store_target(target.value, held)
            return
        attr = self._self_attr(target)
        if attr is None and isinstance(target, ast.Subscript):
            # self.x[k] = v mutates x
            attr = self._self_attr(target.value)
            self._expr(target.slice, held)
        if attr is not None:
            self.summary.accesses.append(
                Access(attr, target.lineno, "write", held)
            )

    # -- expressions -----------------------------------------------------

    def _expr(self, node: ast.AST, held: tuple[str, ...]) -> None:
        if isinstance(node, ast.Lambda):
            return
        if isinstance(node, ast.Await):
            if isinstance(node.value, ast.Call):
                self._call(node.value, held, awaited=True)
            else:
                self._expr(node.value, held)
            return
        if isinstance(node, ast.Call):
            self._call(node, held, awaited=False)
            return
        if isinstance(node, ast.Attribute):
            attr = self._self_attr(node)
            if attr is not None:
                kind = "write" if isinstance(node.ctx, (ast.Store, ast.Del)) else "read"
                self.summary.accesses.append(
                    Access(attr, node.lineno, kind, held)
                )
                return
            self._expr(node.value, held)
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.expr, ast.keyword, ast.comprehension)):
                self._expr(child, held)
            elif isinstance(child, ast.stmt):  # pragma: no cover - safety
                self._stmt(child, held)

    def _call(
        self, call: ast.Call, held: tuple[str, ...], awaited: bool
    ) -> None:
        token = dotted_name(call.func)
        if token is not None:
            self.summary.calls.append(
                CallSite(token, call.lineno, held, awaited)
            )
            parts = token.split(".")
            if parts[0] == "self" and len(parts) >= 3:
                # self.x.m(...) reads x; mutator methods write it
                kind = "write" if parts[-1] in MUTATOR_ATTRS else "read"
                self.summary.accesses.append(
                    Access(parts[1], call.lineno, kind, held)
                )
        else:
            # chained/subscripted callee: scan the callee expression
            self._expr(call.func, held)
        label = flow_blocking_label(call, awaited)
        if label is not None:
            self.summary.blocking.append(Blocking(label, call.lineno, held))
        self._thread_target(call, token, held, awaited)
        for arg in call.args:
            self._expr(arg, held)
        for kw in call.keywords:
            self._expr(kw.value, held)

    def _thread_target(
        self,
        call: ast.Call,
        token: str | None,
        held: tuple[str, ...],
        awaited: bool,
    ) -> None:
        target: ast.AST | None = None
        via = None
        if token is not None and self.module.expand(token) == "threading.Thread":
            for kw in call.keywords:
                if kw.arg == "target":
                    target, via = kw.value, "thread"
        elif isinstance(call.func, ast.Attribute):
            if call.func.attr == "submit" and call.args:
                target, via = call.args[0], "submit"
            elif call.func.attr == "run_in_executor" and len(call.args) >= 2:
                target, via = call.args[1], "run_in_executor"
        if target is None:
            return
        target_token = dotted_name(target)
        if target_token is None:
            return
        self.summary.thread_targets.append(
            ThreadTarget(target_token, call.lineno, via, held, awaited)
        )

    @staticmethod
    def _self_attr(node: ast.AST) -> str | None:
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return node.attr
        return None


def summarize_module(
    module: ModuleTable, tree: ast.Module
) -> dict[str, FunctionSummary]:
    """Summaries for every function and method of one parsed module."""
    out: dict[str, FunctionSummary] = {}
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            _Summarizer(module, None, f"{module.rel}::{node.name}", node, out)
        elif isinstance(node, ast.ClassDef):
            cls = module.classes.get(node.name)
            for stmt in node.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    _Summarizer(
                        module,
                        cls,
                        f"{module.rel}::{node.name}.{stmt.name}",
                        stmt,
                        out,
                    )
    return out
