"""Module/class symbol tables for the flow layer.

One :class:`ModuleTable` per parsed file records what the cross-file
passes need to resolve names without importing anything:

* the import map (local name -> dotted target), including relative
  imports resolved against the module's own package path;
* every class: its bases, methods, and — most importantly — its **lock
  attributes**, seeded from ``self.x = threading.Lock()``-style
  assignments (``Lock``/``RLock``/``Condition``/``asyncio.Lock``; the
  constructor call is found anywhere inside the assigned expression, so
  ``self.pause = pause if pause is not None else asyncio.Lock()``
  seeds too).  ``__init__`` is scanned first but any method counts:
  the server seeds its pause lock in ``start()``, not ``__init__``;
* per-class attribute *types* for the one-level instance pattern
  ``self.cache = ResultCache(...)`` and module-level instances like
  ``_HITS_TOTAL = get_counter(...)`` (only direct ``ClassName(...)``
  calls are recorded — a factory call yields no type, by design);
* module-level locks (``_FORK_LOCK = threading.Lock()``).

A lock *identity* is the string ``"<rel>::<Class>.<attr>"`` (or
``"<rel>::<NAME>"`` for module globals): every runtime instance of a
class shares one static identity, which is the right granularity for
ordering checks (all ``ResultCache`` objects follow the same code
paths) and a documented over-approximation for aliasing (two locks
passed to the same parameter merge).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.astutil import dotted_name
from repro.analysis.base import Project

#: Constructor dotted name -> lock kind.  Semaphores and events are
#: deliberately absent: holding an admission semaphore across work is
#: its purpose, not a bug.
LOCK_CONSTRUCTORS = {
    "threading.Lock": "lock",
    "threading.RLock": "rlock",
    "threading.Condition": "condition",
    "multiprocessing.Lock": "lock",
    "multiprocessing.RLock": "rlock",
    "asyncio.Lock": "asyncio",
    "asyncio.Condition": "asyncio",
}


@dataclass(frozen=True)
class LockDecl:
    """One statically-known lock: identity, kind, and the seeding site."""

    ident: str
    kind: str  # a LOCK_CONSTRUCTORS value, or "assigned" (unseeded)
    rel: str
    line: int


@dataclass
class ClassTable:
    name: str
    rel: str
    line: int
    bases: list[str] = field(default_factory=list)
    #: method name -> def node (first definition wins)
    methods: dict[str, ast.AST] = field(default_factory=dict)
    #: self attr -> constructor-seeded lock
    locks: dict[str, LockDecl] = field(default_factory=dict)
    #: every self attr assigned anywhere in a method body -> first line
    assigned: dict[str, int] = field(default_factory=dict)
    #: self attr -> class token for ``self.x = Token(...)`` / class-body
    #: ``x = Token`` (syntactic; resolved lazily by the graph)
    attr_types: dict[str, str] = field(default_factory=dict)


@dataclass
class ModuleTable:
    rel: str
    #: path segments sans ``.py`` (``__init__`` dropped), for dotted lookup
    key: tuple[str, ...]
    imports: dict[str, str] = field(default_factory=dict)
    classes: dict[str, ClassTable] = field(default_factory=dict)
    functions: dict[str, ast.AST] = field(default_factory=dict)
    global_locks: dict[str, LockDecl] = field(default_factory=dict)
    global_types: dict[str, str] = field(default_factory=dict)

    def expand(self, token: str) -> str:
        """Rewrite ``token``'s first segment through the import map."""
        head, _, rest = token.partition(".")
        target = self.imports.get(head)
        if target is None:
            return token
        return f"{target}.{rest}" if rest else target


@dataclass
class SymbolTable:
    modules: dict[str, ModuleTable] = field(default_factory=dict)  # rel ->

    def module_for_dotted(self, dotted: str) -> ModuleTable | None:
        """The unique module whose path-key ends with ``dotted``'s parts."""
        want = tuple(dotted.split("."))
        hits = [
            m
            for m in self.modules.values()
            if m.key[-len(want):] == want
        ]
        return hits[0] if len(hits) == 1 else None


def _module_key(rel: str) -> tuple[str, ...]:
    parts = rel[:-3].split("/") if rel.endswith(".py") else rel.split("/")
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return tuple(parts)


def _imports_of(
    tree: ast.Module, key: tuple[str, ...], is_init: bool
) -> dict[str, str]:
    out: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                out.setdefault(alias.asname or alias.name.split(".")[0],
                               alias.name)
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                # level 1 from a module is its containing package; from a
                # package __init__ it is the package itself (key already
                # dropped the ``__init__`` segment).
                drop = node.level - 1 if is_init else node.level
                prefix = list(key[: len(key) - drop] if drop else key)
            else:
                prefix = []
            if node.module:
                prefix += node.module.split(".")
            dotted = ".".join(prefix)
            for alias in node.names:
                if alias.name == "*":
                    continue
                out.setdefault(
                    alias.asname or alias.name,
                    f"{dotted}.{alias.name}" if dotted else alias.name,
                )
    return out


def _lock_kind(value: ast.AST, module: ModuleTable) -> "tuple[str, int] | None":
    """(kind, line) if any call inside ``value`` constructs a lock."""
    for node in ast.walk(value):
        if isinstance(node, ast.Call):
            token = dotted_name(node.func)
            if token is None:
                continue
            kind = LOCK_CONSTRUCTORS.get(module.expand(token))
            if kind is not None:
                return kind, node.lineno
    return None


def _looks_like_class(token: str) -> bool:
    tail = token.rsplit(".", 1)[-1].lstrip("_")
    return tail[:1].isupper()


def _instance_type(value: ast.AST) -> str | None:
    """Class token for a direct ``Token(...)`` call (factories excluded)."""
    if isinstance(value, ast.Call):
        token = dotted_name(value.func)
        if token is not None and _looks_like_class(token):
            return token
    return None


def _annotation_token(node: ast.AST) -> str | None:
    """Class token from a parameter annotation (``X``, ``"X"``, ``X | None``)."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        left = _annotation_token(node.left)
        if left is not None and left != "None":
            return left
        return _annotation_token(node.right)
    token = dotted_name(node)
    if token in (None, "None"):
        return None
    return token if _looks_like_class(token) else None


def _param_types(func: ast.AST) -> dict[str, str]:
    """Parameter name -> annotated class token (the injection idiom)."""
    out: dict[str, str] = {}
    args = func.args
    for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
        if arg.annotation is not None:
            token = _annotation_token(arg.annotation)
            if token is not None:
                out[arg.arg] = token
    return out


def _self_attr(node: ast.AST) -> str | None:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _scan_method(cls: ClassTable, func: ast.AST, module: ModuleTable) -> None:
    param_types = _param_types(func)
    for node in ast.walk(func):
        targets: list[ast.AST] = []
        value: ast.AST | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        elif isinstance(node, ast.AugAssign):
            targets, value = [node.target], None
        for target in targets:
            attr = _self_attr(target)
            if attr is None:
                continue
            cls.assigned.setdefault(attr, node.lineno)
            if value is None:
                continue
            seeded = _lock_kind(value, module)
            if seeded is not None and attr not in cls.locks:
                kind, line = seeded
                cls.locks[attr] = LockDecl(
                    ident=f"{cls.rel}::{cls.name}.{attr}",
                    kind=kind,
                    rel=cls.rel,
                    line=line,
                )
            instance = _instance_type(value)
            if instance is None and isinstance(value, ast.Name):
                # self.x = cache  where  cache: ResultCache  is a param
                instance = param_types.get(value.id)
            if instance is not None:
                cls.attr_types.setdefault(attr, instance)


def _scan_class(node: ast.ClassDef, module: ModuleTable) -> ClassTable:
    cls = ClassTable(name=node.name, rel=module.rel, line=node.lineno)
    for base in node.bases:
        token = dotted_name(base)
        if token is not None:
            cls.bases.append(token)
    for stmt in node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            cls.methods.setdefault(stmt.name, stmt)
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    cls.assigned.setdefault(target.id, stmt.lineno)
                    seeded = _lock_kind(stmt.value, module)
                    if seeded is not None and target.id not in cls.locks:
                        kind, line = seeded
                        cls.locks[target.id] = LockDecl(
                            ident=f"{cls.rel}::{cls.name}.{target.id}",
                            kind=kind,
                            rel=cls.rel,
                            line=line,
                        )
                    token = (
                        _instance_type(stmt.value)
                        or (
                            stmt.value.id
                            if isinstance(stmt.value, ast.Name)
                            else None
                        )
                    )
                    if token is not None:
                        cls.attr_types.setdefault(target.id, token)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            if stmt.value is not None and isinstance(stmt.value, ast.Name):
                cls.attr_types.setdefault(stmt.target.id, stmt.value.id)
    # seed __init__ first so its locks win the identity line numbers
    ordered = sorted(
        cls.methods.items(), key=lambda kv: (kv[0] != "__init__", kv[0])
    )
    for _, func in ordered:
        _scan_method(cls, func, module)
    return cls


def build_symbols(project: Project) -> SymbolTable:
    table = SymbolTable()
    for parsed in project.files:
        module = ModuleTable(rel=parsed.rel, key=_module_key(parsed.rel))
        module.imports = _imports_of(
            parsed.tree, module.key, parsed.is_init()
        )
        for node in parsed.tree.body:
            if isinstance(node, ast.ClassDef):
                module.classes[node.name] = _scan_class(node, module)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                module.functions.setdefault(node.name, node)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if not isinstance(target, ast.Name):
                        continue
                    seeded = _lock_kind(node.value, module)
                    if seeded is not None:
                        kind, line = seeded
                        module.global_locks.setdefault(
                            target.id,
                            LockDecl(
                                ident=f"{module.rel}::{target.id}",
                                kind=kind,
                                rel=module.rel,
                                line=line,
                            ),
                        )
                    instance = _instance_type(node.value)
                    if instance is not None:
                        module.global_types.setdefault(target.id, instance)
        table.modules[parsed.rel] = module
    return table
