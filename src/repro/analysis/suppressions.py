"""Inline suppressions: ``# repro-lint: allow[CODE] -- why``.

A suppression is a *reasoned* exception, not an off switch: the reason text
after ``--`` is mandatory, so every silenced finding documents why the rule
does not apply at that site (the reviewer-memory problem this subsystem
exists to solve).  A directive allows its codes on its own line and — when
it opens a comment block — through that block down to the first code line
below it, covering trailing-comment, comment-above, and multi-line-reason
styles::

    except Exception:  # repro-lint: allow[REP501] -- telemetry must not kill the server

    # repro-lint: allow[REP101] -- comparing a *local* offset here, not
    # the engine's start sentinel: 0 is a real window coordinate.
    if window.t_start == 0:

Malformed directives (missing reason, unknown or empty code list) are
findings themselves (:data:`SUPPRESSION_CODE`): a broken suppression must
fail the build, otherwise a typo would silently re-enable nothing while the
author believes the site is covered.
"""

from __future__ import annotations

import io
import re
import tokenize

from repro.analysis.findings import SEVERITY_ERROR, Finding

#: Code for suppression-syntax violations (reserved; not a registered
#: checker — the scanner runs before any checker does).
SUPPRESSION_CODE = "REP000"

_DIRECTIVE = re.compile(r"#\s*repro-lint:\s*(?P<body>.*)$")
_ALLOW = re.compile(
    r"^allow\[(?P<codes>[^\]]*)\]\s*(?:--\s*(?P<reason>.*))?$"
)


def scan_suppressions(
    rel: str, source: str, known_codes: "set[str]"
) -> tuple[dict[int, set[str]], list[Finding]]:
    """Extract per-line allowed codes and syntax findings from one file.

    Returns ``(allowed, findings)`` where ``allowed[line]`` is the set of
    codes suppressed on that 1-based line.
    """
    allowed: dict[int, set[str]] = {}
    findings: list[Finding] = []
    lines = source.splitlines()

    def comment_only(line: int) -> bool:
        return (
            0 < line <= len(lines) and lines[line - 1].lstrip().startswith("#")
        )

    def bad(line: int, message: str) -> None:
        findings.append(
            Finding(
                path=rel,
                line=line,
                code=SUPPRESSION_CODE,
                severity=SEVERITY_ERROR,
                message=message,
            )
        )

    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [
            (token.start[0], token.string)
            for token in tokens
            if token.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError):
        return allowed, findings  # unparseable files fail elsewhere
    for line, text in comments:
        match = _DIRECTIVE.search(text)
        if match is None:
            continue
        body = match.group("body").strip()
        allow = _ALLOW.match(body)
        if allow is None:
            bad(
                line,
                f"malformed repro-lint directive {body!r}; expected "
                f"'allow[CODE] -- reason'",
            )
            continue
        codes = [c.strip() for c in allow.group("codes").split(",") if c.strip()]
        reason = (allow.group("reason") or "").strip()
        if not codes:
            bad(line, "suppression lists no codes: allow[] is empty")
            continue
        unknown = [c for c in codes if c not in known_codes]
        if unknown:
            bad(
                line,
                f"suppression names unknown code(s) "
                f"{', '.join(sorted(unknown))}",
            )
            continue
        if not reason:
            bad(
                line,
                f"suppression of {', '.join(codes)} carries no reason; "
                f"write 'allow[{codes[0]}] -- why this site is safe'",
            )
            continue
        # Cover the directive's own line, any comment block continuing it,
        # and the first code line below — so a long reason can wrap.
        probe = line + 1
        while comment_only(probe):
            probe += 1
        for target in range(line, probe + 1):
            allowed.setdefault(target, set()).update(codes)
    return allowed, findings
