"""Sequence I/O: FASTA parsing/writing and multi-sequence databases."""

from repro.io.fasta import FastaRecord, parse_fasta, parse_fasta_file, write_fasta
from repro.io.database import LocatedHit, SequenceDatabase, ShardPlan

__all__ = [
    "FastaRecord",
    "parse_fasta",
    "parse_fasta_file",
    "write_fasta",
    "LocatedHit",
    "SequenceDatabase",
    "ShardPlan",
]
