"""Sequence collections as one concatenated text (Sec. 2.2).

"Given all the sequences T_1, ..., T_n in the database, we concatenate them
into a single sequence T.  A local alignment query is then performed directly
on the sequence T."  :class:`SequenceDatabase` performs that concatenation
and keeps the offset table needed to attribute global hit positions back to
``(sequence id, local position)``; hits spanning a concatenation boundary can
be detected and dropped.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from pathlib import Path

from repro.align.types import Hit
from repro.errors import ReproError
from repro.io.fasta import FastaRecord, parse_fasta_file


@dataclass(frozen=True)
class LocatedHit:
    """A hit attributed to one database sequence (local 1-based positions)."""

    sequence_id: str
    t_start: int
    t_end: int
    p_end: int
    score: int


class SequenceDatabase:
    """A collection of named sequences exposed as one concatenated text."""

    def __init__(self, records: list[FastaRecord]) -> None:
        if not records:
            raise ReproError("database needs at least one sequence")
        self.records = list(records)
        self._offsets: list[int] = []  # 0-based global start of each record
        parts: list[str] = []
        pos = 0
        for record in self.records:
            if not record.sequence:
                raise ReproError(f"empty sequence {record.identifier!r}")
            self._offsets.append(pos)
            parts.append(record.sequence)
            pos += len(record.sequence)
        self.text = "".join(parts)

    @classmethod
    def from_fasta(cls, path: str | Path) -> "SequenceDatabase":
        """Load a (possibly multi-record) FASTA file as a database."""
        return cls(parse_fasta_file(path))

    @classmethod
    def from_sequence(
        cls, sequence: str, identifier: str = "seq"
    ) -> "SequenceDatabase":
        """Wrap one raw sequence string as a single-record database."""
        return cls([FastaRecord(header=identifier, sequence=sequence)])

    def __len__(self) -> int:
        return len(self.records)

    @property
    def identifiers(self) -> list[str]:
        """Record identifiers in concatenation order."""
        return [record.identifier for record in self.records]

    def boundaries(self) -> list[int]:
        """0-based global start offset of every record (sorted)."""
        return list(self._offsets)

    def offset_of(self, index: int) -> int:
        """0-based global start offset of one record."""
        return self._offsets[index]

    @property
    def total_length(self) -> int:
        return len(self.text)

    def sequence_at(self, global_pos: int) -> int:
        """Index of the record containing 1-based global position ``pos``."""
        if not 1 <= global_pos <= len(self.text):
            raise ReproError(f"position {global_pos} outside database")
        return bisect.bisect_right(self._offsets, global_pos - 1) - 1

    def locate_hit(self, hit: Hit) -> LocatedHit | None:
        """Attribute a global hit to its sequence.

        Returns ``None`` for hits spanning a concatenation boundary (their
        alignment mixes two database sequences and should be discarded).
        """
        start = hit.t_start if hit.t_start else hit.t_end
        idx_start = self.sequence_at(start)
        idx_end = self.sequence_at(hit.t_end)
        if idx_start != idx_end:
            return None
        offset = self._offsets[idx_end]
        return LocatedHit(
            sequence_id=self.records[idx_end].identifier,
            t_start=start - offset,
            t_end=hit.t_end - offset,
            p_end=hit.p_end,
            score=hit.score,
        )

    def locate_hits(self, hits: list[Hit]) -> list[LocatedHit]:
        """Attribute many hits, silently dropping boundary-spanning ones."""
        located = []
        for hit in hits:
            placed = self.locate_hit(hit)
            if placed is not None:
                located.append(placed)
        return located
