"""Sequence collections as one concatenated text (Sec. 2.2).

"Given all the sequences T_1, ..., T_n in the database, we concatenate them
into a single sequence T.  A local alignment query is then performed directly
on the sequence T."  :class:`SequenceDatabase` performs that concatenation
and keeps the offset table needed to attribute global hit positions back to
``(sequence id, local position)``; hits spanning a concatenation boundary can
be detected and dropped.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from pathlib import Path

from repro.align.types import Hit
from repro.errors import ReproError
from repro.io.fasta import FastaRecord, parse_fasta_file


@dataclass(frozen=True)
class LocatedHit:
    """A hit attributed to one database sequence (local 1-based positions)."""

    sequence_id: str
    t_start: int
    t_end: int
    p_end: int
    score: int


class SequenceDatabase:
    """A collection of named sequences exposed as one concatenated text."""

    def __init__(self, records: list[FastaRecord]) -> None:
        if not records:
            raise ReproError("database needs at least one sequence")
        self.records = list(records)
        self._offsets: list[int] = []  # 0-based global start of each record
        parts: list[str] = []
        pos = 0
        for record in self.records:
            if not record.sequence:
                raise ReproError(f"empty sequence {record.identifier!r}")
            self._offsets.append(pos)
            parts.append(record.sequence)
            pos += len(record.sequence)
        self.text = "".join(parts)

    @classmethod
    def from_fasta(cls, path: str | Path) -> "SequenceDatabase":
        """Load a (possibly multi-record) FASTA file as a database."""
        return cls(parse_fasta_file(path))

    @classmethod
    def coerce(cls, database) -> "SequenceDatabase":
        """Accept a database, a FASTA path, or a record sequence as-is.

        The single normalization point shared by every database-taking
        entry point (:class:`~repro.service.SearchService`,
        ``IndexStore.build``), so new input forms are added once.
        """
        if isinstance(database, cls):
            return database
        if isinstance(database, (str, Path)):
            return cls.from_fasta(database)
        return cls(list(database))

    @classmethod
    def from_sequence(
        cls, sequence: str, identifier: str = "seq"
    ) -> "SequenceDatabase":
        """Wrap one raw sequence string as a single-record database."""
        return cls([FastaRecord(header=identifier, sequence=sequence)])

    @classmethod
    def from_concatenated(
        cls, text: str, offsets: list[int], headers: list[str]
    ) -> "SequenceDatabase":
        """Rebuild a database from its concatenated form (store fast path).

        The inverse of the constructor's concatenation: record sequences are
        slices of ``text`` at the given 0-based ``offsets``, so no join is
        performed and ``text`` is shared as-is with the caller.
        """
        offsets = [int(o) for o in offsets]
        if len(offsets) != len(headers):
            raise ReproError(
                f"{len(offsets)} offsets for {len(headers)} headers"
            )
        if not offsets or offsets[0] != 0 or sorted(offsets) != offsets:
            raise ReproError("offsets must be sorted and start at 0")
        if offsets[-1] >= len(text):
            raise ReproError("last offset lies beyond the text")
        db = cls.__new__(cls)
        bounds = offsets + [len(text)]
        db.records = [
            FastaRecord(header=header, sequence=text[bounds[i] : bounds[i + 1]])
            for i, header in enumerate(headers)
        ]
        for record in db.records:
            if not record.sequence:
                raise ReproError(f"empty sequence {record.identifier!r}")
        db._offsets = offsets
        db.text = text
        return db

    def __len__(self) -> int:
        return len(self.records)

    @property
    def identifiers(self) -> list[str]:
        """Record identifiers in concatenation order."""
        return [record.identifier for record in self.records]

    def boundaries(self) -> list[int]:
        """0-based global start offset of every record (sorted)."""
        return list(self._offsets)

    def offset_of(self, index: int) -> int:
        """0-based global start offset of one record."""
        return self._offsets[index]

    @property
    def total_length(self) -> int:
        return len(self.text)

    def sequence_at(self, global_pos: int) -> int:
        """Index of the record containing 1-based global position ``pos``."""
        if not 1 <= global_pos <= len(self.text):
            raise ReproError(f"position {global_pos} outside database")
        return bisect.bisect_right(self._offsets, global_pos - 1) - 1

    def locate_hit(self, hit: Hit) -> LocatedHit | None:
        """Attribute a global hit to its sequence.

        Returns ``None`` for hits spanning a concatenation boundary (their
        alignment mixes two database sequences and should be discarded).
        """
        start = hit.t_start if hit.t_start else hit.t_end
        idx_start = self.sequence_at(start)
        idx_end = self.sequence_at(hit.t_end)
        if idx_start != idx_end:
            return None
        offset = self._offsets[idx_end]
        return LocatedHit(
            sequence_id=self.records[idx_end].identifier,
            t_start=start - offset,
            t_end=hit.t_end - offset,
            p_end=hit.p_end,
            score=hit.score,
        )

    def locate_hits(self, hits: list[Hit]) -> list[LocatedHit]:
        """Attribute many hits, silently dropping boundary-spanning ones."""
        located = []
        for hit in hits:
            placed = self.locate_hit(hit)
            if placed is not None:
                located.append(placed)
        return located
