"""Sequence collections as one concatenated text (Sec. 2.2).

"Given all the sequences T_1, ..., T_n in the database, we concatenate them
into a single sequence T.  A local alignment query is then performed directly
on the sequence T."  :class:`SequenceDatabase` performs that concatenation
and keeps the offset table needed to attribute global hit positions back to
``(sequence id, local position)``; hits spanning a concatenation boundary can
be detected and dropped.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from repro.align.types import START_UNKNOWN, Hit
from repro.errors import ReproError
from repro.io.fasta import FastaRecord, parse_fasta_file


@dataclass(frozen=True)
class LocatedHit:
    """A hit attributed to one database sequence (local 1-based positions).

    ``t_start == START_UNKNOWN`` means the start is unknown (the producing
    engine did not track it); every known start is >= 1.  ``record_index`` is the position of
    the sequence within its database, so hits stay attributable even when
    identifiers repeat — and shard merges can map them back to the original
    record order.
    """

    sequence_id: str
    t_start: int
    t_end: int
    p_end: int
    score: int
    record_index: int = 0


class SequenceDatabase:
    """A collection of named sequences exposed as one concatenated text."""

    def __init__(self, records: list[FastaRecord]) -> None:
        if not records:
            raise ReproError("database needs at least one sequence")
        self.records = list(records)
        self._offsets: list[int] = []  # 0-based global start of each record
        parts: list[str] = []
        pos = 0
        for record in self.records:
            if not record.sequence:
                raise ReproError(f"empty sequence {record.identifier!r}")
            self._offsets.append(pos)
            parts.append(record.sequence)
            pos += len(record.sequence)
        self.text = "".join(parts)

    @classmethod
    def from_fasta(cls, path: str | Path) -> "SequenceDatabase":
        """Load a (possibly multi-record) FASTA file as a database."""
        return cls(parse_fasta_file(path))

    @classmethod
    def coerce(cls, database) -> "SequenceDatabase":
        """Accept a database, a FASTA path, or a record sequence as-is.

        The single normalization point shared by every database-taking
        entry point (:class:`~repro.service.SearchService`,
        ``IndexStore.build``), so new input forms are added once.
        """
        if isinstance(database, cls):
            return database
        if isinstance(database, (str, Path)):
            return cls.from_fasta(database)
        return cls(list(database))

    @classmethod
    def from_sequence(
        cls, sequence: str, identifier: str = "seq"
    ) -> "SequenceDatabase":
        """Wrap one raw sequence string as a single-record database."""
        return cls([FastaRecord(header=identifier, sequence=sequence)])

    @classmethod
    def from_concatenated(
        cls, text: str, offsets: list[int], headers: list[str]
    ) -> "SequenceDatabase":
        """Rebuild a database from its concatenated form (store fast path).

        The inverse of the constructor's concatenation: record sequences are
        slices of ``text`` at the given 0-based ``offsets``, so no join is
        performed and ``text`` is shared as-is with the caller.
        """
        offsets = [int(o) for o in offsets]
        if len(offsets) != len(headers):
            raise ReproError(
                f"{len(offsets)} offsets for {len(headers)} headers"
            )
        if not offsets or offsets[0] != 0:
            raise ReproError("offsets must start at 0")
        for prev, cur in zip(offsets, offsets[1:]):
            if cur <= prev:
                # A duplicate offset would describe an empty record; say so
                # here instead of failing later as "empty sequence".
                raise ReproError(
                    f"offsets must be strictly increasing "
                    f"(offset {cur} follows {prev})"
                )
        if offsets[-1] >= len(text):
            raise ReproError(
                f"last offset {offsets[-1]} lies beyond the text "
                f"(length {len(text)})"
            )
        db = cls.__new__(cls)
        bounds = offsets + [len(text)]
        db.records = [
            FastaRecord(header=header, sequence=text[bounds[i] : bounds[i + 1]])
            for i, header in enumerate(headers)
        ]
        for record in db.records:
            if not record.sequence:
                raise ReproError(f"empty sequence {record.identifier!r}")
        db._offsets = offsets
        db.text = text
        return db

    def __len__(self) -> int:
        return len(self.records)

    @property
    def identifiers(self) -> list[str]:
        """Record identifiers in concatenation order."""
        return [record.identifier for record in self.records]

    def boundaries(self) -> list[int]:
        """0-based global start offset of every record (sorted)."""
        return list(self._offsets)

    def offset_of(self, index: int) -> int:
        """0-based global start offset of one record."""
        return self._offsets[index]

    @property
    def total_length(self) -> int:
        return len(self.text)

    def sequence_at(self, global_pos: int) -> int:
        """Index of the record containing 1-based global position ``pos``."""
        if not 1 <= global_pos <= len(self.text):
            raise ReproError(f"position {global_pos} outside database")
        return bisect.bisect_right(self._offsets, global_pos - 1) - 1

    def locate_hit(self, hit: Hit) -> LocatedHit | None:
        """Attribute a global hit to its sequence.

        Returns ``None`` for hits spanning a concatenation boundary (their
        alignment mixes two database sequences and should be discarded), and
        for *start-unknown* hits (``t_start == START_UNKNOWN``, the sentinel left by
        engines that do not track starts) that cannot be proven to lie within
        one record: such a hit ends in record ``r`` but may have started in
        ``r - 1``, so attributing it by its end record alone could silently
        report a boundary-spanning alignment.  Only when the hit ends in the
        *first* record is containment guaranteed (every alignment starts at
        position >= 1); callers that can re-derive the start — e.g. the
        service layer's windowed recheck — resolve the rest.
        """
        idx_end = self.sequence_at(hit.t_end)
        if hit.t_start == START_UNKNOWN:  # start not tracked by the engine
            if idx_end != 0:
                return None
            offset = 0
            start = START_UNKNOWN  # still unknown in local coordinates
        else:
            if self.sequence_at(hit.t_start) != idx_end:
                return None
            offset = self._offsets[idx_end]
            start = hit.t_start - offset
        return LocatedHit(
            sequence_id=self.records[idx_end].identifier,
            t_start=start,
            t_end=hit.t_end - offset,
            p_end=hit.p_end,
            score=hit.score,
            record_index=idx_end,
        )

    def locate_hits(self, hits: list[Hit]) -> list[LocatedHit]:
        """Attribute many hits, silently dropping the unattributable ones
        (boundary-spanning, or start-unknown beyond the first record)."""
        located = []
        for hit in hits:
            placed = self.locate_hit(hit)
            if placed is not None:
                located.append(placed)
        return located

    # ------------------------------------------------------ partitioning
    def record_lengths(self) -> list[int]:
        """Length of every record, in concatenation order."""
        return [len(record.sequence) for record in self.records]

    def subset(self, indices: "Sequence[int]") -> "SequenceDatabase":
        """A new database over the records at ``indices``, in that order.

        The record-range view behind sharding: each shard is a
        ``subset(...)`` of the full database, re-concatenated so it carries
        its own offset table.
        """
        try:
            records = [self.records[i] for i in indices]
        except IndexError:
            raise ReproError(
                f"record index out of range (database has "
                f"{len(self.records)} records)"
            ) from None
        return SequenceDatabase(records)


@dataclass(frozen=True)
class ShardPlan:
    """A partition of a database's records into K non-empty shards.

    ``assignments[k]`` lists the *original* record indices served by shard
    ``k``, ascending, so every record keeps its identity across the split
    and shard-local results can be mapped back to the original order.
    Built with :meth:`balanced` — greedy bin-packing on sequence length
    (longest first, into the least-loaded shard), which never splits a
    record and keeps shard text sizes within one longest-record of each
    other for typical collections.
    """

    assignments: tuple[tuple[int, ...], ...]

    @classmethod
    def balanced(
        cls, database: "SequenceDatabase", shards: int
    ) -> "ShardPlan":
        """Partition ``database`` into ``min(shards, len(database))`` bins."""
        if shards < 1:
            raise ReproError(f"shard count must be >= 1, got {shards}")
        lengths = database.record_lengths()
        k = min(shards, len(lengths))
        loads = [0] * k
        bins: list[list[int]] = [[] for _ in range(k)]
        order = sorted(range(len(lengths)), key=lambda i: (-lengths[i], i))
        for idx in order:
            target = min(range(k), key=lambda j: (loads[j], j))
            bins[target].append(idx)
            loads[target] += lengths[idx]
        for assigned in bins:
            assigned.sort()
        return cls(tuple(tuple(assigned) for assigned in bins))

    @property
    def shard_count(self) -> int:
        return len(self.assignments)

    def shard_of(self, record_index: int) -> int:
        """The shard serving one original record index."""
        for shard, assigned in enumerate(self.assignments):
            if record_index in assigned:
                return shard
        raise ReproError(f"record {record_index} is not in this plan")

    def shard_database(
        self, database: "SequenceDatabase", shard: int
    ) -> "SequenceDatabase":
        """The record-range view of one shard as its own database."""
        return database.subset(self.assignments[shard])

    def shard_lengths(self, database: "SequenceDatabase") -> list[int]:
        """Total text length per shard (the bin-packing loads)."""
        lengths = database.record_lengths()
        return [
            sum(lengths[i] for i in assigned) for assigned in self.assignments
        ]
