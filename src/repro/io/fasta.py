"""Minimal, strict FASTA reader/writer.

The experiments consume synthetic sequences, but a credible release must
round-trip the standard interchange format: multi-record files, wrapped
sequence lines, comments via ``;`` ignored, upper-casing normalisation.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from repro.errors import ReproError


class FastaError(ReproError):
    """Malformed FASTA input."""


@dataclass(frozen=True)
class FastaRecord:
    """One FASTA record: ``>header`` line (without ``>``) and its sequence."""

    header: str
    sequence: str

    @property
    def identifier(self) -> str:
        """First whitespace-separated token of the header."""
        return self.header.split()[0] if self.header.split() else ""


def parse_fasta(text: str) -> list[FastaRecord]:
    """Parse FASTA-formatted text into records (sequences upper-cased)."""
    records: list[FastaRecord] = []
    header: str | None = None
    chunks: list[str] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith(";"):
            continue
        if line.startswith(">"):
            if header is not None:
                records.append(FastaRecord(header, "".join(chunks).upper()))
            header = line[1:].strip()
            chunks = []
        else:
            if header is None:
                raise FastaError(f"sequence data before any header (line {lineno})")
            chunks.append(line)
    if header is not None:
        records.append(FastaRecord(header, "".join(chunks).upper()))
    if not records:
        raise FastaError("no FASTA records found")
    return records


def parse_fasta_file(path: str | Path) -> list[FastaRecord]:
    """Parse a FASTA file from disk."""
    with open(path, "r", encoding="ascii") as handle:
        return parse_fasta(handle.read())


def write_fasta(
    records: Iterable[FastaRecord], path: str | Path, width: int = 70
) -> None:
    """Write records to ``path`` with line-wrapped sequences."""
    if width < 1:
        raise FastaError(f"line width must be >= 1, got {width}")
    with open(path, "w", encoding="ascii") as handle:
        for record in records:
            handle.write(f">{record.header}\n")
            seq = record.sequence
            for start in range(0, len(seq), width):
                handle.write(seq[start : start + width] + "\n")
