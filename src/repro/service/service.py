"""Batch search serving over a sequence database (the Sec. 2.2 workload).

The paper frames local alignment as a *database* operation: all sequences
are concatenated into one text ``T`` and queries run against ``T``
(:class:`repro.io.database.SequenceDatabase`).  :class:`SearchService` is
the serving layer on top of that framing:

* it owns **one** engine (ALAE by default) whose indexes — the reversed-text
  CSA and the dominate index — are built once and shared by every query, or
  opened prebuilt from a persistent :class:`~repro.store.IndexStore`
  (``SearchService(store=...)`` / :meth:`SearchService.from_store`) so the
  service cold-starts without any index construction;
* it accepts **batches** of queries (strings, FASTA records, or a FASTA
  file) and runs them across a worker pool: threads by default, a
  fork-based :class:`~concurrent.futures.ProcessPoolExecutor` where each
  worker inherits the already-built engine via copy-on-write fork instead
  of rebuilding or pickling it, or — for store-backed services — a
  spawn-based pool whose workers *reopen the store by path* (mmap, no fork
  needed, works on any platform);
* every raw hit is attributed back to ``(sequence_id, local positions)``
  with :meth:`SequenceDatabase.locate_hit`, and hits spanning a
  concatenation boundary — artifacts of the concatenation, not alignments
  of any database sequence — are dropped and counted;
* per-query :class:`~repro.align.types.SearchStats` are aggregated into a
  batch-level accounting via :meth:`SearchStats.aggregate`.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
import warnings
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from time import perf_counter
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.align.bwt_sw import BwtSw
from repro.align.types import Hit, SearchStats
from repro.alphabet import DNA, Alphabet
from repro.blast import Blast
from repro.core.alae import ALAE
from repro.engine import (
    ORDER_POSITION,
    ORDER_SCORE,
    AlaeBackend,
    BackendInfo,
    BlastBackend,
    BwtSwBackend,
    backend_from_store,
    backend_from_text,
    check_mode,
)
from repro.errors import ReproError
from repro.io.database import LocatedHit, SequenceDatabase
from repro.io.fasta import FastaRecord, parse_fasta_file
from repro.obs.metrics import Counter, Histogram
from repro.obs.spans import SPAN_ENGINE, SPAN_LOCATE, add_span
from repro.scoring.scheme import DEFAULT_SCHEME, ScoringScheme
from repro.store import IndexStore, default_store_cache
from repro.store.format import header_prefix_crc


class ServiceError(ReproError):
    """Invalid service configuration or batch input."""


# Per-query serving accounting by mode; the engine/locate histograms reuse
# the spans' perf_counter measurements, so metrics add no extra clock reads
# to the hot path.
_QUERIES_TOTAL = Counter(
    "repro_service_queries_total", "Queries answered by the service layer",
    ("mode",),
)
_ENGINE_SECONDS = Histogram(
    "repro_service_engine_seconds",
    "Engine (accumulator) time per query", ("mode",),
)
_LOCATE_SECONDS = Histogram(
    "repro_service_locate_seconds",
    "Hit location/recovery time per query", ("mode",),
)


def _cells_with_starts(
    text: str,
    query: str,
    scheme: ScoringScheme,
    wanted: "dict[int, list[tuple[object, int]]]",
) -> "dict[object, tuple[int, int]]":
    """Local-alignment ``(score, t_start)`` for chosen ``(t_end, p_end)`` cells.

    One clamped affine sweep — the same recurrences and prefix-max scan as
    :func:`smith_waterman_all_hits` (so scores agree with the oracle by
    construction) — additionally carrying, per cell, the 1-based text start
    of the positive-prefix alignment achieving that score.  ``wanted`` maps
    a query row ``p_end`` to ``(key, t_end)`` requests; the result maps each
    key to that cell's ``(score, t_start)`` (score 0: nothing ends there).

    Cost is one O(n * m) vectorised pass total, regardless of how many
    cells are requested — this is what keeps boundary-recheck batches with
    tens of thousands of shadowed cells serviceable.
    """
    n, m = len(text), len(query)
    out: dict[object, tuple[int, int]] = {}
    if n == 0 or m == 0:
        for requests in wanted.values():
            for key, _j in requests:
                out[key] = (0, 0)
        return out
    sa, sb, ss, sg = scheme.sa, scheme.sb, scheme.ss, scheme.sg
    go = sg + ss
    t_codes = np.frombuffer(text.encode("ascii"), dtype=np.uint8)
    idx1 = np.arange(1, n + 1, dtype=np.int64)
    karg_base = np.arange(n, dtype=np.int64)
    h_prev = np.zeros(n + 1, dtype=np.int64)
    s_prev = np.zeros(n + 1, dtype=np.int64)  # start per H cell (0 = none)
    f_prev = np.full(n + 1, _NEG, dtype=np.int64)
    sf_prev = np.zeros(n + 1, dtype=np.int64)
    last_row = max(wanted) if wanted else 0
    for i in range(1, min(m, last_row) + 1):
        delta = np.where(t_codes == ord(query[i - 1]), sa, sb).astype(np.int64)
        # Vertical gaps, carrying the start of the chosen predecessor.
        f_from_f = f_prev + ss
        f_from_h = h_prev + go
        f_row = np.maximum(f_from_f, f_from_h)
        sf_row = np.where(f_from_f >= f_from_h, sf_prev, s_prev)
        # Diagonal: a zero H cell restarts the alignment at this column.
        d_val = h_prev[:-1] + delta
        d_start = np.where(h_prev[:-1] > 0, s_prev[:-1], idx1)
        a_row = np.empty(n + 1, dtype=np.int64)
        a_row[0] = _NEG
        a_row[1:] = np.maximum(d_val, f_row[1:])
        sa_row = np.empty(n + 1, dtype=np.int64)
        sa_row[0] = 0
        sa_row[1:] = np.where(d_val >= f_row[1:], d_start, sf_row[1:])
        # Horizontal gaps via the prefix-max scan; the running argmax
        # (earliest on ties) says which a-cell each gap opened from.
        b = a_row[1:] - ss * idx1
        cum = np.maximum.accumulate(b)
        strict = np.empty(n, dtype=bool)
        strict[0] = True
        strict[1:] = b[1:] > cum[:-1]
        karg = np.maximum.accumulate(np.where(strict, karg_base, 0))
        e_row = np.full(n + 1, _NEG, dtype=np.int64)
        e_row[2:] = cum[:-1] + go - ss + ss * idx1[1:]
        se_row = np.zeros(n + 1, dtype=np.int64)
        se_row[2:] = sa_row[1:][karg[: n - 1]]
        h_row = np.maximum(np.maximum(a_row, e_row), 0)
        h_row[0] = 0
        s_row = np.where(a_row >= e_row, sa_row, se_row)
        s_row = np.where(h_row > 0, s_row, 0)
        if i in wanted:
            for key, j in wanted[i]:
                out[key] = (int(h_row[j]), int(s_row[j]))
        h_prev, f_prev, s_prev, sf_prev = h_row, f_row, s_row, sf_row
    return out


#: Engine registry shared with the CLI.
SERVICE_ENGINES = {"alae": ALAE, "bwtsw": BwtSw, "blast": Blast}


def _legacy_backend(engine) -> object:
    """Wrap an explicitly-chosen engine instance in a pinned backend.

    A service constructed with ``engine="bwtsw"`` / ``engine="blast"`` (or a
    custom engine class) predates the mode registry; its backend keeps the
    historical presentation — accumulator (position) order — so existing
    output stays byte-identical, and the service refuses non-``exact``
    per-call modes.
    """
    if isinstance(engine, ALAE):
        return AlaeBackend(engine)
    if isinstance(engine, BwtSw):
        return BwtSwBackend(engine)
    if isinstance(engine, Blast):
        backend = BlastBackend(engine)
        # Instance override: legacy blast services present hits in position
        # order like every other engine= choice always has.
        backend.info = BackendInfo(
            name="blast", mode="exact", exact=False, ordering=ORDER_POSITION
        )
        return backend

    class _CustomBackend:
        info = BackendInfo(
            name=type(engine).__name__.lower(),
            mode="exact",
            exact=False,
            ordering=ORDER_POSITION,
        )

        def __init__(self, wrapped) -> None:
            self.engine = wrapped

        def search(self, query, threshold=None, e_value=None):
            return self.engine.search(query, threshold, e_value)

        def describe(self) -> dict:
            return {"name": self.info.name, "mode": self.info.mode}

    return _CustomBackend(engine)

_NEG = np.int64(-(10**9))


@dataclass(frozen=True)
class Query:
    """One named query sequence of a batch."""

    id: str
    sequence: str


def normalize_queries(queries: Iterable) -> list[Query]:
    """Coerce a batch input into named :class:`Query` objects.

    Shared by every serving front (:class:`SearchService`, the sharded
    service): accepts a bare sequence string, a :class:`Query`, a
    :class:`FastaRecord`, an ``(id, sequence)`` tuple, or any iterable of
    those.
    """
    if isinstance(queries, (str, Query, FastaRecord)):
        # A bare sequence is one query, not an iterable of characters.
        queries = [queries]
    normalized: list[Query] = []
    for i, item in enumerate(queries, start=1):
        if isinstance(item, Query):
            normalized.append(item)
        elif isinstance(item, FastaRecord):
            normalized.append(Query(item.identifier, item.sequence))
        elif isinstance(item, str):
            normalized.append(Query(f"q{i}", item.upper()))
        elif isinstance(item, tuple) and len(item) == 2:
            normalized.append(Query(str(item[0]), str(item[1]).upper()))
        else:
            raise ServiceError(
                f"query #{i} must be a str, (id, seq) tuple, Query or "
                f"FastaRecord, got {type(item).__name__}"
            )
    if not normalized:
        raise ServiceError("batch needs at least one query")
    return normalized


@dataclass
class QueryResult:
    """Attributed hits of one query against the whole database.

    ``raw_hits`` counts hits on the concatenated text before attribution;
    ``dropped_boundary`` of them straddled a concatenation boundary with no
    within-record alignment at the same cell still clearing the threshold
    (shadowed cells are rechecked and recovered), so
    ``len(hits) == raw_hits - dropped_boundary``.
    """

    query_id: str
    hits: list[LocatedHit]
    stats: SearchStats
    threshold: int
    raw_hits: int
    dropped_boundary: int

    def best(self) -> LocatedHit | None:
        """Highest-scoring attributed hit (ties: first in position order)."""
        return max(self.hits, key=lambda h: h.score, default=None)


@dataclass
class BatchReport:
    """All per-query results of one batch plus aggregate accounting."""

    results: list[QueryResult]
    stats: SearchStats
    wall_seconds: float
    workers: int
    executor: str

    @property
    def total_hits(self) -> int:
        return sum(len(r.hits) for r in self.results)

    @property
    def total_dropped(self) -> int:
        return sum(r.dropped_boundary for r in self.results)

    @property
    def queries_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return len(self.results) / self.wall_seconds


# One service per process may run a fork-based batch at a time; workers
# inherit this module global through the fork instead of unpickling the
# engine (whose CSA alone can be tens of megabytes).  The lock makes the
# claim/release atomic when batches are launched from concurrent threads.
_FORK_SERVICE: "SearchService | None" = None
_FORK_LOCK = threading.Lock()


def _fork_search(
    task: tuple[Query, int | None, float | None, str],
) -> QueryResult:
    query, threshold, e_value, mode = task
    assert _FORK_SERVICE is not None  # set by the parent before forking
    return _FORK_SERVICE._search_one(query, threshold, e_value, mode)


# Spawn workers carry no parent memory: the pool initializer reopens the
# parent's saved index store by path (mmap, via the process-wide store
# cache, so several pools in one worker process share one engine).  The
# parent's header CRC rides along so a store rebuilt in place between the
# parent's open and the worker's is a hard error, never mixed results.
_SPAWN_SERVICE: "SearchService | None" = None


def _spawn_init(
    store_path: str, engine_kwargs: dict, expected_header_crc: int | None
) -> None:
    global _SPAWN_SERVICE
    _SPAWN_SERVICE = SearchService(
        store=store_path, engine_kwargs=engine_kwargs
    )
    worker_crc = _SPAWN_SERVICE.store.header_crc
    if expected_header_crc is not None and worker_crc != expected_header_crc:
        raise ServiceError(
            f"index store {store_path} changed on disk since the parent "
            f"opened it (header CRC {worker_crc:#010x} != expected "
            f"{expected_header_crc:#010x}); rebuild the service from the "
            f"new store"
        )


def _spawn_search(
    task: tuple[Query, int | None, float | None, str],
) -> QueryResult:
    query, threshold, e_value, mode = task
    assert _SPAWN_SERVICE is not None  # set by the pool initializer
    return _SPAWN_SERVICE._search_one(query, threshold, e_value, mode)


class SearchService:
    """A shared-engine, multi-query search service over a sequence database.

    Parameters
    ----------
    database:
        A :class:`SequenceDatabase`, a list of :class:`FastaRecord`, or a
        FASTA path.  Mutually exclusive with ``store``.
    store:
        A prebuilt :class:`~repro.store.IndexStore` (or a path to one, built
        with ``repro index build``): the database, alphabet, scheme and all
        indexes are taken from the store instead of being built here.
        Explicitly passed ``alphabet`` / ``scheme`` must then match the
        store's fingerprint.
    engine:
        Engine name (``alae`` / ``bwtsw`` / ``blast``) or an engine *class*
        with the ``(text, alphabet=..., scheme=...)`` constructor protocol.
        Store-backed services serve the ``alae`` engine (the store holds its
        indexes).  Choosing a non-default engine pins the service: per-call
        ``mode`` overrides are rejected.
    mode:
        Default search mode: ``exact`` (ALAE, today's behaviour —
        byte-identical output), ``fast`` (seed-and-extend candidates,
        score-ranked), or ``verified`` (fast candidates rescored by
        windowed exact searches; hits are a bit-equal subset of ``exact``).
        Every serving call accepts a per-call ``mode=`` override; backends
        are built lazily per mode and share the exact engine's indexes.
    workers, executor:
        Default worker-pool shape for :meth:`search_batch`: ``threads``
        shares the engine directly (simple, but pure-Python searches
        serialise on the GIL), ``processes`` forks the warmed engine into
        ``workers`` children for true CPU parallelism (falling back to
        ``spawn`` or ``threads`` where fork is unavailable), and ``spawn``
        starts fresh workers that reopen the attached store by path —
        available only for services opened from a *saved* store.
    engine_kwargs:
        Extra keyword arguments forwarded to the engine constructor (for
        store-backed services: the engine's ``use_*`` toggles).
    """

    def __init__(
        self,
        database: SequenceDatabase | Sequence[FastaRecord] | str | Path | None = None,
        *,
        store: "IndexStore | str | Path | None" = None,
        engine: str | type = "alae",
        mode: str = "exact",
        alphabet: Alphabet | None = None,
        scheme: ScoringScheme | None = None,
        workers: int = 1,
        executor: str = "threads",
        engine_kwargs: dict | None = None,
    ) -> None:
        self._engine_kwargs = dict(engine_kwargs or {})
        self.mode = check_mode(mode)
        # Backends are built lazily per mode (the default mode eagerly,
        # below); the lock keeps first-build single-flight across threads.
        self._backends: dict[str, object] = {}
        self._backend_lock = threading.RLock()
        if isinstance(engine, str):
            if engine not in SERVICE_ENGINES:
                raise ServiceError(
                    f"unknown engine {engine!r}; expected one of "
                    f"{sorted(SERVICE_ENGINES)}"
                )
            engine = SERVICE_ENGINES[engine]
        # An explicitly-chosen non-default engine pins the service to the
        # historical single-engine behaviour (no mode switching).
        self._pinned_engine = engine if engine is not ALAE else None
        if self._pinned_engine is not None and self.mode != "exact":
            raise ServiceError(
                f"mode {self.mode!r} needs the default ALAE service; "
                f"engine={engine.__name__.lower()!r} pins mode 'exact'"
            )
        if store is not None:
            if database is not None:
                raise ServiceError(
                    "pass either a database or a store, not both"
                )
            if engine is not ALAE:
                raise ServiceError(
                    "a prebuilt store holds ALAE indexes; other engines "
                    "need a database to build from"
                )
            if isinstance(store, (str, Path)):
                store = default_store_cache().get(store)
            if alphabet is not None:
                store.check_alphabet(alphabet)
            if scheme is not None:
                store.check_scheme(scheme)
            self.store = store
            self._store_path = store.path
            self.database = store.database()
            self.alphabet = store.alphabet
            self.scheme = store.scheme
            self.workers = self._check_workers(workers)
            self.executor = self._check_executor(executor)
            backend = self._make_backend(self.mode)
        else:
            if database is None:
                raise ServiceError("pass a database or a store")
            database = SequenceDatabase.coerce(database)
            self.store = None
            self._store_path = None
            self.database = database
            self.alphabet = DNA if alphabet is None else alphabet
            self.scheme = DEFAULT_SCHEME if scheme is None else scheme
            self.workers = self._check_workers(workers)
            self.executor = self._check_executor(executor)
            if self._pinned_engine is not None:
                backend = _legacy_backend(
                    engine(
                        database.text,
                        alphabet=self.alphabet,
                        scheme=self.scheme,
                        **self._engine_kwargs,
                    )
                )
            else:
                backend = self._make_backend(self.mode)
        self._backends[self.mode] = backend
        self.engine = backend.engine
        # Build lazily-constructed engine caches up front so concurrent
        # threads never race on their first population.
        if isinstance(self.engine, ALAE) and self.engine.use_domination:
            self.engine.domination_index()

    @classmethod
    def from_store(
        cls, path: "IndexStore | str | Path", **kwargs
    ) -> "SearchService":
        """Open a service over a prebuilt index store (no index construction)."""
        return cls(store=path, **kwargs)

    # ------------------------------------------------------------- plumbing
    @staticmethod
    def _check_workers(workers: int) -> int:
        if workers < 1:
            raise ServiceError(f"workers must be >= 1, got {workers}")
        return workers

    def _check_executor(self, executor: str) -> str:
        """Validate an executor choice, resolving platform fallbacks.

        ``processes`` prefers fork (workers inherit the warmed engine
        copy-on-write); on platforms without fork it becomes ``spawn`` when
        a saved store is attached (workers reopen it by path) and otherwise
        degrades to ``threads`` with a warning instead of raising.
        """
        if executor not in ("threads", "processes", "spawn"):
            raise ServiceError(
                f"executor must be 'threads', 'processes' or 'spawn', "
                f"got {executor!r}"
            )
        methods = multiprocessing.get_all_start_methods()
        if executor == "spawn":
            if self._store_path is None:
                raise ServiceError(
                    "the 'spawn' executor needs a service opened from a "
                    "saved index store (workers reopen it by path); build "
                    "one with IndexStore.build(...).save() or "
                    "`repro index build`"
                )
            if "spawn" not in methods:
                raise ServiceError(
                    "the 'spawn' start method is unavailable on this platform"
                )
            return executor
        if executor == "processes" and "fork" not in methods:
            if self._store_path is not None and "spawn" in methods:
                return "spawn"
            warnings.warn(
                "the 'processes' executor needs the fork start method "
                "(unavailable on this platform) and no saved index store "
                "is attached for spawn workers; degrading to 'threads'",
                RuntimeWarning,
                stacklevel=3,
            )
            return "threads"
        return executor

    def _normalize_queries(self, queries: Iterable) -> list[Query]:
        return normalize_queries(queries)

    def _resolve_mode(self, mode: str | None) -> str:
        """Per-call mode, defaulting to the service's own; pin-checked."""
        mode = check_mode(self.mode if mode is None else mode)
        if mode != "exact" and self._pinned_engine is not None:
            raise ServiceError(
                f"mode {mode!r} needs the default ALAE service; this one "
                f"was constructed with an explicit engine and serves "
                f"'exact' only"
            )
        return mode

    def _make_backend(self, mode: str) -> object:
        """Build a backend for ``mode`` over this service's text or store."""
        if self.store is not None:
            return backend_from_store(
                mode, self.store, engine_kwargs=self._engine_kwargs
            )
        # Reuse an already-built exact engine (every backend exposes one
        # when it carries ALAE) so modes share one set of indexes.
        exact_engine = None
        for built in self._backends.values():
            candidate = getattr(built, "engine", None)
            if isinstance(candidate, ALAE):
                exact_engine = candidate
                break
        return backend_from_text(
            mode,
            self.database.text,
            alphabet=self.alphabet,
            scheme=self.scheme,
            engine_kwargs=self._engine_kwargs,
            exact_engine=exact_engine,
        )

    def backend(self, mode: str | None = None) -> object:
        """The :class:`~repro.engine.SearchBackend` serving ``mode`` (cached)."""
        mode = self._resolve_mode(mode)
        with self._backend_lock:
            built = self._backends.get(mode)
            if built is None:
                built = self._make_backend(mode)
                self._backends[mode] = built
            return built

    def _search_one(
        self,
        query: Query,
        threshold: int | None,
        e_value: float | None,
        mode: str | None = None,
    ) -> QueryResult:
        backend = self.backend(mode)
        t0 = perf_counter()
        result = backend.search(
            query.sequence, threshold=threshold, e_value=e_value
        )
        engine_seconds = perf_counter() - t0
        add_span(result.stats.spans, SPAN_ENGINE, engine_seconds)
        raw = result.hits.hits()
        t0 = perf_counter()
        located: list[tuple[int, LocatedHit]] = []
        shadowed: dict[int, list[tuple[int, Hit]]] = {}
        for pos, hit in enumerate(raw):
            placed = self.database.locate_hit(hit)
            if placed is not None:
                located.append((pos, placed))
            else:
                idx = self.database.sequence_at(hit.t_end)
                shadowed.setdefault(idx, []).append((pos, hit))
        for idx, items in shadowed.items():
            located.extend(
                self._recover_shadowed(
                    idx, items, query.sequence, result.threshold
                )
            )
        located.sort(key=lambda item: item[0])
        locate_seconds = perf_counter() - t0
        add_span(result.stats.spans, SPAN_LOCATE, locate_seconds)
        served_mode = backend.info.mode
        _QUERIES_TOTAL.labels(mode=served_mode).inc()
        _ENGINE_SECONDS.labels(mode=served_mode).observe(engine_seconds)
        _LOCATE_SECONDS.labels(mode=served_mode).observe(locate_seconds)
        hits = [placed for _pos, placed in located]
        if backend.info.ordering == ORDER_SCORE:
            # Score-ordered backends present a ranked candidate list — the
            # same key _apply_top_k / the sharded merge use, so ordering is
            # identical across serving topologies.
            hits.sort(
                key=lambda hit: (
                    -hit.score,
                    self.database.offset_of(hit.record_index) + hit.t_end,
                    hit.p_end,
                )
            )
        return QueryResult(
            query_id=query.id,
            hits=hits,
            stats=result.stats,
            threshold=result.threshold,
            raw_hits=len(raw),
            dropped_boundary=len(raw) - len(hits),
        )

    def _recover_shadowed(
        self,
        idx: int,
        items: list[tuple[int, Hit]],
        query_seq: str,
        h_thr: int,
    ) -> list[tuple[int, LocatedHit]]:
        """Re-check boundary-dropped cells against their end record alone.

        The concatenated-text accumulator keeps only the best alignment per
        ``(t_end, p_end)`` cell, so a straddling alignment can shadow a
        legitimate within-record one at the same cell.  Recompute the best
        alignment ending exactly at each dropped cell, restricted to the
        record containing ``t_end``, and keep those still clearing the
        threshold.  All cells of one record are answered by a single
        vectorised sweep over a window covering them (Theorem 1: any
        alignment clearing ``h_thr`` spans at most ``Lmax`` text chars, so
        backing the window off by ``Lmax`` loses nothing).
        """
        record = self.database.records[idx]
        offset = self.database.offset_of(idx)
        lmax = self.scheme.max_alignment_length(len(query_seq), h_thr)
        local_ends = [hit.t_end - offset for _pos, hit in items]
        win_lo = max(0, min(local_ends) - lmax)  # 0-based window start
        win_hi = max(local_ends)
        wanted: dict[int, list[tuple[object, int]]] = {}
        for (pos, hit), local_end in zip(items, local_ends):
            wanted.setdefault(hit.p_end, []).append((pos, local_end - win_lo))
        cells = _cells_with_starts(
            record.sequence[win_lo:win_hi], query_seq, self.scheme, wanted
        )
        recovered: list[tuple[int, LocatedHit]] = []
        for (pos, hit), local_end in zip(items, local_ends):
            score, start = cells[pos]
            if score < h_thr:
                continue
            recovered.append(
                (
                    pos,
                    LocatedHit(
                        sequence_id=record.identifier,
                        t_start=win_lo + start,
                        t_end=local_end,
                        p_end=hit.p_end,
                        score=score,
                        record_index=idx,
                    ),
                )
            )
        return recovered

    @staticmethod
    def _check_top_k(top_k: int | None) -> int | None:
        if top_k is not None and top_k < 1:
            raise ServiceError(f"top_k must be >= 1, got {top_k}")
        return top_k

    def _apply_top_k(self, result: QueryResult, top_k: int) -> QueryResult:
        """Rank hits by score and truncate to the best ``top_k``.

        The ordering — score descending, then global end position, then
        query end — is exactly :meth:`ShardedSearchService._merge`'s ranked
        order, so ``--top-k`` output is identical whether the index behind
        the service is monolithic or sharded.
        """
        ranked = sorted(
            result.hits,
            key=lambda hit: (
                -hit.score,
                self.database.offset_of(hit.record_index) + hit.t_end,
                hit.p_end,
            ),
        )
        return QueryResult(
            query_id=result.query_id,
            hits=ranked[:top_k],
            stats=result.stats,
            threshold=result.threshold,
            raw_hits=result.raw_hits,
            dropped_boundary=result.dropped_boundary,
        )

    # -------------------------------------------------------------- serving
    def search(
        self,
        query: str | Query | FastaRecord,
        threshold: int | None = None,
        e_value: float | None = None,
        *,
        top_k: int | None = None,
        mode: str | None = None,
    ) -> QueryResult:
        """Search one query and attribute its hits (no pool involved)."""
        top_k = self._check_top_k(top_k)
        mode = self._resolve_mode(mode)
        (normalized,) = self._normalize_queries([query])
        result = self._search_one(normalized, threshold, e_value, mode)
        if top_k is not None:
            result = self._apply_top_k(result, top_k)
        return result

    def iter_results(
        self,
        queries: Iterable,
        threshold: int | None = None,
        e_value: float | None = None,
        *,
        top_k: int | None = None,
        workers: int | None = None,
        executor: str | None = None,
        mode: str | None = None,
    ) -> Iterator[QueryResult]:
        """Yield one :class:`QueryResult` per query, in submission order.

        Results stream as soon as each query (and everything submitted
        before it) finishes, so callers can emit hits before the whole
        batch completes.  Inputs are validated here, at call time, not at
        first iteration.  ``top_k`` re-ranks each result's hits by score
        (descending, position-ordered within ties) and truncates.
        """
        workers = self._check_workers(self.workers if workers is None else workers)
        executor = self._check_executor(
            self.executor if executor is None else executor
        )
        top_k = self._check_top_k(top_k)
        mode = self._resolve_mode(mode)
        normalized = self._normalize_queries(queries)
        inner = self._iter_validated(
            normalized, threshold, e_value, workers, executor, mode
        )
        if top_k is None:
            return inner
        return (self._apply_top_k(result, top_k) for result in inner)

    def _iter_validated(
        self,
        normalized: list[Query],
        threshold: int | None,
        e_value: float | None,
        workers: int,
        executor: str,
        mode: str,
    ) -> Iterator[QueryResult]:
        if workers == 1 or len(normalized) == 1:
            for query in normalized:
                yield self._search_one(query, threshold, e_value, mode)
            return
        if executor == "processes":
            yield from self._run_forked(
                normalized, threshold, e_value, workers, mode
            )
        elif executor == "spawn":
            yield from self._run_spawn(
                normalized, threshold, e_value, workers, mode
            )
        else:
            pool = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-search"
            )
            try:
                yield from self._drain(
                    pool, normalized, threshold, e_value, mode
                )
            finally:
                # Early generator close: drop queued queries instead of
                # finishing the whole batch before returning control.
                pool.shutdown(wait=True, cancel_futures=True)

    def _drain(
        self,
        pool: Executor,
        queries: list[Query],
        threshold: int | None,
        e_value: float | None,
        mode: str,
    ) -> Iterator[QueryResult]:
        futures = [
            pool.submit(self._search_one, query, threshold, e_value, mode)
            for query in queries
        ]
        for future in futures:
            yield future.result()

    def _run_forked(
        self,
        queries: list[Query],
        threshold: int | None,
        e_value: float | None,
        workers: int,
        mode: str,
    ) -> Iterator[QueryResult]:
        global _FORK_SERVICE
        with _FORK_LOCK:
            if _FORK_SERVICE is not None:
                raise ServiceError(
                    "another fork-based batch is already running in this process"
                )
            _FORK_SERVICE = self
        try:
            pool = ProcessPoolExecutor(
                max_workers=workers,
                mp_context=multiprocessing.get_context("fork"),
            )
            try:
                futures = [
                    pool.submit(
                        _fork_search, (query, threshold, e_value, mode)
                    )
                    for query in queries
                ]
                for future in futures:
                    yield future.result()
            finally:
                pool.shutdown(wait=True, cancel_futures=True)
        finally:
            with _FORK_LOCK:
                _FORK_SERVICE = None

    def _run_spawn(
        self,
        queries: list[Query],
        threshold: int | None,
        e_value: float | None,
        workers: int,
        mode: str,
    ) -> Iterator[QueryResult]:
        assert self._store_path is not None  # enforced by _check_executor
        # Fail in the parent, with a clean error, when the store file no
        # longer matches what this service loaded; the worker-side check in
        # _spawn_init covers the remaining race after this point.
        expected = self.store.header_crc if self.store is not None else None
        if expected is not None and header_prefix_crc(self._store_path) != expected:
            raise ServiceError(
                f"index store {self._store_path} changed on disk since this "
                f"service opened it; rebuild the service from the new store"
            )
        pool = ProcessPoolExecutor(
            max_workers=workers,
            mp_context=multiprocessing.get_context("spawn"),
            initializer=_spawn_init,
            initargs=(
                str(self._store_path),
                self._engine_kwargs,
                self.store.header_crc if self.store is not None else None,
            ),
        )
        try:
            futures = [
                pool.submit(_spawn_search, (query, threshold, e_value, mode))
                for query in queries
            ]
            for future in futures:
                yield future.result()
        finally:
            pool.shutdown(wait=True, cancel_futures=True)

    def search_batch(
        self,
        queries: Iterable,
        threshold: int | None = None,
        e_value: float | None = None,
        *,
        top_k: int | None = None,
        workers: int | None = None,
        executor: str | None = None,
        mode: str | None = None,
    ) -> BatchReport:
        """Run a whole batch and return results plus aggregate statistics."""
        workers = self._check_workers(self.workers if workers is None else workers)
        executor = self._check_executor(
            self.executor if executor is None else executor
        )
        started = time.perf_counter()
        results = list(
            self.iter_results(
                queries, threshold, e_value, top_k=top_k,
                workers=workers, executor=executor, mode=mode,
            )
        )
        wall = time.perf_counter() - started
        return BatchReport(
            results=results,
            stats=SearchStats.aggregate(r.stats for r in results),
            wall_seconds=wall,
            workers=workers,
            executor=executor,
        )

    def search_fasta(
        self,
        path: str | Path,
        threshold: int | None = None,
        e_value: float | None = None,
        *,
        top_k: int | None = None,
        workers: int | None = None,
        executor: str | None = None,
        mode: str | None = None,
    ) -> BatchReport:
        """Run every record of a FASTA file as one batch."""
        return self.search_batch(
            parse_fasta_file(path),
            threshold,
            e_value,
            top_k=top_k,
            workers=workers,
            executor=executor,
            mode=mode,
        )
