"""Sharded serving: fan one query across K shard indexes, merge exactly.

:class:`ShardedSearchService` layers on :class:`~repro.service.SearchService`
the way a distributed query planner layers on single-node executors: each
shard of a :class:`~repro.store.ShardedStore` gets its own store-backed
``SearchService`` (shared mmapped indexes, warmed engine), every query fans
out as one task per shard, and the per-shard
:class:`~repro.io.database.LocatedHit` lists are merged back into a single
:class:`~repro.service.QueryResult` that is **bit-identical** — ids,
positions, scores *and ordering* — to what the unsharded service returns
over the same database:

* E-value thresholds are resolved against the *global* text length before
  fan-out, so every shard searches with the same ``H`` the unsharded
  service would use (a shard resolving ``E`` against its own, smaller text
  would over-report);
* hits are record-local and records never split across shards, so the
  merge maps each hit back to its original record index (via the manifest
  id table) and sorts by global ``(t_end, p_end)`` — exactly the
  accumulator order of the concatenated text;
* per-record attribution is already exact (boundary-spanning artifacts are
  dropped and shadowed within-record alignments recovered per shard), so
  the union over shards is the union over records.

``top_k`` adds ranked early termination: a shared score floor tracks the
k-th best score seen so far per query, and shard tasks that start after the
floor is set search with ``H = max(H, floor)`` — cheap shards stop refining
hits that can no longer reach the top k.  The floor only ever *raises* the
threshold to a score already achieved k times, so the returned top k is
deterministic and identical to ranking the full merge.

Executors mirror the unsharded service: ``threads`` (default), a fork-based
``processes`` pool inheriting the warmed shard engines copy-on-write, and a
``spawn`` pool whose workers reopen the *manifest* by path (every shard
store mmapped fresh, works without fork).
"""

from __future__ import annotations

import heapq
import multiprocessing
import threading
import time
import warnings
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from pathlib import Path
from time import perf_counter
from typing import Iterable, Iterator

from repro.scoring.evalue import resolve_threshold
from repro.align.types import SearchStats
from repro.alphabet import Alphabet
from repro.engine import MODE_ORDERINGS, ORDER_SCORE, check_mode
from repro.errors import ReproError
from repro.io.database import LocatedHit
from repro.io.fasta import parse_fasta_file
from repro.obs.metrics import Histogram
from repro.obs.spans import SPAN_ENGINE, SPAN_LOCATE, SPAN_MERGE, add_span, shard_span
from repro.scoring.scheme import ScoringScheme
from repro.service.service import (
    BatchReport,
    Query,
    QueryResult,
    SearchService,
    ServiceError,
    normalize_queries,
)
from repro.store.sharded import (
    ShardedStore,
    manifest_payload_crc as _payload_crc,
    read_manifest,
)

# Fan-out accounting per merged query: each shard's work time (engine +
# locate — the numbers the merge already attributes to trace spans), the
# fold-in cost, and how many shards each query fanned out to.
_SHARD_SECONDS = Histogram(
    "repro_sharded_shard_seconds",
    "Per-shard work time (engine + locate) per merged query",
    ("shard",),
)
_MERGE_SECONDS = Histogram(
    "repro_sharded_merge_seconds", "Fan-in merge time per query"
)
_FANOUT_QUERIES = Histogram(
    "repro_sharded_fanout_shards",
    "Shards each merged query fanned out to",
    buckets=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0),
)


@dataclass
class ShardedBatchReport(BatchReport):
    """A :class:`BatchReport` plus per-shard accounting.

    ``shard_stats[i]`` aggregates every query's engine statistics on shard
    ``i``; ``shard_work_seconds[i]`` sums that shard's per-search engine
    time (work, not wall clock — shards run concurrently).
    """

    shard_stats: list[SearchStats] = field(default_factory=list)
    shard_work_seconds: list[float] = field(default_factory=list)

    @property
    def shard_queries_per_second(self) -> list[float]:
        """Per-shard throughput over *work* time, 0.0 for zero-width timings.

        A shard that answered its searches faster than the clock's
        resolution (tiny shard, trivial queries) reports 0.0 instead of
        raising ``ZeroDivisionError`` or claiming infinite throughput.
        """
        queries = len(self.results)
        return [
            queries / seconds if seconds > 0 else 0.0
            for seconds in self.shard_work_seconds
        ]


class _ScoreFloor:
    """Thread-shared k-th-best score tracker, one floor per query.

    ``offer`` feeds scores from a completed shard; ``floor`` returns the
    current k-th best score for a query once at least ``k`` hits exist
    (and ``None`` before).  Raising a shard's threshold to the floor is
    always safe: the k-th best of a subset never exceeds the k-th best of
    the full merge, so no hit that can reach the top k is suppressed.
    """

    def __init__(self, k: int) -> None:
        self._k = k
        self._lock = threading.Lock()
        self._heaps: dict[int, list[int]] = {}

    def floor(self, query_index: int) -> int | None:
        with self._lock:
            heap = self._heaps.get(query_index)
            if heap is None or len(heap) < self._k:
                return None
            return heap[0]

    def offer(self, query_index: int, scores: Iterable[int]) -> None:
        with self._lock:
            heap = self._heaps.setdefault(query_index, [])
            for score in scores:
                if len(heap) < self._k:
                    heapq.heappush(heap, score)
                elif score > heap[0]:
                    heapq.heapreplace(heap, score)


# Fork workers inherit the whole sharded service (all shard engines) through
# the parent's memory image, mirroring service.py's _FORK_SERVICE.
_FORK_SHARDED: "ShardedSearchService | None" = None
_FORK_SHARDED_LOCK = threading.Lock()


def _fork_shard_search(
    task: "tuple[int, Query, int, str]",
) -> "tuple[int, QueryResult]":
    shard, query, threshold, mode = task
    assert _FORK_SHARDED is not None  # set by the parent before forking
    return shard, _FORK_SHARDED.services[shard]._search_one(
        query, threshold, None, mode
    )


# Spawn workers reopen the manifest by path; each shard store comes from the
# process-wide store cache, so one worker serves every shard of the query
# it is handed without duplicating mmaps.
_SPAWN_SHARDED: "ShardedSearchService | None" = None


def _sharded_spawn_init(
    manifest_path: str, engine_kwargs: dict, expected_crc: int | None
) -> None:
    global _SPAWN_SHARDED
    _SPAWN_SHARDED = ShardedSearchService(
        manifest_path, engine_kwargs=engine_kwargs
    )
    if expected_crc is not None:
        worker_crc = _SPAWN_SHARDED.manifest_crc
        if worker_crc != expected_crc:
            raise ServiceError(
                f"shard manifest {manifest_path} changed on disk since the "
                f"parent opened it (CRC {worker_crc:#010x} != expected "
                f"{expected_crc:#010x}); rebuild the service from the new "
                f"manifest"
            )


def _spawn_shard_search(
    task: "tuple[int, Query, int, str]",
) -> "tuple[int, QueryResult]":
    shard, query, threshold, mode = task
    assert _SPAWN_SHARDED is not None  # set by the pool initializer
    return shard, _SPAWN_SHARDED.services[shard]._search_one(
        query, threshold, None, mode
    )


class ShardedSearchService:
    """Serve queries over a sharded index with exact global merging.

    Parameters
    ----------
    store:
        A :class:`~repro.store.ShardedStore` or the path of its manifest
        (built with ``ShardedStore.build`` / ``repro index build --shards``).
    alphabet, scheme:
        Optional sanity checks against the manifest fingerprint, as with a
        store-backed :class:`SearchService` (mismatches are hard errors).
    workers, executor:
        Default pool shape for :meth:`search_batch`.  One *task* is one
        ``(query, shard)`` pair, so even a single query spreads across
        ``workers`` pool slots.
    mode:
        Default search mode for every call (``exact``, ``fast`` or
        ``verified``); individual calls override it with their own
        ``mode=`` argument.  Each shard resolves the mode through its own
        :class:`SearchService` backend registry, so ``exact`` stays
        bit-identical to the unsharded service and non-exact backends are
        built lazily per shard on first use.
    engine_kwargs:
        Forwarded to every shard engine (the ALAE ``use_*`` toggles plus
        the fast tier's seeding knobs, routed per backend).
    """

    def __init__(
        self,
        store: "ShardedStore | str | Path",
        *,
        alphabet: Alphabet | None = None,
        scheme: ScoringScheme | None = None,
        mode: str = "exact",
        workers: int = 1,
        executor: str = "threads",
        engine_kwargs: dict | None = None,
    ) -> None:
        if isinstance(store, (str, Path)):
            store = ShardedStore.open(store)
        if alphabet is not None:
            store.check_alphabet(alphabet)
        if scheme is not None:
            store.check_scheme(scheme)
        self.store = store
        self.mode = check_mode(mode)
        self._engine_kwargs = dict(engine_kwargs or {})
        self.services = [
            SearchService(
                store=shard_store,
                mode=self.mode,
                engine_kwargs=self._engine_kwargs,
            )
            for shard_store in store.stores()
        ]
        self.alphabet = self.services[0].alphabet
        self.scheme = self.services[0].scheme
        self.workers = SearchService._check_workers(workers)
        self.executor = self._check_executor(executor)
        self._global_offsets = store.global_offsets
        self._shard_records = [
            store.shard_records(i) for i in range(store.shard_count)
        ]

    # ------------------------------------------------------------- plumbing
    @property
    def shard_count(self) -> int:
        return self.store.shard_count

    @property
    def record_count(self) -> int:
        return self.store.record_count

    @property
    def total_length(self) -> int:
        """Global text length — the ``n`` every E-value resolves against."""
        return self.store.total_length

    @property
    def manifest_crc(self) -> int:
        """CRC-32 of the canonical manifest payload this service serves."""
        return _payload_crc(self.store.payload)

    def _check_executor(self, executor: str) -> str:
        """Mirror :meth:`SearchService._check_executor` for the sharded pools."""
        if executor not in ("threads", "processes", "spawn"):
            raise ServiceError(
                f"executor must be 'threads', 'processes' or 'spawn', "
                f"got {executor!r}"
            )
        methods = multiprocessing.get_all_start_methods()
        if executor == "spawn":
            if "spawn" not in methods:
                raise ServiceError(
                    "the 'spawn' start method is unavailable on this platform"
                )
            return executor
        if executor == "processes" and "fork" not in methods:
            if "spawn" in methods:
                return "spawn"
            warnings.warn(
                "the 'processes' executor needs the fork start method "
                "(unavailable on this platform); degrading to 'threads'",
                RuntimeWarning,
                stacklevel=3,
            )
            return "threads"
        return executor

    def _resolve_mode(self, mode: str | None) -> str:
        """Per-call mode override: ``None`` means the service default."""
        return self.mode if mode is None else check_mode(mode)

    def _resolve_threshold(
        self, query: Query, threshold: int | None, e_value: float | None
    ) -> int:
        """The global ``H`` for one query (E against the *full* ``n``)."""
        return resolve_threshold(
            threshold,
            e_value,
            self.scheme,
            self.alphabet.size,
            len(query.sequence),
            self.total_length,
        )

    # --------------------------------------------------------------- merge
    def _merge(
        self,
        query: Query,
        h_thr: int,
        per_shard: list[QueryResult],
        top_k: int | None,
        mode: str = "exact",
    ) -> QueryResult:
        """Fold per-shard results into one globally ordered result.

        Exact-mode ordering is by global ``(t_end, p_end)`` — the
        concatenated accumulator's order, hence bit-identical to the
        unsharded service.  Modes whose backend declares score ordering
        (``fast``/``verified``) rank by score descending with global
        position as the tie-break, matching the unsharded presentation.
        With ``top_k`` the ranked order is additionally truncated.
        """
        merge_start = perf_counter()
        _FANOUT_QUERIES.observe(len(per_shard))
        merged: list[tuple[int, int, LocatedHit]] = []
        for shard, result in enumerate(per_shard):
            mapping = self._shard_records[shard]
            for hit in result.hits:
                original = mapping[hit.record_index]
                merged.append(
                    (
                        self._global_offsets[original] + hit.t_end,
                        hit.p_end,
                        replace(hit, record_index=original),
                    )
                )
        merged.sort(key=lambda item: (item[0], item[1]))
        if top_k is not None or MODE_ORDERINGS[mode] == ORDER_SCORE:
            ranked = sorted(
                merged, key=lambda item: (-item[2].score, item[0], item[1])
            )
            if top_k is not None:
                ranked = ranked[:top_k]
            hits = [hit for _end, _p, hit in ranked]
        else:
            hits = [hit for _end, _p, hit in merged]
        raw = sum(result.raw_hits for result in per_shard)
        dropped = sum(result.dropped_boundary for result in per_shard)
        stats = SearchStats.aggregate(r.stats for r in per_shard)
        # Attribute each shard's own wall time before folding in the merge
        # cost, so a trace shows fan-out skew (hottest shard) at a glance.
        for shard, result in enumerate(per_shard):
            spans = result.stats.spans
            seconds = spans.get(SPAN_ENGINE, 0.0) + spans.get(SPAN_LOCATE, 0.0)
            if seconds == 0.0:  # process pools may strip spans; fall back
                seconds = result.stats.elapsed_seconds
            add_span(stats.spans, shard_span(shard), seconds)
            _SHARD_SECONDS.labels(shard=shard).observe(seconds)
        merge_seconds = perf_counter() - merge_start
        add_span(stats.spans, SPAN_MERGE, merge_seconds)
        _MERGE_SECONDS.observe(merge_seconds)
        if "exact_hits" in stats.extra and "verified_hits" in stats.extra:
            # Aggregation summed the per-shard recall *ratios*; the global
            # recall is the ratio of the summed counts (hits are
            # record-local, so per-shard counts partition the global ones).
            exact_hits = stats.extra["exact_hits"]
            stats.extra["recall_vs_exact"] = (
                stats.extra["verified_hits"] / exact_hits
                if exact_hits
                else 1.0
            )
        return QueryResult(
            query_id=query.id,
            hits=hits,
            stats=stats,
            threshold=h_thr,
            raw_hits=raw,
            dropped_boundary=dropped,
        )

    # -------------------------------------------------------------- serving
    def search(
        self,
        query,
        threshold: int | None = None,
        e_value: float | None = None,
        *,
        top_k: int | None = None,
        mode: str | None = None,
    ) -> QueryResult:
        """Search one query across every shard (no pool involved)."""
        mode = self._resolve_mode(mode)
        (normalized,) = normalize_queries([query])
        h_thr = self._resolve_threshold(normalized, threshold, e_value)
        per_shard = [
            service._search_one(normalized, h_thr, None, mode)
            for service in self.services
        ]
        return self._merge(normalized, h_thr, per_shard, top_k, mode)

    def _validate(
        self,
        queries: Iterable,
        threshold: int | None,
        e_value: float | None,
        top_k: int | None,
        workers: int | None,
        executor: str | None,
        mode: str | None,
    ) -> tuple[list[Query], list[int], int, str, str]:
        workers = SearchService._check_workers(
            self.workers if workers is None else workers
        )
        executor = self._check_executor(
            self.executor if executor is None else executor
        )
        mode = self._resolve_mode(mode)
        normalized = normalize_queries(queries)
        if top_k is not None and top_k < 1:
            raise ServiceError(f"top_k must be >= 1, got {top_k}")
        thresholds = [
            self._resolve_threshold(query, threshold, e_value)
            for query in normalized
        ]
        return normalized, thresholds, workers, executor, mode

    def iter_results(
        self,
        queries: Iterable,
        threshold: int | None = None,
        e_value: float | None = None,
        *,
        top_k: int | None = None,
        workers: int | None = None,
        executor: str | None = None,
        mode: str | None = None,
    ) -> Iterator[QueryResult]:
        """Yield one merged :class:`QueryResult` per query, in order.

        A query's result streams as soon as all of its shard tasks (and all
        earlier queries') finish.  Inputs are validated eagerly.
        """
        normalized, thresholds, workers, executor, mode = self._validate(
            queries, threshold, e_value, top_k, workers, executor, mode
        )
        return (
            self._merge(query, h_thr, per_shard, top_k, mode)
            for query, h_thr, per_shard in self._iter_shardwise(
                normalized, thresholds, top_k, workers, executor, mode
            )
        )

    def _iter_shardwise(
        self,
        queries: list[Query],
        thresholds: list[int],
        top_k: int | None,
        workers: int,
        executor: str,
        mode: str,
    ) -> Iterator[tuple[Query, int, list[QueryResult]]]:
        """Yield ``(query, H, per-shard results)`` per query, in order."""
        if workers == 1:
            floor = _ScoreFloor(top_k) if top_k is not None else None
            for index, (query, h_thr) in enumerate(zip(queries, thresholds)):
                per_shard = [
                    self._shard_task(shard, index, query, h_thr, floor, mode)
                    for shard in range(self.shard_count)
                ]
                yield query, h_thr, per_shard
            return
        if executor == "threads":
            yield from self._run_threads(
                queries, thresholds, top_k, workers, mode
            )
        elif executor == "processes":
            yield from self._run_forked(queries, thresholds, workers, mode)
        else:
            yield from self._run_spawn(queries, thresholds, workers, mode)

    def _shard_task(
        self,
        shard: int,
        query_index: int,
        query: Query,
        h_thr: int,
        floor: "_ScoreFloor | None",
        mode: str = "exact",
    ) -> QueryResult:
        """One (query, shard) search, consulting/feeding the score floor."""
        effective = h_thr
        if floor is not None:
            current = floor.floor(query_index)
            if current is not None and current > effective:
                effective = current
        result = self.services[shard]._search_one(query, effective, None, mode)
        if floor is not None:
            floor.offer(query_index, (hit.score for hit in result.hits))
        return result

    def _run_threads(
        self,
        queries: list[Query],
        thresholds: list[int],
        top_k: int | None,
        workers: int,
        mode: str,
    ) -> Iterator[tuple[Query, int, list[QueryResult]]]:
        floor = _ScoreFloor(top_k) if top_k is not None else None
        pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-shard"
        )
        try:
            futures: list[list[Future]] = [
                [
                    pool.submit(
                        self._shard_task,
                        shard,
                        index,
                        query,
                        h_thr,
                        floor,
                        mode,
                    )
                    for shard in range(self.shard_count)
                ]
                for index, (query, h_thr) in enumerate(
                    zip(queries, thresholds)
                )
            ]
            for query, h_thr, shard_futures in zip(
                queries, thresholds, futures
            ):
                yield query, h_thr, [f.result() for f in shard_futures]
        finally:
            # Early generator close: drop queued shard tasks.
            pool.shutdown(wait=True, cancel_futures=True)

    def _collect_process_results(
        self,
        pool: ProcessPoolExecutor,
        task_fn,
        queries: list[Query],
        thresholds: list[int],
        mode: str,
    ) -> Iterator[tuple[Query, int, list[QueryResult]]]:
        futures = [
            [
                pool.submit(task_fn, (shard, query, h_thr, mode))
                for shard in range(self.shard_count)
            ]
            for query, h_thr in zip(queries, thresholds)
        ]
        for query, h_thr, shard_futures in zip(queries, thresholds, futures):
            per_shard: list[QueryResult] = [None] * self.shard_count  # type: ignore[list-item]
            for future in shard_futures:
                shard, result = future.result()
                per_shard[shard] = result
            yield query, h_thr, per_shard

    def _run_forked(
        self,
        queries: list[Query],
        thresholds: list[int],
        workers: int,
        mode: str,
    ) -> Iterator[tuple[Query, int, list[QueryResult]]]:
        global _FORK_SHARDED
        with _FORK_SHARDED_LOCK:
            if _FORK_SHARDED is not None:
                raise ServiceError(
                    "another fork-based sharded batch is already running in "
                    "this process"
                )
            _FORK_SHARDED = self
        try:
            pool = ProcessPoolExecutor(
                max_workers=workers,
                mp_context=multiprocessing.get_context("fork"),
            )
            try:
                yield from self._collect_process_results(
                    pool, _fork_shard_search, queries, thresholds, mode
                )
            finally:
                pool.shutdown(wait=True, cancel_futures=True)
        finally:
            with _FORK_SHARDED_LOCK:
                _FORK_SHARDED = None

    def _run_spawn(
        self,
        queries: list[Query],
        thresholds: list[int],
        workers: int,
        mode: str,
    ) -> Iterator[tuple[Query, int, list[QueryResult]]]:
        # Fail in the parent with a clean error when the manifest on disk no
        # longer matches; the worker-side check covers the remaining race.
        expected = self.manifest_crc
        try:
            on_disk = _payload_crc(read_manifest(self.store.path))
        except ReproError as exc:
            raise ServiceError(
                f"shard manifest {self.store.path} is no longer readable: "
                f"{exc}"
            ) from None
        if on_disk != expected:
            raise ServiceError(
                f"shard manifest {self.store.path} changed on disk since "
                f"this service opened it; rebuild the service from the new "
                f"manifest"
            )
        pool = ProcessPoolExecutor(
            max_workers=workers,
            mp_context=multiprocessing.get_context("spawn"),
            initializer=_sharded_spawn_init,
            initargs=(str(self.store.path), self._engine_kwargs, expected),
        )
        try:
            yield from self._collect_process_results(
                pool, _spawn_shard_search, queries, thresholds, mode
            )
        finally:
            pool.shutdown(wait=True, cancel_futures=True)

    def search_batch(
        self,
        queries: Iterable,
        threshold: int | None = None,
        e_value: float | None = None,
        *,
        top_k: int | None = None,
        workers: int | None = None,
        executor: str | None = None,
        mode: str | None = None,
    ) -> ShardedBatchReport:
        """Run a whole batch; aggregate per-query and per-shard accounting."""
        normalized, thresholds, workers, executor, mode = self._validate(
            queries, threshold, e_value, top_k, workers, executor, mode
        )
        started = time.perf_counter()
        shard_stats = [SearchStats() for _ in range(self.shard_count)]
        results = []
        for query, h_thr, per_shard in self._iter_shardwise(
            normalized, thresholds, top_k, workers, executor, mode
        ):
            for shard, result in enumerate(per_shard):
                shard_stats[shard].merge(result.stats)
            results.append(self._merge(query, h_thr, per_shard, top_k, mode))
        wall = time.perf_counter() - started
        return ShardedBatchReport(
            results=results,
            stats=SearchStats.aggregate(r.stats for r in results),
            wall_seconds=wall,
            workers=workers,
            executor=executor,
            shard_stats=shard_stats,
            shard_work_seconds=[
                stats.elapsed_seconds for stats in shard_stats
            ],
        )

    def search_fasta(
        self,
        path: str | Path,
        threshold: int | None = None,
        e_value: float | None = None,
        *,
        top_k: int | None = None,
        workers: int | None = None,
        executor: str | None = None,
        mode: str | None = None,
    ) -> ShardedBatchReport:
        """Run every record of a FASTA file as one batch."""
        return self.search_batch(
            parse_fasta_file(path),
            threshold,
            e_value,
            top_k=top_k,
            workers=workers,
            executor=executor,
            mode=mode,
        )
