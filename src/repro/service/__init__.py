"""Serving layer: batch, multi-query search over a sequence database."""

from repro.service.service import (
    SERVICE_ENGINES,
    BatchReport,
    Query,
    QueryResult,
    SearchService,
    ServiceError,
)

__all__ = [
    "SERVICE_ENGINES",
    "BatchReport",
    "Query",
    "QueryResult",
    "SearchService",
    "ServiceError",
]
