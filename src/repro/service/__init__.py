"""Serving layer: batch, multi-query search over a sequence database."""

from repro.service.service import (
    SERVICE_ENGINES,
    BatchReport,
    Query,
    QueryResult,
    SearchService,
    ServiceError,
    normalize_queries,
)
from repro.service.sharded import ShardedBatchReport, ShardedSearchService

__all__ = [
    "SERVICE_ENGINES",
    "BatchReport",
    "Query",
    "QueryResult",
    "SearchService",
    "ServiceError",
    "ShardedBatchReport",
    "ShardedSearchService",
    "normalize_queries",
]
