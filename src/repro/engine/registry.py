"""Mode registry: resolve a mode name + context into a ready backend.

The service/serving layers never instantiate engines directly anymore; they
ask this module for a backend by mode.  Engine keyword arguments are routed
by key — BLAST's seeding/extension knobs go to the fast tier, the verified
tier's own switches stay with it, and everything else belongs to the exact
engine (where an unknown key still fails loudly through the existing
engine/store error paths).
"""

from __future__ import annotations

from repro.alphabet import DNA, Alphabet
from repro.blast.engine import Blast
from repro.core.alae import ALAE
from repro.engine.backend import (
    MODE_ENGINE_NAMES,
    MODES,
    AlaeBackend,
    BlastBackend,
)
from repro.engine.verified import VerifiedBackend
from repro.errors import SearchError
from repro.index.kmer_index import DEFAULT_WORD_SIZE, KmerIndex
from repro.scoring.scheme import DEFAULT_SCHEME, ScoringScheme

__all__ = [
    "MODES",
    "MODE_ENGINE_NAMES",
    "MODE_ORDERINGS",
    "BLAST_KEYS",
    "VERIFIED_KEYS",
    "check_mode",
    "split_engine_kwargs",
    "backend_from_text",
    "backend_from_store",
]

#: Declared hit ordering per mode, without materializing a backend —
#: consumers that merge results from workers they did not run locally
#: (the sharded service) key off this table; it is derived from the
#: backend classes, so declaration and behaviour cannot drift.
MODE_ORDERINGS = {
    "exact": AlaeBackend.info.ordering,
    "fast": BlastBackend.info.ordering,
    "verified": VerifiedBackend.info.ordering,
}

#: Engine kwargs consumed by the fast (BLAST) tier.
BLAST_KEYS = frozenset(
    {"word_size", "x_drop_ungapped", "gap_trigger", "gapped_margin"}
)
#: Engine kwargs consumed by the verified tier itself.
VERIFIED_KEYS = frozenset({"measure_recall"})


def check_mode(mode: str | None) -> str:
    """Normalise ``None`` to ``exact`` and reject unknown modes."""
    if mode is None:
        return "exact"
    if mode not in MODES:
        raise SearchError(
            f"unknown search mode {mode!r}; expected one of {', '.join(MODES)}"
        )
    return mode


def split_engine_kwargs(
    engine_kwargs: dict | None,
) -> tuple[dict, dict, dict]:
    """Route a flat kwargs dict into ``(exact, blast, verified)`` buckets.

    The split lets one service-level ``engine_kwargs`` serve every per-call
    mode: a store-backed service built with ``use_vectorized=False`` can
    still answer ``mode=fast`` calls (the toggle simply does not apply
    there), while a typo'd *exact* toggle still explodes in the exact
    engine's constructor as before.
    """
    exact: dict = {}
    blast: dict = {}
    verified: dict = {}
    for key, value in (engine_kwargs or {}).items():
        if key in BLAST_KEYS:
            blast[key] = value
        elif key in VERIFIED_KEYS:
            verified[key] = value
        else:
            exact[key] = value
    return exact, blast, verified


def _usable_index(
    index: KmerIndex | None, text_length: int, word_size: int
) -> KmerIndex | None:
    """A prebuilt k-mer index, only if it matches what BLAST will ask for."""
    if index is None or index.k != word_size or len(index.text) != text_length:
        return None
    return index


def backend_from_text(
    mode: str | None,
    text: str,
    *,
    alphabet: Alphabet = DNA,
    scheme: ScoringScheme = DEFAULT_SCHEME,
    engine_kwargs: dict | None = None,
    exact_engine: ALAE | None = None,
    kmer_index: KmerIndex | None = None,
) -> object:
    """Backend for ``mode`` over a plain in-memory text.

    ``exact_engine`` (when given) is reused instead of building a fresh
    ALAE — the service layer passes its resident engine so ``exact`` and
    ``verified`` share one index.  ``kmer_index`` seeds the fast tier when
    compatible (same text, ``k == word_size``) and is ignored otherwise.
    """
    mode = check_mode(mode)
    exact_kwargs, blast_kwargs, verified_kwargs = split_engine_kwargs(
        engine_kwargs
    )

    def exact_backend() -> ALAE:
        if exact_engine is not None:
            return exact_engine
        return ALAE(text, alphabet=alphabet, scheme=scheme, **exact_kwargs)

    if mode == "exact":
        return AlaeBackend(exact_backend())
    word_size = blast_kwargs.get("word_size", DEFAULT_WORD_SIZE)
    fast = Blast(
        text,
        alphabet=alphabet,
        scheme=scheme,
        index=_usable_index(kmer_index, len(text), word_size),
        **blast_kwargs,
    )
    if mode == "fast":
        return BlastBackend(fast)
    return VerifiedBackend(fast, exact_backend(), **verified_kwargs)


def backend_from_store(
    mode: str | None, store, *, engine_kwargs: dict | None = None
) -> object:
    """Backend for ``mode`` over a persistent :class:`~repro.store.IndexStore`.

    ``exact`` takes the store's cached resident engine (unchanged fast
    path); ``fast`` seeds BLAST from the store's k-mer aux section when its
    ``k`` matches (lazy-built otherwise); ``verified`` composes both.
    """
    mode = check_mode(mode)
    exact_kwargs, blast_kwargs, verified_kwargs = split_engine_kwargs(
        engine_kwargs
    )
    if mode == "exact":
        return AlaeBackend(store.engine(**exact_kwargs))
    word_size = blast_kwargs.get("word_size", DEFAULT_WORD_SIZE)
    fast = Blast(
        store.database().text,
        alphabet=store.alphabet,
        scheme=store.scheme,
        index=store.kmer_index(word_size),
        **blast_kwargs,
    )
    if mode == "fast":
        return BlastBackend(fast)
    return VerifiedBackend(
        fast, store.engine(**exact_kwargs), **verified_kwargs
    )
