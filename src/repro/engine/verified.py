"""The ``verified`` tier: fast candidates, exact rescoring, measured recall.

The heuristic engine is cheap but can report a hit whose accumulator score is
wrong (its windowed gapped DP sees only part of the text) and misses
alignments without a seed word.  :class:`VerifiedBackend` keeps the cheap
part — BLAST proposes *candidate regions* — and replaces trust with proof:
every candidate region is rescored by a genuine ALAE engine over a windowed
subtext, and only cells whose window answer provably equals the whole-text
answer are emitted.

The soundness argument is Theorem 1's windowing bound.  With
``lmax = scheme.max_alignment_length(m, H)``, any alignment scoring ``>= H``
spans at most ``lmax`` text characters.  A window padded ``lmax`` on both
sides of a candidate therefore contains *every* alignment that can justify a
cell in its interior; for a cell at window-local end ``t_end`` with
``window_lo == 0 or t_end >= lmax`` the window accumulator equals the global
accumulator **exactly** — same best score and same earliest-start tie-break,
because the sets of ``>= H`` alignments ending there coincide.  Hence the
invariant the property tests assert:

    ``verified hits`` is a subset of ``exact hits`` with bit-equal
    scores, end positions and start attributions.

What ``verified`` can still miss is what the *fast* tier missed: a true
alignment in a region BLAST never proposed.  That gap is the measured
``recall_vs_exact`` this backend reports in ``SearchStats.extra`` (computed
against a real exact search when ``measure_recall`` is on; the exact run's
cost counters are instrumentation and are **not** folded into the search's
own work accounting).
"""

from __future__ import annotations

import time

from repro.align.types import START_UNKNOWN, ResultSet, SearchResult, SearchStats
from repro.blast.engine import Blast
from repro.core.alae import ALAE
from repro.engine.backend import ORDER_SCORE, BackendInfo, record_backend_search
from repro.errors import SearchError
from repro.scoring.evalue import resolve_threshold


class VerifiedBackend:
    """Rescore fast candidates with windowed exact searches (mode ``verified``).

    Parameters
    ----------
    fast:
        The candidate generator (a :class:`~repro.blast.engine.Blast` over
        the full text).
    exact:
        An exact :class:`~repro.core.alae.ALAE` over the same text.  It
        anchors the scheme/alphabet, measures recall, and is NOT used for
        rescoring (windows get their own small engines) — so a store-backed
        service can hand over its shared resident engine safely.
    measure_recall:
        When ``True`` (default) every search also runs the exact engine and
        reports ``exact_hits`` / ``recall_vs_exact`` in ``stats.extra``.
        Turn off to serve the tier at candidate-generation cost.
    """

    info = BackendInfo(
        name="verified", mode="verified", exact=False, ordering=ORDER_SCORE
    )

    def __init__(
        self, fast: Blast, exact: ALAE, *, measure_recall: bool = True
    ) -> None:
        if len(fast.text) != len(exact.text):
            raise SearchError(
                "verified tier needs its fast and exact engines over the "
                "same text"
            )
        if fast.scheme.as_tuple() != exact.scheme.as_tuple():
            raise SearchError(
                "verified tier needs its fast and exact engines on the "
                "same scoring scheme"
            )
        self.fast = fast
        self.exact = exact
        self.measure_recall = bool(measure_recall)

    @property
    def engine(self):
        """The exact engine anchoring the tier (shared with mode ``exact``).

        Exposed so every backend — adapter or composite — answers
        ``backend.engine`` for warm-up and introspection hooks.
        """
        return self.exact

    # ---------------------------------------------------------------- search
    def search(
        self,
        query: str,
        threshold: int | None = None,
        e_value: float | None = None,
    ) -> SearchResult:
        """Candidates from the fast tier, verdicts from windowed exact DPs."""
        exact = self.exact
        alphabet = exact.alphabet
        alphabet.validate(query)
        text = exact.text
        scheme = exact.scheme
        m, n = len(query), len(text)
        # Resolve H against the FULL text length so the tier answers the
        # same question as the exact engine (an E-value over a window would
        # inflate the threshold's stringency inconsistently per candidate).
        h_thr = resolve_threshold(
            threshold, e_value, scheme, alphabet.size, m, n
        )

        started = time.perf_counter()
        fast_result = self.fast.search(query, threshold=h_thr)
        stats = SearchStats()
        stats.merge(fast_result.stats)

        lmax = scheme.max_alignment_length(m, h_thr)
        candidates = fast_result.hits.hits()
        windows = self._candidate_windows(candidates, lmax, n)

        results = ResultSet()
        for lo0, hi0 in windows:
            window_engine = ALAE(text[lo0:hi0], alphabet=alphabet, scheme=scheme)
            window_result = window_engine.search(query, threshold=h_thr)
            stats.merge(window_result.stats)
            for hit in window_result.hits.hits():
                # Theorem 1 emission rule: with lmax of context to the left
                # (or the real text start), the window accumulator cell IS
                # the global one — bit-equal score, end and start.
                if lo0 > 0 and hit.t_end < lmax:
                    continue
                start = (
                    lo0 + hit.t_start
                    if hit.t_start != START_UNKNOWN
                    else START_UNKNOWN
                )
                results.add(lo0 + hit.t_end, hit.p_end, hit.score, start)

        stats.extra["candidate_hits"] = len(candidates)
        stats.extra["verify_windows"] = len(windows)
        stats.extra["verified_hits"] = len(results)
        if self.measure_recall:
            exact_result = exact.search(query, threshold=h_thr)
            exact_hits = len(exact_result.hits)
            stats.extra["exact_hits"] = exact_hits
            stats.extra["recall_vs_exact"] = (
                len(results) / exact_hits if exact_hits else 1.0
            )
        stats.elapsed_seconds = time.perf_counter() - started
        result = SearchResult(hits=results, stats=stats, threshold=h_thr)
        record_backend_search(self.info, result, stats.elapsed_seconds)
        return result

    # ------------------------------------------------------------- internals
    @staticmethod
    def _candidate_windows(
        candidates, lmax: int, n: int
    ) -> list[tuple[int, int]]:
        """Merged 0-based ``[lo, hi)`` text slices covering every candidate.

        Each candidate's span is padded by ``lmax`` on both sides, so every
        ``>= H`` alignment ending inside the candidate's own region lies
        fully within the window, and the candidate's cells always clear the
        emission rule (their local ``t_end`` exceeds ``lmax`` unless the
        window starts at the text start).
        """
        spans: list[tuple[int, int]] = []
        for hit in candidates:
            start = (
                hit.t_start
                if hit.t_start != START_UNKNOWN
                else max(1, hit.t_end - lmax + 1)
            )
            lo = max(0, start - 1 - lmax)
            hi = min(n, hit.t_end + lmax)
            spans.append((lo, hi))
        spans.sort()
        merged: list[tuple[int, int]] = []
        for lo, hi in spans:
            if merged and lo <= merged[-1][1]:
                last_lo, last_hi = merged[-1]
                merged[-1] = (last_lo, max(last_hi, hi))
            else:
                merged.append((lo, hi))
        return merged

    def describe(self) -> dict:
        """Fingerprint: the tier plus both engines it composes."""
        return {
            "name": self.info.name,
            "mode": self.info.mode,
            "exact": self.info.exact,
            "ordering": self.info.ordering,
            "alphabet": self.exact.alphabet.name,
            "scheme": list(self.exact.scheme.as_tuple()),
            "text_length": len(self.exact.text),
            "measure_recall": self.measure_recall,
            "fast_word_size": self.fast.word_size,
        }
