"""Unified search-backend layer: one protocol, three serving modes.

``exact`` is today's default (ALAE, bit-identical to the pre-refactor
stack), ``fast`` is seed-and-extend candidate generation, and ``verified``
rescores fast candidates with windowed exact DPs (verified hits are a
bit-equal subset of exact hits; see :mod:`repro.engine.verified`).
"""

from repro.engine.backend import (
    MODE_ENGINE_NAMES,
    MODES,
    ORDER_POSITION,
    ORDER_SCORE,
    AlaeBackend,
    BackendInfo,
    BlastBackend,
    BwtSwBackend,
    SearchBackend,
)
from repro.engine.registry import (
    BLAST_KEYS,
    DEFAULT_WORD_SIZE,
    MODE_ORDERINGS,
    VERIFIED_KEYS,
    backend_from_store,
    backend_from_text,
    check_mode,
    split_engine_kwargs,
)
from repro.engine.verified import VerifiedBackend

__all__ = [
    "AlaeBackend",
    "BackendInfo",
    "BlastBackend",
    "BwtSwBackend",
    "SearchBackend",
    "VerifiedBackend",
    "MODES",
    "MODE_ENGINE_NAMES",
    "MODE_ORDERINGS",
    "ORDER_POSITION",
    "ORDER_SCORE",
    "BLAST_KEYS",
    "VERIFIED_KEYS",
    "DEFAULT_WORD_SIZE",
    "backend_from_store",
    "backend_from_text",
    "check_mode",
    "split_engine_kwargs",
]
