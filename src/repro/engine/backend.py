"""The :class:`SearchBackend` protocol and thin adapters over the engines.

Every search tier in the repo — the exact ALAE engine (the paper's
contribution), the exact BWT-SW baseline, the heuristic BLAST baseline, and
the tiered verified pipeline — answers the same question: *which accumulator
cells clear the threshold?*  The protocol pins the one shape they share
(``search(query, threshold | e_value) -> SearchResult``) plus the capability
metadata the serving stack keys decisions off: whether results are exhaustive
(``exact``) and how hits should be presented/merged (``ordering``).

Adapters are deliberately thin: they own no search logic, only the metadata
and the underlying engine instance (exposed as ``.engine`` so existing
callers — warm-up hooks, shadow-recovery, statistics — keep their access).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from time import perf_counter
from typing import Protocol, runtime_checkable

from repro.align.bwt_sw import BwtSw
from repro.align.types import SearchResult
from repro.blast.engine import Blast
from repro.core.alae import ALAE
from repro.obs.metrics import Counter, Histogram

#: Hits presented in accumulator order ``(t_end, p_end)`` — the exact
#: engines' native order, and the one the byte-identical CLI/merge paths
#: depend on.
ORDER_POSITION = "position"
#: Hits presented best-first ``(-score, t_end, p_end)`` — the natural order
#: for heuristic tiers, where the answer set is a ranked candidate list.
ORDER_SCORE = "score"

#: The serving modes every layer of the stack understands.
MODES = ("exact", "fast", "verified")

#: What the wire protocol / CLI report as the engine label for each mode
#: (``exact`` keeps the underlying engine's own name).
MODE_ENGINE_NAMES = {"exact": "alae", "fast": "blast", "verified": "verified"}

# Engine-level accounting, recorded once per backend search from the stats
# the engines already compute (no extra work on the traversal itself).
_SEARCHES_TOTAL = Counter(
    "repro_engine_searches_total",
    "Backend searches by engine and mode", ("engine", "mode"),
)
_NODES_VISITED_TOTAL = Counter(
    "repro_engine_nodes_visited_total",
    "Suffix-trie nodes visited by engine traversals", ("mode",),
)
_ENTRIES_CALCULATED_TOTAL = Counter(
    "repro_engine_entries_calculated_total",
    "Accumulator entries calculated (x1 + x2 + x3)", ("mode",),
)
_ENTRIES_REUSED_TOTAL = Counter(
    "repro_engine_entries_reused_total",
    "Accumulator entries reused across trie branches", ("mode",),
)
_SEARCH_SECONDS = Histogram(
    "repro_engine_search_seconds", "Backend search wall time", ("mode",),
)


def record_backend_search(info: BackendInfo, result: SearchResult, seconds: float) -> None:
    """Fold one backend search into the engine metric families."""
    stats = result.stats
    _SEARCHES_TOTAL.labels(engine=info.name, mode=info.mode).inc()
    _SEARCH_SECONDS.labels(mode=info.mode).observe(seconds)
    if stats.nodes_visited:
        _NODES_VISITED_TOTAL.labels(mode=info.mode).inc(stats.nodes_visited)
    if stats.calculated:
        _ENTRIES_CALCULATED_TOTAL.labels(mode=info.mode).inc(stats.calculated)
    if stats.reused:
        _ENTRIES_REUSED_TOTAL.labels(mode=info.mode).inc(stats.reused)


@dataclass(frozen=True)
class BackendInfo:
    """Capability fingerprint of one backend.

    ``exact`` declares the answer set complete (every cell ``>= H``);
    consumers use it to decide cache compatibility and whether recall
    bookkeeping makes sense.  ``ordering`` declares the presentation
    contract (:data:`ORDER_POSITION` or :data:`ORDER_SCORE`) the service
    layer keys its merge off.
    """

    name: str
    mode: str
    exact: bool
    ordering: str


@runtime_checkable
class SearchBackend(Protocol):
    """What every search tier exposes to the service layer."""

    info: BackendInfo

    def search(
        self,
        query: str,
        threshold: int | None = None,
        e_value: float | None = None,
    ) -> SearchResult: ...

    def describe(self) -> dict: ...


class _EngineBackend:
    """Shared adapter plumbing: hold the engine, delegate, describe."""

    info: BackendInfo

    def __init__(self, engine) -> None:
        self.engine = engine

    def search(
        self,
        query: str,
        threshold: int | None = None,
        e_value: float | None = None,
    ) -> SearchResult:
        started = perf_counter()
        result = self.engine.search(query, threshold, e_value)
        record_backend_search(self.info, result, perf_counter() - started)
        return result

    def describe(self) -> dict:
        """Fingerprint of the backend plus the engine it wraps."""
        engine = self.engine
        info = asdict(self.info)
        info.update(
            {
                "alphabet": engine.alphabet.name,
                "scheme": list(engine.scheme.as_tuple()),
                "text_length": len(engine.text),
            }
        )
        return info


class AlaeBackend(_EngineBackend):
    """The exact ALAE engine as a backend (mode ``exact``'s default)."""

    info = BackendInfo(
        name="alae", mode="exact", exact=True, ordering=ORDER_POSITION
    )

    def __init__(self, engine: ALAE) -> None:
        super().__init__(engine)


class BwtSwBackend(_EngineBackend):
    """The exact BWT-SW baseline as a backend."""

    info = BackendInfo(
        name="bwtsw", mode="exact", exact=True, ordering=ORDER_POSITION
    )

    def __init__(self, engine: BwtSw) -> None:
        super().__init__(engine)


class BlastBackend(_EngineBackend):
    """The heuristic seed-and-extend engine as a backend (mode ``fast``)."""

    info = BackendInfo(
        name="blast", mode="fast", exact=False, ordering=ORDER_SCORE
    )

    def __init__(self, engine: Blast) -> None:
        super().__init__(engine)
