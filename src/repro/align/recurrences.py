"""Sparse affine-gap DP row advance shared by BWT-SW and ALAE gap regions.

A *frontier* is the sparse representation of one DP matrix row: a dict mapping
1-based query columns ``j`` to ``(M, Ga)`` where ``M = M_X(i, j)`` and
``Ga = Ga(i, j)`` (best score with ``X[i]`` aligned to a gap).  ``Gb`` never
needs storing across rows — it propagates left-to-right *within* a row, which
is why :func:`advance_row` sweeps columns in increasing order (the paper's
Sec. 4.3 makes the same observation when it keeps only one byte for ``Ga`` and
a per-column vector for ``Gb``).

Soundness of the pruning baked in here (mirrored by unit tests):

* cells with ``M <= live`` are dropped entirely — Theorem 2: a non-positive
  anchored prefix is dominated by a later-starting suffix path, and the
  ``live > 0`` variants encode the threshold/Lmax budget arguments;
* ``Ga``/``Gb`` values ``<= 0`` are clamped to ``-inf``: since
  ``M >= Ga, M >= Gb`` and pure gap chains only decay, a non-positive
  auxiliary score can never participate in a live cell later.
"""

from __future__ import annotations

from repro.scoring.scheme import ScoringScheme

#: -infinity sentinel for scores (large enough to survive additions).
NEG = -(10**9)
#: Values below this are treated as absent.
NEG_HALF = NEG // 2

#: A frontier cell: (M, Ga).
Cell = tuple[int, int]
Frontier = dict[int, Cell]


class CostCounter:
    """Accumulates per-cell calculation counts into cost classes.

    ``mode='alae'`` classifies each cell by how many of its three recurrence
    inputs (diagonal, vertical ``Ga``, horizontal ``Gb``) were live — the
    Table 4 x1/x2/x3 classes.  ``mode='bwtsw'`` charges every cell x3, since
    BWT-SW always evaluates all three auxiliary scores.
    """

    __slots__ = ("x1", "x2", "x3", "_bwtsw")

    def __init__(self, mode: str = "alae") -> None:
        self.x1 = 0
        self.x2 = 0
        self.x3 = 0
        self._bwtsw = mode == "bwtsw"

    def cell(self, live_inputs: int) -> None:
        """Record one calculated entry with the given number of live inputs."""
        if self._bwtsw or live_inputs >= 3:
            self.x3 += 1
        elif live_inputs == 2:
            self.x2 += 1
        else:
            self.x1 += 1

    @property
    def total(self) -> int:
        return self.x1 + self.x2 + self.x3


def advance_row(
    frontier: Frontier,
    x_char: str,
    query: str,
    m: int,
    scheme: ScoringScheme,
    live: int,
    counter: CostCounter | None = None,
    dense: bool = False,
) -> Frontier:
    """Compute row ``i`` of the anchored DP from row ``i - 1``.

    Parameters
    ----------
    frontier:
        Sparse row ``i - 1``: ``{j: (M, Ga)}`` with all ``M > 0``.
    x_char:
        The new text character ``X[i]``.
    query:
        The query ``P`` as a plain 0-based string (column ``j`` reads
        ``query[j - 1]``).
    m:
        Query length.
    scheme:
        Scoring scheme.
    live:
        Liveness threshold for this row: cells with ``M <= live`` are
        dropped.  ``0`` gives plain BWT-SW pruning; ALAE passes the Theorem 2
        bound for the row.
    counter:
        Optional :class:`CostCounter` receiving one event per calculated cell.
    dense:
        Emulate the original BWT-SW accounting: every candidate derived from
        a live parent is *computed* (and charged — all three recurrence
        inputs, hence the x3 class) even when its value comes out
        non-positive and is immediately discarded.  ALAE's fork sweep
        (``dense=False``) charges only the cells its fork geometry
        materialises.

    Returns
    -------
    Frontier
        Sparse row ``i`` (possibly empty).
    """
    sa, sb = scheme.sa, scheme.sb
    ss = scheme.ss
    go = scheme.sg + scheme.ss

    dead_candidates = 0
    diag: dict[int, int] = {}
    vert: dict[int, int] = {}
    for j, (m_val, ga_val) in frontier.items():
        # Vertical: Ga(i, j) = max(Ga(i-1, j) + ss, M(i-1, j) + sg + ss).
        g = ga_val + ss
        h = m_val + go
        if h > g:
            g = h
        if g > 0:
            vert[j] = g
        elif dense:
            dead_candidates += 1
        # Diagonal into column j + 1.
        if j < m:
            d = m_val + (sa if query[j] == x_char else sb)
            if d > 0:
                j1 = j + 1
                old = diag.get(j1)
                if old is None or d > old:
                    diag[j1] = d
            elif dense:
                dead_candidates += 1

    if not diag and not vert:
        if counter is not None and dead_candidates:
            if counter._bwtsw:
                counter.x3 += dead_candidates
            else:
                counter.x1 += dead_candidates
        return {}

    cols = sorted(set(diag) | set(vert))
    new: Frontier = {}
    e_val = NEG  # Gb at the column currently being processed
    ci = 0
    j = cols[0]
    ncols = len(cols)
    n1 = n2 = n3 = 0  # local cost-class tallies, flushed once at the end
    diag_get = diag.get
    vert_get = vert.get
    while j <= m:
        if ci < ncols and cols[ci] == j:
            d = diag_get(j, NEG)
            g = vert_get(j, NEG)
            ci += 1
        else:
            # Column exists only through horizontal gap extension.
            if e_val <= live:
                if ci >= ncols:
                    break
                e_val = NEG
                j = cols[ci]
                continue
            d = NEG
            g = NEG

        m_val = d
        if g > m_val:
            m_val = g
        if e_val > m_val:
            m_val = e_val

        if counter is not None:
            inputs = (
                (1 if d > NEG_HALF else 0)
                + (1 if g > NEG_HALF else 0)
                + (1 if e_val > NEG_HALF else 0)
            )
            if inputs >= 3:
                n3 += 1
            elif inputs == 2:
                n2 += 1
            else:
                n1 += 1

        if m_val > live:
            new[j] = (m_val, g if g > NEG_HALF else NEG)
            feed = m_val + go
        else:
            feed = NEG

        # Gb for the next column: max(Gb + ss, M + sg + ss), clamped at 0.
        e_val = e_val + ss if e_val > NEG_HALF else NEG
        if feed > e_val:
            e_val = feed
        if e_val <= 0:
            e_val = NEG

        if ci >= ncols and e_val <= live:
            break
        j += 1
    if counter is not None:
        if counter._bwtsw:
            counter.x3 += n1 + n2 + n3 + dead_candidates
        else:
            counter.x1 += n1 + dead_candidates
            counter.x2 += n2
            counter.x3 += n3
    return new


def dense_seed_row(
    x_char: str,
    char_positions: dict[str, list[int]],
    scheme: ScoringScheme,
    counter: CostCounter | None = None,
    m: int = 0,
) -> Frontier:
    """Row 1 of BWT-SW's matrix for a path starting with ``x_char``.

    Row 0 is all zeros (``M_X(0, j) = 0``), so row 1 is ``delta(X[1], P[j])``
    at every column — positive exactly at the match columns.  BWT-SW computes
    the full dense row, so the counter is charged ``m`` cells.
    """
    if counter is not None:
        for _ in range(m):
            counter.cell(3)
    return {j: (scheme.sa, NEG) for j in char_positions.get(x_char, [])}
