"""Sparse affine-gap DP row advance shared by BWT-SW and ALAE gap regions.

A *frontier* is the sparse representation of one DP matrix row: a dict mapping
1-based query columns ``j`` to ``(M, Ga)`` where ``M = M_X(i, j)`` and
``Ga = Ga(i, j)`` (best score with ``X[i]`` aligned to a gap).  ``Gb`` never
needs storing across rows — it propagates left-to-right *within* a row, which
is why :func:`advance_row` sweeps columns in increasing order (the paper's
Sec. 4.3 makes the same observation when it keeps only one byte for ``Ga`` and
a per-column vector for ``Gb``).

Soundness of the pruning baked in here (mirrored by unit tests):

* cells with ``M <= live`` are dropped entirely — Theorem 2: a non-positive
  anchored prefix is dominated by a later-starting suffix path, and the
  ``live > 0`` variants encode the threshold/Lmax budget arguments;
* ``Ga``/``Gb`` values ``<= 0`` are clamped to ``-inf``: since
  ``M >= Ga, M >= Gb`` and pure gap chains only decay, a non-positive
  auxiliary score can never participate in a live cell later.
"""

from __future__ import annotations

from repro.scoring.scheme import ScoringScheme

#: -infinity sentinel for scores (large enough to survive additions).
NEG = -(10**9)
#: Values below this are treated as absent.
NEG_HALF = NEG // 2

#: A frontier cell: (M, Ga).
Cell = tuple[int, int]
Frontier = dict[int, Cell]


class CostCounter:
    """Accumulates per-cell calculation counts into cost classes.

    ``mode='alae'`` classifies each cell by how many of its three recurrence
    inputs (diagonal, vertical ``Ga``, horizontal ``Gb``) were live — the
    Table 4 x1/x2/x3 classes.  ``mode='bwtsw'`` charges every cell x3, since
    BWT-SW always evaluates all three auxiliary scores.
    """

    __slots__ = ("x1", "x2", "x3", "_bwtsw")

    def __init__(self, mode: str = "alae") -> None:
        self.x1 = 0
        self.x2 = 0
        self.x3 = 0
        self._bwtsw = mode == "bwtsw"

    def cell(self, live_inputs: int) -> None:
        """Record one calculated entry with the given number of live inputs."""
        if self._bwtsw or live_inputs >= 3:
            self.x3 += 1
        elif live_inputs == 2:
            self.x2 += 1
        else:
            self.x1 += 1

    def charge(self, live_inputs: int, count: int) -> None:
        """Record ``count`` identical entries in one call.

        Bulk form of :meth:`cell` for engines that compute whole regions at
        a known cost class — BLAST's ungapped diagonal walk (one input per
        step, x1) and its windowed gapped DP (all three inputs per cell,
        x3) charge entire extensions at once instead of per cell.
        """
        if self._bwtsw or live_inputs >= 3:
            self.x3 += count
        elif live_inputs == 2:
            self.x2 += count
        else:
            self.x1 += count

    @property
    def total(self) -> int:
        return self.x1 + self.x2 + self.x3


def advance_row(
    frontier: Frontier,
    x_char: str,
    query: str,
    m: int,
    scheme: ScoringScheme,
    live: int,
    counter: CostCounter | None = None,
    dense: bool = False,
) -> Frontier:
    """Compute row ``i`` of the anchored DP from row ``i - 1``.

    Parameters
    ----------
    frontier:
        Sparse row ``i - 1``: ``{j: (M, Ga)}`` with all ``M > 0``.
    x_char:
        The new text character ``X[i]``.
    query:
        The query ``P`` as a plain 0-based string (column ``j`` reads
        ``query[j - 1]``).
    m:
        Query length.
    scheme:
        Scoring scheme.
    live:
        Liveness threshold for this row: cells with ``M <= live`` are
        dropped.  ``0`` gives plain BWT-SW pruning; ALAE passes the Theorem 2
        bound for the row.
    counter:
        Optional :class:`CostCounter` receiving one event per calculated cell.
    dense:
        Emulate the original BWT-SW accounting: every candidate derived from
        a live parent is *computed* (and charged — all three recurrence
        inputs, hence the x3 class) even when its value comes out
        non-positive and is immediately discarded.  ALAE's fork sweep
        (``dense=False``) charges only the cells its fork geometry
        materialises.

    Returns
    -------
    Frontier
        Sparse row ``i`` (possibly empty).
    """
    sa, sb = scheme.sa, scheme.sb
    ss = scheme.ss
    go = scheme.sg + scheme.ss

    # Single left-to-right merge over the (ascending) frontier: each source
    # cell contributes its vertical candidate at its own column and at most
    # one pending diagonal candidate at the next column, and ``Gb``
    # propagates as the running ``e_val`` — no intermediate candidate dicts
    # or column sort.  A column is *calculated* (and charged to the cost
    # counter) exactly when it has a positive diagonal or vertical
    # candidate, or a live horizontal score — identical to the classic
    # two-phase formulation (the engine-equivalence and fuzz suites compare
    # the counters bit-for-bit).
    src = list(frontier.items())
    ns = len(src)
    if not ns:
        return {}
    new: Frontier = {}
    dead_candidates = 0
    n1 = n2 = n3 = 0  # local cost-class tallies, flushed once at the end
    e_val = NEG  # Gb at the column currently being processed
    pend_d = NEG  # pending diagonal candidate (for column pend_col)
    pend_col = -1
    si = 0
    j = src[0][0]
    while True:
        if j == pend_col:
            d = pend_d
            pend_d = NEG
        else:
            d = NEG
        if si < ns and src[si][0] == j:
            mv, ga_val = src[si][1]
            si += 1
            # Vertical: Ga(i, j) = max(Ga(i-1, j) + ss, M(i-1, j) + sg + ss).
            g = ga_val + ss
            h = mv + go
            if h > g:
                g = h
            if g <= 0:
                g = NEG
                if dense:
                    dead_candidates += 1
            # Diagonal into column j + 1.
            if j < m:
                dd = mv + (sa if query[j] == x_char else sb)
                if dd > 0:
                    pend_d = dd
                    pend_col = j + 1
                elif dense:
                    dead_candidates += 1
        else:
            g = NEG

        if d == NEG and g == NEG:
            # No candidate here: live horizontal extension keeps the column
            # calculated, otherwise jump to the next candidate column.
            if e_val <= live:
                if pend_d > NEG:
                    nxt = pend_col
                    if si < ns and src[si][0] < nxt:
                        nxt = src[si][0]
                elif si < ns:
                    nxt = src[si][0]
                else:
                    break
                e_val = NEG
                j = nxt
                continue

        m_val = d
        if g > m_val:
            m_val = g
        if e_val > m_val:
            m_val = e_val

        if counter is not None:
            inputs = (
                (1 if d > NEG_HALF else 0)
                + (1 if g > NEG_HALF else 0)
                + (1 if e_val > NEG_HALF else 0)
            )
            if inputs >= 3:
                n3 += 1
            elif inputs == 2:
                n2 += 1
            else:
                n1 += 1

        if m_val > live:
            new[j] = (m_val, g if g > NEG_HALF else NEG)
            feed = m_val + go
        else:
            feed = NEG

        # Gb for the next column: max(Gb + ss, M + sg + ss), clamped at 0.
        e_val = e_val + ss if e_val > NEG_HALF else NEG
        if feed > e_val:
            e_val = feed
        if e_val <= 0:
            e_val = NEG

        if pend_d == NEG and si >= ns and e_val <= live:
            break
        j += 1
        if j > m:
            break
    if counter is not None:
        if counter._bwtsw:
            counter.x3 += n1 + n2 + n3 + dead_candidates
        else:
            counter.x1 += n1 + dead_candidates
            counter.x2 += n2
            counter.x3 += n3
    return new


def dense_seed_row(
    x_char: str,
    char_positions: dict[str, list[int]],
    scheme: ScoringScheme,
    counter: CostCounter | None = None,
    m: int = 0,
) -> Frontier:
    """Row 1 of BWT-SW's matrix for a path starting with ``x_char``.

    Row 0 is all zeros (``M_X(0, j) = 0``), so row 1 is ``delta(X[1], P[j])``
    at every column — positive exactly at the match columns.  BWT-SW computes
    the full dense row, so the counter is charged ``m`` cells.
    """
    if counter is not None:
        for _ in range(m):
            counter.cell(3)
    return {j: (scheme.sa, NEG) for j in char_positions.get(x_char, [])}
