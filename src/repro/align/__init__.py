"""Alignment engines: Smith-Waterman oracle, BASIC (Alg. 1), BWT-SW baseline."""

from repro.align.types import Hit, ResultSet, SearchStats
from repro.align.smith_waterman import smith_waterman_all_hits, smith_waterman_best
from repro.align.basic import basic_search
from repro.align.bwt_sw import BwtSw

__all__ = [
    "Hit",
    "ResultSet",
    "SearchStats",
    "smith_waterman_all_hits",
    "smith_waterman_best",
    "basic_search",
    "BwtSw",
]
