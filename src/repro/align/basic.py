"""The BASIC algorithm (Algorithm 1): trie-path x query dense DP.

For every suffix-trie path ``X`` the full anchored matrix ``M_X`` is computed
(no pruning at all) and every prefix's scores are folded into the accumulator
``A``.  This is the paper's starting point and our smallest oracle — it is
O(n^2 * m) and only run on tiny inputs in tests.
"""

from __future__ import annotations

from repro.align.types import ResultSet
from repro.index.suffix_trie import SuffixTrie, TrieNode
from repro.scoring.scheme import ScoringScheme

_NEG = -(10**9)


def _advance_dense(
    row_m: list[int],
    row_ga: list[int],
    x_char: str,
    query: str,
    scheme: ScoringScheme,
    depth: int,
) -> tuple[list[int], list[int]]:
    """One dense row of the Sec. 2.2 recurrence (columns 0..m)."""
    m = len(query)
    sa, sb = scheme.sa, scheme.sb
    sg, ss = scheme.sg, scheme.ss
    new_m = [0] * (m + 1)
    new_ga = [_NEG] * (m + 1)
    new_m[0] = sg + depth * ss  # M_X(i, 0) = sg + i * ss
    gb = _NEG  # Gb(i, 0) = -inf
    for j in range(1, m + 1):
        ga = max(row_ga[j] + ss, row_m[j] + sg + ss)
        gb = max(gb + ss, new_m[j - 1] + sg + ss)
        diag = row_m[j - 1] + (sa if x_char == query[j - 1] else sb)
        new_m[j] = max(diag, ga, gb)
        new_ga[j] = ga
    return new_m, new_ga


def basic_search(
    text: str,
    query: str,
    scheme: ScoringScheme,
    threshold: int,
) -> ResultSet:
    """All ``A(i, j) >= threshold`` cells via the BASIC algorithm."""
    results = ResultSet()
    if not text or not query or threshold <= 0:
        return results
    m = len(query)
    trie = SuffixTrie(text)

    root_m = [0] * (m + 1)
    root_ga = [_NEG] * (m + 1)

    # Preorder walk carrying the dense DP rows down the trie.
    stack: list[tuple[str, TrieNode, list[int], list[int]]] = [
        (c, node, root_m, root_ga) for c, node in sorted(trie.root.children.items())
    ]
    while stack:
        char, node, prev_m, prev_ga = stack.pop()
        row_m, row_ga = _advance_dense(prev_m, prev_ga, char, query, scheme, node.depth)
        for j in range(1, m + 1):
            if row_m[j] >= threshold:
                for end in node.ends:
                    results.add(end, j, row_m[j], end - node.depth + 1)
        for c, child in sorted(node.children.items()):
            stack.append((c, child, row_m, row_ga))
    return results
