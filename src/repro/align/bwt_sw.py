"""BWT-SW (Lam et al. 2008): the exact baseline ALAE improves on (Sec. 2.4).

BWT-SW traverses the conceptual suffix trie of ``T`` in preorder (emulated
with the compressed suffix array of the reversed text, Sec. 5) and runs the
anchored affine-gap DP of Sec. 2.2 along every path, pruning only on
*positivity*: a cell whose anchored score is ``<= 0`` is dominated by a
later-starting suffix path and is discarded; a path whose whole row dies is
abandoned.  Unlike ALAE it applies no length / score-threshold / q-prefix /
domination filtering and no reuse, and it evaluates all three recurrence
inputs for every entry — which is why Table 4 charges its entries x3.
"""

from __future__ import annotations

import time

from repro.align.recurrences import CostCounter, advance_row, dense_seed_row
from repro.align.types import ResultSet, SearchResult, SearchStats
from repro.alphabet import DNA, Alphabet
from repro.errors import SearchError
from repro.index.csa import EMPTY_RANGE, ReversedTextIndex
from repro.scoring.evalue import resolve_threshold
from repro.scoring.scheme import DEFAULT_SCHEME, ScoringScheme

# Deprecated import location: ``resolve_threshold`` lives in
# :mod:`repro.scoring.evalue` (threshold resolution is scoring policy, not a
# property of this engine).  The re-export keeps external callers working.
__all__ = ["BwtSw", "resolve_threshold"]


class BwtSw:
    """Exact local-alignment search over a text with BWT-SW semantics.

    Parameters mirror :class:`repro.core.alae.ALAE` so the two engines are
    drop-in comparable.  ``strict`` enforces the original tool's usability
    constraint ``|sb| >= 3 |sa|`` (Sec. 2.4); the engine itself is exact for
    any scheme, so the check is optional.
    """

    def __init__(
        self,
        text: str,
        alphabet: Alphabet = DNA,
        scheme: ScoringScheme = DEFAULT_SCHEME,
        strict: bool = False,
        occ_block: int = 128,
        sa_sample: int = 16,
    ) -> None:
        if strict and not scheme.supports_bwt_sw():
            raise SearchError(
                f"BWT-SW requires |sb| >= 3|sa|; scheme {scheme} violates it"
            )
        self.alphabet = alphabet
        self.scheme = scheme
        self.text = text
        self.csa = ReversedTextIndex(
            text, alphabet, occ_block=occ_block, sa_sample=sa_sample
        )

    def search(
        self,
        query: str,
        threshold: int | None = None,
        e_value: float | None = None,
    ) -> SearchResult:
        """Find every ``A(i, j) >= H`` cell (same answer set as Smith-Waterman)."""
        self.alphabet.validate(query)
        scheme = self.scheme
        m, n = len(query), self.csa.n
        h_thr = resolve_threshold(
            threshold, e_value, scheme, self.alphabet.size, m, n
        )

        started = time.perf_counter()
        counter = CostCounter("bwtsw")
        stats = SearchStats()
        results = ResultSet()

        char_positions: dict[str, list[int]] = {c: [] for c in self.alphabet.chars}
        for j, c in enumerate(query, start=1):
            char_positions[c].append(j)

        # Positive scores cannot outlive this depth (all-match then all-gap).
        max_depth = m + max(0, (scheme.sa * m + scheme.sg) // (-scheme.ss)) + 1

        stack: list[tuple[tuple[int, int], int, dict]] = []
        for c in self.alphabet.chars:
            rng = self.csa.extend(self.csa.root(), c)
            if rng == EMPTY_RANGE:
                continue
            frontier = dense_seed_row(c, char_positions, scheme, counter, m)
            if not frontier:
                continue
            self._record(results, rng, 1, frontier, h_thr)
            stack.append((rng, 1, frontier))

        char_codes = self.csa.char_codes()
        extend_code = self.csa.extend_code
        while stack:
            rng, depth, frontier = stack.pop()
            stats.nodes_visited += 1
            new_depth = depth + 1
            if new_depth > max_depth:
                continue
            for c, code in char_codes:
                rng2 = extend_code(rng, code)
                if rng2 == EMPTY_RANGE:
                    continue
                fr2 = advance_row(
                    frontier, c, query, m, scheme, live=0, counter=counter,
                    dense=True,
                )
                if not fr2:
                    continue
                self._record(results, rng2, new_depth, fr2, h_thr)
                stack.append((rng2, new_depth, fr2))

        stats.calculated_x3 = counter.x3
        stats.calculated_x2 = counter.x2
        stats.calculated_x1 = counter.x1
        stats.elapsed_seconds = time.perf_counter() - started
        return SearchResult(hits=results, stats=stats, threshold=h_thr)

    def _record(
        self,
        results: ResultSet,
        rng: tuple[int, int],
        depth: int,
        frontier: dict,
        h_thr: int,
    ) -> None:
        """Fold every frontier cell with score >= H into the accumulator."""
        ends: list[int] | None = None
        for j, (m_val, _ga) in frontier.items():
            if m_val >= h_thr:
                if ends is None:
                    ends = self.csa.end_positions(rng)
                for end in ends:
                    results.add(end, j, m_val, end - depth + 1)
