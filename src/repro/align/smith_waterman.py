"""Smith-Waterman local alignment with affine gaps (Sec. 2.4 baseline).

``smith_waterman_all_hits`` computes the full ``H(i, j)`` matrix semantics of
the paper's local-alignment problem — ``H(i, j) = max(A(i, j), 0)`` — and
returns every cell with score ``>= threshold``.  It is the ground-truth
oracle for ALAE/BWT-SW equivalence tests and the "Smith-Waterman" row of the
experiments.

Vectorisation: the matrix is swept one *query* row at a time over numpy
vectors of text length.  The vertical gap recurrence ``F`` depends only on
the previous row, so it vectorises directly.  The horizontal recurrence
``E(i, j) = max(E(i, j-1) + ss, H(i, j-1) + sg + ss)`` is sequential, but
within a row only gap-opens from diagonal/vertical scores can matter
(chaining two horizontal gaps costs an extra ``sg`` versus one longer gap,
and opening from a 0-restart is negative), so

    E(i, j) = max_{k < j} (A(i, k) + sg + ss * (j - k))
            = ss * j + (sg) + running-max of (A(i, k) - ss * k)

which is one ``np.maximum.accumulate`` — the classic prefix-max scan.

``align_pair`` is a small traceback DP used to materialise the operations of
one reported hit (windowed, so it stays cheap even for large texts).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.align.types import ResultSet
from repro.scoring.scheme import ScoringScheme

_NEG = np.int64(-(10**9))


def smith_waterman_all_hits(
    text: str,
    query: str,
    scheme: ScoringScheme,
    threshold: int,
) -> ResultSet:
    """All cells ``(t_end, p_end)`` with local-alignment score >= threshold.

    Positions in the returned :class:`ResultSet` are 1-based; ``t_start`` is
    not tracked (0) — use :func:`align_pair` to recover full alignments.
    """
    n, m = len(text), len(query)
    results = ResultSet()
    if n == 0 or m == 0 or threshold <= 0:
        return results

    sa, sb = scheme.sa, scheme.sb
    ss, go = scheme.ss, scheme.sg + scheme.ss

    t_codes = np.frombuffer(text.encode("ascii"), dtype=np.uint8)
    idx = np.arange(1, n + 1, dtype=np.int64)

    h_prev = np.zeros(n + 1, dtype=np.int64)  # H(i-1, 0..n)
    f_prev = np.full(n + 1, _NEG, dtype=np.int64)  # F(i-1, 0..n)

    for i in range(1, m + 1):
        q_code = ord(query[i - 1])
        delta = np.where(t_codes == q_code, sa, sb).astype(np.int64)

        # Vertical gaps: F(i, j) = max(F(i-1, j) + ss, H(i-1, j) + go).
        f_row = np.maximum(f_prev + ss, h_prev + go)

        # Diagonal + vertical (no horizontal yet).
        a_row = np.empty(n + 1, dtype=np.int64)
        a_row[0] = _NEG
        a_row[1:] = np.maximum(h_prev[:-1] + delta, f_row[1:])

        # Horizontal gaps via prefix-max scan (see module docstring).
        b = a_row[1:] - ss * idx
        prefix = np.maximum.accumulate(b)
        e_row = np.full(n + 1, _NEG, dtype=np.int64)
        e_row[2:] = prefix[:-1] + go - ss + ss * idx[1:]

        h_row = np.maximum(np.maximum(a_row, e_row), 0)
        h_row[0] = 0

        hit_cols = np.nonzero(h_row[1:] >= threshold)[0]
        for j0 in hit_cols:
            results.add(int(j0) + 1, i, int(h_row[j0 + 1]))

        h_prev = h_row
        f_prev = f_row
    return results


def smith_waterman_best(text: str, query: str, scheme: ScoringScheme) -> int:
    """The single best local-alignment score (``sim`` over all substrings)."""
    n, m = len(text), len(query)
    if n == 0 or m == 0:
        return 0
    sa, sb = scheme.sa, scheme.sb
    ss, go = scheme.ss, scheme.sg + scheme.ss
    t_codes = np.frombuffer(text.encode("ascii"), dtype=np.uint8)
    idx = np.arange(1, n + 1, dtype=np.int64)
    h_prev = np.zeros(n + 1, dtype=np.int64)
    f_prev = np.full(n + 1, _NEG, dtype=np.int64)
    best = 0
    for i in range(1, m + 1):
        delta = np.where(t_codes == ord(query[i - 1]), sa, sb).astype(np.int64)
        f_row = np.maximum(f_prev + ss, h_prev + go)
        a_row = np.empty(n + 1, dtype=np.int64)
        a_row[0] = _NEG
        a_row[1:] = np.maximum(h_prev[:-1] + delta, f_row[1:])
        b = a_row[1:] - ss * idx
        prefix = np.maximum.accumulate(b)
        e_row = np.full(n + 1, _NEG, dtype=np.int64)
        e_row[2:] = prefix[:-1] + go - ss + ss * idx[1:]
        h_row = np.maximum(np.maximum(a_row, e_row), 0)
        h_row[0] = 0
        best = max(best, int(h_row.max()))
        h_prev, f_prev = h_row, f_row
    return best


@dataclass(frozen=True)
class PairwiseAlignment:
    """A fully materialised alignment between two (sub)strings.

    ``ops`` is a string over ``M`` (match), ``X`` (mismatch), ``I`` (gap in
    the first sequence / insertion of a second-sequence char), ``D`` (gap in
    the second sequence).
    """

    score: int
    s1_start: int
    s1_end: int
    s2_start: int
    s2_end: int
    ops: str

    def identity(self) -> float:
        """Fraction of alignment columns that are matches."""
        return self.ops.count("M") / len(self.ops) if self.ops else 0.0


def align_pair(s1: str, s2: str, scheme: ScoringScheme) -> PairwiseAlignment:
    """Best local alignment between two strings with full traceback.

    Plain O(|s1| * |s2|) DP with three matrices — intended for short windows
    (materialising one hit), not whole databases.
    """
    n1, n2 = len(s1), len(s2)
    sa, sb = scheme.sa, scheme.sb
    ss, go = scheme.ss, scheme.sg + scheme.ss
    neg = -(10**9)

    h = [[0] * (n2 + 1) for _ in range(n1 + 1)]
    f = [[neg] * (n2 + 1) for _ in range(n1 + 1)]  # gap in s2 (consume s1)
    e = [[neg] * (n2 + 1) for _ in range(n1 + 1)]  # gap in s1 (consume s2)
    best, bi, bj = 0, 0, 0
    for i in range(1, n1 + 1):
        for j in range(1, n2 + 1):
            f[i][j] = max(f[i - 1][j] + ss, h[i - 1][j] + go)
            e[i][j] = max(e[i][j - 1] + ss, h[i][j - 1] + go)
            d = h[i - 1][j - 1] + (sa if s1[i - 1] == s2[j - 1] else sb)
            val = max(0, d, f[i][j], e[i][j])
            h[i][j] = val
            if val > best:
                best, bi, bj = val, i, j
    if best == 0:
        return PairwiseAlignment(0, 0, 0, 0, 0, "")

    # Traceback from (bi, bj) until a 0 cell in H-state.
    ops: list[str] = []
    i, j, state = bi, bj, "h"
    while i > 0 and j > 0:
        if state == "h":
            if h[i][j] == 0:
                break
            d = h[i - 1][j - 1] + (sa if s1[i - 1] == s2[j - 1] else sb)
            if h[i][j] == d:
                ops.append("M" if s1[i - 1] == s2[j - 1] else "X")
                i, j = i - 1, j - 1
            elif h[i][j] == f[i][j]:
                state = "f"
            else:
                state = "e"
        elif state == "f":
            ops.append("D")
            if f[i][j] == h[i - 1][j] + go:
                state = "h"
            i -= 1
        else:
            ops.append("I")
            if e[i][j] == h[i][j - 1] + go:
                state = "h"
            j -= 1
    ops.reverse()
    return PairwiseAlignment(
        score=best,
        s1_start=i + 1,
        s1_end=bi,
        s2_start=j + 1,
        s2_end=bj,
        ops="".join(ops),
    )
