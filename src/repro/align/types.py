"""Result and statistics types shared by every alignment engine.

The paper's answer object is the accumulator ``A(i, j)`` (Table 1): for each
end-position pair (``i`` in the text, ``j`` in the query) the best alignment
score of substrings ending there, together with the text start position of
that best alignment.  :class:`ResultSet` implements exactly this max-dedup
semantics, so ALAE / BWT-SW / BASIC / Smith-Waterman results can be compared
for equality in tests and benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

#: Sentinel ``t_start`` value meaning "the producing engine did not track
#: the alignment's text start".  Positions are 1-based, so 0 can never be a
#: real start; consumers must compare against this constant explicitly
#: instead of relying on integer falsiness.
START_UNKNOWN = 0


@dataclass(frozen=True, order=True)
class Hit:
    """One local-alignment answer: ``A(t_end, p_end)`` at or above threshold.

    Positions are 1-based inclusive.  ``t_start`` is the text start of the
    best-scoring alignment ending at ``(t_end, p_end)`` (``A(i, j).pos`` in
    the paper); engines that do not track starts (the vectorised
    Smith-Waterman sweep) leave it at :data:`START_UNKNOWN`.
    """

    t_end: int
    p_end: int
    score: int
    t_start: int = 0

    def key(self) -> tuple[int, int]:
        """The ``A`` cell this hit occupies."""
        return (self.t_end, self.p_end)


class ResultSet:
    """Max-dedup accumulator over ``(t_end, p_end)`` cells."""

    def __init__(self) -> None:
        self._cells: dict[tuple[int, int], tuple[int, int]] = {}

    def add(self, t_end: int, p_end: int, score: int, t_start: int = 0) -> None:
        """Record a candidate alignment, keeping the best score per cell.

        Ties prefer the smaller (earlier) text start for determinism.
        """
        key = (t_end, p_end)
        cur = self._cells.get(key)
        if cur is None or score > cur[0] or (score == cur[0] and t_start < cur[1]):
            self._cells[key] = (score, t_start)

    def add_batch(self, t_ends, p_end: int, score: int, t_starts) -> None:
        """Record one ``(p_end, score)`` cell at many text end positions.

        ``t_ends``/``t_starts`` are parallel integer sequences — ndarrays or
        plain lists, one entry per located occurrence; the max-dedup and
        tie-break semantics match :meth:`add` exactly.  Values are
        materialised as plain Python ints so downstream :class:`Hit` fields
        never hold numpy scalars.
        """
        cells = self._cells
        p_end = int(p_end)
        score = int(score)
        if not isinstance(t_ends, list):
            t_ends = t_ends.tolist()
        if not isinstance(t_starts, list):
            t_starts = t_starts.tolist()
        for t_end, t_start in zip(t_ends, t_starts):
            key = (t_end, p_end)
            cur = cells.get(key)
            if (
                cur is None
                or score > cur[0]
                or (score == cur[0] and t_start < cur[1])
            ):
                cells[key] = (score, t_start)

    def merge(self, other: "ResultSet") -> None:
        """Fold another result set into this one (max per cell)."""
        for (t_end, p_end), (score, t_start) in other._cells.items():
            self.add(t_end, p_end, score, t_start)

    def hits(self) -> list[Hit]:
        """All hits, sorted by (t_end, p_end)."""
        return [
            Hit(t_end=te, p_end=pe, score=sc, t_start=ts)
            for (te, pe), (sc, ts) in sorted(self._cells.items())
        ]

    def score_of(self, t_end: int, p_end: int) -> int | None:
        """Best score recorded at a cell, or ``None``."""
        cell = self._cells.get((t_end, p_end))
        return cell[0] if cell else None

    def as_score_set(self) -> set[tuple[int, int, int]]:
        """``{(t_end, p_end, score)}`` — the engine-equivalence comparison key."""
        return {
            (te, pe, sc) for (te, pe), (sc, _ts) in self._cells.items()
        }

    def best(self) -> Hit | None:
        """The single highest-scoring hit (ties: smallest cell)."""
        if not self._cells:
            return None
        (te, pe), (sc, ts) = max(
            self._cells.items(), key=lambda kv: (kv[1][0], (-kv[0][0], -kv[0][1]))
        )
        return Hit(t_end=te, p_end=pe, score=sc, t_start=ts)

    def __len__(self) -> int:
        return len(self._cells)

    def __iter__(self):
        return iter(self.hits())

    def __contains__(self, key: tuple[int, int]) -> bool:
        return key in self._cells


@dataclass
class SearchStats:
    """Entry accounting for one search (Sec. 7.2 / Table 4 semantics).

    * ``calculated_x1/2/3`` — entries computed with 1, 2 or 3 live recurrence
      inputs (NGR cells via Eq. 3 are x1; full gap-region cells are x3).
    * ``reused`` — entries whose scores were copied from a previous fork
      (Sec. 4); ``accessed = calculated + reused`` (Eq. 6).
    * fork/gram counters expose what each filter pruned.
    """

    calculated_x1: int = 0
    calculated_x2: int = 0
    calculated_x3: int = 0
    reused: int = 0
    emr_assigned: int = 0
    forks_seeded: int = 0
    forks_skipped_domination: int = 0
    forks_skipped_global: int = 0
    grams_absent_in_text: int = 0
    nodes_visited: int = 0
    elapsed_seconds: float = 0.0
    extra: dict = field(default_factory=dict)
    #: Named wall-time buckets (``engine``, ``locate``, ``merge``,
    #: ``shard<i>``, ...) — see :mod:`repro.obs.spans`.  Summed on merge.
    spans: dict = field(default_factory=dict)

    @property
    def calculated(self) -> int:
        """Total calculated entries regardless of cost class."""
        return self.calculated_x1 + self.calculated_x2 + self.calculated_x3

    @property
    def accessed(self) -> int:
        """Calculated + reused entries (denominator of Eq. 6)."""
        return self.calculated + self.reused

    @property
    def computation_cost(self) -> int:
        """Cost-weighted entry count (Table 4's rightmost column)."""
        return (
            self.calculated_x1 + 2 * self.calculated_x2 + 3 * self.calculated_x3
        )

    @property
    def reusing_ratio(self) -> float:
        """Eq. 6: reused / accessed (0 when nothing was accessed)."""
        return self.reused / self.accessed if self.accessed else 0.0

    def filtering_ratio(self, baseline_calculated: int) -> float:
        """Eq. 5 against a baseline (BWT-SW) calculated-entry count."""
        if baseline_calculated <= 0:
            return 0.0
        filtered = max(0, baseline_calculated - self.calculated)
        return filtered / baseline_calculated

    def merge(self, other: "SearchStats") -> None:
        """Fold another search's counters into this one.

        ``elapsed_seconds`` accumulates per-search CPU-ish time, so after a
        parallel batch it reflects total work, not wall clock (the batch
        report keeps wall clock separately).  Numeric ``extra`` entries are
        summed; anything else is last-writer-wins.
        """
        self.calculated_x1 += other.calculated_x1
        self.calculated_x2 += other.calculated_x2
        self.calculated_x3 += other.calculated_x3
        self.reused += other.reused
        self.emr_assigned += other.emr_assigned
        self.forks_seeded += other.forks_seeded
        self.forks_skipped_domination += other.forks_skipped_domination
        self.forks_skipped_global += other.forks_skipped_global
        self.grams_absent_in_text += other.grams_absent_in_text
        self.nodes_visited += other.nodes_visited
        self.elapsed_seconds += other.elapsed_seconds
        for key, value in other.extra.items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                self.extra[key] = self.extra.get(key, 0) + value
            else:
                self.extra[key] = value
        for name, seconds in other.spans.items():
            self.spans[name] = self.spans.get(name, 0.0) + seconds

    @classmethod
    def aggregate(cls, parts: "Iterable[SearchStats]") -> "SearchStats":
        """Sum many per-query stats into one batch-level accounting."""
        total = cls()
        for part in parts:
            total.merge(part)
        return total


@dataclass
class SearchResult:
    """Hits plus statistics plus the resolved threshold of one search."""

    hits: ResultSet
    stats: SearchStats
    threshold: int
