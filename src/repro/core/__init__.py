"""The paper's primary contribution: the ALAE search engine and its filters."""

from repro.core.alae import ALAE
from repro.core.analysis import (
    EntryBound,
    entry_bound,
    bwt_sw_bound,
    paper_bound_extremes,
)
from repro.core.domination import DominationIndex
from repro.core.cptree import CommonPrefixTree, construct_cp_tree

__all__ = [
    "ALAE",
    "DominationIndex",
    "CommonPrefixTree",
    "construct_cp_tree",
    "EntryBound",
    "entry_bound",
    "bwt_sw_bound",
    "paper_bound_extremes",
]
