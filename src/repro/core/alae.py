"""The ALAE search engine (the paper's primary contribution).

Pipeline per search (query ``P``, threshold ``H`` or E-value):

1. resolve ``H`` (Karlin-Altschul, Sec. 7) and build the
   :class:`~repro.core.filters.FilterPlan` (q, min row, Lmax, FGOE bound);
2. build the q-gram inverted index of ``P`` (Sec. 3.1.3);
3. for every distinct q-gram ``g`` of ``P``:
   a. drop fork columns killed by q-prefix domination (Sec. 3.2.2) and —
      optionally — by the online bit matrix ``G`` (Sec. 3.2.1);
   b. locate ``g`` in the text via the compressed suffix array of the
      reversed text (Sec. 5); a miss prunes the entire conceptual matrix
      (whole-matrix prefix filtering);
   c. seed one fork per surviving column at row ``q`` (EMR scores are
      assigned, not calculated) and traverse the suffix-trie subtree under
      ``g``, advancing NGR forks along their diagonals (Eq. 3) and gap-phase
      forks through the sparse affine DP, with the Sec. 4 reuse engine
      sharing identical fork advances;
4. alignments shorter than ``q`` (possible only when ``H < q * sa``) are
   all-match by Theorem 3's argument and are enumerated directly.

Every cell with score ``>= H`` lands in the max-dedup accumulator ``A``; the
result equals Smith-Waterman's ``{(i, j): H(i, j) >= H}`` exactly (tested).
"""

from __future__ import annotations

import time
from collections import defaultdict

import numpy as np

from repro.scoring.evalue import resolve_threshold
from repro.align.recurrences import CostCounter, advance_row
from repro.align.smith_waterman import PairwiseAlignment, align_pair
from repro.align.types import (
    START_UNKNOWN,
    Hit,
    ResultSet,
    SearchResult,
    SearchStats,
)
from repro.alphabet import DNA, Alphabet
from repro.core.domination import DominationIndex
from repro.core.filters import FilterPlan, make_filter_plan
from repro.core.forks import (
    GAP,
    NGR,
    Fork,
    fgoe_row_frontier,
    seed_fork,
    split_cohort,
)
from repro.core.global_filter import GlobalBitMatrix
from repro.core.reuse import ReuseEngine
from repro.index.csa import EMPTY_RANGE, ReversedTextIndex
from repro.index.qgram import QGramIndex
from repro.scoring.scheme import DEFAULT_SCHEME, ScoringScheme

#: Shared empty frontier for NGR forks (never mutated).
_EMPTY_DICT: dict = {}


class ALAE:
    """Exact local-alignment search with filtering and reuse.

    Parameters
    ----------
    text:
        The database text ``T`` (concatenate collections beforehand, e.g.
        with :class:`repro.io.database.SequenceDatabase`).
    alphabet, scheme:
        Alphabet and affine-gap scoring scheme.
    use_length_filter, use_score_filter, use_domination, use_reuse,
    use_global_bitmask:
        Toggles for each technique (all exact; defaults mirror the paper's
        configuration — the bitmap filter is off, Sec. 3.2.2 replacing it).
    use_vectorized:
        When ``True`` (default) the suffix-trie traversal runs on the
        code-point representation: NGR fork cohorts advance as parallel
        ``(pip, score)`` sequences (numpy arrays past the cohort cutoff),
        child existence is read off the BWT before any rank query is paid,
        unary chains are consumed straight from the text with vectorized
        diagonal runs, and hit emission uses the batched locate.
        ``False`` keeps the per-fork scalar reference traversal; both
        return bit-identical results and statistics (the differential
        fuzz suite asserts it).  See README "Engine internals".
    """

    def __init__(
        self,
        text: str,
        alphabet: Alphabet = DNA,
        scheme: ScoringScheme = DEFAULT_SCHEME,
        *,
        use_length_filter: bool = True,
        use_score_filter: bool = True,
        use_domination: bool = True,
        use_reuse: bool = True,
        use_global_bitmask: bool = False,
        use_vectorized: bool = True,
        occ_block: int = 128,
        sa_sample: int = 16,
    ) -> None:
        alphabet.validate(text)
        self.text = text
        self.alphabet = alphabet
        self.scheme = scheme
        self.use_length_filter = use_length_filter
        self.use_score_filter = use_score_filter
        self.use_domination = use_domination
        self.use_reuse = use_reuse
        self.use_global_bitmask = use_global_bitmask
        self.use_vectorized = use_vectorized
        self.csa = ReversedTextIndex(
            text, alphabet, occ_block=occ_block, sa_sample=sa_sample
        )
        # code -> character for the vectorized traversal (code 0 = sentinel).
        self._code_chars = [""] + list(alphabet.chars)
        self._dom_cache: dict[int, DominationIndex] = {}

    @classmethod
    def from_prebuilt(
        cls,
        csa: ReversedTextIndex,
        *,
        scheme: ScoringScheme = DEFAULT_SCHEME,
        domination: DominationIndex | None = None,
        use_length_filter: bool = True,
        use_score_filter: bool = True,
        use_domination: bool = True,
        use_reuse: bool = True,
        use_global_bitmask: bool = False,
        use_vectorized: bool = True,
    ) -> "ALAE":
        """Assemble an engine around already-built indexes (store fast path).

        Skips text validation and all index construction: ``csa`` supplies
        the text, alphabet and reversed-text FM-index, and ``domination``
        (when given) pre-seeds the dominate-index cache for its own ``q``.
        Any other prefix length requested later is still built on demand
        from the text.
        """
        engine = cls.__new__(cls)
        engine.text = csa.text
        engine.alphabet = csa.alphabet
        engine.scheme = scheme
        engine.use_length_filter = use_length_filter
        engine.use_score_filter = use_score_filter
        engine.use_domination = use_domination
        engine.use_reuse = use_reuse
        engine.use_global_bitmask = use_global_bitmask
        engine.use_vectorized = use_vectorized
        engine.csa = csa
        engine._code_chars = [""] + list(csa.alphabet.chars)
        engine._dom_cache = {}
        if domination is not None:
            engine._dom_cache[domination.q] = domination
        return engine

    # ---------------------------------------------------------------- index
    def domination_index(self, q: int | None = None) -> DominationIndex:
        """The (cached) offline dominate index for prefix length ``q``."""
        if q is None:
            q = self.scheme.q
        if q not in self._dom_cache:
            self._dom_cache[q] = DominationIndex(self.text, q)
        return self._dom_cache[q]

    def index_size_bytes(self) -> dict[str, int]:
        """Fig. 11 accounting: BWT index + dominate index sizes.

        ``*_actual`` / ``actual_total`` report the bytes the same structures
        occupy when serialized by ``repro.store`` — the paper's model next
        to the on-disk truth.
        """
        bwt = self.csa.size_bytes()
        dom = self.domination_index() if self.use_domination else None
        dom_model = dom.size_bytes() if dom is not None else 0
        dom_actual = dom.actual_size_bytes() if dom is not None else 0
        bwt_actual = bwt["actual"]["total"]
        return {
            "bwt_index": bwt["total"],
            "dominate_index": dom_model,
            "total": bwt["total"] + dom_model,
            "bwt_index_actual": bwt_actual,
            "dominate_index_actual": dom_actual,
            "actual_total": bwt_actual + dom_actual,
        }

    # --------------------------------------------------------------- search
    def search(
        self,
        query: str,
        threshold: int | None = None,
        e_value: float | None = None,
    ) -> SearchResult:
        """Find every end-position pair with alignment score ``>= H``."""
        self.alphabet.validate(query)
        scheme = self.scheme
        m, n = len(query), self.csa.n
        h_thr = resolve_threshold(
            threshold, e_value, scheme, self.alphabet.size, m, n
        )
        plan = make_filter_plan(scheme, m, h_thr)

        started = time.perf_counter()
        counter = CostCounter("alae")
        stats = SearchStats()
        results = ResultSet()
        reuse = ReuseEngine(self.use_reuse)
        dom = self.domination_index(plan.q) if self.use_domination else None
        gbm = GlobalBitMatrix(n, m) if self.use_global_bitmask else None

        if plan.min_row < plan.q and m >= plan.min_row:
            self._emit_short_matches(query, plan, results, stats)

        if m >= plan.q:
            vec_state = None
            if self.use_vectorized:
                # Per-search context of the vectorized traversal: query code
                # points (array + list form) and the depth-only liveness
                # thresholds for every admissible row.
                qcodes = self.csa.query_codes(query)
                vec_state = (
                    qcodes,
                    qcodes.tolist(),
                    [
                        plan.row_live_threshold(i, self.use_score_filter)
                        for i in range(plan.lmax + 2)
                    ],
                )
            qidx = QGramIndex(query, plan.q)
            for gram in qidx.grams():
                self._search_gram(
                    gram, qidx, query, vec_state, plan, h_thr, results, stats,
                    counter, reuse, dom, gbm,
                )

        stats.calculated_x1 = counter.x1
        stats.calculated_x2 = counter.x2
        stats.calculated_x3 = counter.x3
        stats.reused = reuse.reused_cells
        stats.extra["memo_hits"] = reuse.memo_hits
        stats.extra["memo_misses"] = reuse.memo_misses
        if gbm is not None:
            stats.extra["bitmask_cells"] = gbm.marked_cells()
        stats.elapsed_seconds = time.perf_counter() - started
        return SearchResult(hits=results, stats=stats, threshold=h_thr)

    # ------------------------------------------------------------ internals
    def _emit_short_matches(
        self, query: str, plan: FilterPlan, results: ResultSet, stats: SearchStats
    ) -> None:
        """Alignments shorter than q: all-match pairs (see module docstring)."""
        for length in range(plan.min_row, min(plan.q, len(query) + 1)):
            score = length * self.scheme.sa
            grams: dict[str, list[int]] = defaultdict(list)
            for start0 in range(len(query) - length + 1):
                grams[query[start0 : start0 + length]].append(start0 + 1)
            for gram, cols in grams.items():
                rng = self.csa.range_of(gram)
                if rng == EMPTY_RANGE:
                    continue
                ends = self.csa.end_positions(rng)
                stats.emr_assigned += len(ends) * len(cols)
                for j in cols:
                    p_end = j + length - 1
                    for end in ends:
                        results.add(end, p_end, score, end - length + 1)

    def _search_gram(
        self,
        gram: str,
        qidx: QGramIndex,
        query: str,
        vec_state: tuple | None,
        plan: FilterPlan,
        h_thr: int,
        results: ResultSet,
        stats: SearchStats,
        counter: CostCounter,
        reuse: ReuseEngine,
        dom: DominationIndex | None,
        gbm: GlobalBitMatrix | None,
    ) -> None:
        """Seed and traverse all forks of one distinct q-gram of the query."""
        q = plan.q
        cols = qidx.positions(gram)

        if dom is not None:
            pred = dom.unique_predecessor(gram)
            if pred is not None:
                kept = [
                    j for j in cols if j == 1 or query[j - 2 : j - 2 + q] != pred
                ]
                stats.forks_skipped_domination += len(cols) - len(kept)
                cols = kept
        if not cols:
            return

        rng = self.csa.range_of(gram)
        if rng == EMPTY_RANGE:
            stats.grams_absent_in_text += 1
            return

        seed_ends: list[int] | None = None
        if gbm is not None:
            seed_ends = self.csa.end_positions(rng)
            starts = [e - q + 1 for e in seed_ends]
            kept = [j for j in cols if not gbm.all_marked(starts, j)]
            stats.forks_skipped_global += len(cols) - len(kept)
            cols = kept
            if not cols:
                return

        seed_score = q * self.scheme.sa
        live_seed = plan.row_live_threshold(q, self.use_score_filter)
        if seed_score <= live_seed:
            return  # every fork of this gram is dead on arrival

        forks = [
            seed_fork(j, plan, self.scheme, live_seed, counter) for j in cols
        ]
        stats.forks_seeded += len(forks)
        stats.emr_assigned += q * len(forks)

        ends_cache = seed_ends

        def seed_ends_lazy() -> list[int]:
            nonlocal ends_cache
            if ends_cache is None:
                ends_cache = self.csa.end_positions(rng)
            return ends_cache

        for fork in forks:
            cells = (
                fork.frontier.items()
                if fork.phase == GAP
                else [(fork.pip + q - 1, (seed_score, 0))]
            )
            for col, (m_val, _ga) in cells:
                if m_val >= h_thr:
                    for end in seed_ends_lazy():
                        results.add(end, col, m_val, end - q + 1)
                if gbm is not None and m_val >= self.scheme.sa:
                    gbm.mark(seed_ends_lazy(), col)

        if vec_state is not None:
            self._traverse_vectorized(
                rng, forks, query, vec_state, plan, h_thr, results, stats,
                counter, reuse, gbm,
            )
        else:
            self._traverse_scalar(
                rng, forks, query, plan, h_thr, results, stats, counter,
                reuse, gbm,
            )

    def _traverse_scalar(
        self,
        rng: tuple[int, int],
        forks: list[Fork],
        query: str,
        plan: FilterPlan,
        h_thr: int,
        results: ResultSet,
        stats: SearchStats,
        counter: CostCounter,
        reuse: ReuseEngine,
        gbm: GlobalBitMatrix | None,
    ) -> None:
        """Per-fork reference traversal (the pre-vectorization hot path)."""
        char_codes = self.csa.char_codes()
        extend_code = self.csa.extend_code
        stack: list[tuple[tuple[int, int], int, list[Fork]]] = [
            (rng, plan.q, forks)
        ]
        while stack:
            node_rng, depth, node_forks = stack.pop()
            stats.nodes_visited += 1
            new_depth = depth + 1
            if self.use_length_filter and new_depth > plan.lmax:
                continue
            for char, code in char_codes:
                child_rng = extend_code(node_rng, code)
                if child_rng == EMPTY_RANGE:
                    continue
                survivors = self._advance_forks(
                    node_forks, char, query, new_depth, plan, h_thr,
                    counter, reuse, child_rng, results, stats, gbm,
                )
                if survivors:
                    stack.append((child_rng, new_depth, survivors))

    #: Cohorts below this size advance with plain Python ints: the numpy
    #: per-call overhead exceeds the work at 1-7 forks (measured), and the
    #: scalar arm of the advance runs on the same code-point representation.
    _VECTOR_MIN_FORKS = 8
    #: A unary chain must have survived this many rows before the engine
    #: pays one locate to switch to text mode (free when the chain happens
    #: to step onto a sampled SA row), and must have at least this much
    #: row budget left for the switch to amortise.  Young chains mostly
    #: die within a few rows, where the locate would be pure loss.
    _CHAIN_MIN_AGE = 3
    _CHAIN_MIN_BUDGET = 8

    def _traverse_vectorized(
        self,
        rng: tuple[int, int],
        forks: list[Fork],
        query: str,
        vec_state: tuple,
        plan: FilterPlan,
        h_thr: int,
        results: ResultSet,
        stats: SearchStats,
        counter: CostCounter,
        reuse: ReuseEngine,
        gbm: GlobalBitMatrix | None,
    ) -> None:
        """Cohort traversal on the code-point representation.

        Structure (bit-identical results, ordering and cost accounting to
        :meth:`_traverse_scalar`, asserted by the differential fuzz suite):

        * child *existence* is read straight off the BWT — ``bwt[lo]`` on
          unary paths, a slice scan on narrow nodes, one ``bincount`` pass
          on wide ones — and the cohort advances **before** any rank query:
          a child whose forks all die needs no SA range at all, so the
          O(occ) work is paid only for children with survivors, emissions
          or gap forks (dead ends are the overwhelming majority of trie
          edges).  Gap-bearing wide nodes take
          :meth:`ReversedTextIndex.children` (one Occ-row pair for all
          sigma child ranges) since every existing child must be walked;
        * the NGR cohort is a pair of parallel ``(pip, score)`` sequences:
          at ``>= _VECTOR_MIN_FORKS`` forks it advances as int64 arrays
          with one gather (``qcodes[cols - 1]``) and mask per (node,
          character); below that the same code-point advance runs on
          Python ints, where per-call numpy overhead would dominate;
        * unary chains (a size-1 range pins a single occurrence, so every
          descendant has at most one child) are followed in an inner loop
          with no stack traffic, and once a chain is ``_CHAIN_MIN_AGE``
          rows old it switches to *text mode* (:meth:`_chain_text`): one
          locate, then characters are plain array reads, pure-NGR
          stretches score the whole remaining chain with one
          gather + cumsum per fork (:meth:`_chain_run`), and gap cones
          step through the shared sparse DP with locate-free emission;
        * hits are located with the batched LF walk
          (:meth:`ReversedTextIndex.end_positions_array`, via
          :meth:`_locate_ends`) and recorded via :meth:`ResultSet.add` /
          :meth:`ResultSet.add_batch`.
        """
        qcodes, qlist, live_rows = vec_state
        scheme = self.scheme
        sa, sb = scheme.sa, scheme.sb
        m, h_budget = plan.m, plan.threshold
        fgoe = plan.fgoe_bound
        lmax = plan.lmax
        use_sf = self.use_score_filter
        use_lf = self.use_length_filter
        csa = self.csa
        fm = csa._fm
        fm_bwt = fm._bwt
        fm_bwt_arr = fm._bwt_arr
        occ = fm.occ
        c_list = fm._C_list
        sigma1 = fm.sigma + 1
        sa_samples_get = fm._sa_samples.get
        n_text = csa.n
        children = csa.children
        code_chars = self._code_chars
        row_live = plan.row_live_threshold
        vector_min = self._VECTOR_MIN_FORKS
        chain_min_age = self._CHAIN_MIN_AGE
        chain_min_budget = self._CHAIN_MIN_BUDGET
        n_live = len(live_rows)

        visited = 0
        x1_charged = 0
        pips0, scores0, gaps0 = split_cohort(forks)
        stack = [(rng[0], rng[1], plan.q, pips0, scores0, gaps0, 0)]
        add_node = stack.append
        while stack:
            lo, hi, depth, pips, scores, gaps, chain_age = stack.pop()
            while True:  # follow unary chains without stack round-trips
                visited += 1
                new_depth = depth + 1
                if use_lf and new_depth > lmax:
                    break
                width = hi - lo
                if (
                    chain_age >= chain_min_age
                    and width == 1
                    and gbm is None
                    and (not use_lf or lmax - depth >= chain_min_budget)
                ):
                    # An established chain leaves the FM-index for good: the
                    # text itself drives the rest.  Chain stepping IS the LF
                    # walk a locate would do, so when this row happens to be
                    # a sampled one its text position comes for free.
                    pos = sa_samples_get(lo)
                    self._chain_text(
                        lo, depth, pips, scores, gaps, query, vec_state,
                        plan, h_thr, results, stats, counter, reuse,
                        e=None if pos is None else n_text - pos,
                    )
                    break

                # Forks whose diagonal already left the query die silently
                # (pips ascend, so the tail holds every such column).
                while pips and pips[-1] + depth > m:
                    pips.pop()
                    scores.pop()
                k = len(pips)
                if not k and not gaps:
                    break

                live = (
                    live_rows[new_depth]
                    if new_depth < n_live
                    else row_live(new_depth, use_sf)
                )

                # ---- fused step for young unary chains ------------------
                # The single child's code is a byte read; its SA range (one
                # rank query) is paid only if the cohort survives into it.
                if width == 1 and not gaps and k and k < vector_min:
                    code1 = fm_bwt[lo]
                    if not code1:
                        break
                    x1_charged += k
                    child_rng = None
                    ends = None
                    child_pips = []
                    child_scores = []
                    child_gaps = []
                    for pip, fscore in zip(pips, scores):
                        col = pip + depth
                        score = fscore + (
                            sa if qlist[col - 1] == code1 else sb
                        )
                        if use_sf:
                            bound = h_budget - (m - col) * sa - 1
                            if live > bound:
                                bound = live
                        else:
                            bound = 0
                        if score <= bound:
                            continue
                        if child_rng is None:
                            base = c_list[code1] + occ(code1, lo)
                            child_rng = (base, base + 1)
                        if score > fgoe:
                            ends = self._emit_fgoe_frontier(
                                pip, score, bound, new_depth, child_rng,
                                child_gaps, plan, h_thr, results, counter,
                                gbm, ends,
                            )
                            continue
                        child_pips.append(pip)
                        child_scores.append(score)
                        if score >= h_thr or (
                            gbm is not None and score >= sa
                        ):
                            if ends is None:
                                ends = self._locate_ends(child_rng)
                            if score >= h_thr:
                                for e in ends:
                                    results.add(
                                        e, col, score, e - new_depth + 1
                                    )
                            if gbm is not None and score >= sa:
                                gbm.mark(ends, col)
                    if not child_pips and not child_gaps:
                        break
                    lo, hi = child_rng
                    pips, scores, gaps = child_pips, child_scores, child_gaps
                    depth = new_depth
                    chain_age += 1
                    continue

                # ---- match-code probe (pure-NGR small cohorts) ----------
                # If every fork dies on a mismatch (+sb), the only children
                # that can carry survivors are the forks' match codes: the
                # cohort advances once, the index is probed just for those
                # codes (existence is a memchr against the BWT slice), and
                # the dead-end children's exact x1 charges come from a bare
                # distinct-code count.
                if k and not gaps and width > 1 and k < vector_min:
                    probe: dict | None = {}
                    for pip, fscore in zip(pips, scores):
                        col = pip + depth
                        if use_sf:
                            bound = h_budget - (m - col) * sa - 1
                            if live > bound:
                                bound = live
                        else:
                            bound = 0
                        if fscore + sb > bound:
                            probe = None  # a mismatch survives: probe all
                            break
                        mscore = fscore + sa
                        if mscore > bound:
                            mc = qlist[col - 1]
                            lst = probe.get(mc)
                            if lst is None:
                                probe[mc] = lst = []
                            lst.append((pip, mscore, bound))
                    if probe is not None:
                        seg = None
                        if width > 2048:
                            # A slice copy would dominate: one Occ-row pair.
                            all_kids = children((lo, hi))
                            d = len(all_kids)
                            probed = [
                                (code, rng_c)
                                for code, rng_c in all_kids
                                if code in probe
                            ]
                        else:
                            seg = fm_bwt[lo:hi]
                            d = 0
                            for code in range(1, sigma1):
                                if code in seg:
                                    d += 1
                            probed = [
                                (code, None)
                                for code in sorted(probe)
                                if code in seg
                            ]
                        # Every existing child costs one Eq. 3 cell per fork
                        # whether or not it carries a survivor.
                        x1_charged += k * d
                        for code, child_rng in probed:
                            if child_rng is None:
                                base = c_list[code] + occ(code, lo)
                                child_rng = (base, base + seg.count(code))
                            ends = None
                            child_gaps: list = []
                            child_pips: list = []
                            child_scores: list = []
                            for pip, mscore, bound in probe[code]:
                                if mscore > fgoe:
                                    ends = self._emit_fgoe_frontier(
                                        pip, mscore, bound, new_depth,
                                        child_rng, child_gaps, plan, h_thr,
                                        results, counter, gbm, ends,
                                    )
                                    continue
                                child_pips.append(pip)
                                child_scores.append(mscore)
                                if mscore >= h_thr or (
                                    gbm is not None and mscore >= sa
                                ):
                                    if ends is None:
                                        ends = self._locate_ends(child_rng)
                                    if mscore >= h_thr:
                                        col = pip + depth
                                        for e in ends:
                                            results.add(
                                                e, col, mscore,
                                                e - new_depth + 1,
                                            )
                                    if gbm is not None and mscore >= sa:
                                        gbm.mark(ends, pip + depth)
                            if child_pips or child_gaps:
                                add_node(
                                    (child_rng[0], child_rng[1], new_depth,
                                     child_pips, child_scores, child_gaps, 0)
                                )
                        break  # every existing child is accounted for

                # ---- child existence (no rank queries yet) --------------
                # kids: (code, count, range-or-None) in ascending code
                # order; a None range is resolved only if the child turns
                # out to need one (survivors, emissions, or gap pushes).
                if k >= vector_min:
                    # The array cohort needs its ranges up front: take them
                    # all at once (one Occ-row pair on wide nodes).
                    kids = [
                        (code, r[1] - r[0], r)
                        for code, r in children((lo, hi))
                    ]
                    if not kids:
                        break
                elif width == 1:
                    code1 = fm_bwt[lo]
                    if not code1:
                        break
                    kids = ((code1, 1, None),)
                elif width <= 8:
                    seg = fm_bwt[lo:hi]
                    code1 = seg[0]
                    if seg.count(code1) == width:  # one distinct extension
                        if not code1:
                            break
                        kids = ((code1, width, None),)
                    else:
                        kids = [
                            (c, seg.count(c), None)
                            for c in sorted(set(seg))
                            if c
                        ]
                else:
                    counts = np.bincount(
                        fm_bwt_arr[lo:hi], minlength=sigma1
                    ).tolist()
                    kids = [
                        (c, counts[c], None)
                        for c in range(1, sigma1)
                        if counts[c]
                    ]
                    if not kids:
                        break

                pips_a = qc = bounds = scores_a = None
                if k >= vector_min:
                    pips_a = np.array(pips, dtype=np.int64)
                    scores_a = np.array(scores, dtype=np.int64)
                    cols_a = pips_a + depth
                    qc = qcodes[cols_a - 1]
                    bounds = (
                        np.maximum(live, h_budget - (m - cols_a) * sa - 1)
                        if use_sf
                        else 0
                    )

                descend = None  # the single child of a chain node survives
                for code, count, child_rng in kids:
                    ends: list | None = None
                    child_gaps: list = []
                    if pips_a is not None:
                        # ---- array cohort advance: one gather + mask ----
                        x1_charged += k
                        snew = scores_a + np.where(qc == code, sa, sb)
                        keep = snew > bounds
                        if keep.any():
                            over = keep & (snew > fgoe)
                            if over.any():
                                stay = keep & ~over
                                for i in np.nonzero(over)[0].tolist():
                                    ends = self._emit_fgoe_frontier(
                                        pips[i], int(snew[i]),
                                        int(bounds[i]) if use_sf else 0,
                                        new_depth, child_rng, child_gaps,
                                        plan, h_thr, results, counter, gbm,
                                        ends,
                                    )
                            else:
                                stay = keep
                            child_pips = pips_a[stay].tolist()
                            child_scores = snew[stay].tolist()
                            if child_scores:
                                best = max(child_scores)
                                if best >= h_thr or (
                                    gbm is not None and best >= sa
                                ):
                                    if ends is None:
                                        ends = self._locate_ends(child_rng)
                                    starts = [
                                        e - new_depth + 1 for e in ends
                                    ]
                                    for pip_i, score_i in zip(
                                        child_pips, child_scores
                                    ):
                                        col_i = pip_i + new_depth - 1
                                        if score_i >= h_thr:
                                            results.add_batch(
                                                ends, col_i, score_i, starts
                                            )
                                        if gbm is not None and score_i >= sa:
                                            gbm.mark(ends, col_i)
                        else:
                            child_pips = []
                            child_scores = []
                    else:
                        # ---- scalar cohort advance (same code points) ---
                        child_pips = []
                        child_scores = []
                        x1_charged += k
                        for pip, fscore in zip(pips, scores):
                            col = pip + depth
                            score = fscore + (
                                sa if qlist[col - 1] == code else sb
                            )
                            if use_sf:
                                bound = h_budget - (m - col) * sa - 1
                                if live > bound:
                                    bound = live
                            else:
                                bound = 0
                            if score <= bound:
                                continue
                            if child_rng is None:
                                base = c_list[code] + occ(code, lo)
                                child_rng = (base, base + count)
                            if score > fgoe:
                                ends = self._emit_fgoe_frontier(
                                    pip, score, bound, new_depth, child_rng,
                                    child_gaps, plan, h_thr, results,
                                    counter, gbm, ends,
                                )
                                continue
                            child_pips.append(pip)
                            child_scores.append(score)
                            if score >= h_thr or (
                                gbm is not None and score >= sa
                            ):
                                if ends is None:
                                    ends = self._locate_ends(child_rng)
                                if score >= h_thr:
                                    for e in ends:
                                        results.add(
                                            e, col, score, e - new_depth + 1
                                        )
                                if gbm is not None and score >= sa:
                                    gbm.mark(ends, col)

                    if gaps:
                        char = code_chars[code]
                        if reuse.enabled and len(gaps) > 1:
                            new_frontiers = reuse.advance_forks(
                                [frontier for _pip, frontier in gaps], char,
                                query, m, scheme, live, counter,
                            )
                        else:
                            # A lone fork (or disabled engine) cannot share
                            # anything; skip the grouping machinery.
                            new_frontiers = [
                                advance_row(
                                    frontier, char, query, m, scheme, live,
                                    counter,
                                )
                                for _pip, frontier in gaps
                            ]
                        for (gap_pip, _old), frontier in zip(
                            gaps, new_frontiers
                        ):
                            if not frontier:
                                continue
                            for j, (m_val, _ga) in frontier.items():
                                # Defense in depth: phantom cells past
                                # column m (a bad reuse copy) must never
                                # become hits with p_end > len(query).
                                if j > m:
                                    continue
                                if m_val >= h_thr or (
                                    gbm is not None and m_val >= sa
                                ):
                                    if ends is None:
                                        if child_rng is None:
                                            base = c_list[code] + occ(
                                                code, lo
                                            )
                                            child_rng = (base, base + count)
                                        ends = self._locate_ends(child_rng)
                                    if m_val >= h_thr:
                                        for e in ends:
                                            results.add(
                                                e, j, m_val,
                                                e - new_depth + 1,
                                            )
                                    if gbm is not None and m_val >= sa:
                                        gbm.mark(ends, j)
                            child_gaps.append((gap_pip, frontier))
                    if child_pips or child_gaps:
                        if child_rng is None:
                            base = c_list[code] + occ(code, lo)
                            child_rng = (base, base + count)
                        if width == 1:
                            descend = (child_rng, child_pips, child_scores,
                                       child_gaps)
                        else:
                            add_node(
                                (child_rng[0], child_rng[1], new_depth,
                                 child_pips, child_scores, child_gaps, 0)
                            )
                if descend is None:
                    break
                child_rng, pips, scores, gaps = descend
                lo, hi = child_rng
                depth = new_depth
                chain_age += 1
        stats.nodes_visited += visited
        counter.x1 += x1_charged

    def _emit_fgoe_frontier(
        self,
        pip: int,
        score: int,
        bound: int,
        new_depth: int,
        child_rng: tuple[int, int],
        child_gaps: list,
        plan: FilterPlan,
        h_thr: int,
        results: ResultSet,
        counter: CostCounter,
        gbm: GlobalBitMatrix | None,
        ends: list | None,
    ) -> list | None:
        """FGOE transition of one fork: build the row tail, emit its hits.

        Returns the (possibly just-located) end-position list so the caller
        keeps its lazy locate across forks of the same child.
        """
        frontier = fgoe_row_frontier(
            score, pip + new_depth - 1, plan.m, self.scheme, bound, counter
        )
        child_gaps.append((pip, frontier))
        sa = self.scheme.sa
        for ccol, (m_val, _ga) in frontier.items():
            if m_val >= h_thr or (gbm is not None and m_val >= sa):
                if ends is None:
                    ends = self._locate_ends(child_rng)
                if m_val >= h_thr:
                    for e in ends:
                        results.add(e, ccol, m_val, e - new_depth + 1)
                if gbm is not None and m_val >= sa:
                    gbm.mark(ends, ccol)
        return ends

    def _locate_ends(self, child_rng: tuple[int, int]) -> list[int]:
        """End positions of a child range as a list (batched when wide).

        Narrow ranges take the scalar sampled-SA walk; wide ranges resolve
        all rows per LF iteration through the batched locate.
        """
        lo, hi = child_rng
        if hi - lo >= 6:
            return self.csa.end_positions_array(child_rng).tolist()
        return self.csa.end_positions(child_rng)

    def _chain_text(
        self,
        lo: int,
        depth: int,
        pips: list[int],
        scores: list[int],
        gaps: list,
        query: str,
        vec_state: tuple,
        plan: FilterPlan,
        h_thr: int,
        results: ResultSet,
        stats: SearchStats,
        counter: CostCounter,
        reuse: ReuseEngine,
        e: int | None = None,
    ) -> None:
        """Consume a unary chain straight off the text — no more FM work.

        One locate (skipped when the caller already knows ``e`` from a
        sampled-SA hit) turns the size-1 SA range into its occurrence end
        ``e``; from there the whole remaining subtree is the text slice
        ``T[e+1..]``: every chain character is a plain array read, the
        single child is implicit, and every emission's end position is just
        ``e + r`` — no LF walks, rank queries or existence scans.  Pure-NGR
        stretches are scored by the vectorized diagonal run
        (:meth:`_chain_run`); gap cones step row by row through the shared
        sparse DP.  The chain is consumed to cohort death, text end or the
        depth cap; nothing is ever pushed back on the caller's stack.
        Accounting is bit-identical to the generic traversal (asserted by
        the differential fuzz suite).  Only entered with the global bitmap
        filter off (its marks need per-row locates the generic path does).
        """
        qcodes, qlist, live_rows = vec_state
        csa = self.csa
        scheme = self.scheme
        sa, sb = scheme.sa, scheme.sb
        m, h_budget = plan.m, plan.threshold
        fgoe = plan.fgoe_bound
        lmax = plan.lmax
        use_sf = self.use_score_filter
        use_lf = self.use_length_filter
        code_chars = self._code_chars
        row_live = plan.row_live_threshold
        n_live = len(live_rows)
        n = csa.n
        tlist = csa.text_code_list()
        if e is None:
            e = csa.end_positions((lo, lo + 1))[0]
        visited = 0
        x1 = 0
        while True:
            if pips and not gaps:
                run = self._chain_run(
                    e, depth, pips, scores, qcodes, plan, h_thr, results,
                    stats, counter,
                )
                if run is None:
                    break
                # The run consumed the pure-NGR stretch plus its first FGOE
                # row; the resume node carries the fresh gap cone.
                depth, e, pips, scores, gaps = run
            new_depth = depth + 1
            if use_lf and new_depth > lmax:
                break
            if e >= n:
                break  # the occurrence ends the text: no further chain edge
            code1 = tlist[e]
            while pips and pips[-1] + depth > m:
                pips.pop()
                scores.pop()
            k = len(pips)
            if not k and not gaps:
                break
            live = (
                live_rows[new_depth]
                if new_depth < n_live
                else row_live(new_depth, use_sf)
            )
            t_end = e + 1
            child_pips: list = []
            child_scores: list = []
            child_gaps: list = []
            if k:
                x1 += k
                for pip, fscore in zip(pips, scores):
                    col = pip + depth
                    score = fscore + (sa if qlist[col - 1] == code1 else sb)
                    if use_sf:
                        bound = h_budget - (m - col) * sa - 1
                        if live > bound:
                            bound = live
                    else:
                        bound = 0
                    if score <= bound:
                        continue
                    if score > fgoe:
                        frontier = fgoe_row_frontier(
                            score, col, m, scheme, bound, counter
                        )
                        child_gaps.append((pip, frontier))
                        for ccol, (m_val, _ga) in frontier.items():
                            if m_val >= h_thr:
                                results.add(
                                    t_end, ccol, m_val, t_end - new_depth + 1
                                )
                        continue
                    child_pips.append(pip)
                    child_scores.append(score)
                    if score >= h_thr:
                        results.add(t_end, col, score, t_end - new_depth + 1)
            if gaps:
                char = code_chars[code1]
                if reuse.enabled and len(gaps) > 1:
                    new_frontiers = reuse.advance_forks(
                        [fr for _p, fr in gaps], char, query, m, scheme,
                        live, counter,
                    )
                else:
                    # Single-fork / disabled advances cannot share anything;
                    # skip the engine's grouping machinery (identical
                    # results and accounting).
                    new_frontiers = [
                        advance_row(fr, char, query, m, scheme, live, counter)
                        for _p, fr in gaps
                    ]
                for (gap_pip, _old), frontier in zip(gaps, new_frontiers):
                    if not frontier:
                        continue
                    for j, (m_val, _ga) in frontier.items():
                        # Phantom guard: see _advance_forks.
                        if j > m:
                            continue
                        if m_val >= h_thr:
                            results.add(
                                t_end, j, m_val, t_end - new_depth + 1
                            )
                    child_gaps.append((gap_pip, frontier))
            if not child_pips and not child_gaps:
                break
            pips, scores, gaps = child_pips, child_scores, child_gaps
            depth = new_depth
            e = t_end
            visited += 1
        stats.nodes_visited += visited
        counter.x1 += x1

    def _chain_run(
        self,
        e: int,
        depth: int,
        pips: list[int],
        scores: list[int],
        qcodes: np.ndarray,
        plan: FilterPlan,
        h_thr: int,
        results: ResultSet,
        stats: SearchStats,
        counter: CostCounter,
    ) -> tuple[int, int, list[int], list[int], list] | None:
        """Score a pure-NGR cohort down an entire unary chain at once.

        The current path's single occurrence ends at text position ``e``,
        so every fork just walks its diagonal (Eq. 3) against the text
        slice: one gather + cumsum scores all its remaining rows in one
        shot, and the liveness bound is an arithmetic ramp (both Theorem 2
        terms grow by ``sa`` per row, so their max is one intercept plus
        the shared slope).

        The run consumes the chain up to — and including — the first FGOE
        crossing row (whose gap cone needs the sparse DP): it returns the
        resume state ``(depth, e, pips, scores, gaps)`` holding the fresh
        cone, or ``None`` when the cohort dies on the chain.  Node visits,
        x1 charges and emissions replicate the scalar engine's step-by-step
        accounting exactly.
        """
        csa = self.csa
        scheme = self.scheme
        sa, sb = scheme.sa, scheme.sb
        m, h_budget = plan.m, plan.threshold
        fgoe = plan.fgoe_bound
        lmax = plan.lmax
        use_sf = self.use_score_filter
        n = csa.n
        chain_len = n - e
        if self.use_length_filter and lmax - depth < chain_len:
            chain_len = lmax - depth
        if chain_len <= 0:
            return None
        tc = csa.text_codes()[e : e + chain_len]
        t_start = e - depth + 1  # constant: every chain hit starts here

        k = len(pips)
        # Most cohorts die within a handful of rows: score a 32-row trial
        # block first and pay for the full chain only when a fork survives
        # the whole block (real homology).  Prefix outcomes are final, so
        # the retry recomputes identical values.
        for span_cap in (32, chain_len):
            cums: list = [None] * k
            surv = [0] * k
            died = [False] * k
            spans = [0] * k
            first_cross = chain_len  # earliest FGOE crossing row (0-based)
            inconclusive = False
            for i in range(k):
                col0 = pips[i] + depth - 1
                span = m - col0
                if span > chain_len:
                    span = chain_len
                spans[i] = span
                if span <= 0:
                    continue
                used = span if span < span_cap else span_cap
                cum = scores[i] + np.cumsum(
                    np.where(tc[:used] == qcodes[col0 : col0 + used], sa, sb)
                )
                cums[i] = cum
                if use_sf:
                    icept = h_budget - (m - col0) * sa - 1
                    live_icept = h_budget - (lmax - depth) * sa - 1
                    if live_icept > icept:
                        icept = live_icept
                    bnd = icept + sa * np.arange(1, used + 1, dtype=np.int64)
                    alive = (cum > bnd) & (cum > 0)
                else:
                    alive = cum > 0
                if alive.all():
                    surv[i] = used
                    if used < span:  # alive through the trial block
                        inconclusive = True
                else:
                    surv[i] = int(np.argmin(alive))
                    died[i] = True
                if surv[i]:
                    crossing = cum[: surv[i]] > fgoe
                    if crossing.any():
                        cross_at = int(np.argmax(crossing))
                        if cross_at < first_cross:
                            first_cross = cross_at
            if not inconclusive:
                break

        s_max = max(surv)
        crossing_found = first_cross < chain_len and first_cross <= s_max
        consumed = first_cross if crossing_found else min(s_max + 1, chain_len)

        charged = 0
        for i in range(k):
            charged += min(surv[i] + died[i], consumed)
            cum = cums[i]
            if cum is None:
                continue
            lim = min(surv[i], consumed)
            if lim and int(cum[:lim].max()) >= h_thr:
                base_col = pips[i] + depth
                for r in np.nonzero(cum[:lim] >= h_thr)[0].tolist():
                    results.add(e + r + 1, base_col + r, int(cum[r]), t_start)
        counter.x1 += charged
        stats.nodes_visited += min(s_max, consumed)
        if not crossing_found:
            return None

        # ---- the crossing row itself (step consumed + 1) ----------------
        cc = consumed
        new_depth = depth + cc + 1
        t_end = e + cc + 1
        live = (
            max(0, h_budget - (lmax - new_depth) * sa - 1) if use_sf else 0
        )
        stay_pips: list[int] = []
        stay_scores: list[int] = []
        gaps_out: list = []
        charged2 = 0
        for i in range(k):
            if surv[i] < cc or spans[i] <= cc:
                continue  # dead earlier, or silently out of columns
            charged2 += 1
            score = int(cums[i][cc]) if cc < spans[i] else 0
            col = pips[i] + new_depth - 1
            if use_sf:
                bound = h_budget - (m - col) * sa - 1
                if live > bound:
                    bound = live
            else:
                bound = 0
            if score <= bound:
                continue
            if score > fgoe:
                frontier = fgoe_row_frontier(
                    score, col, m, scheme, bound, counter
                )
                gaps_out.append((pips[i], frontier))
                for ccol, (m_val, _ga) in frontier.items():
                    if m_val >= h_thr:
                        results.add(t_end, ccol, m_val, t_end - new_depth + 1)
            else:
                stay_pips.append(pips[i])
                stay_scores.append(score)
                if score >= h_thr:
                    results.add(t_end, col, score, t_end - new_depth + 1)
        counter.x1 += charged2
        if not stay_pips and not gaps_out:
            return None
        stats.nodes_visited += 1  # the crossing row's node becomes current
        return (new_depth, t_end, stay_pips, stay_scores, gaps_out)

    def _advance_forks(
        self,
        node_forks: list[Fork],
        char: str,
        query: str,
        depth: int,
        plan: FilterPlan,
        h_thr: int,
        counter: CostCounter,
        reuse: ReuseEngine,
        rng: tuple[int, int],
        results: ResultSet,
        stats: SearchStats,
        gbm: GlobalBitMatrix | None,
    ) -> list[Fork]:
        """Advance every fork one row for one child character."""
        live = plan.row_live_threshold(depth, self.use_score_filter)
        ends: list[int] | None = None
        scheme = self.scheme
        sa, sb = scheme.sa, scheme.sb
        m, h_budget = plan.m, plan.threshold
        fgoe = plan.fgoe_bound
        use_sf = self.use_score_filter
        survivors: list[Fork] = []
        gap_forks: list[Fork] = []
        for fork in node_forks:
            if fork.phase == NGR:
                # Inlined advance_ngr (Eq. 3 diagonal walk) — hot path.
                col = fork.pip + depth - 1
                if col > m:
                    continue
                score = fork.score + (sa if query[col - 1] == char else sb)
                counter.x1 += 1
                if use_sf:
                    bound = max(
                        live,
                        h_budget - (m - col) * sa - 1,
                    )
                else:
                    bound = 0
                if score <= bound:
                    continue
                if score > fgoe:
                    frontier = fgoe_row_frontier(
                        score, col, m, scheme, bound, counter
                    )
                    clone = Fork(fork.pip, GAP, 0, frontier)
                    for ccol, (m_val, _ga) in frontier.items():
                        if m_val >= h_thr or (gbm is not None and m_val >= sa):
                            if ends is None:
                                ends = self.csa.end_positions(rng)
                            if m_val >= h_thr:
                                for end in ends:
                                    results.add(end, ccol, m_val, end - depth + 1)
                            if gbm is not None and m_val >= sa:
                                gbm.mark(ends, ccol)
                else:
                    clone = Fork(fork.pip, NGR, score, _EMPTY_DICT)
                    if score >= h_thr or (gbm is not None and score >= sa):
                        if ends is None:
                            ends = self.csa.end_positions(rng)
                        if score >= h_thr:
                            for end in ends:
                                results.add(end, col, score, end - depth + 1)
                        if gbm is not None and score >= sa:
                            gbm.mark(ends, col)
                survivors.append(clone)
            else:
                gap_forks.append(fork)

        if gap_forks:
            new_frontiers = reuse.advance_forks(
                [f.frontier for f in gap_forks], char, query, plan.m,
                self.scheme, live, counter,
            )
            sa = self.scheme.sa
            for fork, frontier in zip(gap_forks, new_frontiers):
                if not frontier:
                    continue
                for j, (m_val, _ga) in frontier.items():
                    # Defense in depth: a frontier cell past column m can
                    # only be a phantom from a bad reuse copy; it must never
                    # become a reported hit with p_end > len(query).
                    if j > m:
                        continue
                    if m_val >= h_thr or (gbm is not None and m_val >= sa):
                        if ends is None:
                            ends = self.csa.end_positions(rng)
                        if m_val >= h_thr:
                            for end in ends:
                                results.add(end, j, m_val, end - depth + 1)
                        if gbm is not None and m_val >= sa:
                            gbm.mark(ends, j)
                survivors.append(Fork(fork.pip, GAP, 0, frontier))
        return survivors

    # ------------------------------------------------------------- utility
    def materialize(self, hit: Hit, query: str) -> PairwiseAlignment:
        """Recover the operations of one hit with a windowed traceback DP.

        The window spans the hit's text range and the query region that can
        reach ``p_end``; the returned alignment's score is at least the hit's
        (the window may contain an even better local alignment).

        The query side can be longer than the text side by the total number
        of inserted query characters, which a single ``+ |sg|`` pad only
        covers for one short gap run; the window is therefore expanded
        (doubling the pad) until the recovered score reaches the hit's score
        or the window hits the start of the query.

        Start-unknown hits (``t_start == START_UNKNOWN``) get a pessimistic
        ``2 * len(query)`` text window; the sentinel is compared explicitly
        rather than by falsiness (positions are 1-based, so 0 is only ever
        the sentinel — but the explicit check keeps the invariant visible
        and survives any future signed/optional start representation).
        """
        if hit.t_start != START_UNKNOWN:
            t_lo = max(1, hit.t_start)
        else:
            t_lo = max(1, hit.t_end - 2 * len(query))
        text_window = self.text[t_lo - 1 : hit.t_end]
        span = hit.t_end - t_lo + 1 + abs(self.scheme.sg)
        while True:
            p_lo = max(1, hit.p_end - span)
            query_window = query[p_lo - 1 : hit.p_end]
            alignment = align_pair(text_window, query_window, self.scheme)
            if alignment.score >= hit.score or p_lo == 1:
                return alignment
            span *= 2
