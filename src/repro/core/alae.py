"""The ALAE search engine (the paper's primary contribution).

Pipeline per search (query ``P``, threshold ``H`` or E-value):

1. resolve ``H`` (Karlin-Altschul, Sec. 7) and build the
   :class:`~repro.core.filters.FilterPlan` (q, min row, Lmax, FGOE bound);
2. build the q-gram inverted index of ``P`` (Sec. 3.1.3);
3. for every distinct q-gram ``g`` of ``P``:
   a. drop fork columns killed by q-prefix domination (Sec. 3.2.2) and —
      optionally — by the online bit matrix ``G`` (Sec. 3.2.1);
   b. locate ``g`` in the text via the compressed suffix array of the
      reversed text (Sec. 5); a miss prunes the entire conceptual matrix
      (whole-matrix prefix filtering);
   c. seed one fork per surviving column at row ``q`` (EMR scores are
      assigned, not calculated) and traverse the suffix-trie subtree under
      ``g``, advancing NGR forks along their diagonals (Eq. 3) and gap-phase
      forks through the sparse affine DP, with the Sec. 4 reuse engine
      sharing identical fork advances;
4. alignments shorter than ``q`` (possible only when ``H < q * sa``) are
   all-match by Theorem 3's argument and are enumerated directly.

Every cell with score ``>= H`` lands in the max-dedup accumulator ``A``; the
result equals Smith-Waterman's ``{(i, j): H(i, j) >= H}`` exactly (tested).
"""

from __future__ import annotations

import time
from collections import defaultdict

from repro.align.bwt_sw import resolve_threshold
from repro.align.recurrences import CostCounter
from repro.align.smith_waterman import PairwiseAlignment, align_pair
from repro.align.types import Hit, ResultSet, SearchResult, SearchStats
from repro.alphabet import DNA, Alphabet
from repro.core.domination import DominationIndex
from repro.core.filters import FilterPlan, make_filter_plan
from repro.core.forks import GAP, NGR, Fork, fgoe_row_frontier, seed_fork
from repro.core.global_filter import GlobalBitMatrix
from repro.core.reuse import ReuseEngine
from repro.index.csa import EMPTY_RANGE, ReversedTextIndex
from repro.index.qgram import QGramIndex
from repro.scoring.scheme import DEFAULT_SCHEME, ScoringScheme

#: Shared empty frontier for NGR forks (never mutated).
_EMPTY_DICT: dict = {}


class ALAE:
    """Exact local-alignment search with filtering and reuse.

    Parameters
    ----------
    text:
        The database text ``T`` (concatenate collections beforehand, e.g.
        with :class:`repro.io.database.SequenceDatabase`).
    alphabet, scheme:
        Alphabet and affine-gap scoring scheme.
    use_length_filter, use_score_filter, use_domination, use_reuse,
    use_global_bitmask:
        Toggles for each technique (all exact; defaults mirror the paper's
        configuration — the bitmap filter is off, Sec. 3.2.2 replacing it).
    """

    def __init__(
        self,
        text: str,
        alphabet: Alphabet = DNA,
        scheme: ScoringScheme = DEFAULT_SCHEME,
        *,
        use_length_filter: bool = True,
        use_score_filter: bool = True,
        use_domination: bool = True,
        use_reuse: bool = True,
        use_global_bitmask: bool = False,
        occ_block: int = 128,
        sa_sample: int = 16,
    ) -> None:
        alphabet.validate(text)
        self.text = text
        self.alphabet = alphabet
        self.scheme = scheme
        self.use_length_filter = use_length_filter
        self.use_score_filter = use_score_filter
        self.use_domination = use_domination
        self.use_reuse = use_reuse
        self.use_global_bitmask = use_global_bitmask
        self.csa = ReversedTextIndex(
            text, alphabet, occ_block=occ_block, sa_sample=sa_sample
        )
        self._dom_cache: dict[int, DominationIndex] = {}

    @classmethod
    def from_prebuilt(
        cls,
        csa: ReversedTextIndex,
        *,
        scheme: ScoringScheme = DEFAULT_SCHEME,
        domination: DominationIndex | None = None,
        use_length_filter: bool = True,
        use_score_filter: bool = True,
        use_domination: bool = True,
        use_reuse: bool = True,
        use_global_bitmask: bool = False,
    ) -> "ALAE":
        """Assemble an engine around already-built indexes (store fast path).

        Skips text validation and all index construction: ``csa`` supplies
        the text, alphabet and reversed-text FM-index, and ``domination``
        (when given) pre-seeds the dominate-index cache for its own ``q``.
        Any other prefix length requested later is still built on demand
        from the text.
        """
        engine = cls.__new__(cls)
        engine.text = csa.text
        engine.alphabet = csa.alphabet
        engine.scheme = scheme
        engine.use_length_filter = use_length_filter
        engine.use_score_filter = use_score_filter
        engine.use_domination = use_domination
        engine.use_reuse = use_reuse
        engine.use_global_bitmask = use_global_bitmask
        engine.csa = csa
        engine._dom_cache = {}
        if domination is not None:
            engine._dom_cache[domination.q] = domination
        return engine

    # ---------------------------------------------------------------- index
    def domination_index(self, q: int | None = None) -> DominationIndex:
        """The (cached) offline dominate index for prefix length ``q``."""
        if q is None:
            q = self.scheme.q
        if q not in self._dom_cache:
            self._dom_cache[q] = DominationIndex(self.text, q)
        return self._dom_cache[q]

    def index_size_bytes(self) -> dict[str, int]:
        """Fig. 11 accounting: BWT index + dominate index sizes.

        ``*_actual`` / ``actual_total`` report the bytes the same structures
        occupy when serialized by ``repro.store`` — the paper's model next
        to the on-disk truth.
        """
        bwt = self.csa.size_bytes()
        dom = self.domination_index() if self.use_domination else None
        dom_model = dom.size_bytes() if dom is not None else 0
        dom_actual = dom.actual_size_bytes() if dom is not None else 0
        bwt_actual = bwt["actual"]["total"]
        return {
            "bwt_index": bwt["total"],
            "dominate_index": dom_model,
            "total": bwt["total"] + dom_model,
            "bwt_index_actual": bwt_actual,
            "dominate_index_actual": dom_actual,
            "actual_total": bwt_actual + dom_actual,
        }

    # --------------------------------------------------------------- search
    def search(
        self,
        query: str,
        threshold: int | None = None,
        e_value: float | None = None,
    ) -> SearchResult:
        """Find every end-position pair with alignment score ``>= H``."""
        self.alphabet.validate(query)
        scheme = self.scheme
        m, n = len(query), self.csa.n
        h_thr = resolve_threshold(
            threshold, e_value, scheme, self.alphabet.size, m, n
        )
        plan = make_filter_plan(scheme, m, h_thr)

        started = time.perf_counter()
        counter = CostCounter("alae")
        stats = SearchStats()
        results = ResultSet()
        reuse = ReuseEngine(self.use_reuse)
        dom = self.domination_index(plan.q) if self.use_domination else None
        gbm = GlobalBitMatrix(n, m) if self.use_global_bitmask else None

        if plan.min_row < plan.q and m >= plan.min_row:
            self._emit_short_matches(query, plan, results, stats)

        if m >= plan.q:
            qidx = QGramIndex(query, plan.q)
            for gram in qidx.grams():
                self._search_gram(
                    gram, qidx, query, plan, h_thr, results, stats, counter,
                    reuse, dom, gbm,
                )

        stats.calculated_x1 = counter.x1
        stats.calculated_x2 = counter.x2
        stats.calculated_x3 = counter.x3
        stats.reused = reuse.reused_cells
        stats.extra["memo_hits"] = reuse.memo_hits
        stats.extra["memo_misses"] = reuse.memo_misses
        if gbm is not None:
            stats.extra["bitmask_cells"] = gbm.marked_cells()
        stats.elapsed_seconds = time.perf_counter() - started
        return SearchResult(hits=results, stats=stats, threshold=h_thr)

    # ------------------------------------------------------------ internals
    def _emit_short_matches(
        self, query: str, plan: FilterPlan, results: ResultSet, stats: SearchStats
    ) -> None:
        """Alignments shorter than q: all-match pairs (see module docstring)."""
        for length in range(plan.min_row, min(plan.q, len(query) + 1)):
            score = length * self.scheme.sa
            grams: dict[str, list[int]] = defaultdict(list)
            for start0 in range(len(query) - length + 1):
                grams[query[start0 : start0 + length]].append(start0 + 1)
            for gram, cols in grams.items():
                rng = self.csa.range_of(gram)
                if rng == EMPTY_RANGE:
                    continue
                ends = self.csa.end_positions(rng)
                stats.emr_assigned += len(ends) * len(cols)
                for j in cols:
                    p_end = j + length - 1
                    for end in ends:
                        results.add(end, p_end, score, end - length + 1)

    def _search_gram(
        self,
        gram: str,
        qidx: QGramIndex,
        query: str,
        plan: FilterPlan,
        h_thr: int,
        results: ResultSet,
        stats: SearchStats,
        counter: CostCounter,
        reuse: ReuseEngine,
        dom: DominationIndex | None,
        gbm: GlobalBitMatrix | None,
    ) -> None:
        """Seed and traverse all forks of one distinct q-gram of the query."""
        q = plan.q
        cols = qidx.positions(gram)

        if dom is not None:
            pred = dom.unique_predecessor(gram)
            if pred is not None:
                kept = [
                    j for j in cols if j == 1 or query[j - 2 : j - 2 + q] != pred
                ]
                stats.forks_skipped_domination += len(cols) - len(kept)
                cols = kept
        if not cols:
            return

        rng = self.csa.range_of(gram)
        if rng == EMPTY_RANGE:
            stats.grams_absent_in_text += 1
            return

        seed_ends: list[int] | None = None
        if gbm is not None:
            seed_ends = self.csa.end_positions(rng)
            starts = [e - q + 1 for e in seed_ends]
            kept = [j for j in cols if not gbm.all_marked(starts, j)]
            stats.forks_skipped_global += len(cols) - len(kept)
            cols = kept
            if not cols:
                return

        seed_score = q * self.scheme.sa
        live_seed = plan.row_live_threshold(q, self.use_score_filter)
        if seed_score <= live_seed:
            return  # every fork of this gram is dead on arrival

        forks = [
            seed_fork(j, plan, self.scheme, live_seed, counter) for j in cols
        ]
        stats.forks_seeded += len(forks)
        stats.emr_assigned += q * len(forks)

        ends_cache = seed_ends

        def seed_ends_lazy() -> list[int]:
            nonlocal ends_cache
            if ends_cache is None:
                ends_cache = self.csa.end_positions(rng)
            return ends_cache

        for fork in forks:
            cells = (
                fork.frontier.items()
                if fork.phase == GAP
                else [(fork.pip + q - 1, (seed_score, 0))]
            )
            for col, (m_val, _ga) in cells:
                if m_val >= h_thr:
                    for end in seed_ends_lazy():
                        results.add(end, col, m_val, end - q + 1)
                if gbm is not None and m_val >= self.scheme.sa:
                    gbm.mark(seed_ends_lazy(), col)

        char_codes = self.csa.char_codes()
        extend_code = self.csa.extend_code
        stack: list[tuple[tuple[int, int], int, list[Fork]]] = [(rng, q, forks)]
        while stack:
            node_rng, depth, node_forks = stack.pop()
            stats.nodes_visited += 1
            new_depth = depth + 1
            if self.use_length_filter and new_depth > plan.lmax:
                continue
            for char, code in char_codes:
                child_rng = extend_code(node_rng, code)
                if child_rng == EMPTY_RANGE:
                    continue
                survivors = self._advance_forks(
                    node_forks, char, query, new_depth, plan, h_thr,
                    counter, reuse, child_rng, results, stats, gbm,
                )
                if survivors:
                    stack.append((child_rng, new_depth, survivors))

    def _advance_forks(
        self,
        node_forks: list[Fork],
        char: str,
        query: str,
        depth: int,
        plan: FilterPlan,
        h_thr: int,
        counter: CostCounter,
        reuse: ReuseEngine,
        rng: tuple[int, int],
        results: ResultSet,
        stats: SearchStats,
        gbm: GlobalBitMatrix | None,
    ) -> list[Fork]:
        """Advance every fork one row for one child character."""
        live = plan.row_live_threshold(depth, self.use_score_filter)
        ends: list[int] | None = None
        scheme = self.scheme
        sa, sb = scheme.sa, scheme.sb
        m, h_budget = plan.m, plan.threshold
        fgoe = plan.fgoe_bound
        use_sf = self.use_score_filter
        survivors: list[Fork] = []
        gap_forks: list[Fork] = []
        for fork in node_forks:
            if fork.phase == NGR:
                # Inlined advance_ngr (Eq. 3 diagonal walk) — hot path.
                col = fork.pip + depth - 1
                if col > m:
                    continue
                score = fork.score + (sa if query[col - 1] == char else sb)
                counter.x1 += 1
                if use_sf:
                    bound = max(
                        live,
                        h_budget - (m - col) * sa - 1,
                    )
                else:
                    bound = 0
                if score <= bound:
                    continue
                if score > fgoe:
                    frontier = fgoe_row_frontier(
                        score, col, m, scheme, bound, counter
                    )
                    clone = Fork(fork.pip, GAP, 0, frontier)
                    for ccol, (m_val, _ga) in frontier.items():
                        if m_val >= h_thr or (gbm is not None and m_val >= sa):
                            if ends is None:
                                ends = self.csa.end_positions(rng)
                            if m_val >= h_thr:
                                for end in ends:
                                    results.add(end, ccol, m_val, end - depth + 1)
                            if gbm is not None and m_val >= sa:
                                gbm.mark(ends, ccol)
                else:
                    clone = Fork(fork.pip, NGR, score, _EMPTY_DICT)
                    if score >= h_thr or (gbm is not None and score >= sa):
                        if ends is None:
                            ends = self.csa.end_positions(rng)
                        if score >= h_thr:
                            for end in ends:
                                results.add(end, col, score, end - depth + 1)
                        if gbm is not None and score >= sa:
                            gbm.mark(ends, col)
                survivors.append(clone)
            else:
                gap_forks.append(fork)

        if gap_forks:
            new_frontiers = reuse.advance_forks(
                [f.frontier for f in gap_forks], char, query, plan.m,
                self.scheme, live, counter,
            )
            sa = self.scheme.sa
            for fork, frontier in zip(gap_forks, new_frontiers):
                if not frontier:
                    continue
                for j, (m_val, _ga) in frontier.items():
                    if m_val >= h_thr or (gbm is not None and m_val >= sa):
                        if ends is None:
                            ends = self.csa.end_positions(rng)
                        if m_val >= h_thr:
                            for end in ends:
                                results.add(end, j, m_val, end - depth + 1)
                        if gbm is not None and m_val >= sa:
                            gbm.mark(ends, j)
                survivors.append(Fork(fork.pip, GAP, 0, frontier))
        return survivors

    # ------------------------------------------------------------- utility
    def materialize(self, hit: Hit, query: str) -> PairwiseAlignment:
        """Recover the operations of one hit with a windowed traceback DP.

        The window spans the hit's text range and the query region that can
        reach ``p_end``; the returned alignment's score is at least the hit's
        (the window may contain an even better local alignment).

        The query side can be longer than the text side by the total number
        of inserted query characters, which a single ``+ |sg|`` pad only
        covers for one short gap run; the window is therefore expanded
        (doubling the pad) until the recovered score reaches the hit's score
        or the window hits the start of the query.
        """
        t_lo = max(1, hit.t_start if hit.t_start else hit.t_end - 2 * len(query))
        text_window = self.text[t_lo - 1 : hit.t_end]
        span = hit.t_end - t_lo + 1 + abs(self.scheme.sg)
        while True:
            p_lo = max(1, hit.p_end - span)
            query_window = query[p_lo - 1 : hit.p_end]
            alignment = align_pair(text_window, query_window, self.scheme)
            if alignment.score >= hit.score or p_lo == 1:
                return alignment
            span *= 2
