"""Local filtering (Sec. 3.1): length, score and q-prefix filters.

These are thin, heavily-tested helpers over :class:`ScoringScheme`'s derived
quantities.  They exist as their own module so the ablation benchmarks can
toggle each filter and so tests can probe each theorem in isolation:

* **Theorem 1 (length)** — only rows ``ceil(H/sa) <= i <= Lmax`` can host a
  result; the engine also uses ``Lmax`` as its traversal depth cap.
* **Theorem 2 (score)** — a cell is dead when its score cannot be lifted back
  to ``H`` by the at-most-one-match-per-column budget.  The engine applies
  the row-dependent part ``H - (Lmax - i) * sa - 1`` uniformly (it is
  invariant under the column shifts that reuse relies on) together with the
  BWT-SW positivity floor ``0``; the column-dependent part is available for
  per-fork use via :func:`dead_threshold_cell`.
* **Theorem 3 (q-prefix)** — every surviving alignment starts with ``q``
  exact matches, so DP begins only at fork seeds located through the q-gram
  inverted index of ``P``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.scoring.scheme import ScoringScheme


@dataclass(frozen=True)
class FilterPlan:
    """Pre-computed filter bounds for one (query, threshold) search."""

    q: int
    min_row: int
    lmax: int
    fgoe_bound: int
    threshold: int
    m: int

    def row_live_threshold(self, i: int, use_score_filter: bool = True) -> int:
        """Liveness bound for every cell of row ``i`` (shift-invariant part).

        Always at least 0 (the positivity rule); with the score filter on it
        adds Theorem 2's remaining-rows budget.
        """
        if not use_score_filter:
            return 0
        return max(0, self.threshold - (self.lmax - i) * self.sa_cached - 1)

    # sa is stored denormalised to keep row_live_threshold allocation-free.
    sa_cached: int = 0

    def cell_dead(self, i: int, j: int, score: int) -> bool:
        """Full Theorem 2 check for one cell (includes the column budget)."""
        bound = max(
            0,
            self.threshold - (self.m - j) * self.sa_cached - 1,
            self.threshold - (self.lmax - i) * self.sa_cached - 1,
        )
        return score <= bound


def make_filter_plan(
    scheme: ScoringScheme, m: int, threshold: int
) -> FilterPlan:
    """Build the :class:`FilterPlan` for a query of length ``m``."""
    min_row, lmax = scheme.length_bounds(m, threshold)
    return FilterPlan(
        q=scheme.q,
        min_row=min_row,
        lmax=lmax,
        fgoe_bound=scheme.fgoe_bound,
        threshold=threshold,
        m=m,
        sa_cached=scheme.sa,
    )


def dead_threshold_cell(
    scheme: ScoringScheme, i: int, j: int, m: int, threshold: int, lmax: int
) -> int:
    """Theorem 2 bound for an individual cell (used by NGR advances)."""
    return max(
        0,
        threshold - (m - j) * scheme.sa - 1,
        threshold - (lmax - i) * scheme.sa - 1,
    )
