"""Section 6: the calculated-entry upper bound of ALAE.

Lemma 4 bounds the number of positively-scoring gap-free alignments of a
random length-d text substring:

    f(d) <= k1 * k2^d,   with  s  = 1 + |sb| / |sa|,
    k1 = (1 - 1/s)^q * ((sigma - 1) / (sigma - 2)) * s / sqrt(2 pi (s - 1)),
    k2 = s * (sigma - 1)^(1/s) / (s - 1)^((s - 1)/s),

and Eq. 4 turns this into the expected total number of calculated entries

    ( k1 / (k2 - 1) + k1 * sigma^2 / (sigma - k2) ) * m * n^(log_sigma k2).

Over BLAST's published parameter grid this reproduces the paper's quoted
extremes exactly: DNA from 4.50 m n^0.520 to 9.05 m n^0.896, protein from
8.28 m n^0.364 to 7.49 m n^0.723, and 4.47 m n^0.6038 for the default scheme
<1,-3,-5,-2> (versus BWT-SW's 69 m n^0.628).  The Section 6 benchmark asserts
these digits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ScoringError
from repro.scoring.scheme import ScoringScheme, blast_scheme_grid


@dataclass(frozen=True)
class EntryBound:
    """One evaluated instance of Eq. 4: ``coefficient * m * n^exponent``."""

    scheme: ScoringScheme
    sigma: int
    k1: float
    k2: float
    exponent: float
    coefficient: float

    def entries(self, m: int, n: int) -> float:
        """Evaluate the bound for concrete sequence lengths."""
        return self.coefficient * m * n**self.exponent


def lemma4_constants(scheme: ScoringScheme, sigma: int) -> tuple[float, float]:
    """``(k1, k2)`` of Lemma 4 for a scheme over an alphabet of size sigma."""
    if sigma <= 2:
        raise ScoringError("Lemma 4 requires sigma > 2 (sigma - 2 divisor)")
    s = 1.0 + abs(scheme.sb) / scheme.sa
    q = scheme.q
    k1 = (
        (1.0 - 1.0 / s) ** q
        * ((sigma - 1.0) / (sigma - 2.0))
        * s
        / math.sqrt(2.0 * math.pi * (s - 1.0))
    )
    k2 = s * (sigma - 1.0) ** (1.0 / s) / (s - 1.0) ** ((s - 1.0) / s)
    return k1, k2


def entry_bound(scheme: ScoringScheme, sigma: int) -> EntryBound:
    """Eq. 4's coefficient and exponent for one scheme."""
    k1, k2 = lemma4_constants(scheme, sigma)
    if k2 <= 1.0:
        raise ScoringError(f"degenerate scheme {scheme}: k2 = {k2:.3f} <= 1")
    if k2 >= sigma:
        raise ScoringError(
            f"scheme {scheme} gives k2 = {k2:.3f} >= sigma = {sigma}; the "
            "expected-entries series diverges (bound inapplicable)"
        )
    coefficient = k1 / (k2 - 1.0) + k1 * sigma**2 / (sigma - k2)
    exponent = math.log(k2) / math.log(sigma)
    return EntryBound(
        scheme=scheme,
        sigma=sigma,
        k1=k1,
        k2=k2,
        exponent=exponent,
        coefficient=coefficient,
    )


def bwt_sw_bound(m: int, n: int) -> float:
    """BWT-SW's published bound ``69 m n^0.628`` for <1,-3,-5,-2> (Sec. 2.4)."""
    return 69.0 * m * n**0.628


def paper_bound_extremes(sigma: int) -> tuple[EntryBound, EntryBound]:
    """(min-exponent, max-exponent) bounds over the BLAST grid of Sec. 6.

    For DNA this returns the paper's 4.50 m n^0.520 and 9.05 m n^0.896; for
    protein 8.28 m n^0.364 and 7.49 m n^0.723.
    """
    # The exponent depends only on (sa, sb); the paper quotes coefficients at
    # the deepest q-prefix the grid allows, i.e. gap ratios |sg|/|sa| = 5,
    # |ss|/|sa| = 2 (so |sg + ss| = 7 |sa| and q = min(|sb|/|sa|, 7) + 1).
    bounds = []
    for scheme in blast_scheme_grid(gap_ratios=[(5, 2)]):
        try:
            bounds.append(entry_bound(scheme, sigma))
        except ScoringError:
            continue
    if not bounds:
        raise ScoringError("no applicable scheme in the grid")
    lo = min(bounds, key=lambda b: b.exponent)
    hi = max(bounds, key=lambda b: b.exponent)
    return lo, hi
