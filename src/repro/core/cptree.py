"""CONSTRUCTCPTREE (Algorithm 2): the common prefix tree of Sec. 4.2.

Given the fork-start columns ``j_1 < j_2 < ... < j_k`` of one matrix, the
suffixes ``P[j_w, m]`` share long common prefixes whenever the query repeats
itself.  Algorithm 2 builds a compacted trie over those suffixes *in linear
time* by inserting only the disjoint pieces ``P[j_w, j_{w+1} - 1]`` and
concatenating each new piece onto the previously-inserted leaves through a
chain of ``link`` pointers (each suffix is the concatenation of the pieces
that follow it).

The tree answers the question driving Sec. 4's reuse: which later fork can
copy which column ranges from an earlier fork (two suffixes sharing a prefix
of length L share their first L+1 fork columns, Lemma 2).  The production
engine obtains the same sharing through frontier memoisation (see
``repro.core.reuse``); this module is the faithful standalone implementation
of the paper's data structure, fully unit-tested, and is used by the reuse
engine's planner to report duplicate statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CPNode:
    """A common-prefix-tree node; the edge label leads from its parent."""

    edge: str = ""
    children: dict[str, "CPNode"] = field(default_factory=dict)
    #: Column id bookkeeping used by calMatrixByColumn-style reuse.
    column: int = 0
    #: Fork starts (j_w values) whose suffix terminates through this node.
    suffix_ids: list[int] = field(default_factory=list)

    def child_for(self, char: str) -> "CPNode | None":
        return self.children.get(char)

    def add_child(self, node: "CPNode") -> None:
        self.children[node.edge[0]] = node


class CommonPrefixTree:
    """Compacted trie over the suffixes ``P[j_w, m]`` of the fork columns."""

    def __init__(self, root: CPNode, query: str, columns: list[int]) -> None:
        self.root = root
        self.query = query
        self.columns = columns

    # ------------------------------------------------------------- queries
    def longest_common_prefix(self, j_u: int, j_v: int) -> int:
        """Length of the common prefix of ``P[j_u, m]`` and ``P[j_v, m]``.

        Answered by descending the tree while both suffixes follow the same
        edges; equivalent to (and tested against) direct string comparison.
        """
        s_u = self.query[j_u - 1 :]
        s_v = self.query[j_v - 1 :]
        lcp = 0
        node = self.root
        while True:
            if lcp >= len(s_u) or lcp >= len(s_v) or s_u[lcp] != s_v[lcp]:
                return lcp
            child = node.child_for(s_u[lcp])
            if child is None:
                return lcp
            edge = child.edge
            step = 0
            while (
                step < len(edge)
                and lcp < len(s_u)
                and lcp < len(s_v)
                and s_u[lcp] == edge[step]
                and s_v[lcp] == edge[step]
            ):
                lcp += 1
                step += 1
            if step < len(edge):
                return lcp
            node = child

    def contains_suffix(self, j_w: int) -> bool:
        """Whether ``P[j_w, m]`` is represented by a root-to-leaf path."""
        target = self.query[j_w - 1 :]
        node = self.root
        pos = 0
        while pos < len(target):
            child = node.child_for(target[pos])
            if child is None:
                return False
            edge = child.edge
            if target[pos : pos + len(edge)] != edge:
                return False
            pos += len(edge)
            node = child
        return True

    def leaf_count(self) -> int:
        count = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            if not node.children:
                count += 1
            stack.extend(node.children.values())
        return count


def construct_cp_tree(query: str, columns: list[int]) -> CommonPrefixTree:
    """Algorithm 2: build the common prefix tree for fork columns ``columns``.

    ``columns`` are 1-based fork start positions ``j_1 < ... < j_k``; the
    inserted pieces are ``P[j_w .. j_{w+1} - 1]`` with the last piece running
    to the end of ``P``.  After inserting piece ``w``, the piece is appended
    (via the link chain) under every leaf created by earlier insertions, so
    the final tree contains exactly the suffixes ``P[j_w, m]``.
    """
    if not columns:
        return CommonPrefixTree(CPNode(), query, [])
    if sorted(columns) != list(columns):
        raise ValueError("fork columns must be sorted ascending")

    root = CPNode()
    # Leaves awaiting concatenation of the next piece (the paper's links).
    pending_leaves: list[CPNode] = []

    pieces = []
    for w, j_w in enumerate(columns):
        end = columns[w + 1] - 1 if w + 1 < len(columns) else len(query)
        pieces.append(query[j_w - 1 : end])

    for piece in pieces:
        new_leaves: list[CPNode] = []
        # 1. Insert the piece as a new suffix starting at the root.
        leaf = _insert_from(root, piece)
        if leaf is not None:
            new_leaves.append(leaf)
        # 2. Concatenate the piece under every previously-pending leaf.
        for old_leaf in pending_leaves:
            ext = _insert_from(old_leaf, piece)
            new_leaves.append(ext if ext is not None else old_leaf)
        pending_leaves = new_leaves
    return CommonPrefixTree(root, query, list(columns))


def _insert_from(node: CPNode, piece: str) -> CPNode | None:
    """Insert ``piece`` below ``node``, splitting edges as in lines 7-12.

    Returns the leaf that now terminates the inserted string, or ``None``
    when the piece is empty.
    """
    if not piece:
        return None
    pos = 0
    while pos < len(piece):
        child = node.child_for(piece[pos])
        if child is None:
            leaf = CPNode(edge=piece[pos:])
            node.add_child(leaf)
            return leaf
        edge = child.edge
        k = 0
        while k < len(edge) and pos + k < len(piece) and edge[k] == piece[pos + k]:
            k += 1
        if k == len(edge):
            node = child
            pos += k
            continue
        # Split edge(u, v) by inserting node c' (Algorithm 2 lines 8-10).
        mid = CPNode(edge=edge[:k])
        child.edge = edge[k:]
        del node.children[edge[0]]
        node.add_child(mid)
        mid.add_child(child)
        if pos + k < len(piece):
            leaf = CPNode(edge=piece[pos + k :])
            mid.add_child(leaf)
            return leaf
        return mid
    return node
