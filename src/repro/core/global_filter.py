"""Online global filtering with a boolean matrix G (Sec. 3.2.1 / Theorem 4).

``G[t, j] = 1`` records that some already-processed matrix produced an
alignment ending at text position ``t`` and query column ``j`` with score
``>= sa``.  A new fork seeded at column ``j`` for a path ``X`` is meaningless
when *every* occurrence end of ``X[1..q]``'s seed cell is already marked
(Theorem 4 case 2): each of those alignments can be extended by the same
downstream text characters, dominating everything the fork would compute.

The paper itself notes the O(n * m) space cost and replaces this with the
offline domination index of Sec. 3.2.2; we keep the bitmap variant as an
optional mode (off by default) for the ablation study, implemented over a
numpy boolean matrix with vectorised mark/check (the paper's bitwise AND/OR).
"""

from __future__ import annotations

import numpy as np


class GlobalBitMatrix:
    """The (n+1) x (m+1) boolean accumulator ``G`` of Sec. 3.2.1."""

    def __init__(self, n: int, m: int) -> None:
        self.n = n
        self.m = m
        self._g = np.zeros((n + 1, m + 1), dtype=bool)

    def mark(self, t_ends: list[int], j: int) -> None:
        """OR the column vector ``z`` (occurrence ends) into column ``j``."""
        if t_ends:
            self._g[t_ends, j] = True

    def all_marked(self, t_ends: list[int], j: int) -> bool:
        """AND-check of Theorem 4: is every occurrence end already covered?"""
        if not t_ends:
            return False
        return bool(self._g[t_ends, j].all())

    def marked_cells(self) -> int:
        """Number of set bits (diagnostics)."""
        return int(self._g.sum())

    def size_bytes(self) -> int:
        """Modelled size: one bit per (text position, query column)."""
        return ((self.n + 1) * (self.m + 1) + 7) // 8
