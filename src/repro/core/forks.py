"""Fork areas (Sec. 3.1.3, Fig. 2): EMR -> NGR -> FGOE -> gap region.

A *fork* is everything a single exact q-prefix match seeds in a matrix
``M_X``:

* **EMR** — rows ``1..q`` on the seed diagonal are exact matches; their
  scores ``i * sa`` are *assigned*, not calculated (the engine materialises
  the fork at row ``q`` directly).
* **NGR** — past row ``q`` the fork walks its diagonal with the gap-free
  recurrence (Eq. 3) while its score stays ``<= |sg + ss|``: opening a gap
  from such a score could never stay positive, and no cell to the left of
  the diagonal exists inside this fork, so diagonal-only is exact.
* **FGOE** — the first cell whose score exceeds ``|sg + ss|`` switches the
  fork to its *gap region*: a sparse affine-DP cone grown by
  :func:`repro.align.recurrences.advance_row`.

Forks are advanced independently (every DP path belongs to exactly one fork
— its first q columns pin the start) and the accumulator takes cell-wise
maxima, which both preserves exactness and enables the Sec. 4 reuse copies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.align.recurrences import NEG, CostCounter, Frontier
from repro.core.filters import FilterPlan
from repro.scoring.scheme import ScoringScheme

NGR = "ngr"
GAP = "gap"
DEAD = "dead"


@dataclass(slots=True)
class Fork:
    """One fork of the current suffix-trie path."""

    pip: int  # 1-based fork start column in P
    phase: str = NGR
    score: int = 0  # NGR diagonal score (valid while phase == NGR)
    frontier: Frontier = field(default_factory=dict)  # valid in GAP phase

    def diagonal_column(self, depth: int) -> int:
        """Column of the fork diagonal at row ``depth``: ``pip + depth - 1``."""
        return self.pip + depth - 1

    def is_alive(self) -> bool:
        return self.phase != DEAD

    def result_cells(self, threshold: int) -> list[tuple[int, int]]:
        """``(column, score)`` pairs at or above the reporting threshold."""
        if self.phase == NGR:
            return []  # NGR results are recorded by the engine per advance
        return [
            (j, cell[0]) for j, cell in self.frontier.items() if cell[0] >= threshold
        ]


def split_cohort(
    forks: "list[Fork]",
) -> tuple[list[int], list[int], list[tuple[int, Frontier]]]:
    """Partition seed forks into the vectorized traversal's cohort form.

    Returns ``(pips, scores, gaps)``: the NGR cohort as parallel pip/score
    lists (ascending pips — seeds arrive in column order) plus the gap
    forks as ``(pip, frontier)`` pairs, in one pass.
    """
    pips: list[int] = []
    scores: list[int] = []
    gaps: list[tuple[int, Frontier]] = []
    for fork in forks:
        if fork.phase == NGR:
            pips.append(fork.pip)
            scores.append(fork.score)
        else:
            gaps.append((fork.pip, fork.frontier))
    return pips, scores, gaps


def fgoe_row_frontier(
    score: int,
    col: int,
    m: int,
    scheme: ScoringScheme,
    live: int,
    counter: CostCounter | None = None,
) -> Frontier:
    """Frontier of an FGOE row: the FGOE cell plus its same-row gap tail.

    The paper (Sec. 3.1.3): "From the FGOE (l, pi_p + l - 1), we need to
    calculate another two extension entries (l, pi_p + l) and
    (l + 1, pi_p + l - 1)."  The below-cell comes from the next row advance;
    the same-row cells are the horizontal gap chain computed here:
    ``M(l, col + r) = score + sg + r * ss`` while it stays live.
    """
    frontier: Frontier = {col: (score, NEG)}
    e_val = score + scheme.sg + scheme.ss
    j = col + 1
    while j <= m and e_val > live:
        if counter is not None:
            counter.cell(1)  # Gb-only boundary cell
        frontier[j] = (e_val, NEG)
        e_val += scheme.ss
        j += 1
    return frontier


def seed_fork(
    pip: int,
    plan: FilterPlan,
    scheme: ScoringScheme,
    live: int = 0,
    counter: CostCounter | None = None,
) -> Fork:
    """Create a fork at row ``q`` with its EMR score ``q * sa``.

    If ``q * sa`` already exceeds the FGOE bound (small ``|sg + ss|``), the
    fork is born directly in its gap phase, including the FGOE row tail.
    """
    score = plan.q * scheme.sa
    fork = Fork(pip=pip, score=score)
    if score > plan.fgoe_bound:
        fork.phase = GAP
        fork.frontier = fgoe_row_frontier(
            score, fork.diagonal_column(plan.q), plan.m, scheme, live, counter
        )
    return fork


def advance_ngr(
    fork: Fork,
    x_char: str,
    query: str,
    depth: int,
    plan: FilterPlan,
    scheme: ScoringScheme,
    counter: CostCounter | None,
    use_score_filter: bool = True,
) -> int:
    """Advance an NGR-phase fork one row along its diagonal (Eq. 3).

    Returns the new diagonal score (the fork's phase/score are updated in
    place; a fork whose diagonal leaves the query or dies under the score
    filter transitions to ``DEAD``).
    """
    j = fork.diagonal_column(depth)
    if j > plan.m:
        fork.phase = DEAD
        return NEG
    score = fork.score + (scheme.sa if query[j - 1] == x_char else scheme.sb)
    if counter is not None:
        counter.cell(1)
    if use_score_filter:
        bound = max(
            0,
            plan.threshold - (plan.m - j) * scheme.sa - 1,
            plan.threshold - (plan.lmax - depth) * scheme.sa - 1,
        )
    else:
        bound = 0
    if score <= bound:
        fork.phase = DEAD
        return NEG
    fork.score = score
    if score > plan.fgoe_bound:
        fork.phase = GAP
        fork.frontier = fgoe_row_frontier(
            score, j, plan.m, scheme, bound, counter
        )
    return score
