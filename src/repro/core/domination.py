"""q-prefix domination: offline global filtering (Sec. 3.2.2).

Definition 1 specialised to consecutive text positions: q-gram ``g'``
*q-dominates* ``g`` when every occurrence of ``g`` at position ``t`` in ``T``
has an occurrence of ``g'`` at ``t - 1`` — i.e. ``g'`` is the *unique*
predecessor q-gram of ``g``, and ``g`` never occurs at position 1 (the paper:
"the q-length substring at position 1 could not be dominated").

Lemma 1 then lets ALAE skip the fork at query column ``j`` whenever the
preceding query q-gram ``P[j-1 .. j+q-2]`` equals that unique predecessor:
the fork at column ``j - 1`` of the one-character-longer text path reaches
the same ``A`` cells with scores higher by ``+sa``.  Chains of skips are safe
because predecessor chains walk left through ``T`` and terminate at position
1, which is never dominated.

The index is built offline in one O(n) scan (the paper's "constructing
dominations offline") and its modelled size is reported for Fig. 11.
"""

from __future__ import annotations


class _Multi:
    """Sentinel: more than one distinct predecessor."""

    __repr__ = lambda self: "<multi>"  # noqa: E731 - tiny sentinel


_MULTI = _Multi()


class DominationIndex:
    """Unique-predecessor map over the q-grams of a text."""

    def __init__(self, text: str, q: int) -> None:
        if q < 1:
            raise ValueError(f"q must be >= 1, got {q}")
        self.q = q
        self.n = len(text)
        pred: dict[str, object] = {}
        prev_gram: str | None = None
        for start0 in range(self.n - q + 1):
            gram = text[start0 : start0 + q]
            # Predecessor of the occurrence at 1-based position start0+1 is
            # the gram at start0 (or "none" for the very first position).
            incoming = prev_gram  # None at position 1
            cur = pred.get(gram, _unset)
            if cur is _unset:
                pred[gram] = incoming
            elif cur is not _MULTI and cur != incoming:
                pred[gram] = _MULTI
            prev_gram = gram
        self._pred = pred

    # -------------------------------------------------------- serialization
    @classmethod
    def from_items(
        cls, items: "list[tuple[str, str | None, bool]]", q: int, n: int
    ) -> "DominationIndex":
        """Rebuild an index from :meth:`export_items` rows without a text scan."""
        index = cls.__new__(cls)
        index.q = int(q)
        index.n = int(n)
        pred: dict[str, object] = {}
        for gram, predecessor, multi in items:
            pred[gram] = _MULTI if multi else predecessor
        index._pred = pred
        return index

    def export_items(self) -> "list[tuple[str, str | None, bool]]":
        """``(gram, unique predecessor or None, multi?)`` rows, gram-sorted.

        ``multi`` distinguishes "several distinct predecessors" from "no
        predecessor / occurs at position 1" — both answer ``None`` to
        :meth:`unique_predecessor` but must round-trip distinctly so a
        reloaded index is bit-identical to the scanned one.
        """
        rows: list[tuple[str, str | None, bool]] = []
        for gram in sorted(self._pred):
            value = self._pred[gram]
            if value is _MULTI:
                rows.append((gram, None, True))
            else:
                rows.append((gram, value, False))  # type: ignore[arg-type]
        return rows

    def unique_predecessor(self, gram: str) -> str | None:
        """The single q-gram preceding every occurrence of ``gram``, if any.

        Returns ``None`` when ``gram`` is absent, occurs at position 1, or
        has several distinct predecessors — i.e. when it is *not* dominated.
        """
        cur = self._pred.get(gram)
        if cur is None or cur is _MULTI:
            return None
        return cur  # type: ignore[return-value]

    def is_dominated_by(self, gram: str, candidate: str) -> bool:
        """Whether ``candidate`` q-dominates ``gram`` (Definition 1)."""
        return self.unique_predecessor(gram) == candidate

    def dominated_count(self) -> int:
        """Number of dominated q-grams (for diagnostics / Fig. 11)."""
        return sum(
            1 for v in self._pred.values() if v is not None and v is not _MULTI
        )

    def __len__(self) -> int:
        return len(self._pred)

    def size_bytes(self) -> int:
        """Modelled index size: one (gram, predecessor-gram) pair per entry.

        Dominated entries store both grams (2q bytes); undominated entries
        only need a presence marker (q bytes + 1 flag).
        """
        size = 0
        for value in self._pred.values():
            if value is not None and value is not _MULTI:
                size += 2 * self.q
            else:
                size += self.q + 1
        return size

    def actual_size_bytes(self) -> int:
        """Bytes the index occupies when serialized by ``repro.store``.

        Every entry stores its gram (q bytes), a status byte, and a
        fixed-width predecessor slot (q bytes, zeroed when absent).
        """
        return len(self._pred) * (2 * self.q + 1)


_unset = object()
