"""Score reuse between forks (Sec. 4) via frontier memoisation.

Lemmas 2/3 and Theorem 5 say: two forks of the same matrix whose gap regions
look identical after shifting — same relative scores, and the same upcoming
query characters — produce identical continuations, so the later fork's
columns can be *copied* from the earlier fork's.  The paper discovers such
duplicates with the common prefix tree (Algorithm 2, ``repro.core.cptree``)
and copies column ranges in ``calMatrixByColumn``.

This engine realises the same sharing with a hash memo, which composes
cleanly with the suffix-trie traversal: when several forks of the current
path advance one row, each fork's *reuse key* is

    (relative frontier, upcoming P characters, right-edge distance class)

and forks with equal keys are advanced once; the others receive the shifted
copy and their cells are accounted as *reused* (Eq. 6's numerator).  The
right-edge class is ``-1`` ("far") unless the frontier could reach column
``m`` this row, in which case the exact distance is part of the key — two
forks at different distances from the edge may genuinely diverge there.

Reuse keys deliberately use the shift-invariant row liveness threshold (see
``FilterPlan.row_live_threshold``), so group members stay byte-identical
across rows and keep sharing.
"""

from __future__ import annotations

from repro.align.recurrences import CostCounter, Frontier, advance_row
from repro.scoring.scheme import ScoringScheme

ReuseKey = tuple


def frontier_reuse_key(frontier: Frontier, query: str, m: int, scheme: ScoringScheme) -> ReuseKey:
    """Compute the memo key for one fork's frontier (see module docstring)."""
    cols = sorted(frontier)
    base = cols[0]
    rel = tuple((j - base, frontier[j][0], frontier[j][1]) for j in cols)
    # Upcoming query characters consumed by the diagonal moves.
    window = tuple(query[j] for j in cols if j < m)  # query[j] == P[j+1]
    # Right-edge divergence: how far can this row reach past the last column?
    # One advance can first step diagonally past the last column (+sa) and
    # only then open the horizontal gap chain, so the chain budget must
    # include that diagonal gain: with the bare ``max_m + sg + ss`` budget,
    # schemes with ``sa > -ss`` let two forks at different distances from
    # column ``m`` both key as "far" and share an advance that actually
    # diverges at the truncation boundary (the shifted copy gains phantom
    # columns past ``m`` or loses legitimate cells).
    max_m = max(frontier[j][0] for j in cols)
    reach = (
        max(0, (max_m + scheme.sa + scheme.sg + scheme.ss) // (-scheme.ss)) + 2
    )
    room = m - cols[-1]
    edge = room if room <= reach else -1
    return (rel, window, edge)


class ReuseEngine:
    """Per-row memoisation of fork advances (the Sec. 4 reuse mechanism)."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.reused_cells = 0
        self.memo_hits = 0
        self.memo_misses = 0

    def advance_forks(
        self,
        frontiers: list[Frontier],
        x_char: str,
        query: str,
        m: int,
        scheme: ScoringScheme,
        live: int,
        counter: CostCounter | None,
    ) -> list[Frontier]:
        """Advance every fork frontier one row, sharing identical advances.

        Returns the new frontiers, positionally matching the input list
        (empty dict = fork died).
        """
        if not self.enabled or len(frontiers) < 2:
            return [
                advance_row(fr, x_char, query, m, scheme, live, counter)
                for fr in frontiers
            ]

        # Cheap pre-grouping: full reuse keys are only built for frontiers
        # whose (size, score multiset) signature collides — the common case
        # of all-distinct frontiers costs one tuple per fork.
        sigs = [
            (len(fr), sum(cell[0] for cell in fr.values())) if fr else None
            for fr in frontiers
        ]
        sig_counts: dict[tuple, int] = {}
        for sig in sigs:
            if sig is not None:
                sig_counts[sig] = sig_counts.get(sig, 0) + 1

        memo: dict[ReuseKey, tuple[int, Frontier]] = {}
        out: list[Frontier] = []
        for fr, sig in zip(frontiers, sigs):
            if not fr:
                out.append({})
                continue
            if sig_counts[sig] < 2:
                out.append(
                    advance_row(fr, x_char, query, m, scheme, live, counter)
                )
                continue
            key = frontier_reuse_key(fr, query, m, scheme)
            base = min(fr)
            cached = memo.get(key)
            if cached is not None:
                self.memo_hits += 1
                src_base, src_new = cached
                shift = base - src_base
                copied = {j + shift: cell for j, cell in src_new.items()}
                self.reused_cells += len(copied)
                out.append(copied)
                continue
            self.memo_misses += 1
            new_fr = advance_row(fr, x_char, query, m, scheme, live, counter)
            memo[key] = (base, new_fr)
            out.append(new_fr)
        return out
