"""repro — ALAE: Accelerating Local Alignment with Affine Gap Exactly.

A from-scratch reproduction of Yang, Liu & Wang (PVLDB 5(11), 2012).

Quickstart::

    from repro import ALAE, DEFAULT_SCHEME, DNA

    engine = ALAE("ACGT...", alphabet=DNA, scheme=DEFAULT_SCHEME)
    result = engine.search("GCTAG...", e_value=10.0)
    for hit in result.hits:
        print(hit.t_start, hit.t_end, hit.p_end, hit.score)

The exact baselines (:class:`BwtSw`, :func:`smith_waterman_all_hits`) return
the identical hit set; :class:`Blast` is the heuristic comparator.
"""

from repro.align import (
    BwtSw,
    Hit,
    ResultSet,
    SearchStats,
    basic_search,
    smith_waterman_all_hits,
    smith_waterman_best,
)
from repro.align.smith_waterman import PairwiseAlignment, align_pair
from repro.align.types import SearchResult
from repro.alphabet import DNA, PROTEIN, Alphabet
from repro.blast import Blast
from repro.core import ALAE, entry_bound, paper_bound_extremes
from repro.data import genome, mutate, sample_homologous_queries
from repro.errors import ReproError
from repro.io import (
    LocatedHit,
    SequenceDatabase,
    ShardPlan,
    parse_fasta,
    parse_fasta_file,
    write_fasta,
)
from repro.scoring import (
    BLAST_DNA_SCHEMES,
    DEFAULT_SCHEME,
    KarlinAltschul,
    ScoringScheme,
)
from repro.server import (
    SearchServer,
    ServedBatch,
    ServedResult,
    ServerClient,
    ServerThread,
)
from repro.service import (
    BatchReport,
    Query,
    QueryResult,
    SearchService,
    ShardedBatchReport,
    ShardedSearchService,
)
from repro.store import (
    IndexStore,
    ShardedStore,
    StoreCache,
    StoreError,
    default_store_cache,
)
from repro.workloads import Workload, make_workload

__version__ = "1.0.0"

__all__ = [
    "ALAE",
    "BwtSw",
    "Blast",
    "smith_waterman_all_hits",
    "smith_waterman_best",
    "basic_search",
    "align_pair",
    "PairwiseAlignment",
    "Hit",
    "ResultSet",
    "SearchResult",
    "SearchStats",
    "Alphabet",
    "DNA",
    "PROTEIN",
    "ScoringScheme",
    "DEFAULT_SCHEME",
    "BLAST_DNA_SCHEMES",
    "KarlinAltschul",
    "entry_bound",
    "paper_bound_extremes",
    "SequenceDatabase",
    "ShardPlan",
    "LocatedHit",
    "SearchService",
    "ShardedSearchService",
    "Query",
    "QueryResult",
    "BatchReport",
    "ShardedBatchReport",
    "SearchServer",
    "ServerClient",
    "ServerThread",
    "ServedBatch",
    "ServedResult",
    "IndexStore",
    "ShardedStore",
    "StoreCache",
    "StoreError",
    "default_store_cache",
    "parse_fasta",
    "parse_fasta_file",
    "write_fasta",
    "genome",
    "mutate",
    "sample_homologous_queries",
    "Workload",
    "make_workload",
    "ReproError",
    "__version__",
]
