"""Workload replay: turn yesterday's request log into today's benchmark.

Synthetic benchmarks answer "how fast is the engine"; capacity planning
needs "how does *my traffic* behave on this index".  Replay reconstructs
the logged traffic's shape — query-length histogram, mode mix, search-param
mix, arrival pacing — into a :class:`ReplayPlan` that is **deterministic**:
the plan is derived from the catalog's aggregates plus a seed through a
fixed-seed generator, so the same catalog contents and seed produce a
byte-identical plan (``to_json`` is canonical), and a plan can be committed,
diffed, and re-run forever even after the log grows.

Running a plan (:func:`replay_plan`) drives a local service or a live
server with queries cut from the served database itself (seeded, so the
traffic is identical run to run) and folds the outcome into a
:class:`CapacityReport`: overall and per-shard latency percentiles, cache
hit rate, overload count — and the name of the hottest shard, which is the
number the scale-out roadmap item needs (where to split or replicate).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.errors import ReproError
from repro.obs.catalog import Catalog
from repro.obs.spans import shard_seconds


class ReplayError(ReproError):
    """The catalog holds no replayable traffic or the target is unusable."""


def _percentile(samples: list[float], point: float) -> float:
    """Nearest-rank percentile (the server's convention), 0.0 when empty."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, int(point * len(ordered)))
    return ordered[rank]


@dataclass(frozen=True)
class ReplayEvent:
    """One replayed request: when, how long a query, which mode/params."""

    offset: float
    length: int
    mode: str
    threshold: int | None
    e_value: float | None
    top_k: int | None


@dataclass
class ReplayPlan:
    """A deterministic reconstruction of a logged traffic mix."""

    seed: int
    events: list[ReplayEvent]
    source: dict = field(default_factory=dict)

    def to_json(self) -> str:
        """Canonical serialization: same plan -> same bytes, always."""
        payload = {
            "seed": self.seed,
            "source": self.source,
            "events": [
                [
                    round(e.offset, 6), e.length, e.mode,
                    e.threshold, e.e_value, e.top_k,
                ]
                for e in self.events
            ],
        }
        return json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "ReplayPlan":
        payload = json.loads(text)
        return cls(
            seed=int(payload["seed"]),
            events=[
                ReplayEvent(
                    offset=float(raw[0]), length=int(raw[1]), mode=str(raw[2]),
                    threshold=raw[3], e_value=raw[4], top_k=raw[5],
                )
                for raw in payload["events"]
            ],
            source=payload.get("source", {}),
        )

    @classmethod
    def from_catalog(
        cls,
        catalog: "Catalog | str | Path",
        *,
        seed: int = 0,
        count: int | None = None,
        rate_scale: float = 1.0,
    ) -> "ReplayPlan":
        """Build a plan from a catalog's request log.

        ``count`` overrides the number of replayed requests (default: as
        many as were logged); ``rate_scale`` compresses or stretches the
        observed arrival pacing (2.0 = twice the logged qps).  Every draw
        comes from one ``default_rng(seed)`` stream over *sorted* aggregate
        rows, so the plan depends only on (log contents, seed, count,
        rate_scale) — never on SQL row order or wall-clock time.
        """
        owned = isinstance(catalog, (str, Path))
        cat = Catalog(catalog) if owned else catalog
        try:
            mix = cat.request_mix()
            params = cat._conn.execute(
                "SELECT threshold, e_value, top_k, COUNT(*) AS n "
                "FROM requests WHERE status='ok' "
                "GROUP BY threshold, e_value, top_k "
                "ORDER BY threshold, e_value, top_k"
            ).fetchall()
        finally:
            if owned:
                cat.close()
        if mix.total == 0:
            raise ReplayError(
                "the catalog's request log is empty; serve with "
                "--request-log first"
            )
        total = mix.total if count is None else count
        if total < 1:
            raise ReplayError(f"replay count must be >= 1, got {total}")
        if rate_scale <= 0:
            raise ReplayError(f"rate_scale must be > 0, got {rate_scale}")
        rng = np.random.default_rng(seed)
        lengths = np.array([l for l, _ in mix.length_counts], dtype=np.int64)
        length_w = np.array([n for _, n in mix.length_counts], dtype=np.float64)
        modes = [m for m, _ in mix.mode_counts]
        mode_w = np.array([n for _, n in mix.mode_counts], dtype=np.float64)
        param_rows = [
            (row["threshold"], row["e_value"], row["top_k"], int(row["n"]))
            for row in params
        ]
        param_w = np.array([n for *_s, n in param_rows], dtype=np.float64)
        drawn_lengths = rng.choice(lengths, size=total, p=length_w / length_w.sum())
        drawn_modes = rng.choice(len(modes), size=total, p=mode_w / mode_w.sum())
        drawn_params = rng.choice(
            len(param_rows), size=total, p=param_w / param_w.sum()
        )
        mean_gap = mix.mean_interarrival / rate_scale
        if mean_gap > 0:
            gaps = rng.exponential(mean_gap, size=total)
            gaps[0] = 0.0
            offsets = np.cumsum(gaps)
        else:
            offsets = np.zeros(total)
        events = []
        for i in range(total):
            thr, e_val, top_k, _n = param_rows[int(drawn_params[i])]
            events.append(
                ReplayEvent(
                    offset=float(round(offsets[i], 6)),
                    length=int(drawn_lengths[i]),
                    mode=modes[int(drawn_modes[i])],
                    threshold=None if thr is None else int(thr),
                    e_value=None if e_val is None else float(e_val),
                    top_k=None if top_k is None else int(top_k),
                )
            )
        return cls(
            seed=seed,
            events=events,
            source={
                "logged_requests": mix.total,
                "mean_interarrival": round(mix.mean_interarrival, 6),
                "span_seconds": round(mix.span_seconds, 6),
                "lengths": [list(pair) for pair in mix.length_counts],
                "modes": [list(pair) for pair in mix.mode_counts],
                "rate_scale": rate_scale,
            },
        )


def synthesize_queries(plan: ReplayPlan, text: str) -> list[str]:
    """Cut one query per event from the served text, seeded by the plan.

    Lengths come from the plan; start positions from an independent stream
    (``default_rng([seed, 1])``) so query content is as deterministic as
    the plan itself.  Lengths longer than the text clamp to it.
    """
    if not text:
        raise ReplayError("cannot synthesize queries over an empty database")
    rng = np.random.default_rng([plan.seed, 1])
    queries = []
    for event in plan.events:
        length = min(event.length, len(text))
        start = int(rng.integers(0, len(text) - length + 1))
        queries.append(text[start : start + length])
    return queries


@dataclass
class CapacityReport:
    """What the replayed traffic did to the target (the capacity answer)."""

    queries: int
    wall_seconds: float
    latency: dict
    per_shard: dict
    hottest_shard: int | None
    cache_hits: int
    overloaded: int
    errors: int
    mode_counts: dict

    @property
    def queries_per_second(self) -> float:
        return self.queries / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_hits / self.queries if self.queries else 0.0

    def to_dict(self) -> dict:
        return {
            "queries": self.queries,
            "wall_seconds": round(self.wall_seconds, 6),
            "queries_per_second": round(self.queries_per_second, 3),
            "latency_seconds": self.latency,
            "per_shard_seconds": self.per_shard,
            "hottest_shard": self.hottest_shard,
            "cache_hits": self.cache_hits,
            "cache_hit_rate": round(self.cache_hit_rate, 4),
            "overloaded": self.overloaded,
            "errors": self.errors,
            "mode_counts": self.mode_counts,
        }

    def format(self) -> str:
        lines = [
            f"replayed {self.queries} queries in {self.wall_seconds:.3f}s "
            f"({self.queries_per_second:.1f} qps), "
            f"cache hit rate {self.cache_hit_rate:.2%}, "
            f"overloaded {self.overloaded}, errors {self.errors}",
            "latency p50={p50:.4f}s p90={p90:.4f}s p99={p99:.4f}s".format(
                **self.latency
            ),
        ]
        for shard in sorted(self.per_shard):
            stats = self.per_shard[shard]
            marker = "  <- hottest" if shard == self.hottest_shard else ""
            lines.append(
                f"shard {shard}: p50={stats['p50']:.4f}s "
                f"p90={stats['p90']:.4f}s p99={stats['p99']:.4f}s "
                f"total={stats['total']:.3f}s{marker}"
            )
        if self.mode_counts:
            mix = " ".join(
                f"{mode}={count}" for mode, count in sorted(self.mode_counts.items())
            )
            lines.append(f"mode mix: {mix}")
        return "\n".join(lines)


def _finish_report(
    *,
    latencies: list[float],
    shard_samples: dict[int, list[float]],
    wall: float,
    cache_hits: int,
    overloaded: int,
    errors: int,
    mode_counts: dict,
) -> CapacityReport:
    per_shard = {
        shard: {
            "p50": round(_percentile(samples, 0.5), 6),
            "p90": round(_percentile(samples, 0.9), 6),
            "p99": round(_percentile(samples, 0.99), 6),
            "total": round(sum(samples), 6),
        }
        for shard, samples in shard_samples.items()
    }
    hottest = (
        max(per_shard, key=lambda s: (per_shard[s]["p99"], per_shard[s]["total"]))
        if per_shard
        else None
    )
    return CapacityReport(
        queries=len(latencies),
        wall_seconds=wall,
        latency={
            "p50": round(_percentile(latencies, 0.5), 6),
            "p90": round(_percentile(latencies, 0.9), 6),
            "p99": round(_percentile(latencies, 0.99), 6),
        },
        per_shard=per_shard,
        hottest_shard=hottest,
        cache_hits=cache_hits,
        overloaded=overloaded,
        errors=errors,
        mode_counts=mode_counts,
    )


def replay_plan(
    plan: ReplayPlan,
    *,
    service=None,
    host: str | None = None,
    port: int | None = None,
    text: str | None = None,
    pace: bool = False,
    timeout: float = 60.0,
) -> CapacityReport:
    """Run a plan against a local service or a live ``repro serve``.

    Exactly one target: ``service`` (a :class:`~repro.service.SearchService`
    or sharded service — ``text`` defaults to its database) or
    ``host``/``port`` (``text`` is then required to synthesize queries,
    normally the served index's database).  ``pace=True`` honours the
    plan's arrival offsets; the default replays back-to-back for a
    capacity ceiling.  Requests are issued one at a time, so latencies are
    uncontended service times.
    """
    if (service is None) == (host is None or port is None):
        raise ReplayError("pass either service= or host=/port=, not both")
    if text is None:
        if service is None or not hasattr(service, "database"):
            raise ReplayError(
                "pass text= (the served database text) when replaying "
                "against a server or a sharded service"
            )
        text = service.database.text
    queries = synthesize_queries(plan, text)
    latencies: list[float] = []
    shard_samples: dict[int, list[float]] = {}
    mode_counts: dict[str, int] = {}
    cache_hits = overloaded = errors = 0
    client = None
    if service is None:
        from repro.server import ServerClient, ServerOverloaded, ServerError

        client = ServerClient(host, port, timeout=timeout)
    started = time.perf_counter()
    try:
        for event, sequence in zip(plan.events, queries):
            if pace:
                behind = event.offset - (time.perf_counter() - started)
                if behind > 0:
                    time.sleep(behind)
            mode_counts[event.mode] = mode_counts.get(event.mode, 0) + 1
            kwargs: dict = {"mode": event.mode}
            if event.threshold is not None:
                kwargs["threshold"] = event.threshold
            else:
                kwargs["e_value"] = 10.0 if event.e_value is None else event.e_value
            if event.top_k is not None:
                kwargs["top_k"] = event.top_k
            t0 = time.perf_counter()
            if service is not None:
                result = service.search(sequence, **kwargs)
                latencies.append(time.perf_counter() - t0)
                for shard, seconds in enumerate(shard_seconds(result.stats.spans)):
                    shard_samples.setdefault(shard, []).append(seconds)
            else:
                try:
                    batch = client.search([sequence], trace=True, **kwargs)
                except ServerOverloaded:
                    overloaded += 1
                    latencies.append(time.perf_counter() - t0)
                    continue
                except ServerError:
                    errors += 1
                    latencies.append(time.perf_counter() - t0)
                    continue
                latencies.append(time.perf_counter() - t0)
                served = batch.results[0]
                if served.cached:
                    cache_hits += 1
                for shard, seconds in enumerate(shard_seconds(served.spans)):
                    shard_samples.setdefault(shard, []).append(seconds)
    finally:
        if client is not None:
            client.close()
    wall = time.perf_counter() - started
    return _finish_report(
        latencies=latencies,
        shard_samples=shard_samples,
        wall=wall,
        cache_hits=cache_hits,
        overloaded=overloaded,
        errors=errors,
        mode_counts=mode_counts,
    )
