"""Logging configuration for the ``repro.*`` logger hierarchy.

All diagnostics in ``src/`` go through ``logging.getLogger("repro...")``;
this module owns the one place handlers are attached.  Libraries stay
silent by default (standard library behaviour); entry points opt in via
:func:`configure_logging`, which ``repro serve --log-level/--log-json``
and the other CLI commands call.

``--log-json`` emits one JSON object per line (``ts``, ``level``,
``logger``, ``message``) so a served process's stderr can be shipped
straight into a log pipeline without a parse step.
"""

from __future__ import annotations

import json
import logging
import sys
import time

ROOT_LOGGER = "repro"


class JsonLineFormatter(logging.Formatter):
    """One canonical JSON object per record (machine-readable stderr)."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
        }
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True)


def configure_logging(
    level: str = "info",
    *,
    json_lines: bool = False,
    stream=None,
) -> logging.Logger:
    """Attach one stderr handler to the ``repro`` logger and set its level.

    Idempotent: repeat calls replace the previous handler rather than
    stacking duplicates (matters for in-process test harnesses that start
    several servers).
    """
    numeric = logging.getLevelName(level.upper())
    if not isinstance(numeric, int):
        raise ValueError(f"unknown log level: {level!r}")
    logger = logging.getLogger(ROOT_LOGGER)
    logger.setLevel(numeric)
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    if json_lines:
        handler.setFormatter(JsonLineFormatter())
    else:
        formatter = logging.Formatter(
            "%(asctime)s %(levelname)s %(name)s: %(message)s"
        )
        formatter.converter = time.gmtime
        handler.setFormatter(formatter)
    logger.addHandler(handler)
    logger.propagate = False
    return logger
