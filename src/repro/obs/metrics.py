"""Process-wide metrics registry with Prometheus text exposition.

Three primitives — :class:`Counter`, :class:`Gauge`, and fixed-bucket
:class:`Histogram` — register themselves on a process-wide
:class:`MetricsRegistry` at module import (the REP701 lint rule enforces
import-time construction, so label series and registration never race a
request).  Design constraints, in order:

* **Cheap on the hot path.**  A labelled increment is one dict hit (label
  children are cached) plus one short critical section under a per-metric
  lock — no allocation, no string formatting.  Call :func:`set_enabled`
  with ``False`` and every mutator becomes a single global read and an
  early return, which is what the throughput bench compares against.
* **Deterministic output.**  ``exposition()`` sorts families by name and
  series by label values, bucket bounds are fixed at construction, and
  values format identically across runs (integers without a trailing
  ``.0``), so tests can assert exact exposition strings.
* **No imports beyond stdlib + ``repro.errors``.**  Every serving layer
  imports this module; it must never import them back.

Counters and histograms are exact under concurrency (mutations are
locked), which the thread-hammer tests assert.  Gauges are last-write-wins
by nature.  Quantiles come from the cumulative bucket counts and return
the upper bound of the containing bucket — a deterministic overestimate,
which is the safe direction for the latency-budget routing signals this
module feeds.
"""

from __future__ import annotations

import math
import re
import threading
from typing import Iterable, Mapping

from repro.errors import ReproError


class MetricsError(ReproError):
    """Invalid metric definition or use (bad name, label mismatch, ...)."""


#: Default latency buckets (seconds): sub-millisecond to 10 s, the range a
#: single served query can realistically span on this engine.
DEFAULT_LATENCY_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Buckets for "how many queries rode in this batch" style size histograms.
SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

_enabled = True

#: Sentinel meaning "the default registry" (must be distinguishable from
#: an explicit ``registry=None``, which means "unregistered").
_DEFAULT = object()


def set_enabled(flag: bool) -> None:
    """Globally enable/disable metric mutation (values freeze, reads work)."""
    global _enabled
    _enabled = bool(flag)


def metrics_enabled() -> bool:
    return _enabled


def format_value(value: float) -> str:
    """Render a sample value the same way every time.

    Integral values print without a fraction (``3`` not ``3.0``) and
    infinities as ``+Inf``/``-Inf``, matching Prometheus conventions and
    keeping exposition byte-stable for tests.
    """
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    as_float = float(value)
    if as_float.is_integer() and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _render_labels(names: tuple[str, ...], values: tuple[str, ...]) -> str:
    if not names:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label(value)}"'
        for name, value in zip(names, values)
    )
    return "{" + inner + "}"


class _Child:
    """State for one label combination; shares the parent metric's lock."""

    __slots__ = ("_lock",)

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock


class _CounterChild(_Child):
    __slots__ = ("_value",)

    def __init__(self, lock: threading.Lock) -> None:
        super().__init__(lock)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if not _enabled:
            return
        if amount < 0:
            raise MetricsError("counters can only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def _reset(self) -> None:
        self._value = 0.0


class _GaugeChild(_Child):
    __slots__ = ("_value",)

    def __init__(self, lock: threading.Lock) -> None:
        super().__init__(lock)
        self._value = 0.0

    def set(self, value: float) -> None:
        if not _enabled:
            return
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if not _enabled:
            return
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value

    def _reset(self) -> None:
        self._value = 0.0


class _HistogramChild(_Child):
    __slots__ = ("_bounds", "_counts", "_sum")

    def __init__(self, lock: threading.Lock, bounds: tuple[float, ...]) -> None:
        super().__init__(lock)
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # trailing slot is +Inf
        self._sum = 0.0

    def observe(self, value: float) -> None:
        if not _enabled:
            return
        value = float(value)
        index = 0
        for bound in self._bounds:
            if value <= bound:
                break
            index += 1
        with self._lock:
            self._counts[index] += 1
            self._sum += value

    @property
    def count(self) -> int:
        return sum(self._counts)

    @property
    def sum(self) -> float:
        return self._sum

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket containing the q-quantile observation.

        Deterministic and conservative (never underestimates); returns
        0.0 with no observations and the largest finite bound for
        observations past it.
        """
        if not 0.0 <= q <= 1.0:
            raise MetricsError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            counts = list(self._counts)
        total = sum(counts)
        if total == 0:
            return 0.0
        rank = q * total
        cumulative = 0
        for bound, count in zip(self._bounds, counts):
            cumulative += count
            if cumulative >= rank:
                return bound
        return self._bounds[-1]

    def _reset(self) -> None:
        self._counts = [0] * (len(self._bounds) + 1)
        self._sum = 0.0


class _Metric:
    """Base for the three primitives: label handling + registration."""

    type = "untyped"
    _child_cls: type[_Child] = _Child

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Iterable[str] = (),
        *,
        registry: "MetricsRegistry | None | object" = _DEFAULT,
    ) -> None:
        if not _NAME_RE.match(name):
            raise MetricsError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        for label in self.labelnames:
            if not _LABEL_RE.match(label) or label.startswith("__"):
                raise MetricsError(f"invalid label name {label!r}")
        self._lock = threading.Lock()
        self._children: dict[tuple[str, ...], _Child] = {}
        if registry is _DEFAULT:
            registry = REGISTRY
        if registry is not None:
            registry.register(self)

    def _signature(self) -> tuple:
        return (type(self).__name__, self.labelnames)

    def _adopt(self, other: "_Metric") -> None:
        """Share state with ``other`` (same name re-registered, e.g. on a
        module re-import): both instances read and write one series set."""
        self._lock = other._lock
        self._children = other._children

    def _make_child(self) -> _Child:
        return self._child_cls(self._lock)

    def labels(self, *values: object, **kwargs: object) -> _Child:
        if kwargs:
            if values:
                raise MetricsError("pass label values positionally or by name, not both")
            try:
                values = tuple(kwargs[name] for name in self.labelnames)
            except KeyError as exc:
                raise MetricsError(f"missing label {exc.args[0]!r} for {self.name}") from None
            if len(kwargs) != len(self.labelnames):
                raise MetricsError(f"unexpected labels for {self.name}: {sorted(kwargs)}")
        if len(values) != len(self.labelnames):
            raise MetricsError(
                f"{self.name} takes {len(self.labelnames)} label values, "
                f"got {len(values)}"
            )
        key = tuple(str(v) for v in values)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    child = self._make_child()
                    self._children[key] = child
        return child

    def _default_child(self) -> _Child:
        return self.labels()

    def _sorted_children(self) -> list[tuple[tuple[str, ...], _Child]]:
        with self._lock:
            return sorted(self._children.items())

    def _reset(self) -> None:
        with self._lock:
            for child in self._children.values():
                child._reset()  # type: ignore[attr-defined]

    def series(self) -> list[tuple[dict, _Child]]:
        """``(labels_dict, child)`` per label combination, sorted by labels."""
        return [
            (dict(zip(self.labelnames, key)), child)
            for key, child in self._sorted_children()
        ]

    # -- exposition -------------------------------------------------------
    def sample_lines(self) -> list[str]:
        lines = []
        for key, child in self._sorted_children():
            labels = _render_labels(self.labelnames, key)
            lines.append(f"{self.name}{labels} {format_value(child.value)}")
        return lines

    def collect_samples(self) -> list[dict]:
        samples = []
        for key, child in self._sorted_children():
            samples.append(
                {"labels": dict(zip(self.labelnames, key)), "value": child.value}
            )
        return samples


class Counter(_Metric):
    """Monotonically increasing count; name should end in ``_total``."""

    type = "counter"
    _child_cls = _CounterChild

    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)

    @property
    def value(self) -> float:
        return self._default_child().value


class Gauge(_Metric):
    """A value that can go up and down (queue depth, in-flight requests)."""

    type = "gauge"
    _child_cls = _GaugeChild

    def set(self, value: float) -> None:
        self._default_child().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default_child().dec(amount)

    @property
    def value(self) -> float:
        return self._default_child().value


class Histogram(_Metric):
    """Fixed-bucket histogram with cumulative Prometheus exposition."""

    type = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Iterable[str] = (),
        *,
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS,
        registry: "MetricsRegistry | None | object" = _DEFAULT,
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise MetricsError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise MetricsError("bucket bounds must be strictly increasing")
        if math.inf in bounds:
            bounds = bounds[:-1]  # +Inf is implicit
        self.buckets = bounds
        if "le" in tuple(labelnames):
            raise MetricsError("'le' is reserved for histogram buckets")
        super().__init__(name, help, labelnames, registry=registry)

    def _signature(self) -> tuple:
        return (type(self).__name__, self.labelnames, self.buckets)

    def _make_child(self) -> _HistogramChild:
        return _HistogramChild(self._lock, self.buckets)

    def observe(self, value: float) -> None:
        self._default_child().observe(value)

    def quantile(self, q: float) -> float:
        return self._default_child().quantile(q)

    @property
    def count(self) -> int:
        return self._default_child().count

    @property
    def sum(self) -> float:
        return self._default_child().sum

    def sample_lines(self) -> list[str]:
        lines = []
        for key, child in self._sorted_children():
            with self._lock:
                counts = list(child._counts)
                total_sum = child._sum
            cumulative = 0
            for bound, count in zip(self.buckets + (math.inf,), counts):
                cumulative += count
                names = self.labelnames + ("le",)
                values = key + (format_value(bound),)
                labels = _render_labels(names, values)
                lines.append(f"{self.name}_bucket{labels} {cumulative}")
            labels = _render_labels(self.labelnames, key)
            lines.append(f"{self.name}_sum{labels} {format_value(total_sum)}")
            lines.append(f"{self.name}_count{labels} {cumulative}")
        return lines

    def collect_samples(self) -> list[dict]:
        samples = []
        for key, child in self._sorted_children():
            with self._lock:
                counts = list(child._counts)
                total_sum = child._sum
            buckets = []
            cumulative = 0
            for bound, count in zip(self.buckets + (math.inf,), counts):
                cumulative += count
                buckets.append([format_value(bound), cumulative])
            samples.append(
                {
                    "labels": dict(zip(self.labelnames, key)),
                    "buckets": buckets,
                    "sum": total_sum,
                    "count": cumulative,
                }
            )
        return samples


class MetricsRegistry:
    """Holds metric families; renders them as text or structured data."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}

    def register(self, metric: _Metric) -> None:
        with self._lock:
            existing = self._metrics.get(metric.name)
            if existing is not None:
                if existing._signature() != metric._signature():
                    raise MetricsError(
                        f"metric {metric.name!r} already registered with a "
                        "different type, labels, or buckets"
                    )
                metric._adopt(existing)
                return
            self._metrics[metric.name] = metric

    def get(self, name: str) -> _Metric | None:
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def _families(self) -> list[_Metric]:
        with self._lock:
            return sorted(self._metrics.values(), key=lambda m: m.name)

    def exposition(self) -> str:
        """Prometheus text exposition format 0.0.4, deterministically ordered."""
        lines: list[str] = []
        for metric in self._families():
            lines.append(f"# HELP {metric.name} {_escape_help(metric.help)}")
            lines.append(f"# TYPE {metric.name} {metric.type}")
            lines.extend(metric.sample_lines())
        return "\n".join(lines) + "\n"

    def collect(self) -> list[dict]:
        """Structured families for the JSON wire protocol's ``metrics`` op."""
        return [
            {
                "name": metric.name,
                "type": metric.type,
                "help": metric.help,
                "samples": metric.collect_samples(),
            }
            for metric in self._families()
        ]

    def reset(self) -> None:
        """Zero every series, keeping registrations and label sets (tests)."""
        for metric in self._families():
            metric._reset()


class EWMA:
    """Exponentially weighted moving average — the queue-depth routing signal."""

    __slots__ = ("alpha", "_value", "_primed", "_lock")

    def __init__(self, alpha: float = 0.2) -> None:
        if not 0.0 < alpha <= 1.0:
            raise MetricsError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self._value = 0.0
        self._primed = False
        self._lock = threading.Lock()

    def update(self, sample: float) -> float:
        with self._lock:
            if not self._primed:
                self._value = float(sample)
                self._primed = True
            else:
                self._value += self.alpha * (float(sample) - self._value)
            return self._value

    @property
    def value(self) -> float:
        return self._value


#: The process-wide registry every instrumented module registers on.
REGISTRY = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    return REGISTRY


# ---------------------------------------------------------------------------
# Helpers for consumers of collect() output (repro top, routing clients).

def family(families: list[dict], name: str) -> dict | None:
    """Find one family by name in ``MetricsRegistry.collect()`` output."""
    for fam in families:
        if fam.get("name") == name:
            return fam
    return None


def sample_value(families: list[dict], name: str, **labels: str) -> float | None:
    """Value of the sample of ``name`` matching exactly ``labels``."""
    fam = family(families, name)
    if fam is None:
        return None
    want = {k: str(v) for k, v in labels.items()}
    for sample in fam["samples"]:
        if sample["labels"] == want:
            return sample.get("value")
    return None


def histogram_quantile(sample: Mapping, q: float) -> float:
    """Quantile (upper bucket bound) from one structured histogram sample."""
    total = sample.get("count", 0)
    if not total:
        return 0.0
    rank = q * total
    previous = 0.0
    for bound_text, cumulative in sample["buckets"]:
        if bound_text == "+Inf":
            return previous
        previous = float(bound_text)
        if cumulative >= rank:
            return previous
    return previous
