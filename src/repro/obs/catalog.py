"""The SQLite catalog: a durable record of every built index and bench run.

Everything the serving stack builds or measures is ephemeral today — a
store is a file whose provenance lives in someone's shell history, a
benchmark is a JSON blob with no pointer to the index it ran against, and
the server's counters die with the process.  The catalog is the durable
control plane under all of it: one SQLite file (``WAL`` journal,
``busy_timeout``, versioned schema with forward migrations) holding

* one row per built :class:`~repro.store.IndexStore` / ``REPROSHD``
  manifest — path, fingerprint, header/payload CRCs, record counts, shard
  layout, build wall time — written by ``repro index build`` whenever a
  catalog is attached (``--catalog`` or the ``REPRO_CATALOG`` env var);
* one row per benchmark result, keyed to the store it ran against (or to a
  bare fingerprint for store-less engine benches), so ``BENCH_*.json``
  numbers become queryable history instead of overwritten files;
* the server's structured request log (see :mod:`repro.obs.reqlog`), the
  raw material for workload replay (:mod:`repro.obs.replay`).

``repro catalog ls / show / verify-all / record-bench`` are the CLI over
this file.  ``verify-all`` recomputes every catalogued store's checksums
*and* cross-checks the on-disk identity against the recorded CRCs, so a
store rebuilt or corrupted behind the catalog's back is named, not missed.
"""

from __future__ import annotations

import json
import os
import sqlite3
import time
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ReproError

#: Environment variable naming the catalog every build/bench auto-records to.
CATALOG_ENV = "REPRO_CATALOG"

#: Current schema version (``PRAGMA user_version``).  Bump when adding a
#: migration; existing files upgrade in place on open.
SCHEMA_VERSION = 2


class CatalogError(ReproError):
    """The catalog file is unusable or an operation references missing rows."""


def connect(path: str | Path, *, timeout_ms: int = 30_000) -> sqlite3.Connection:
    """Open a catalog connection with the WAL/busy-timeout pragma set.

    Every reader and writer — the CLI, the request-log writer thread, a
    replay run — goes through here, so concurrent access degrades to
    bounded waiting instead of ``database is locked`` errors.
    """
    conn = sqlite3.connect(str(path), timeout=timeout_ms / 1000.0)
    conn.row_factory = sqlite3.Row
    conn.execute("PRAGMA journal_mode=WAL")
    conn.execute("PRAGMA synchronous=NORMAL")
    conn.execute("PRAGMA foreign_keys=ON")
    conn.execute(f"PRAGMA busy_timeout={int(timeout_ms)}")
    return conn


def _migrate_v1(conn: sqlite3.Connection) -> None:
    """v1: stores + shard layout + the request log."""
    conn.executescript(
        """
        CREATE TABLE IF NOT EXISTS stores (
            store_id      INTEGER PRIMARY KEY,
            path          TEXT NOT NULL,
            kind          TEXT NOT NULL CHECK (kind IN ('store', 'manifest')),
            fingerprint   TEXT NOT NULL,
            identity_crc  INTEGER NOT NULL,
            records       INTEGER NOT NULL,
            total_length  INTEGER NOT NULL,
            shard_count   INTEGER NOT NULL,
            file_bytes    INTEGER NOT NULL,
            created_utc   TEXT NOT NULL,
            UNIQUE (path, identity_crc)
        );
        CREATE TABLE IF NOT EXISTS shards (
            store_id      INTEGER NOT NULL
                          REFERENCES stores(store_id) ON DELETE CASCADE,
            shard         INTEGER NOT NULL,
            path          TEXT NOT NULL,
            header_crc    INTEGER NOT NULL,
            records       INTEGER NOT NULL,
            total_length  INTEGER NOT NULL,
            PRIMARY KEY (store_id, shard)
        );
        CREATE TABLE IF NOT EXISTS requests (
            request_id      INTEGER PRIMARY KEY,
            ts              REAL NOT NULL,
            query_hash      TEXT NOT NULL,
            query_length    INTEGER NOT NULL,
            mode            TEXT NOT NULL,
            threshold       INTEGER,
            e_value         REAL,
            top_k           INTEGER,
            latency_seconds REAL NOT NULL,
            cached          INTEGER NOT NULL,
            batch_size      INTEGER,
            shard_timings   TEXT,
            generation      INTEGER NOT NULL,
            status          TEXT NOT NULL
        );
        CREATE INDEX IF NOT EXISTS requests_ts ON requests(ts);
        """
    )


def _migrate_v2(conn: sqlite3.Connection) -> None:
    """v2: build wall time on stores, plus the benchmark-results table."""
    conn.execute("ALTER TABLE stores ADD COLUMN build_seconds REAL")
    conn.executescript(
        """
        CREATE TABLE IF NOT EXISTS benchmarks (
            bench_id     INTEGER PRIMARY KEY,
            store_id     INTEGER
                         REFERENCES stores(store_id) ON DELETE SET NULL,
            fingerprint  TEXT,
            name         TEXT NOT NULL,
            metrics      TEXT NOT NULL,
            created_utc  TEXT NOT NULL
        );
        CREATE INDEX IF NOT EXISTS benchmarks_store ON benchmarks(store_id);
        """
    )


#: Ordered migrations; ``_MIGRATIONS[i]`` upgrades ``user_version`` i -> i+1.
_MIGRATIONS = (_migrate_v1, _migrate_v2)


def apply_migrations(
    conn: sqlite3.Connection, *, upto: int = SCHEMA_VERSION
) -> int:
    """Bring ``conn`` up to schema ``upto``; returns the resulting version.

    A file newer than this library refuses to open (downgrades would drop
    data the newer writer relies on).  Exposed — with ``upto`` — so tests
    can materialize historical versions and assert the upgrade path.
    """
    (version,) = conn.execute("PRAGMA user_version").fetchone()
    if version > len(_MIGRATIONS):
        raise CatalogError(
            f"catalog schema v{version} is newer than this library "
            f"(v{len(_MIGRATIONS)}); upgrade repro instead of downgrading "
            f"the file"
        )
    while version < upto:
        with conn:  # each migration commits atomically
            _MIGRATIONS[version](conn)
            version += 1
            conn.execute(f"PRAGMA user_version={version}")
    return version


def _utc_now() -> str:
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())


def default_catalog_path() -> Path | None:
    """The ``REPRO_CATALOG`` env var as a path, or ``None`` when unset."""
    value = os.environ.get(CATALOG_ENV, "").strip()
    return Path(value) if value else None


@dataclass(frozen=True)
class RequestMix:
    """The traffic shape distilled from the request log (replay's input).

    ``length_counts`` / ``mode_counts`` are sorted ``(value, count)`` pairs
    — sorted so plan construction is deterministic regardless of SQL result
    order.  ``mean_interarrival`` is the observed pacing in seconds (0.0
    when the log holds fewer than two requests).
    """

    total: int
    length_counts: tuple[tuple[int, int], ...]
    mode_counts: tuple[tuple[str, int], ...]
    mean_interarrival: float
    span_seconds: float


class Catalog:
    """One open catalog file; all mutation happens through this class.

    The connection is created with ``check_same_thread=False`` semantics
    avoided entirely: a :class:`Catalog` belongs to the thread that opened
    it.  Cross-thread appenders (the server's request log) open their own
    connection via :func:`connect` — WAL makes the concurrent writes safe.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._conn = connect(self.path)
        try:
            self.schema_version = apply_migrations(self._conn)
        except sqlite3.DatabaseError as exc:
            self._conn.close()
            raise CatalogError(f"{self.path} is not a catalog: {exc}") from None

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "Catalog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -------------------------------------------------------------- stores
    def register_store(
        self, index_path: str | Path, *, build_seconds: float | None = None
    ) -> int:
        """Record a built store or shard manifest; returns its ``store_id``.

        Sniffs the path exactly like ``search-db --index`` (first bytes
        decide store vs manifest).  Re-registering the same on-disk
        identity (path + CRC) updates the existing row instead of
        duplicating it; a rebuilt index at the same path gets a *new* row —
        the catalog keeps the full build history.
        """
        from repro.store import IndexStore, ShardedStore, is_manifest
        from repro.store.format import header_prefix_crc
        from repro.store.sharded import manifest_payload_crc

        index_path = Path(index_path)
        if not index_path.exists():
            raise CatalogError(f"index {index_path} does not exist")
        shard_rows: list[tuple[int, str, int, int, int]] = []
        if is_manifest(index_path):
            sharded = ShardedStore.open(index_path)
            kind = "manifest"
            identity = manifest_payload_crc(sharded.payload)
            fingerprint = sharded.fingerprint_key
            records = sharded.record_count
            total_length = sharded.total_length
            shard_count = sharded.shard_count
            file_bytes = index_path.stat().st_size + sum(
                sharded.shard_path(i).stat().st_size for i in range(shard_count)
            )
            lengths = sharded.shard_lengths()
            for i, spec in enumerate(sharded.payload["shards"]):
                shard_rows.append(
                    (
                        i,
                        spec["path"],
                        int(spec["header_crc"]),
                        len(spec["records"]),
                        int(lengths[i]),
                    )
                )
        else:
            store = IndexStore.open(index_path)
            kind = "store"
            identity = header_prefix_crc(index_path)
            fingerprint = store.fingerprint_key
            meta = store.header["database"]
            records = int(meta["records"])
            total_length = int(meta["total_length"])
            shard_count = 1
            file_bytes = index_path.stat().st_size
        with self._conn as conn:
            row = conn.execute(
                "SELECT store_id FROM stores WHERE path=? AND identity_crc=?",
                (str(index_path), identity),
            ).fetchone()
            if row is not None:
                store_id = int(row["store_id"])
                conn.execute(
                    "UPDATE stores SET fingerprint=?, records=?, "
                    "total_length=?, shard_count=?, file_bytes=?, "
                    "build_seconds=COALESCE(?, build_seconds) "
                    "WHERE store_id=?",
                    (
                        fingerprint, records, total_length, shard_count,
                        file_bytes, build_seconds, store_id,
                    ),
                )
            else:
                cursor = conn.execute(
                    "INSERT INTO stores (path, kind, fingerprint, "
                    "identity_crc, records, total_length, shard_count, "
                    "file_bytes, created_utc, build_seconds) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    (
                        str(index_path), kind, fingerprint, identity, records,
                        total_length, shard_count, file_bytes, _utc_now(),
                        build_seconds,
                    ),
                )
                store_id = int(cursor.lastrowid)
            conn.execute("DELETE FROM shards WHERE store_id=?", (store_id,))
            conn.executemany(
                "INSERT INTO shards (store_id, shard, path, header_crc, "
                "records, total_length) VALUES (?, ?, ?, ?, ?, ?)",
                [(store_id, *row) for row in shard_rows],
            )
        return store_id

    def stores(self) -> list[sqlite3.Row]:
        return self._conn.execute(
            "SELECT * FROM stores ORDER BY store_id"
        ).fetchall()

    def store(self, store_id: int) -> sqlite3.Row:
        row = self._conn.execute(
            "SELECT * FROM stores WHERE store_id=?", (store_id,)
        ).fetchone()
        if row is None:
            raise CatalogError(f"no store #{store_id} in {self.path}")
        return row

    def store_id_for(self, index_path: str | Path) -> int | None:
        """The newest catalogued row for ``index_path``, or ``None``."""
        row = self._conn.execute(
            "SELECT store_id FROM stores WHERE path=? "
            "ORDER BY store_id DESC LIMIT 1",
            (str(Path(index_path)),),
        ).fetchone()
        return None if row is None else int(row["store_id"])

    def shards(self, store_id: int) -> list[sqlite3.Row]:
        return self._conn.execute(
            "SELECT * FROM shards WHERE store_id=? ORDER BY shard",
            (store_id,),
        ).fetchall()

    # ---------------------------------------------------------- benchmarks
    def record_bench(
        self,
        name: str,
        metrics: dict,
        *,
        store_path: str | Path | None = None,
        store_id: int | None = None,
        fingerprint: str | None = None,
    ) -> int:
        """Record one benchmark result, keyed to a store when one is named.

        ``store_path`` resolves to the newest catalogued row for that path
        (registering it on the fly if absent); engine benches with no store
        pass ``fingerprint`` alone so the numbers still tie to an index
        configuration.
        """
        if store_id is None and store_path is not None:
            store_id = self.store_id_for(store_path)
            if store_id is None:
                store_id = self.register_store(store_path)
        if store_id is not None and fingerprint is None:
            fingerprint = self.store(store_id)["fingerprint"]
        with self._conn as conn:
            cursor = conn.execute(
                "INSERT INTO benchmarks (store_id, fingerprint, name, "
                "metrics, created_utc) VALUES (?, ?, ?, ?, ?)",
                (
                    store_id,
                    fingerprint,
                    name,
                    json.dumps(metrics, sort_keys=True),
                    _utc_now(),
                ),
            )
        return int(cursor.lastrowid)

    def benchmarks(self, store_id: int | None = None) -> list[sqlite3.Row]:
        if store_id is None:
            return self._conn.execute(
                "SELECT * FROM benchmarks ORDER BY bench_id"
            ).fetchall()
        return self._conn.execute(
            "SELECT * FROM benchmarks WHERE store_id=? ORDER BY bench_id",
            (store_id,),
        ).fetchall()

    # -------------------------------------------------------- request log
    def request_count(self) -> int:
        (count,) = self._conn.execute("SELECT COUNT(*) FROM requests").fetchone()
        return int(count)

    def request_mix(self) -> RequestMix:
        """Distill the logged traffic into the shape replay reconstructs."""
        lengths = self._conn.execute(
            "SELECT query_length, COUNT(*) AS n FROM requests "
            "WHERE status='ok' GROUP BY query_length ORDER BY query_length"
        ).fetchall()
        modes = self._conn.execute(
            "SELECT mode, COUNT(*) AS n FROM requests "
            "WHERE status='ok' GROUP BY mode ORDER BY mode"
        ).fetchall()
        span = self._conn.execute(
            "SELECT COUNT(*) AS n, MIN(ts) AS lo, MAX(ts) AS hi "
            "FROM requests WHERE status='ok'"
        ).fetchone()
        total = int(span["n"])
        width = float(span["hi"] - span["lo"]) if total >= 2 else 0.0
        mean_gap = width / (total - 1) if total >= 2 else 0.0
        return RequestMix(
            total=total,
            length_counts=tuple(
                (int(r["query_length"]), int(r["n"])) for r in lengths
            ),
            mode_counts=tuple((str(r["mode"]), int(r["n"])) for r in modes),
            mean_interarrival=mean_gap,
            span_seconds=width,
        )

    # ------------------------------------------------------------- verify
    def verify_all(self) -> list[str]:
        """Re-verify every catalogued store; returns human-readable problems.

        Three layers per row: the file must exist, its on-disk identity
        (header CRC / manifest payload CRC) must match what was catalogued
        at registration, and the store's own checksum verification must
        pass — so both silent corruption *and* an unrecorded rebuild are
        reported, each naming the store row.
        """
        from repro.store import IndexStore, ShardedStore, is_manifest
        from repro.store.format import header_prefix_crc
        from repro.store.sharded import manifest_payload_crc, read_manifest

        problems: list[str] = []
        for row in self.stores():
            label = f"store #{row['store_id']} {row['path']}"
            path = Path(row["path"])
            if not path.exists():
                problems.append(f"{label}: file is missing")
                continue
            try:
                if row["kind"] == "manifest":
                    if not is_manifest(path):
                        problems.append(
                            f"{label}: catalogued as a manifest but no "
                            f"longer parses as one"
                        )
                        continue
                    identity = manifest_payload_crc(read_manifest(path))
                    sub_problems = ShardedStore.verify(path)
                else:
                    identity = header_prefix_crc(path)
                    sub_problems = IndexStore.verify(path)
            except ReproError as exc:
                problems.append(f"{label}: {exc}")
                continue
            if identity != int(row["identity_crc"]):
                problems.append(
                    f"{label}: on-disk identity {identity:#010x} != "
                    f"catalogued {int(row['identity_crc']):#010x} "
                    f"(rebuilt without re-registering?)"
                )
            problems.extend(f"{label}: {p}" for p in sub_problems)
        return problems


def maybe_register_build(
    index_path: str | Path,
    *,
    build_seconds: float | None = None,
    catalog_path: str | Path | None = None,
) -> int | None:
    """Register a freshly built index when a catalog is configured.

    ``catalog_path`` (the ``--catalog`` flag) wins over the
    ``REPRO_CATALOG`` env var; with neither set this is a no-op, so builds
    without a control plane stay exactly as cheap as before.
    """
    path = Path(catalog_path) if catalog_path is not None else default_catalog_path()
    if path is None:
        return None
    with Catalog(path) as catalog:
        return catalog.register_store(index_path, build_seconds=build_seconds)


def maybe_record_bench(
    name: str,
    metrics: dict,
    *,
    store_path: str | Path | None = None,
    fingerprint: str | None = None,
    catalog_path: str | Path | None = None,
) -> int | None:
    """Record a bench result when a catalog is configured (else no-op)."""
    path = Path(catalog_path) if catalog_path is not None else default_catalog_path()
    if path is None:
        return None
    with Catalog(path) as catalog:
        return catalog.record_bench(
            name, metrics, store_path=store_path, fingerprint=fingerprint
        )
