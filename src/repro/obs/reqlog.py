"""Opt-in structured request log: one enqueue on the hot path, SQLite off it.

The server must never pay SQLite latency inside a request, so the log is
split in two halves connected by a lock-free queue:

* :meth:`RequestLog.record` — called on the event-loop thread — appends one
  plain tuple to a :class:`collections.deque` (a single atomic C-level
  operation; no lock, no I/O, no dict churn) and sets an event;
* a daemon writer thread drains the deque in batches and appends them to
  the catalog's ``requests`` table over its own WAL connection, committing
  once per batch.

Backpressure is a bounded drop, not a stall: past ``max_pending`` queued
rows the hot path increments ``dropped`` and returns — an overloaded server
sheds telemetry before it sheds requests.  ``close()`` flushes everything
still queued, so short-lived test servers lose nothing.
"""

from __future__ import annotations

import hashlib
import logging
import threading
from collections import deque
from pathlib import Path

from repro.obs.catalog import Catalog, connect
from repro.obs.metrics import Counter

logger = logging.getLogger("repro.obs.reqlog")

_WRITTEN_TOTAL = Counter(
    "repro_reqlog_written_total", "Request-log rows committed to SQLite"
)
_DROPPED_TOTAL = Counter(
    "repro_reqlog_dropped_total",
    "Request-log rows shed by backpressure (queue full or closing)",
)

#: Column order of one queued row (mirrors the ``requests`` table).
REQUEST_COLUMNS = (
    "ts",
    "query_hash",
    "query_length",
    "mode",
    "threshold",
    "e_value",
    "top_k",
    "latency_seconds",
    "cached",
    "batch_size",
    "shard_timings",
    "generation",
    "status",
)

_INSERT = (
    f"INSERT INTO requests ({', '.join(REQUEST_COLUMNS)}) "
    f"VALUES ({', '.join('?' * len(REQUEST_COLUMNS))})"
)


def query_hash(sequence: str) -> str:
    """Stable, privacy-preserving identity of a query sequence."""
    return hashlib.sha256(sequence.encode("ascii")).hexdigest()[:16]


class RequestLog:
    """Append-only request log over a catalog file (see module docstring)."""

    def __init__(
        self,
        path: str | Path,
        *,
        flush_interval: float = 0.25,
        max_pending: int = 50_000,
    ) -> None:
        if flush_interval <= 0:
            raise ValueError(
                f"flush_interval must be > 0, got {flush_interval}"
            )
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        self.path = Path(path)
        # Create/migrate the schema up front, on the caller's thread, so a
        # bad path fails the server's start() instead of a background write.
        Catalog(self.path).close()
        self._flush_interval = flush_interval
        self._max_pending = max_pending
        self._queue: deque[tuple] = deque()
        self._wake = threading.Event()
        self._stopping = False
        self._closed = threading.Event()
        self.written = 0  # writer thread only
        self.dropped = 0  # producer thread only
        self._write_errors = 0
        self._thread = threading.Thread(
            target=self._writer, name="repro-reqlog", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------ hot path
    def record(self, row: tuple) -> None:
        """Enqueue one request row (``REQUEST_COLUMNS`` order). O(1), no I/O."""
        # repro-lint: allow[REP803] -- the queue is lock-free by design:
        # deque.append/popleft are atomic in CPython, the len() here is an
        # admission heuristic (an off-by-a-few overshoot only means a few
        # extra buffered rows), and the hot path must not take a lock.
        if self._stopping or len(self._queue) >= self._max_pending:
            self.dropped += 1
            _DROPPED_TOTAL.inc()
            return
        self._queue.append(row)
        if not self._wake.is_set():
            self._wake.set()

    @property
    def pending(self) -> int:
        return len(self._queue)

    def counters(self) -> dict:
        """Snapshot for the ``stats`` RPC."""
        return {
            # repro-lint: allow[REP803] -- written is a single-writer
            # counter (writer thread only); this monitoring read tolerates
            # a stale value, and int loads never tear in CPython.
            "written": self.written,
            "dropped": self.dropped,
            "pending": len(self._queue),
            # repro-lint: allow[REP803] -- same single-writer argument as
            # `written`: only the writer thread increments, a scrape may
            # lag by one batch without consequence.
            "write_errors": self._write_errors,
            "path": str(self.path),
        }

    # ----------------------------------------------------------- lifecycle
    def close(self, timeout: float = 10.0) -> None:
        """Stop accepting rows, flush the queue, join the writer."""
        self._stopping = True
        self._wake.set()
        self._thread.join(timeout)
        if self._thread.is_alive():  # pragma: no cover - hung disk
            logger.warning("request-log writer did not drain in %.1fs", timeout)

    def __enter__(self) -> "RequestLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -------------------------------------------------------------- writer
    def _drain(self) -> list[tuple]:
        batch: list[tuple] = []
        while True:
            try:
                batch.append(self._queue.popleft())
            except IndexError:
                return batch

    def _writer(self) -> None:
        conn = connect(self.path)
        try:
            while True:
                self._wake.wait(self._flush_interval)
                self._wake.clear()
                batch = self._drain()
                if batch:
                    try:
                        with conn:
                            conn.executemany(_INSERT, batch)
                        self.written += len(batch)
                        _WRITTEN_TOTAL.inc(len(batch))
                    # repro-lint: allow[REP501] -- telemetry must never take
                    # the server down: any write failure (disk full, locked
                    # DB, schema drift) is counted and logged, never raised.
                    except Exception:
                        self._write_errors += 1
                        logger.exception(
                            "request-log write of %d rows failed", len(batch)
                        )
                if self._stopping and not self._queue:
                    break
        finally:
            conn.close()
            self._closed.set()
