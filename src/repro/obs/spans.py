"""Lightweight trace spans: named wall-time buckets, no tracing framework.

A span here is just an accumulated ``name -> seconds`` entry in a plain
dict (:attr:`repro.align.types.SearchStats.spans`), cheap enough to record
on every query: two ``perf_counter`` calls and a dict add per span.  The
canonical names thread one request's life through the stack:

==================  ============================================================
``admission_wait``  submit-to-dispatch wait in the server's micro-batch queue
``batch_linger``    how long the batch a query rode in waited for company
``engine``          backend search time (ALAE / fast / verified traversal)
``locate``          hit attribution: record lookup + boundary recheck
``merge``           sharded fan-in: global re-ordering and stat folding
``shard<i>``        engine+locate work attributable to shard ``i``
==================  ============================================================

``admission_wait`` and ``batch_linger`` are batcher properties, so they are
accumulated server-side (``stats`` RPC); the rest ride each result's
``SearchStats.spans`` and come back per query under ``repro query --trace``.
``SearchStats.merge`` sums span values, so a batch's spans aggregate the
same way every other counter does.
"""

from __future__ import annotations

from time import perf_counter

SPAN_ADMISSION_WAIT = "admission_wait"
SPAN_BATCH_LINGER = "batch_linger"
SPAN_ENGINE = "engine"
SPAN_LOCATE = "locate"
SPAN_MERGE = "merge"

_SHARD_PREFIX = "shard"


def shard_span(index: int) -> str:
    """The span name attributing work to shard ``index``."""
    return f"{_SHARD_PREFIX}{index}"


def add_span(spans: dict, name: str, seconds: float) -> None:
    """Accumulate ``seconds`` under ``name`` (repeat calls sum)."""
    spans[name] = spans.get(name, 0.0) + seconds


class span:
    """Context manager accumulating its block's wall time into ``spans``.

    ::

        with span(stats.spans, SPAN_ENGINE):
            result = backend.search(...)
    """

    __slots__ = ("_spans", "_name", "_start")

    def __init__(self, spans: dict, name: str) -> None:
        self._spans = spans
        self._name = name

    def __enter__(self) -> "span":
        self._start = perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        add_span(self._spans, self._name, perf_counter() - self._start)


def shard_seconds(spans: dict) -> list[float]:
    """Per-shard seconds hidden in ``spans``, ordered by shard index.

    Returns ``[]`` for unsharded results (no ``shard<i>`` keys).
    """
    found: dict[int, float] = {}
    for name, value in spans.items():
        if name.startswith(_SHARD_PREFIX):
            suffix = name[len(_SHARD_PREFIX):]
            if suffix.isdigit():
                found[int(suffix)] = float(value)
    return [found[i] for i in sorted(found)]


def span_tree(spans: dict) -> dict:
    """Nest a flat span dict for canonical JSON (``--trace-out``).

    Shard attributions move under a ``"shards"`` key (indexed by shard
    number as a string, numerically ordered); everything else sits under
    ``"spans"``, sorted by name.  Values round to microseconds so the
    document is stable under re-serialization.
    """
    plain: dict[str, float] = {}
    shards: dict[str, float] = {}
    for name in sorted(spans):
        suffix = name[len(_SHARD_PREFIX):]
        if name.startswith(_SHARD_PREFIX) and suffix.isdigit():
            shards[suffix] = round(float(spans[name]), 6)
        else:
            plain[name] = round(float(spans[name]), 6)
    tree: dict = {"spans": plain}
    if shards:
        tree["shards"] = {key: shards[key] for key in sorted(shards, key=int)}
    return tree


def format_spans(spans: dict) -> str:
    """One-line rendering for ``--trace`` output (stable key order)."""
    return " ".join(
        f"{name}={spans[name] * 1000.0:.3f}ms" for name in sorted(spans)
    )
