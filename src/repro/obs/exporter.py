"""Stdlib-only Prometheus scrape endpoint for the metrics registry.

:class:`MetricsExporter` runs a ``ThreadingHTTPServer`` on a daemon
thread; ``GET /metrics`` renders :meth:`MetricsRegistry.exposition` with
the standard ``text/plain; version=0.0.4`` content type, so any
Prometheus-compatible scraper can point at ``repro serve
--metrics-port P`` unmodified.  The exporter reads a shared registry and
never mutates it, so it needs no coordination with the serving loop.
"""

from __future__ import annotations

import logging
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.obs.metrics import MetricsRegistry, default_registry

logger = logging.getLogger("repro.obs.exporter")

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_INDEX_BODY = (
    b"<html><body>repro metrics exporter &mdash; "
    b'scrape <a href="/metrics">/metrics</a></body></html>\n'
)


class MetricsExporter:
    """Serve ``GET /metrics`` for one registry on a daemon thread."""

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.registry = registry if registry is not None else default_registry()
        self.host = host
        self._requested_port = port
        self._server: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the ephemeral choice)."""
        if self._server is None:
            return self._requested_port
        return self._server.server_address[1]

    def start(self) -> "MetricsExporter":
        if self._server is not None:
            return self
        registry = self.registry

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - http.server API
                if self.path.split("?", 1)[0] == "/metrics":
                    body = registry.exposition().encode("utf-8")
                    self.send_response(200)
                    self.send_header("Content-Type", CONTENT_TYPE)
                    self.send_header("Content-Length", str(len(body)))
                    self.end_headers()
                    self.wfile.write(body)
                elif self.path in ("/", "/index.html"):
                    self.send_response(200)
                    self.send_header("Content-Type", "text/html; charset=utf-8")
                    self.send_header("Content-Length", str(len(_INDEX_BODY)))
                    self.end_headers()
                    self.wfile.write(_INDEX_BODY)
                else:
                    self.send_error(404, "scrape /metrics")

            def log_message(self, format: str, *args: object) -> None:
                logger.debug("scrape %s", format % args)

        self._server = ThreadingHTTPServer(
            (self.host, self._requested_port), Handler
        )
        self._server.daemon_threads = True
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-metrics-exporter",
            daemon=True,
        )
        self._thread.start()
        logger.info("metrics exporter on http://%s:%d/metrics", self.host, self.port)
        return self

    def close(self) -> None:
        if self._server is None:
            return
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._server = None
        self._thread = None

    def __enter__(self) -> "MetricsExporter":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.close()
