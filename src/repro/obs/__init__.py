"""Durable control plane: catalog, request log, trace spans, replay.

The serving stack's in-memory ``stats`` RPC dies with the process; this
package is the part that survives.  One SQLite file (WAL, versioned
schema) plays three roles:

* **catalog** — every built store/manifest registered with its
  fingerprint and CRCs, every benchmark result keyed to the store it ran
  against (``repro catalog ls/show/verify-all/record-bench``);
* **request log** — opt-in structured per-request telemetry appended by
  the server off the hot path (one deque enqueue per request);
* **replay source** — ``repro bench --replay`` reconstructs the logged
  traffic mix into a deterministic plan and replays it for a capacity
  report.

Trace spans (:mod:`repro.obs.spans`) are the in-memory half: named
wall-time buckets on ``SearchStats`` threaded service → shards → engine.

:mod:`repro.obs.metrics` is the *live* half: a process-wide registry of
Counter/Gauge/Histogram families every serving layer instruments at module
import, exported as Prometheus text (:mod:`repro.obs.exporter`), as the
``metrics`` wire op, and as the ``repro top`` dashboard
(:mod:`repro.obs.top`).
"""

from repro.obs.catalog import (
    CATALOG_ENV,
    SCHEMA_VERSION,
    Catalog,
    CatalogError,
    RequestMix,
    apply_migrations,
    connect,
    maybe_record_bench,
    maybe_register_build,
)
from repro.obs.exporter import MetricsExporter
from repro.obs.logcfg import JsonLineFormatter, configure_logging
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    EWMA,
    REGISTRY,
    SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
    default_registry,
    family,
    format_value,
    histogram_quantile,
    metrics_enabled,
    sample_value,
    set_enabled,
)
from repro.obs.replay import (
    CapacityReport,
    ReplayError,
    ReplayEvent,
    ReplayPlan,
    replay_plan,
    synthesize_queries,
)
from repro.obs.reqlog import REQUEST_COLUMNS, RequestLog, query_hash
from repro.obs.spans import (
    SPAN_ADMISSION_WAIT,
    SPAN_BATCH_LINGER,
    SPAN_ENGINE,
    SPAN_LOCATE,
    SPAN_MERGE,
    add_span,
    format_spans,
    shard_seconds,
    shard_span,
    span,
    span_tree,
)
from repro.obs.top import TopSample, collect_sample, render_top, run_top

__all__ = [
    "CATALOG_ENV",
    "DEFAULT_LATENCY_BUCKETS",
    "EWMA",
    "REGISTRY",
    "SCHEMA_VERSION",
    "SIZE_BUCKETS",
    "Catalog",
    "CatalogError",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsError",
    "MetricsExporter",
    "MetricsRegistry",
    "RequestMix",
    "TopSample",
    "apply_migrations",
    "collect_sample",
    "connect",
    "default_registry",
    "family",
    "format_value",
    "histogram_quantile",
    "maybe_record_bench",
    "maybe_register_build",
    "metrics_enabled",
    "render_top",
    "run_top",
    "sample_value",
    "set_enabled",
    "JsonLineFormatter",
    "configure_logging",
    "CapacityReport",
    "ReplayError",
    "ReplayEvent",
    "ReplayPlan",
    "replay_plan",
    "synthesize_queries",
    "REQUEST_COLUMNS",
    "RequestLog",
    "query_hash",
    "SPAN_ADMISSION_WAIT",
    "SPAN_BATCH_LINGER",
    "SPAN_ENGINE",
    "SPAN_LOCATE",
    "SPAN_MERGE",
    "add_span",
    "format_spans",
    "shard_seconds",
    "shard_span",
    "span",
    "span_tree",
]
