"""Durable control plane: catalog, request log, trace spans, replay.

The serving stack's in-memory ``stats`` RPC dies with the process; this
package is the part that survives.  One SQLite file (WAL, versioned
schema) plays three roles:

* **catalog** — every built store/manifest registered with its
  fingerprint and CRCs, every benchmark result keyed to the store it ran
  against (``repro catalog ls/show/verify-all/record-bench``);
* **request log** — opt-in structured per-request telemetry appended by
  the server off the hot path (one deque enqueue per request);
* **replay source** — ``repro bench --replay`` reconstructs the logged
  traffic mix into a deterministic plan and replays it for a capacity
  report.

Trace spans (:mod:`repro.obs.spans`) are the in-memory half: named
wall-time buckets on ``SearchStats`` threaded service → shards → engine.
"""

from repro.obs.catalog import (
    CATALOG_ENV,
    SCHEMA_VERSION,
    Catalog,
    CatalogError,
    RequestMix,
    apply_migrations,
    connect,
    maybe_record_bench,
    maybe_register_build,
)
from repro.obs.logcfg import JsonLineFormatter, configure_logging
from repro.obs.replay import (
    CapacityReport,
    ReplayError,
    ReplayEvent,
    ReplayPlan,
    replay_plan,
    synthesize_queries,
)
from repro.obs.reqlog import REQUEST_COLUMNS, RequestLog, query_hash
from repro.obs.spans import (
    SPAN_ADMISSION_WAIT,
    SPAN_BATCH_LINGER,
    SPAN_ENGINE,
    SPAN_LOCATE,
    SPAN_MERGE,
    add_span,
    format_spans,
    shard_seconds,
    shard_span,
    span,
)

__all__ = [
    "CATALOG_ENV",
    "SCHEMA_VERSION",
    "Catalog",
    "CatalogError",
    "RequestMix",
    "apply_migrations",
    "connect",
    "maybe_record_bench",
    "maybe_register_build",
    "JsonLineFormatter",
    "configure_logging",
    "CapacityReport",
    "ReplayError",
    "ReplayEvent",
    "ReplayPlan",
    "replay_plan",
    "synthesize_queries",
    "REQUEST_COLUMNS",
    "RequestLog",
    "query_hash",
    "SPAN_ADMISSION_WAIT",
    "SPAN_BATCH_LINGER",
    "SPAN_ENGINE",
    "SPAN_LOCATE",
    "SPAN_MERGE",
    "add_span",
    "format_spans",
    "shard_seconds",
    "shard_span",
    "span",
]
