"""``repro top`` — a live terminal dashboard over the serving tier.

Polls a running :class:`~repro.server.SearchServer` over the wire protocol
(``stats`` + ``metrics`` ops, nothing HTTP) and renders one compact frame:
per-mode qps and latency quantiles, queue pressure (depth + EWMA), cache
hit rate, request-log health, and the hottest shard.  Rendering is a pure
function of two :class:`TopSample` snapshots, so tests drive it with
synthetic data and assert exact frames; qps comes from differencing the
per-mode served counters between polls.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from repro.obs.metrics import family, histogram_quantile

#: ANSI "clear screen, cursor home" prefix between live frames.
CLEAR = "\x1b[2J\x1b[H"


@dataclass
class TopSample:
    """One poll of the server: stats body + metric families + routing."""

    at: float  # monotonic stamp, used only for qps differencing
    stats: dict = field(default_factory=dict)
    families: list = field(default_factory=list)
    routing: dict = field(default_factory=dict)
    index: str = ""
    mode: str = ""


def collect_sample(client, at: float | None = None) -> TopSample:
    """Poll ``stats`` and ``metrics`` on an open :class:`ServerClient`."""
    stats_response = client.stats()
    metrics_response = client.metrics()
    return TopSample(
        at=time.monotonic() if at is None else at,
        stats=stats_response.get("stats", {}),
        families=metrics_response.get("families", []),
        routing=metrics_response.get("routing", {}),
        index=stats_response.get("index", ""),
        mode=stats_response.get("mode", ""),
    )


def _histogram_samples(families: list, name: str) -> list:
    found = family(families, name)
    return found["samples"] if found else []


def _gauge_value(families: list, name: str) -> float:
    found = family(families, name)
    if found and found["samples"]:
        return float(found["samples"][0].get("value", 0.0))
    return 0.0


def _ms(seconds: float) -> str:
    return f"{seconds * 1000.0:.2f}"


def render_top(sample: TopSample, previous: TopSample | None = None) -> str:
    """One dashboard frame; deterministic given the two samples."""
    stats = sample.stats
    lines = [
        f"repro top — {sample.index or '?'} — mode {sample.mode or '?'} — "
        f"generation {stats.get('generation', 0)} — "
        f"uptime {stats.get('uptime_seconds', 0.0):.0f}s",
        "",
        f"{'mode':<10}{'qps':>8}{'p50ms':>10}{'p90ms':>10}"
        f"{'p99ms':>10}{'served':>10}",
    ]
    served = _histogram_samples(sample.families, "repro_server_request_seconds")
    previous_counts: dict[str, int] = {}
    elapsed = 0.0
    if previous is not None:
        elapsed = sample.at - previous.at
        for entry in _histogram_samples(
            previous.families, "repro_server_request_seconds"
        ):
            previous_counts[entry["labels"].get("mode", "")] = entry["count"]
    for entry in served:
        mode = entry["labels"].get("mode", "?")
        count = entry["count"]
        if previous is not None and elapsed > 0:
            qps = (count - previous_counts.get(mode, 0)) / elapsed
            qps_text = f"{qps:.1f}"
        else:
            qps_text = "-"
        lines.append(
            f"{mode:<10}{qps_text:>8}"
            f"{_ms(histogram_quantile(entry, 0.5)):>10}"
            f"{_ms(histogram_quantile(entry, 0.9)):>10}"
            f"{_ms(histogram_quantile(entry, 0.99)):>10}"
            f"{count:>10}"
        )
    if not served:
        lines.append("(no served queries yet)")
    lines.append("")
    lines.append(
        f"queue: depth {stats.get('queue_depth', 0)} "
        f"(ewma {float(sample.routing.get('ewma_queue_depth', 0.0)):.2f})  "
        f"inflight "
        f"{int(_gauge_value(sample.families, 'repro_server_inflight_requests'))}  "
        f"overloaded {stats.get('overloaded_total', 0)}"
    )
    hits = stats.get("cache_hits", 0)
    misses = stats.get("cache_misses", 0)
    lookups = hits + misses
    hit_rate = 100.0 * hits / lookups if lookups else 0.0
    lines.append(
        f"cache: {hit_rate:.1f}% hit ({hits} hits / {misses} misses, "
        f"{stats.get('cache_size', 0)} entries)"
    )
    request_log = stats.get("request_log")
    if request_log:
        lines.append(
            f"reqlog: written {request_log.get('written', 0)} "
            f"dropped {request_log.get('dropped', 0)} "
            f"pending {request_log.get('pending', 0)}"
        )
    shards = _histogram_samples(sample.families, "repro_sharded_shard_seconds")
    if shards:
        hottest = max(shards, key=lambda entry: entry["sum"])
        total_work = sum(entry["sum"] for entry in shards)
        lines.append(
            f"shards: {len(shards)} reporting, hottest "
            f"shard{hottest['labels'].get('shard', '?')} "
            f"({hottest['sum']:.3f}s of {total_work:.3f}s work)"
        )
    return "\n".join(lines)


def run_top(
    client,
    *,
    interval: float = 2.0,
    once: bool = False,
    iterations: int | None = None,
    write: Callable[[str], None] = print,
) -> int:
    """Poll-and-render loop behind ``repro top``.

    ``once`` prints a single frame without clearing the screen (CI and
    scripting); ``iterations`` bounds the loop for tests.  Runs until
    interrupted otherwise.
    """
    previous: TopSample | None = None
    frames = 0
    while True:
        sample = collect_sample(client)
        frame = render_top(sample, previous)
        if once or iterations is not None:
            write(frame)
        else:
            write(CLEAR + frame)
        if once:
            return 0
        frames += 1
        if iterations is not None and frames >= iterations:
            return 0
        previous = sample
        time.sleep(interval)
