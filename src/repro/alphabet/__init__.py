"""Biosequence alphabets (DNA, protein) and validation/encoding helpers."""

from repro.alphabet.alphabet import Alphabet, DNA, PROTEIN

__all__ = ["Alphabet", "DNA", "PROTEIN"]
