"""Alphabets for biosequences.

The paper (Sec. 2) works over an alphabet ``Sigma`` of ``sigma`` characters:
DNA (``sigma = 4``) and protein (``sigma = 20``).  An :class:`Alphabet` bundles
the character set with encoding/decoding utilities used by the index layer
(the FM-index stores sequences as small-integer numpy arrays) and by the
synthetic-data generators.

A dedicated *sentinel* character ``$`` (smaller than every alphabet character,
as in the Burrows-Wheeler construction of Sec. 2.3) and a *separator* ``#``
(used when concatenating a collection of sequences into one text, Sec. 2.2)
are reserved and never part of the alphabet itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import AlphabetError

SENTINEL = "$"
SEPARATOR = "#"


@dataclass(frozen=True)
class Alphabet:
    """An ordered character set with encode/decode helpers.

    Parameters
    ----------
    name:
        Human-readable name (``"DNA"``, ``"protein"``).
    chars:
        The alphabet characters in lexicographic order.
    """

    name: str
    chars: str
    _index: dict = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if len(set(self.chars)) != len(self.chars):
            raise AlphabetError(f"duplicate characters in alphabet {self.name!r}")
        if SENTINEL in self.chars or SEPARATOR in self.chars:
            raise AlphabetError(
                f"alphabet {self.name!r} may not contain reserved characters "
                f"{SENTINEL!r} / {SEPARATOR!r}"
            )
        if sorted(self.chars) != list(self.chars):
            raise AlphabetError(f"alphabet {self.name!r} must be sorted")
        object.__setattr__(self, "_index", {c: i for i, c in enumerate(self.chars)})

    @property
    def size(self) -> int:
        """``sigma``, the number of characters."""
        return len(self.chars)

    def __len__(self) -> int:
        return len(self.chars)

    def __contains__(self, char: str) -> bool:
        return char in self._index

    def index(self, char: str) -> int:
        """Return the 0-based code of ``char``.

        Raises :class:`AlphabetError` for characters outside the alphabet.
        """
        try:
            return self._index[char]
        except KeyError:
            raise AlphabetError(
                f"character {char!r} not in alphabet {self.name!r}"
            ) from None

    def validate(self, sequence: str) -> None:
        """Raise :class:`AlphabetError` if ``sequence`` has foreign characters."""
        bad = set(sequence) - set(self.chars)
        if bad:
            raise AlphabetError(
                f"sequence contains characters {sorted(bad)!r} outside "
                f"alphabet {self.name!r}"
            )

    def is_valid(self, sequence: str) -> bool:
        """Return ``True`` iff every character of ``sequence`` is in the alphabet."""
        return not (set(sequence) - set(self.chars))

    def encode(self, sequence: str) -> np.ndarray:
        """Encode ``sequence`` to a ``uint8`` numpy array of character codes."""
        self.validate(sequence)
        table = np.full(256, 255, dtype=np.uint8)
        for char, code in self._index.items():
            table[ord(char)] = code
        return table[np.frombuffer(sequence.encode("ascii"), dtype=np.uint8)]

    def decode(self, codes: np.ndarray) -> str:
        """Inverse of :meth:`encode`."""
        chars = np.frombuffer(self.chars.encode("ascii"), dtype=np.uint8)
        return bytes(chars[np.asarray(codes, dtype=np.uint8)]).decode("ascii")

    def random_sequence(self, length: int, rng: np.random.Generator) -> str:
        """Draw a uniform random sequence of ``length`` characters."""
        if length < 0:
            raise AlphabetError("length must be non-negative")
        codes = rng.integers(0, self.size, size=length)
        return "".join(self.chars[c] for c in codes)


DNA = Alphabet("DNA", "ACGT")
PROTEIN = Alphabet("protein", "ACDEFGHIKLMNPQRSTVWY")
