"""Markdown rendering for experiment tables."""

from __future__ import annotations

from typing import Sequence


def markdown_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Render a GitHub-flavoured markdown table."""
    head = "| " + " | ".join(str(h) for h in headers) + " |"
    sep = "|" + "|".join("---" for _ in headers) + "|"
    body = ["| " + " | ".join(str(c) for c in row) + " |" for row in rows]
    return "\n".join([head, sep, *body])


def fmt_seconds(seconds: float) -> str:
    return f"{seconds:.3f}"


def fmt_ratio(value: float) -> str:
    return f"{100.0 * value:.1f}%"


def fmt_int(value: int) -> str:
    return f"{value:,}"
