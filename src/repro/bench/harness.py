"""Engine construction cache and search measurement helpers.

Benchmarks across tables share texts and engines (building a suffix array for
an 80K text takes seconds); :class:`EngineCache` memoises engine instances per
(text configuration, scheme, engine kind) so each is built once per process.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.align.bwt_sw import BwtSw
from repro.align.types import SearchResult
from repro.alphabet import DNA, PROTEIN, Alphabet
from repro.blast import Blast
from repro.core.alae import ALAE
from repro.scoring.scheme import DEFAULT_SCHEME, ScoringScheme
from repro.workloads import Workload, make_workload


@dataclass
class SearchOutcome:
    """Aggregated measurements over a query set."""

    engine: str
    total_seconds: float
    total_hits: int
    calculated: int
    reused: int
    accessed: int
    computation_cost: int
    threshold: int

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds


class EngineCache:
    """Per-process cache of workloads and engines."""

    def __init__(self) -> None:
        self._engines: dict[tuple, object] = {}

    def workload(
        self,
        n: int,
        m: int,
        queries: int = 2,
        alphabet: Alphabet = DNA,
        seed: int = 20120827,
    ) -> Workload:
        return make_workload(
            n, m, query_count=queries, alphabet=alphabet, seed=seed
        )

    def alae(
        self,
        text: str,
        scheme: ScoringScheme = DEFAULT_SCHEME,
        alphabet: Alphabet = DNA,
        **kwargs,
    ) -> ALAE:
        key = ("alae", id(text), scheme, alphabet.name, tuple(sorted(kwargs.items())))
        if key not in self._engines:
            self._engines[key] = ALAE(text, alphabet, scheme, **kwargs)
        return self._engines[key]  # type: ignore[return-value]

    def bwt_sw(
        self,
        text: str,
        scheme: ScoringScheme = DEFAULT_SCHEME,
        alphabet: Alphabet = DNA,
    ) -> BwtSw:
        key = ("bwtsw", id(text), scheme, alphabet.name)
        if key not in self._engines:
            self._engines[key] = BwtSw(text, alphabet, scheme)
        return self._engines[key]  # type: ignore[return-value]

    def blast(
        self,
        text: str,
        scheme: ScoringScheme = DEFAULT_SCHEME,
        alphabet: Alphabet = DNA,
        word_size: int = 11,
    ) -> Blast:
        key = ("blast", id(text), scheme, alphabet.name, word_size)
        if key not in self._engines:
            self._engines[key] = Blast(
                text, alphabet, scheme, word_size=word_size
            )
        return self._engines[key]  # type: ignore[return-value]


def run_query_set(
    engine, queries: list[str], name: str, e_value: float | None = 10.0,
    threshold: int | None = None,
) -> SearchOutcome:
    """Run every query, accumulate time / hits / entry statistics."""
    total_time = 0.0
    hits = calc = reused = accessed = cost = 0
    thr = 0
    for query in queries:
        start = time.perf_counter()
        result: SearchResult = engine.search(
            query, threshold=threshold, e_value=e_value
        )
        total_time += time.perf_counter() - start
        hits += len(result.hits)
        calc += result.stats.calculated
        reused += result.stats.reused
        accessed += result.stats.accessed
        cost += result.stats.computation_cost
        thr = result.threshold
    return SearchOutcome(
        engine=name,
        total_seconds=total_time,
        total_hits=hits,
        calculated=calc,
        reused=reused,
        accessed=accessed,
        computation_cost=cost,
        threshold=thr,
    )


#: Alphabets by name for CLI/bench parameterisation.
ALPHABETS = {"dna": DNA, "protein": PROTEIN}
