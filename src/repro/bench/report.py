"""EXPERIMENTS.md generator: ``python -m repro.bench.report [--out PATH]``.

Runs every experiment of :mod:`repro.bench.experiments` and writes the
paper-vs-measured record for all tables and figures.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench.experiments import ALL_EXPERIMENTS
from repro.bench.reporting import markdown_table

PREAMBLE = """\
# EXPERIMENTS — paper vs. reproduction

Reproduction record for every table and figure of *ALAE: Accelerating Local
Alignment with Affine Gap Exactly in Biosequence Databases* (PVLDB 5(11),
2012).  Regenerate with `python -m repro.bench.report --out EXPERIMENTS.md`
(about 10-20 minutes), or time individual experiments with
`pytest benchmarks/ --benchmark-only`.

**Scale.** The paper runs C++ on 50M-1G-character genomes with 1K-10M-character
queries; this reproduction runs pure Python (~1 microsecond per DP entry) on
20K-160K-character synthetic genomes with 200-4,000-character queries (see
DESIGN.md for the substitution rationale).  Absolute numbers therefore differ
by construction; the *shapes* — who wins, how ratios move with m / n /
E-value / scheme, where BLAST loses results, where ALAE's worst-case scheme
is — are the reproduction targets and are annotated per experiment.

**Correctness.** ALAE == BWT-SW == BASIC == Smith-Waterman on the full answer
set is enforced by the test suite (several hundred randomized and adversarial
cases, plus hypothesis properties); both exact engines always report the same
result count C below, mirroring the paper's Tables 2/3.

**Headline checks that reproduce exactly (digit-for-digit).** The Section 6
analysis: DNA bounds 4.50 m n^0.520 .. 9.05 m n^0.896, protein bounds
8.28 m n^0.364 .. 7.49 m n^0.723, and 4.47 m n^0.6038 for the default scheme
(vs BWT-SW's published 69 m n^0.628).

**Known deviation.** The paper's 10-119x wall-clock gap between ALAE and
BWT-SW compresses here to parity-to-moderate advantage: both engines share
this package's sparse traversal core, whereas the original BWT-SW binary
always evaluates three dense matrices over per-row ranges.  The
platform-independent metrics (calculated entries and x1/x2/x3 computation
cost, Table 4) preserve the paper's advantage and its growth with m.
"""


def generate(out_path: str) -> None:
    sections = [PREAMBLE]
    started = time.time()
    for experiment in ALL_EXPERIMENTS:
        title, headers, rows, note = experiment()
        print(f"[report] {title}", file=sys.stderr, flush=True)
        sections.append(f"## {title}\n\n{markdown_table(headers, rows)}\n\n{note}")
    sections.append(
        f"---\n\nGenerated in {time.time() - started:.0f}s by "
        "`python -m repro.bench.report`."
    )
    with open(out_path, "w", encoding="utf-8") as handle:
        handle.write("\n\n".join(sections) + "\n")
    print(f"[report] wrote {out_path}", file=sys.stderr)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="EXPERIMENTS.md")
    args = parser.parse_args()
    generate(args.out)


if __name__ == "__main__":
    main()
