"""Benchmark harness: experiment runners for every table/figure (Sec. 7)."""

from repro.bench.harness import EngineCache, SearchOutcome, run_query_set
from repro.bench.reporting import markdown_table

__all__ = ["EngineCache", "SearchOutcome", "run_query_set", "markdown_table"]
