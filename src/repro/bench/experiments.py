"""One runner per paper table/figure (Sec. 6-7), at calibrated scale.

Every function returns ``(title, headers, rows, note)`` where the rows mirror
the paper's table structure.  Results are memoised per configuration so the
pytest benchmarks and the EXPERIMENTS.md generator share measurements.

Scale: texts 20K-160K characters and queries 200-4000 characters (the paper
uses 10M-1G / 1K-10M; pure-Python DP costs ~1 microsecond per entry, see
DESIGN.md).  Engine *relationships* — who wins, how ratios move with m, n,
E-value and scheme — are the reproduction target, not absolute times.
"""

from __future__ import annotations

from functools import lru_cache

from repro.bench.harness import EngineCache, SearchOutcome, run_query_set
from repro.bench.reporting import fmt_int, fmt_ratio, fmt_seconds
from repro.core.analysis import bwt_sw_bound, entry_bound, paper_bound_extremes
from repro.alphabet import DNA, PROTEIN
from repro.scoring.scheme import BLAST_DNA_SCHEMES, DEFAULT_SCHEME, ScoringScheme

#: Shared engine/workload cache for the whole bench process.
CACHE = EngineCache()

#: Baseline text sizes (scaled stand-ins for the paper's 50M-1G range).
TABLE2_N = 60_000
TABLE2_MS = (200, 1000, 4000)
TABLE3_M = 1000
TABLE3_NS = (20_000, 40_000, 80_000)
QUERIES_PER_CONFIG = 2


@lru_cache(maxsize=None)
def _outcomes(
    n: int,
    m: int,
    engine_kind: str,
    scheme: ScoringScheme = DEFAULT_SCHEME,
    e_value: float = 10.0,
    alphabet_name: str = "dna",
    engine_flags: tuple = (),
) -> SearchOutcome:
    """Measure one (engine, workload, scheme, E) configuration, memoised."""
    alphabet = DNA if alphabet_name == "dna" else PROTEIN
    workload = CACHE.workload(
        n, m, queries=QUERIES_PER_CONFIG, alphabet=alphabet
    )
    flags = dict(engine_flags)
    if engine_kind == "alae":
        engine = CACHE.alae(workload.text, scheme, alphabet, **flags)
    elif engine_kind == "bwtsw":
        engine = CACHE.bwt_sw(workload.text, scheme, alphabet)
    elif engine_kind == "blast":
        engine = CACHE.blast(workload.text, scheme, alphabet)
    else:
        raise ValueError(engine_kind)
    return run_query_set(engine, workload.queries, engine_kind, e_value=e_value)


# --------------------------------------------------------------- Tables 2/3
def table2():
    """Time + #results vs query length (paper Table 2)."""
    headers = ["m", "engine", "time (s)", "results C", "H"]
    rows = []
    for m in TABLE2_MS:
        for kind in ("alae", "blast", "bwtsw"):
            out = _outcomes(TABLE2_N, m, kind)
            rows.append(
                [m, kind.upper(), fmt_seconds(out.total_seconds),
                 fmt_int(out.total_hits), out.threshold]
            )
    note = (
        f"n = {TABLE2_N:,} synthetic DNA, {QUERIES_PER_CONFIG} queries per "
        "length, E = 10, scheme <1,-3,-5,-2>. Paper shapes preserved: the "
        "exact engines agree on C at every m, BLAST misses most results, and "
        "ALAE needs fewer entries at lower cost (Table 4). Wall-clock is "
        "near parity here because both engines share this package's sparse "
        "core (see the Known deviation note in the preamble)."
    )
    return "Table 2 — varying query length", headers, rows, note


def table3():
    """Time + #results vs text length (paper Table 3)."""
    headers = ["n", "engine", "time (s)", "results C", "H"]
    rows = []
    for n in TABLE3_NS:
        for kind in ("alae", "blast", "bwtsw"):
            out = _outcomes(n, TABLE3_M, kind)
            rows.append(
                [f"{n:,}", kind.upper(), fmt_seconds(out.total_seconds),
                 fmt_int(out.total_hits), out.threshold]
            )
    note = (
        f"m = {TABLE3_M:,}, E = 10, default scheme. Both exact engines agree "
        "on C at every n and ALAE computes fewer, cheaper entries; "
        "wall-clock parity is the shared-substrate effect described in the "
        "preamble."
    )
    return "Table 3 — varying text length", headers, rows, note


# ------------------------------------------------------------------ Table 4
def table4():
    """Calculated entries by cost class (paper Table 4)."""
    headers = ["m", "engine", "x1 entries", "x2 entries", "x3 entries",
               "computation cost"]
    rows = []
    for m in (500, 2000):
        a = _outcomes(40_000, m, "alae")
        b = _outcomes(40_000, m, "bwtsw")
        alae_stats = _stats_of(40_000, m, "alae")
        bwt_stats = _stats_of(40_000, m, "bwtsw")
        rows.append(
            [m, "ALAE", fmt_int(alae_stats[0]), fmt_int(alae_stats[1]),
             fmt_int(alae_stats[2]), fmt_int(a.computation_cost)]
        )
        rows.append(
            [m, "BWT-SW", fmt_int(bwt_stats[0]), fmt_int(bwt_stats[1]),
             fmt_int(bwt_stats[2]), fmt_int(b.computation_cost)]
        )
    note = (
        "n = 40,000, E = 10, default scheme. BWT-SW charges every entry x3 "
        "(it always evaluates M, Ga and Gb); ALAE computes most entries in "
        "no-gap regions at x1. Paper shape: ALAE's cost is a fraction of "
        "BWT-SW's and the gap widens with m."
    )
    return "Table 4 — entries and computation cost", headers, rows, note


@lru_cache(maxsize=None)
def _stats_of(n: int, m: int, kind: str, scheme: ScoringScheme = DEFAULT_SCHEME):
    """(x1, x2, x3) classes for one configuration (re-running one query)."""
    workload = CACHE.workload(n, m, queries=QUERIES_PER_CONFIG)
    if kind == "alae":
        engine = CACHE.alae(workload.text, scheme)
    else:
        engine = CACHE.bwt_sw(workload.text, scheme)
    x1 = x2 = x3 = 0
    for query in workload.queries:
        stats = engine.search(query, e_value=10.0).stats
        x1 += stats.calculated_x1
        x2 += stats.calculated_x2
        x3 += stats.calculated_x3
    return (x1, x2, x3)


# ------------------------------------------------------------------ Table 5
TABLE5_SCHEMES = (ScoringScheme(1, -1, -5, -2), ScoringScheme(1, -3, -2, -2))


def table5():
    """Reused / accessed / calculated entries per scheme (paper Table 5)."""
    headers = ["scheme", "reused", "accessed", "calculated"]
    rows = []
    for scheme in TABLE5_SCHEMES:
        out = _outcomes(20_000, 500, "alae", scheme=scheme)
        rows.append(
            [str(scheme), fmt_int(out.reused), fmt_int(out.accessed),
             fmt_int(out.calculated)]
        )
    note = (
        "n = 20,000, m = 500, E = 10. Paper shape: <1,-1,-5,-2> (tiny q, "
        "wide gap regions) calculates far more entries than <1,-3,-2,-2>."
    )
    return "Table 5 — entry counts for extreme schemes", headers, rows, note


# ------------------------------------------------------------------- Fig. 7
def fig7():
    """Filtering and reusing ratios vs m and n (paper Fig. 7a-d)."""
    headers = ["n", "m", "filtering ratio", "reusing ratio"]
    rows = []
    for n in (20_000, 40_000):
        for m in (200, 1000, 4000):
            a = _outcomes(n, m, "alae")
            b = _outcomes(n, m, "bwtsw")
            filtering = max(0.0, (b.calculated - a.calculated) / b.calculated)
            reusing = a.reused / a.accessed if a.accessed else 0.0
            rows.append(
                [f"{n:,}", m, fmt_ratio(filtering), fmt_ratio(reusing)]
            )
    note = (
        "E = 10, default scheme. Paper shapes: the filtering ratio is "
        "substantial at every configuration and stable in n; the reusing "
        "ratio grows with query length (longer queries carry more internal "
        "repetition, Fig. 7(b))."
    )
    return "Figure 7 — filtering and reusing ratios", headers, rows, note


# ------------------------------------------------------------------- Fig. 8
def fig8():
    """ALAE time vs E-value (paper Fig. 8)."""
    headers = ["m", "E = 1e-15", "E = 1e-5", "E = 10"]
    rows = []
    for m in (500, 2000, 4000):
        times = []
        for e_value in (1e-15, 1e-5, 10.0):
            out = _outcomes(40_000, m, "alae", e_value=e_value)
            times.append(fmt_seconds(out.total_seconds))
        rows.append([m, *times])
    note = (
        "n = 40,000, default scheme. Paper shape: ALAE is barely sensitive "
        "to E (score filtering has a small effect); smaller E (larger H) is "
        "slightly faster."
    )
    return "Figure 8 — effect of E-value", headers, rows, note


# ------------------------------------------------------------------- Fig. 9
FIG9_N, FIG9_M = 20_000, 500


def fig9():
    """Time per scoring scheme for the three engines (paper Fig. 9)."""
    headers = ["scheme", "ALAE (s)", "BLAST (s)", "BWT-SW (s)"]
    rows = []
    for name, scheme in BLAST_DNA_SCHEMES.items():
        cells = [name]
        for kind in ("alae", "blast", "bwtsw"):
            out = _outcomes(FIG9_N, FIG9_M, kind, scheme=scheme)
            label = fmt_seconds(out.total_seconds)
            if kind == "bwtsw" and not scheme.supports_bwt_sw():
                label += " (*)"
            cells.append(label)
        rows.append(cells)
    note = (
        f"n = {FIG9_N:,}, m = {FIG9_M}, E = 10. (*) the original BWT-SW "
        "rejects |sb| < 3|sa|; our reimplementation is exact there and is "
        "reported for completeness. Paper shape: ALAE and BWT-SW are "
        "scheme-sensitive, BLAST is flat; <1,-1,-5,-2> is ALAE's worst case."
    )
    return "Figure 9 — effect of scoring schemes", headers, rows, note


# ------------------------------------------------------------------ Fig. 10
def fig10():
    """Filtering/reusing ratios per scheme (paper Fig. 10)."""
    headers = ["scheme", "filtering ratio", "reusing ratio"]
    rows = []
    for name, scheme in BLAST_DNA_SCHEMES.items():
        a = _outcomes(FIG9_N, FIG9_M, "alae", scheme=scheme)
        b = _outcomes(FIG9_N, FIG9_M, "bwtsw", scheme=scheme)
        filtering = max(0.0, (b.calculated - a.calculated) / b.calculated)
        reusing = a.reused / a.accessed if a.accessed else 0.0
        rows.append([name, fmt_ratio(filtering), fmt_ratio(reusing)])
    note = (
        "Same workload as Fig. 9. Paper shape: <1,-1,-5,-2> explodes the "
        "calculated-entry count (Table 5) and reuses least. One deviation: "
        "the paper's Fig. 10(a) shows its *filtering ratio* collapsing too, "
        "while against our interval-style BWT-SW emulation the ratio stays "
        "high — the baseline's near-match paths blow up even faster under "
        "q = 2 than ALAE's gap regions do."
    )
    return "Figure 10 — ratios per scoring scheme", headers, rows, note


# ------------------------------------------------------------------ Fig. 11
def fig11():
    """Index sizes: BWT index vs dominate index (paper Fig. 11).

    The last two columns report the *actual* serialized sizes the
    ``repro.store`` format writes for the same structures, next to the
    paper's modelled accounting.
    """
    headers = [
        "alphabet", "n", "BWT index (KB)", "dominate index (KB)",
        "BWT on-disk (KB)", "dominate on-disk (KB)",
    ]
    rows = []
    for n in (20_000, 40_000, 80_000, 160_000):
        workload = CACHE.workload(n, 200)
        engine = CACHE.alae(workload.text)
        sizes = engine.index_size_bytes()
        rows.append(
            ["DNA", f"{n:,}", sizes["bwt_index"] // 1024,
             sizes["dominate_index"] // 1024,
             sizes["bwt_index_actual"] // 1024,
             sizes["dominate_index_actual"] // 1024]
        )
    protein_scheme = ScoringScheme(1, -3, -11, -1)
    for n in (10_000, 20_000, 40_000):
        workload = CACHE.workload(n, 200, alphabet=PROTEIN)
        engine = CACHE.alae(workload.text, protein_scheme, PROTEIN)
        sizes = engine.index_size_bytes()
        rows.append(
            ["protein", f"{n:,}", sizes["bwt_index"] // 1024,
             sizes["dominate_index"] // 1024,
             sizes["bwt_index_actual"] // 1024,
             sizes["dominate_index_actual"] // 1024]
        )
    note = (
        "DNA uses <1,-3,-5,-2> (q = 4), protein <1,-3,-11,-1> (q = 4 over "
        "sigma = 20). Paper shape: the dominate index is negligible for DNA; "
        "for protein it is large on small texts and shrinks relative to the "
        "BWT index as n grows (fewer unique-predecessor q-grams). On-disk "
        "columns are the byte-exact repro.store serialization (1 byte/BWT "
        "char and 64-bit counters vs the paper's bit-packed model)."
    )
    return "Figure 11 — index sizes", headers, rows, note


# ---------------------------------------------------------------- Section 6
def section6():
    """The upper-bound constants of Sec. 6, exact to the paper's digits."""
    headers = ["alphabet", "bound", "paper", "reproduced"]
    dna_lo, dna_hi = paper_bound_extremes(4)
    prot_lo, prot_hi = paper_bound_extremes(20)
    default = entry_bound(DEFAULT_SCHEME, 4)
    rows = [
        ["DNA", "minimum", "4.50 m n^0.520",
         f"{dna_lo.coefficient:.2f} m n^{dna_lo.exponent:.3f}"],
        ["DNA", "maximum", "9.05 m n^0.896",
         f"{dna_hi.coefficient:.2f} m n^{dna_hi.exponent:.3f}"],
        ["DNA", "default <1,-3,-5,-2>", "4.47 m n^0.6038",
         f"{default.coefficient:.2f} m n^{default.exponent:.4f}"],
        ["DNA", "BWT-SW (from [8])", "69 m n^0.628",
         f"{bwt_sw_bound(1, 1):.0f} m n^0.628"],
        ["protein", "minimum", "8.28 m n^0.364",
         f"{prot_lo.coefficient:.2f} m n^{prot_lo.exponent:.3f}"],
        ["protein", "maximum", "7.49 m n^0.723",
         f"{prot_hi.coefficient:.2f} m n^{prot_hi.exponent:.3f}"],
    ]
    note = (
        "Pure mathematics (Lemma 4 / Eq. 4 over the BLAST parameter grid); "
        "reproduced exactly, digit for digit."
    )
    return "Section 6 — calculated-entry upper bounds", headers, rows, note


# ---------------------------------------------------------------- Ablation
ABLATION_CONFIGS = [
    ("full ALAE", ()),
    ("no score filter", (("use_score_filter", False),)),
    ("no domination", (("use_domination", False),)),
    ("no reuse", (("use_reuse", False),)),
    ("+ online bitmask", (("use_global_bitmask", True),)),
]


def ablation():
    """Per-technique contribution (design-choice ablations from DESIGN.md)."""
    headers = ["configuration", "time (s)", "calculated", "reused", "hits"]
    rows = []
    for label, flags in ABLATION_CONFIGS:
        out = _outcomes(30_000, 1000, "alae", engine_flags=flags)
        rows.append(
            [label, fmt_seconds(out.total_seconds), fmt_int(out.calculated),
             fmt_int(out.reused), fmt_int(out.total_hits)]
        )
    b = _outcomes(30_000, 1000, "bwtsw")
    rows.append(
        ["BWT-SW reference", fmt_seconds(b.total_seconds),
         fmt_int(b.calculated), "0", fmt_int(b.total_hits)]
    )
    note = (
        "n = 30,000, m = 1,000, E = 10, default scheme. Every configuration "
        "returns the identical hit set (exactness is toggle-independent)."
    )
    return "Ablation — contribution of each technique", headers, rows, note


ALL_EXPERIMENTS = [
    section6,
    table2,
    table3,
    table4,
    table5,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    ablation,
]
