"""LRU cache of served query results.

Hits for one query depend only on the query *sequence*, the search
parameters, and the index contents — never on the query's name or on which
request carried it — so the cache key is ``(sequence, threshold, e_value,
top_k, mode, epoch)``.  ``mode`` isolates the serving tiers from each
other: a cached ``exact`` answer must never be replayed for a ``fast``
request, and a heuristic answer must never masquerade as exact.  ``epoch``
is the serving generation's index fingerprint
(header CRC for a monolithic store, manifest payload CRC for shards): a hot
reload changes it, so entries for a replaced index can never be served
again even before the cache is cleared.

Values store the *result* fields (threshold, hits, raw/dropped counts), not
the :class:`~repro.service.QueryResult` itself, so a cached answer can be
re-issued under any query id.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.align.types import SearchStats
from repro.io.database import LocatedHit
from repro.obs.metrics import Counter
from repro.service import QueryResult

# Cache-level accounting: counts every lookup (including lookups for
# requests later rejected by admission control), unlike the stats RPC's
# served-traffic hit rate.
_HITS_TOTAL = Counter(
    "repro_result_cache_hits_total", "Result-cache lookups that hit"
)
_MISSES_TOTAL = Counter(
    "repro_result_cache_misses_total", "Result-cache lookups that missed"
)
_EVICTIONS_TOTAL = Counter(
    "repro_result_cache_evictions_total", "Result-cache LRU evictions"
)


@dataclass(frozen=True)
class CachedResult:
    """The id-independent part of a :class:`QueryResult`.

    ``extra`` carries the mode-specific stats entries (seed counts,
    ``recall_vs_exact``, ...) so a cache hit for a non-exact mode still
    reports them; it stays empty for exact answers.
    """

    threshold: int
    hits: tuple[LocatedHit, ...]
    raw_hits: int
    dropped_boundary: int
    extra: dict = field(default_factory=dict)

    @classmethod
    def from_result(cls, result: QueryResult) -> "CachedResult":
        return cls(
            threshold=result.threshold,
            hits=tuple(result.hits),
            raw_hits=result.raw_hits,
            dropped_boundary=result.dropped_boundary,
            extra=dict(result.stats.extra),
        )

    def to_result(self, query_id: str) -> QueryResult:
        """Materialize a fresh result under ``query_id`` (zero-work stats)."""
        stats = SearchStats()
        stats.extra.update(self.extra)
        return QueryResult(
            query_id=query_id,
            hits=list(self.hits),
            stats=stats,
            threshold=self.threshold,
            raw_hits=self.raw_hits,
            dropped_boundary=self.dropped_boundary,
        )


class ResultCache:
    """Thread-safe LRU of :class:`CachedResult` with hit/miss accounting."""

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[tuple, CachedResult]" = OrderedDict()

    @staticmethod
    def key(
        sequence: str,
        threshold: int | None,
        e_value: float | None,
        top_k: int | None,
        epoch: int,
        mode: str = "exact",
    ) -> tuple:
        return (sequence, threshold, e_value, top_k, mode, epoch)

    def get(self, key: tuple) -> CachedResult | None:
        if self.capacity == 0:
            _MISSES_TOTAL.inc()
            return None
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
        if entry is None:
            _MISSES_TOTAL.inc()
        else:
            _HITS_TOTAL.inc()
        return entry

    def put(self, key: tuple, value: CachedResult) -> None:
        if self.capacity == 0:
            return
        evicted = 0
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                evicted += 1
        if evicted:
            _EVICTIONS_TOTAL.inc(evicted)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
