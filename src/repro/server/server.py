"""The resident serving tier: an asyncio TCP front over a search service.

:class:`SearchServer` keeps one warmed :class:`~repro.service.SearchService`
(monolithic store) or :class:`~repro.service.ShardedSearchService` (shard
manifest — the first bytes of ``--index`` decide, exactly as in
``search-db``) resident in a long-lived process and serves it over the
length-prefixed JSON protocol of :mod:`repro.server.protocol`:

* every connection may pipeline requests; responses are written strictly in
  request order, and a per-connection in-flight cap stops the reader — TCP
  backpressure — when a client races too far ahead;
* ``search`` requests pass admission control (fast-fail ``overloaded`` when
  the global queue is full), then an LRU result cache, then the
  :class:`~repro.server.batcher.MicroBatcher`, which coalesces concurrent
  queries into single ``search_batch`` calls on an executor thread — the
  event loop never blocks on alignment work;
* a background task polls the on-disk index fingerprint (header CRC for a
  store, manifest payload CRC for shards) and **hot-reloads**: in-flight
  batches drain, the service is reopened, the cache is invalidated, and
  the generation counter bumps — clients never see a mixed-index batch;
* ``stats`` reports qps, latency percentiles, cache hit rate, queue depth,
  batch shape and reload generation; ``ping`` / ``reload`` / ``shutdown``
  round out the ops.

Served hits are bit-identical to the offline ``search-db --index`` path:
the server calls the very same service layer, it just keeps it resident.
:class:`ServerThread` runs a server on a dedicated event-loop thread for
tests, benchmarks and notebooks.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import logging
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from repro.engine import MODE_ENGINE_NAMES, check_mode
from repro.errors import ReproError
from repro.io.database import LocatedHit
from repro.obs.exporter import MetricsExporter
from repro.obs.metrics import (
    EWMA,
    Counter,
    Gauge,
    Histogram,
    default_registry,
    metrics_enabled,
)
from repro.obs.reqlog import RequestLog, query_hash
from repro.obs.spans import shard_seconds
from repro.server.batcher import BatchKey, MicroBatcher, Overloaded
from repro.server.cache import CachedResult, ResultCache
from repro.server.protocol import (
    MAX_FRAME_BYTES,
    PREFIX,
    ProtocolError,
    decode_length,
    decode_payload,
    encode_frame,
)
from repro.server.stats import ServerStats
from repro.service import (
    Query,
    QueryResult,
    SearchService,
    ServiceError,
    ShardedSearchService,
    normalize_queries,
)
from repro.store import is_manifest, read_manifest
from repro.store.format import header_prefix_crc
from repro.store.sharded import manifest_payload_crc

logger = logging.getLogger("repro.server")

# Metric families live at module import (REP701): the serving tier's view of
# itself.  They are process-wide — two servers in one process (tests) share
# them, so assertions should compare deltas, not absolutes.
_REQUESTS_TOTAL = Counter(
    "repro_server_requests_total", "Wire requests by operation", ("op",)
)
_REQUEST_SECONDS = Histogram(
    "repro_server_request_seconds",
    "End-to-end served search latency (per query, by mode) — the "
    "budget-routing quantile source",
    ("mode",),
)
_INFLIGHT = Gauge(
    "repro_server_inflight_requests", "Wire requests currently being handled"
)
_GENERATION = Gauge(
    "repro_server_generation", "Hot-reload generation of the resident index"
)
_QUEUE_EWMA = Gauge(
    "repro_server_queue_depth_ewma",
    "EWMA of the micro-batch queue depth, sampled at each search request — "
    "the budget-routing pressure signal",
)
_OVERLOADED_TOTAL = Counter(
    "repro_server_overloaded_total",
    "Search requests rejected by admission control",
)

#: Ops get their own label value; anything else is folded into "unknown" so
#: a misbehaving client cannot mint unbounded label series.
_KNOWN_OPS = frozenset({"search", "stats", "metrics", "ping", "reload", "shutdown"})


def index_epoch(path: str | Path) -> int:
    """The on-disk identity of an index: header CRC or manifest payload CRC.

    Cheap enough to poll (a 20-byte read for a store, one JSON parse for a
    manifest) and guaranteed to change whenever the index is rebuilt, so it
    doubles as the reload trigger and the cache epoch.
    """
    if is_manifest(path):
        return manifest_payload_crc(read_manifest(path))
    return header_prefix_crc(path)


def open_serving_service(
    path: str | Path,
    *,
    workers: int = 1,
    executor: str = "threads",
    mode: str = "exact",
    engine_kwargs: dict | None = None,
) -> "tuple[SearchService | ShardedSearchService, int]":
    """Open the right service for an index path; returns ``(service, epoch)``.

    ``mode`` is the service's *default* search mode (its backend is built
    eagerly); per-request modes are still honoured lazily.
    """
    path = Path(path)
    if is_manifest(path):
        service = ShardedSearchService(
            path, workers=workers, executor=executor, mode=mode,
            engine_kwargs=engine_kwargs,
        )
        return service, service.manifest_crc
    service = SearchService(
        store=path, workers=workers, executor=executor, mode=mode,
        engine_kwargs=engine_kwargs,
    )
    return service, service.store.header_crc


def _wire_hit(hit: LocatedHit) -> list:
    return [
        hit.sequence_id, hit.t_start, hit.t_end, hit.p_end, hit.score,
        hit.record_index,
    ]


class SearchServer:
    """Serve an index over TCP with micro-batching and hot reload.

    Parameters
    ----------
    index:
        Path to a saved :class:`~repro.store.IndexStore` or a ``REPROSHD``
        shard manifest (sniffed, like ``search-db --index``).
    host, port:
        Bind address; ``port=0`` picks an ephemeral port (read it back from
        :attr:`port` after :meth:`start`).
    max_batch, linger, max_queue:
        Micro-batcher shape — see :class:`~repro.server.batcher.MicroBatcher`.
    cache_size:
        Result-LRU capacity in queries (0 disables caching).
    reload_poll:
        Seconds between on-disk fingerprint checks (0 disables hot reload;
        the ``reload`` RPC still works).
    workers, executor, engine_kwargs:
        Forwarded to the underlying service — parallelism *inside* one
        batch.
    mode:
        Default search mode (``exact``/``fast``/``verified``) for requests
        that do not carry their own ``mode`` field.  Part of the batch and
        cache keys, so tiers never share a dispatch or a cached answer.
    max_inflight:
        Per-connection pipelining cap; the reader stops consuming frames
        while this many responses are pending, pushing backpressure into
        the client's TCP window.
    request_log:
        Optional path to a catalog database; when set, every search
        request appends one structured row (query hash + length, mode,
        params, latency, cache hit, batch size, per-shard timings,
        generation, status) via :class:`~repro.obs.reqlog.RequestLog` —
        the hot path pays one deque enqueue, SQLite happens on a
        background thread.
    metrics_port:
        When set, :meth:`start` also binds a Prometheus scrape endpoint
        (``GET /metrics``) on ``host:metrics_port`` via
        :class:`~repro.obs.exporter.MetricsExporter`; ``0`` picks an
        ephemeral port (read it back from :attr:`metrics_port`).
    """

    def __init__(
        self,
        index: str | Path,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_batch: int = 16,
        linger: float = 0.002,
        max_queue: int = 256,
        cache_size: int = 1024,
        reload_poll: float = 2.0,
        workers: int = 1,
        executor: str = "threads",
        mode: str = "exact",
        engine_kwargs: dict | None = None,
        max_frame: int = MAX_FRAME_BYTES,
        max_inflight: int = 32,
        request_log: str | Path | None = None,
        metrics_port: int | None = None,
    ) -> None:
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        self.index_path = Path(index)
        self.host = host
        self._requested_port = port
        self.max_frame = max_frame
        self.max_inflight = max_inflight
        self.reload_poll = reload_poll
        self.default_mode = check_mode(mode)
        self._service_kwargs = {
            "workers": workers,
            "executor": executor,
            "mode": self.default_mode,
            "engine_kwargs": dict(engine_kwargs or {}),
        }
        self._cache = ResultCache(cache_size)
        self._stats = ServerStats()
        self._batch_shape = {
            "max_batch": max_batch, "linger": linger, "max_queue": max_queue,
        }
        self.service: "SearchService | ShardedSearchService | None" = None
        self._epoch: int | None = None
        self.generation = 0
        self._server: asyncio.AbstractServer | None = None
        self._bound_port: int | None = None
        self._batcher: MicroBatcher | None = None
        self._pause: asyncio.Lock | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._reload_task: asyncio.Task | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._stopped_event: asyncio.Event | None = None
        self._stopping = False
        self._request_log_path = (
            None if request_log is None else Path(request_log)
        )
        self._request_log: RequestLog | None = None
        self._metrics_port = metrics_port
        self._exporter: MetricsExporter | None = None
        self._queue_ewma = EWMA(alpha=0.2)

    # -------------------------------------------------------------- lifecycle
    @property
    def port(self) -> int:
        """The actually bound port (resolves ``port=0`` after :meth:`start`)."""
        return self._bound_port or self._requested_port

    @property
    def metrics_port(self) -> int | None:
        """The bound scrape port, or ``None`` when the exporter is off."""
        if self._exporter is not None:
            return self._exporter.port
        return self._metrics_port

    @property
    def sharded(self) -> bool:
        return isinstance(self.service, ShardedSearchService)

    async def start(self) -> None:
        """Open the index, bind the socket, start batcher and reload poll."""
        loop = asyncio.get_running_loop()
        self._stopped_event = asyncio.Event()
        self._pause = asyncio.Lock()
        # One thread runs batches and reload opens; the event loop stays free.
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve"
        )
        self.service, self._epoch = await loop.run_in_executor(
            self._executor, self._open_service
        )
        self.generation = 1
        _GENERATION.set(self.generation)
        if self._request_log_path is not None:
            # Built on the executor thread: schema creation is SQLite I/O.
            self._request_log = await loop.run_in_executor(
                self._executor, RequestLog, self._request_log_path
            )
            logger.info("request log -> %s", self._request_log_path)
        self._batcher = MicroBatcher(
            self._run_batch,
            pause=self._pause,
            on_batch=self._on_batch,
            **self._batch_shape,
        )
        self._batcher.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self._requested_port
        )
        self._bound_port = self._server.sockets[0].getsockname()[1]
        logger.info(
            "serving %s on %s:%d (mode=%s, sharded=%s)",
            self.index_path, self.host, self._bound_port,
            self.default_mode, self.sharded,
        )
        if self._metrics_port is not None:
            self._exporter = MetricsExporter(
                host=self.host, port=self._metrics_port
            )
            self._exporter.start()
        if self.reload_poll > 0:
            self._reload_task = loop.create_task(
                self._reload_loop(), name="repro-serve-reload"
            )

    async def serve_forever(self) -> None:
        """Block until :meth:`stop` completes (signal handler or RPC)."""
        assert self._stopped_event is not None, "call start() first"
        await self._stopped_event.wait()

    async def stop(self) -> None:
        """Graceful shutdown: drain the in-flight batch, then tear down."""
        if self._stopping:
            if self._stopped_event is not None:
                await self._stopped_event.wait()
            return
        self._stopping = True
        if self._reload_task is not None:
            self._reload_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._reload_task
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._batcher is not None:
            await self._batcher.stop()
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        if self._executor is not None:
            self._executor.shutdown(wait=True)
        if self._request_log is not None:
            self._request_log.close()
            self._request_log = None
        if self._exporter is not None:
            self._exporter.close()
            self._exporter = None
        logger.info("server stopped")
        if self._stopped_event is not None:
            self._stopped_event.set()

    # ------------------------------------------------------------ index state
    def _open_service(self):
        return open_serving_service(self.index_path, **self._service_kwargs)

    def _run_batch(self, queries: list[Query], key: BatchKey):
        """Batch runner handed to the MicroBatcher (awaits an executor thread)."""
        loop = asyncio.get_running_loop()
        return loop.run_in_executor(
            self._executor, self._search_batch_sync, queries, key
        )

    def _on_batch(self, count: int, spans: dict) -> None:
        """Batcher callback: batch shape plus queue-time span totals."""
        self._stats.record_batch(count)
        self._stats.record_spans(spans)

    def _search_batch_sync(
        self, queries: list[Query], key: BatchKey
    ) -> "list[tuple[int, int, QueryResult]]":
        """One service call for the whole batch; results tagged with the
        epoch that served them and the size of the batch they rode in.

        Runs under the batcher's pause lock, which the reload task holds
        while swapping the service — so the epoch read here always matches
        the service that computed the results.
        """
        assert self.service is not None and self._epoch is not None
        report = self.service.search_batch(
            queries,
            threshold=key.threshold,
            e_value=key.e_value,
            top_k=key.top_k,
            mode=key.mode,
        )
        return [
            (self._epoch, len(queries), result) for result in report.results
        ]

    async def _reload_loop(self) -> None:
        while True:
            await asyncio.sleep(self.reload_poll)
            try:
                await self.maybe_reload()
            # repro-lint: allow[REP501] -- the poll loop must survive any
            # failure shape: a half-written index (mid-rebuild) can raise
            # store, OS or decode errors; keep serving the old index and
            # try again next tick.
            except Exception:
                logger.debug(
                    "reload poll failed (index mid-rebuild?)", exc_info=True
                )

    async def maybe_reload(self) -> bool:
        """Re-open the index iff its on-disk fingerprint changed.

        Drains in-flight work first: the pause lock is only granted between
        batches, so no batch ever spans two index generations.
        """
        assert self._pause is not None and self._executor is not None
        loop = asyncio.get_running_loop()
        on_disk = await loop.run_in_executor(
            self._executor, index_epoch, self.index_path
        )
        if on_disk == self._epoch:
            return False
        async with self._pause:  # waits for the running batch to finish
            if on_disk == self._epoch:
                # A concurrent caller (poll task vs reload RPC) already
                # swapped this epoch in while we waited for the lock.
                return False
            # repro-lint: allow[REP802] -- the drain-and-swap design opens
            # the new store *under* the pause lock on purpose: batches must
            # not run while generations swap, and the event loop itself
            # stays free (the open happens on the executor, awaited here).
            service, epoch = await loop.run_in_executor(
                self._executor, self._open_service
            )
            self.service = service
            self._epoch = epoch
            self.generation += 1
            _GENERATION.set(self.generation)
            self._cache.clear()
            self._stats.count("reloads_total")
            logger.info(
                "hot reload: %s -> generation %d",
                self.index_path, self.generation,
            )
        return True

    # ------------------------------------------------------------ connections
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        assert task is not None
        self._conn_tasks.add(task)
        responses: "asyncio.Queue[asyncio.Future | None]" = asyncio.Queue()
        inflight = asyncio.Semaphore(self.max_inflight)
        writer_task = asyncio.get_running_loop().create_task(
            self._write_responses(writer, responses, inflight)
        )
        try:
            await self._read_requests(reader, responses, inflight)
        finally:
            self._conn_tasks.discard(task)
            responses.put_nowait(None)
            try:
                await writer_task  # flush responses already in flight
            # repro-lint: allow[REP501] -- shutdown may re-cancel this task
            # while it awaits the writer (CancelledError is a BaseException);
            # the writer task must still be cancelled before the socket closes.
            except BaseException:
                writer_task.cancel()
            self._drain_responses(responses)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _read_requests(
        self,
        reader: asyncio.StreamReader,
        responses: "asyncio.Queue[asyncio.Future | None]",
        inflight: asyncio.Semaphore,
    ) -> None:
        loop = asyncio.get_running_loop()
        while True:
            try:
                prefix = await reader.readexactly(PREFIX.size)
            except (asyncio.IncompleteReadError, ConnectionError):
                return  # clean EOF or mid-prefix disconnect
            try:
                length = decode_length(prefix, self.max_frame)
                body = await reader.readexactly(length)
                payload = decode_payload(body)
            except (asyncio.IncompleteReadError, ConnectionError):
                return  # disconnect mid-frame
            except ProtocolError as exc:
                # Malformed input from *this* client: answer it and close
                # this connection; the accept loop is untouched.
                self._stats.count("protocol_errors")
                failed: asyncio.Future = loop.create_future()
                failed.set_result({"status": "error", "error": str(exc)})
                await responses.put(failed)
                return
            await inflight.acquire()  # per-connection pipelining cap
            handler = loop.create_task(self._handle_request(payload))
            await responses.put(handler)

    async def _write_responses(
        self,
        writer: asyncio.StreamWriter,
        responses: "asyncio.Queue[asyncio.Future | None]",
        inflight: asyncio.Semaphore,
    ) -> None:
        while True:
            entry = await responses.get()
            if entry is None:
                return
            try:
                payload = await entry
            except asyncio.CancelledError:
                return
            # repro-lint: allow[REP501] -- a handler bug must be reported to
            # the waiting client as an error frame, not kill the writer loop
            # (which would strand every other pipelined response).
            except Exception as exc:
                payload = {"status": "error", "error": str(exc)}
            finally:
                inflight.release()
            try:
                writer.write(encode_frame(payload, self.max_frame))
                await writer.drain()
            except (ConnectionError, RuntimeError):
                return  # client vanished mid-response; drop the rest
            except ProtocolError:
                # A response larger than the frame cap: tell the client
                # to narrow the request instead of silently dropping it.
                writer.write(
                    encode_frame(
                        {
                            "status": "error",
                            "error": "response exceeds the frame size limit; "
                            "lower the batch size or hit count",
                        },
                        self.max_frame,
                    )
                )
                with contextlib.suppress(ConnectionError, RuntimeError):
                    await writer.drain()

    def _drain_responses(
        self, responses: "asyncio.Queue[asyncio.Future | None]"
    ) -> None:
        """Cancel handlers whose responses can no longer be delivered."""
        while True:
            try:
                entry = responses.get_nowait()
            except asyncio.QueueEmpty:
                return
            if entry is not None:
                entry.cancel()

    # --------------------------------------------------------------- requests
    def routing_signals(self) -> dict:
        """Budget-routing inputs: queue pressure + per-mode latency quantiles.

        The next PR's latency-budget router consumes this block (also
        embedded in ``stats`` and ``metrics`` responses): pick the cheapest
        mode whose p99 fits the caller's budget, backing off when the EWMA
        queue depth says the batcher is saturated.
        """
        quantiles = {}
        for labels, child in _REQUEST_SECONDS.series():
            if child.count:
                quantiles[labels["mode"]] = {
                    "p50": child.quantile(0.5),
                    "p90": child.quantile(0.9),
                    "p99": child.quantile(0.99),
                }
        return {
            "queue_depth": self._batcher.depth if self._batcher else 0,
            "ewma_queue_depth": round(self._queue_ewma.value, 4),
            "latency_quantiles": quantiles,
        }

    async def _handle_request(self, payload: dict) -> dict:
        op = payload.get("op")
        _REQUESTS_TOTAL.labels(op=op if op in _KNOWN_OPS else "unknown").inc()
        _INFLIGHT.inc()
        try:
            return await self._dispatch_request(op, payload)
        finally:
            _INFLIGHT.dec()

    async def _dispatch_request(self, op: object, payload: dict) -> dict:
        self._stats.count("requests_total")
        if op == "search":
            return await self._handle_search(payload)
        if op == "stats":
            assert self._batcher is not None
            body = self._stats.snapshot(
                queue_depth=self._batcher.depth, generation=self.generation
            )
            body.update(self._batch_shape)
            body["cache_size"] = len(self._cache)
            body["routing"] = self.routing_signals()
            if self._request_log is not None:
                body["request_log"] = self._request_log.counters()
            return {
                "status": "ok",
                "stats": body,
                "index": str(self.index_path),
                "sharded": self.sharded,
                "mode": self.default_mode,
                "engine": MODE_ENGINE_NAMES[self.default_mode],
            }
        if op == "metrics":
            registry = default_registry()
            return {
                "status": "ok",
                "enabled": metrics_enabled(),
                "generation": self.generation,
                "families": registry.collect(),
                "routing": self.routing_signals(),
            }
        if op == "ping":
            return {"status": "ok", "pong": True, "generation": self.generation}
        if op == "reload":
            try:
                reloaded = await self.maybe_reload()
            except ReproError as exc:
                return {"status": "error", "error": str(exc)}
            return {
                "status": "ok",
                "reloaded": reloaded,
                "generation": self.generation,
            }
        if op == "shutdown":
            loop = asyncio.get_running_loop()
            # Respond first, stop a beat later so the frame flushes.
            loop.call_later(
                0.05, lambda: loop.create_task(self.stop())
            )
            return {"status": "ok", "stopping": True}
        return {"status": "error", "error": f"unknown op {op!r}"}

    def _parse_search(self, payload: dict) -> tuple[list[Query], BatchKey]:
        raw = payload.get("queries")
        if not isinstance(raw, list) or not raw:
            raise ServiceError("'queries' must be a non-empty list")
        items: list = []
        for entry in raw:
            if isinstance(entry, list) and len(entry) == 2:
                items.append((entry[0], entry[1]))
            elif isinstance(entry, str):
                items.append(entry)
            else:
                raise ServiceError(
                    "each query must be a sequence string or an "
                    "[id, sequence] pair"
                )
        queries = normalize_queries(items)
        threshold = payload.get("threshold")
        e_value = payload.get("e_value")
        top_k = payload.get("top_k")
        # bool is a subclass of int: reject it explicitly so a client bug
        # like {"threshold": true} cannot be served as an H=1 search.
        if threshold is not None and (
            isinstance(threshold, bool) or not isinstance(threshold, int)
        ):
            raise ServiceError("'threshold' must be an integer")
        if e_value is not None and (
            isinstance(e_value, bool) or not isinstance(e_value, (int, float))
        ):
            raise ServiceError("'e_value' must be a number")
        if top_k is not None and (
            isinstance(top_k, bool) or not isinstance(top_k, int) or top_k < 1
        ):
            raise ServiceError("'top_k' must be a positive integer")
        if threshold is not None and e_value is not None:
            raise ServiceError("pass either 'threshold' or 'e_value', not both")
        mode = payload.get("mode")
        if mode is not None and not isinstance(mode, str):
            raise ServiceError("'mode' must be a string")
        mode = self.default_mode if mode is None else check_mode(mode)
        return queries, BatchKey(
            threshold=threshold,
            e_value=None if e_value is None else float(e_value),
            top_k=top_k,
            mode=mode,
        )

    def _log_search(
        self,
        queries: list[Query],
        key: BatchKey,
        *,
        latency: float,
        status: str,
        per_query: "list[tuple[bool, int, dict]] | None" = None,
    ) -> None:
        """Append one request-log row per query (no-op when logging is off).

        ``per_query`` carries ``(cached, batch_size, spans)`` for served
        requests; rejected/failed requests log with empty telemetry so the
        traffic mix still counts them.
        """
        if self._request_log is None:
            return
        now = time.time()
        for pos, query in enumerate(queries):
            cached, batch_size, spans = (
                per_query[pos] if per_query is not None else (False, 0, {})
            )
            shards = shard_seconds(spans)
            self._request_log.record(
                (
                    now,
                    query_hash(query.sequence),
                    len(query.sequence),
                    key.mode,
                    key.threshold,
                    key.e_value,
                    key.top_k,
                    latency,
                    int(cached),
                    batch_size,
                    json.dumps([round(s, 6) for s in shards])
                    if shards
                    else None,
                    self.generation,
                    status,
                )
            )

    async def _handle_search(self, payload: dict) -> dict:
        assert self._batcher is not None
        loop = asyncio.get_running_loop()
        arrived = loop.time()
        try:
            queries, key = self._parse_search(payload)
        except ReproError as exc:
            return {"status": "error", "error": str(exc)}
        trace = bool(payload.get("trace"))
        _QUEUE_EWMA.set(self._queue_ewma.update(self._batcher.depth))
        epoch = self._epoch
        slots: list = []  # per query: ("hit", QueryResult) | ("miss", Future, key)
        misses = 0
        for query in queries:
            cache_key = ResultCache.key(
                query.sequence, key.threshold, key.e_value, key.top_k, epoch,
                key.mode,
            )
            cached = self._cache.get(cache_key)
            if cached is not None:
                slots.append(("hit", cached.to_result(query.id)))
            else:
                slots.append(("miss", query, cache_key))
                misses += 1
        # Admit the uncached remainder all-or-nothing (no await between the
        # check and the submits, so the capacity test cannot race).  Cache
        # counters only move for admitted requests, so cache_hit_rate
        # describes served traffic even under sustained overload.
        if self._batcher.depth + misses > self._batcher.max_queue:
            self._stats.count("overloaded_total")
            _OVERLOADED_TOTAL.inc()
            self._log_search(
                queries, key,
                latency=loop.time() - arrived, status="overloaded",
            )
            return {
                "status": "overloaded",
                "error": (
                    f"request queue is full ({self._batcher.depth} queries "
                    f"pending, limit {self._batcher.max_queue})"
                ),
                "queue_depth": self._batcher.depth,
            }
        entries: list = []
        try:
            for slot in slots:
                if slot[0] == "hit":
                    entries.append(slot)
                else:
                    _tag, query, cache_key = slot
                    entries.append(
                        ("miss", query, cache_key, self._batcher.submit(query, key))
                    )
        except (Overloaded, ReproError) as exc:
            status = "overloaded" if isinstance(exc, Overloaded) else "error"
            if status == "overloaded":
                self._stats.count("overloaded_total")
                _OVERLOADED_TOTAL.inc()
            self._log_search(
                queries, key, latency=loop.time() - arrived, status=status
            )
            return {"status": status, "error": str(exc)}
        self._stats.count("cache_hits", len(queries) - misses)
        self._stats.count("cache_misses", misses)
        # Await every submitted future before deciding the response: a
        # failed batch must not leave sibling futures unretrieved (their
        # results would be dropped uncached and asyncio would log
        # "exception was never retrieved" on GC).
        outcomes = await asyncio.gather(
            *(entry[3] for entry in entries if entry[0] == "miss"),
            return_exceptions=True,
        )
        failure: BaseException | None = None
        fresh = iter(outcomes)
        results: list[dict] = []
        per_query: list[tuple[bool, int, dict]] = []
        for entry in entries:
            if entry[0] == "hit":
                result: QueryResult = entry[1]
                cached_flag = True
                batch_size = 0
            else:
                _tag, query, cache_key, _future = entry
                outcome = next(fresh)
                if isinstance(outcome, BaseException):
                    if isinstance(outcome, (Overloaded, ReproError)):
                        failure = failure or outcome
                        continue
                    raise outcome  # cancellation or a handler bug
                served_epoch, batch_size, result = outcome
                # The result came from the generation that ran the batch;
                # if a reload slipped in between admit and run, key the
                # entry under the epoch that actually served it — the old
                # key could never be looked up again.
                if served_epoch != epoch:
                    cache_key = ResultCache.key(
                        query.sequence, key.threshold, key.e_value,
                        key.top_k, served_epoch, key.mode,
                    )
                self._cache.put(cache_key, CachedResult.from_result(result))
                cached_flag = False
                self._stats.record_spans(result.stats.spans)
            per_query.append((cached_flag, batch_size, result.stats.spans))
            body = {
                "id": result.query_id,
                "threshold": result.threshold,
                "hits": [_wire_hit(hit) for hit in result.hits],
                "raw_hits": result.raw_hits,
                "dropped": result.dropped_boundary,
                "cached": cached_flag,
            }
            if key.mode != "exact":
                # Mode-specific accounting (seed counts, recall_vs_exact):
                # exact responses keep the original payload shape.
                body["extra"] = dict(result.stats.extra)
            if trace:
                body["spans"] = {
                    name: round(seconds, 6)
                    for name, seconds in sorted(result.stats.spans.items())
                }
            results.append(body)
        elapsed = loop.time() - arrived
        if failure is not None:
            self._log_search(queries, key, latency=elapsed, status="error")
            return {"status": "error", "error": str(failure)}
        request_seconds = _REQUEST_SECONDS.labels(mode=key.mode)
        for _ in queries:
            self._stats.latency.observe(elapsed)
            request_seconds.observe(elapsed)
        self._stats.qps.mark(len(queries))
        self._stats.count("queries_total", len(queries))
        self._log_search(
            queries, key, latency=elapsed, status="ok", per_query=per_query
        )
        return {
            "status": "ok",
            "engine": MODE_ENGINE_NAMES[key.mode],
            "mode": key.mode,
            "generation": self.generation,
            "results": results,
        }


class ServerThread:
    """Run a :class:`SearchServer` on a dedicated event-loop thread.

    The context-manager form is the test/benchmark workhorse::

        with ServerThread(SearchServer("db.idx", port=0)) as handle:
            client = ServerClient(port=handle.port)
            ...
    """

    def __init__(self, server: SearchServer, *, start_timeout: float = 60.0):
        self.server = server
        self._start_timeout = start_timeout
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None

    @property
    def port(self) -> int:
        return self.server.port

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._run, name="repro-server", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(self._start_timeout):
            raise ReproError("server did not start in time")
        # repro-lint: allow[REP803] -- _startup_error is published by the
        # server thread strictly before _ready.set(); the Event wait above
        # is the happens-before edge, so no lock is needed here.
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        # repro-lint: allow[REP803] -- _loop is written once before
        # _ready.set(); stop() only runs after start() returned, which
        # waited on that Event — handshake, not shared mutable state.
        self._loop = loop
        try:
            loop.run_until_complete(self.server.start())
        # repro-lint: allow[REP501] -- any startup failure (including
        # KeyboardInterrupt/SystemExit) must cross the thread boundary to
        # start(), which re-raises it on the caller's thread.
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            loop.close()
            return
        self._ready.set()
        try:
            loop.run_until_complete(self.server.serve_forever())
        finally:
            loop.close()

    def stop(self, timeout: float = 60.0) -> None:
        if self._thread is None or self._loop is None:
            return
        if self._thread.is_alive() and not self._loop.is_closed():
            with contextlib.suppress(RuntimeError):
                future = asyncio.run_coroutine_threadsafe(
                    self.server.stop(), self._loop
                )
                with contextlib.suppress(Exception):
                    future.result(timeout)
        self._thread.join(timeout)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
