"""Length-prefixed JSON wire protocol shared by server and client.

One frame is a fixed 4-byte big-endian unsigned payload length followed by
that many bytes of UTF-8 JSON::

    +----------------+----------------------------+
    | length (>I, 4) | payload (UTF-8 JSON bytes) |
    +----------------+----------------------------+

Both sides speak the same frames; a *request* payload carries an ``op``
(``search`` / ``stats`` / ``ping`` / ``reload`` / ``shutdown``) and a
*response* payload carries a ``status`` (``ok`` / ``overloaded`` /
``error``).  The length prefix is validated against ``max_frame`` before a
single payload byte is read, so a hostile or corrupt prefix can never make
the server allocate unbounded memory — it is reported as a
:class:`ProtocolError` and the connection is closed.

Everything here is synchronous byte-level plumbing (the asyncio server and
the blocking client wrap it with their own I/O); only stdlib is used.
"""

from __future__ import annotations

import json
import struct

from repro.errors import ReproError

#: Frame header: one big-endian u32 payload length.
PREFIX = struct.Struct(">I")

#: Default ceiling for one frame's JSON payload (requests *and* responses).
#: Large enough for thousands of hits, small enough that a garbage length
#: prefix cannot trigger a multi-gigabyte read.
MAX_FRAME_BYTES = 8 * 1024 * 1024


class ProtocolError(ReproError):
    """Malformed frame: bad length prefix, oversized or non-JSON payload."""


def encode_frame(payload: dict, max_frame: int = MAX_FRAME_BYTES) -> bytes:
    """Serialize one payload into a length-prefixed frame."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > max_frame:
        raise ProtocolError(
            f"frame payload is {len(body)} bytes, exceeding the "
            f"{max_frame}-byte frame limit"
        )
    return PREFIX.pack(len(body)) + body


def decode_length(prefix: bytes, max_frame: int = MAX_FRAME_BYTES) -> int:
    """Validate a 4-byte prefix and return the payload length it announces."""
    if len(prefix) != PREFIX.size:
        raise ProtocolError(
            f"truncated frame prefix ({len(prefix)} of {PREFIX.size} bytes)"
        )
    (length,) = PREFIX.unpack(prefix)
    if length > max_frame:
        raise ProtocolError(
            f"announced payload of {length} bytes exceeds the "
            f"{max_frame}-byte frame limit"
        )
    return length


def decode_payload(body: bytes) -> dict:
    """Parse a frame payload; the top-level value must be a JSON object."""
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame payload is not valid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"frame payload must be a JSON object, got "
            f"{type(payload).__name__}"
        )
    return payload
