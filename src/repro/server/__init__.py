"""Network serving tier: resident async TCP server over prebuilt indexes.

The layering is ``engine → service → server``: engines answer one query,
:mod:`repro.service` batches queries over one warmed engine (or a shard
fan-out), and this package keeps that service resident behind a socket —
micro-batching concurrent requests, admission-controlling overload,
caching repeated queries, and hot-reloading the index when the file on
disk changes.  Start one with ``repro serve --index PATH --port P`` and
talk to it with ``repro query`` or :class:`ServerClient`.
"""

from repro.server.batcher import BatchKey, MicroBatcher, Overloaded
from repro.server.cache import CachedResult, ResultCache
from repro.server.client import (
    ServedBatch,
    ServedResult,
    ServerClient,
    ServerError,
    ServerOverloaded,
    wait_until_ready,
)
from repro.server.protocol import (
    MAX_FRAME_BYTES,
    PREFIX,
    ProtocolError,
    decode_length,
    decode_payload,
    encode_frame,
)
from repro.server.server import (
    SearchServer,
    ServerThread,
    index_epoch,
    open_serving_service,
)
from repro.server.stats import LatencyWindow, RateWindow, ServerStats

__all__ = [
    "BatchKey",
    "CachedResult",
    "LatencyWindow",
    "MAX_FRAME_BYTES",
    "MicroBatcher",
    "Overloaded",
    "PREFIX",
    "ProtocolError",
    "RateWindow",
    "ResultCache",
    "SearchServer",
    "ServedBatch",
    "ServedResult",
    "ServerClient",
    "ServerError",
    "ServerOverloaded",
    "ServerStats",
    "ServerThread",
    "decode_length",
    "decode_payload",
    "encode_frame",
    "index_epoch",
    "open_serving_service",
    "wait_until_ready",
]
