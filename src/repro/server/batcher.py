"""Micro-batching with admission control for the serving tier.

Concurrent in-flight ``search`` requests — from any number of connections —
land as individual :class:`PendingQuery` items on one bounded queue.  A
single dispatcher task assembles them into batches and hands each batch to
a blocking runner (one ``SearchService.search_batch`` call) on an executor
thread, so N concurrent clients cost one engine dispatch instead of N:

* a batch grows until it holds ``max_batch`` queries or ``linger`` seconds
  have passed since its first query arrived — under load batches fill
  instantly and the linger never matters; when idle a lone query waits at
  most ``linger`` before running alone;
* only queries with the same :class:`BatchKey` (threshold / e-value /
  top-k / search mode) can share a ``search_batch`` call; a query with a
  different key seeds the *next* batch instead of being reordered behind
  later arrivals;
* admission control is a hard cap on queued-plus-running queries:
  :meth:`MicroBatcher.submit` raises :class:`Overloaded` instead of
  queueing the excess, so clients get an instant ``overloaded`` response
  while the server keeps bounded memory and bounded worst-case latency.

The dispatcher executes at most one batch at a time (the engine's own
worker pool parallelises *inside* the batch), and it takes ``pause`` — an
``asyncio.Lock`` shared with the hot-reload task — around every batch, so
"drain in-flight work, then swap the index" is just "acquire the lock".
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from time import perf_counter
from typing import Awaitable, Callable

from repro.errors import ReproError
from repro.obs.metrics import SIZE_BUCKETS, Counter, Gauge, Histogram
from repro.obs.spans import SPAN_ADMISSION_WAIT, SPAN_BATCH_LINGER
from repro.service import Query, QueryResult

_ADMISSION_WAIT_SECONDS = Histogram(
    "repro_batcher_admission_wait_seconds",
    "Per-query wait between admission and batch dispatch",
)
_BATCH_SIZE = Histogram(
    "repro_batcher_batch_size",
    "Queries riding in each engine dispatch",
    buckets=SIZE_BUCKETS,
)
_QUEUE_DEPTH = Gauge(
    "repro_batcher_queue_depth",
    "Admitted queries not yet resolved (queued + running batch)",
)
_SUBMITTED_TOTAL = Counter(
    "repro_batcher_submitted_total", "Queries admitted to the batch queue"
)


class Overloaded(ReproError):
    """The request queue is full; the query was rejected, not enqueued."""


@dataclass(frozen=True)
class BatchKey:
    """Search parameters that must match for queries to share one batch.

    ``mode`` is part of the key so an ``exact`` query can never ride in a
    ``fast`` batch (and vice versa) — the tiers answer different questions
    and must never share a ``search_batch`` dispatch.
    """

    threshold: int | None
    e_value: float | None
    top_k: int | None
    mode: str = "exact"


@dataclass
class PendingQuery:
    """One admitted query waiting for (or riding in) a batch."""

    query: Query
    key: BatchKey
    future: asyncio.Future
    submitted: float = field(default_factory=perf_counter)


#: Runner signature: executes one batch *off* the event loop and returns
#: per-query results in submission order.
BatchRunner = Callable[[list[Query], BatchKey], Awaitable[list[QueryResult]]]


class MicroBatcher:
    """Coalesce admitted queries into batches and run them serially."""

    def __init__(
        self,
        runner: BatchRunner,
        *,
        max_batch: int = 16,
        linger: float = 0.002,
        max_queue: int = 256,
        pause: asyncio.Lock | None = None,
        on_batch: Callable[[int, dict], None] | None = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        if linger < 0:
            raise ValueError(f"linger must be >= 0, got {linger}")
        self._runner = runner
        self.max_batch = max_batch
        self.linger = linger
        self.max_queue = max_queue
        self.pause = pause if pause is not None else asyncio.Lock()
        self._on_batch = on_batch
        self._queue: "asyncio.Queue[PendingQuery | None]" = asyncio.Queue()
        self._holdover: PendingQuery | None = None
        self._pending = 0  # admitted and not yet resolved
        self._task: asyncio.Task | None = None
        self._stopping = False

    @property
    def depth(self) -> int:
        """Admitted queries not yet resolved (queued + in the running batch)."""
        return self._pending

    def start(self) -> None:
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(
                self._dispatch_loop(), name="repro-serve-dispatch"
            )

    async def stop(self) -> None:
        """Refuse new work, let the in-flight batch finish, fail the rest."""
        self._stopping = True
        if self._task is None:
            return
        await self._queue.put(None)  # wake the dispatcher if it is idle
        await self._task
        self._task = None

    def submit(self, query: Query, key: BatchKey) -> asyncio.Future:
        """Admit one query, or raise :class:`Overloaded` / shutting-down."""
        if self._stopping:
            raise ReproError("server is shutting down")
        if self._pending >= self.max_queue:
            raise Overloaded(
                f"request queue is full ({self._pending} queries pending, "
                f"limit {self.max_queue})"
            )
        future = asyncio.get_running_loop().create_future()
        item = PendingQuery(query=query, key=key, future=future)
        self._pending += 1
        _SUBMITTED_TOTAL.inc()
        _QUEUE_DEPTH.set(self._pending)
        self._queue.put_nowait(item)
        return future

    # ---------------------------------------------------------- dispatching
    async def _next_item(self, timeout: float | None) -> "PendingQuery | None":
        if timeout is None:
            return await self._queue.get()
        if timeout <= 0:
            try:
                return self._queue.get_nowait()
            except asyncio.QueueEmpty:
                return None
        try:
            return await asyncio.wait_for(self._queue.get(), timeout)
        except asyncio.TimeoutError:
            return None

    async def _dispatch_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            first = self._holdover
            self._holdover = None
            if first is None:
                first = await self._queue.get()
            if first is None:  # stop sentinel
                break
            batch = [first]
            deadline = loop.time() + self.linger
            while len(batch) < self.max_batch:
                item = await self._next_item(deadline - loop.time())
                if item is None:
                    break  # linger spent (or the stop sentinel arrived)
                if item.key != first.key:
                    self._holdover = item
                    break
                batch.append(item)
            await self._run_batch(batch)
            if self._stopping and self._holdover is None and self._queue.empty():
                break
        self._fail_remaining(ReproError("server is shutting down"))

    async def _run_batch(self, batch: list[PendingQuery]) -> None:
        run_start = perf_counter()
        # Queue-time accounting: how long the members waited for dispatch
        # (admission wait, summed) and how long the batch as a whole
        # lingered for company (its oldest member's wait).
        batch_spans = {
            SPAN_ADMISSION_WAIT: sum(
                max(0.0, run_start - item.submitted) for item in batch
            ),
            SPAN_BATCH_LINGER: max(
                0.0, run_start - min(item.submitted for item in batch)
            ),
        }
        for item in batch:
            _ADMISSION_WAIT_SECONDS.observe(max(0.0, run_start - item.submitted))
        _BATCH_SIZE.observe(len(batch))
        async with self.pause:  # a reload in progress finishes first
            queries = [item.query for item in batch]
            try:
                results = await self._runner(queries, batch[0].key)
            # repro-lint: allow[REP501] -- whatever the engine/service threw
            # must fail every waiting future; a narrowed catch would leave
            # clients of this batch hanging forever on an unforeseen error.
            except Exception as exc:
                for item in batch:
                    if not item.future.done():
                        item.future.set_exception(exc)
                self._pending -= len(batch)
                _QUEUE_DEPTH.set(self._pending)
                return
        if len(results) != len(batch):
            exc = ReproError(
                f"batch runner returned {len(results)} results for "
                f"{len(batch)} queries"
            )
            for item in batch:
                if not item.future.done():
                    item.future.set_exception(exc)
        else:
            for item, result in zip(batch, results):
                if not item.future.done():  # client may have gone away
                    item.future.set_result(result)
        self._pending -= len(batch)
        _QUEUE_DEPTH.set(self._pending)
        if self._on_batch is not None:
            self._on_batch(len(batch), batch_spans)

    def _fail_remaining(self, exc: Exception) -> None:
        if self._holdover is not None:
            if not self._holdover.future.done():
                self._holdover.future.set_exception(exc)
            self._pending -= 1
            self._holdover = None
        while True:
            try:
                item = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if item is None:
                continue
            if not item.future.done():
                item.future.set_exception(exc)
            self._pending -= 1
        _QUEUE_DEPTH.set(self._pending)
