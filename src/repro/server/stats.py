"""Serving telemetry: counters, sliding-window qps, latency percentiles.

The server mutates these from the event-loop thread and from executor
callbacks, so every structure takes a lock; reads produce a plain dict
snapshot for the ``stats`` RPC.  Windows are bounded ring buffers — the
telemetry cost per query is O(1) and the memory footprint is fixed no
matter how long the server runs.
"""

from __future__ import annotations

import threading
import time
from collections import deque


class LatencyWindow:
    """Percentiles over the last ``size`` observations (seconds)."""

    def __init__(self, size: int = 1024) -> None:
        if size < 1:
            raise ValueError(f"window size must be >= 1, got {size}")
        self._samples: deque[float] = deque(maxlen=size)
        self._lock = threading.Lock()

    def observe(self, seconds: float) -> None:
        with self._lock:
            self._samples.append(seconds)

    def percentiles(self, points: tuple[float, ...] = (0.5, 0.9, 0.99)) -> dict:
        """``{"p50": ..., "p90": ..., "p99": ..., "max": ...}`` or zeros."""
        with self._lock:
            samples = sorted(self._samples)
        out: dict[str, float] = {}
        for point in points:
            label = f"p{int(point * 100)}"
            if not samples:
                out[label] = 0.0
                continue
            # Nearest-rank percentile over the window.
            rank = min(len(samples) - 1, int(point * len(samples)))
            out[label] = samples[rank]
        out["max"] = samples[-1] if samples else 0.0
        return out


class RateWindow:
    """Events-per-second over the completions in the last ``horizon`` seconds."""

    def __init__(self, size: int = 4096, horizon: float = 60.0) -> None:
        self._stamps: deque[float] = deque(maxlen=size)
        self._horizon = horizon
        self._started = time.monotonic()
        self._lock = threading.Lock()

    def _prune(self, now: float) -> None:
        # The deque's maxlen bounds count, not age; drop stamps older than
        # the horizon so an idle stretch cannot leave stale history behind.
        floor = now - self._horizon
        while self._stamps and self._stamps[0] < floor:
            self._stamps.popleft()

    def mark(self, count: int = 1) -> None:
        now = time.monotonic()
        with self._lock:
            self._prune(now)
            for _ in range(count):
                self._stamps.append(now)

    def per_second(self) -> float:
        now = time.monotonic()
        with self._lock:
            self._prune(now)
            if not self._stamps:
                return 0.0
            # The denominator is the observation window, clamped to the
            # horizon — NOT the spread of surviving stamps.  Two events
            # arriving just after an idle stretch span microseconds; the
            # old stamp-spread denominator reported them as a huge qps.
            span = min(self._horizon, now - self._started)
            if len(self._stamps) == self._stamps.maxlen:
                # The ring evicted in-horizon stamps; only the retained
                # tail is countable, so measure over its own extent.
                span = min(span, now - self._stamps[0])
            if span <= 0:
                return 0.0
            return len(self._stamps) / span


class ServerStats:
    """All counters the ``stats`` RPC reports, with a snapshot method."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.started = time.monotonic()
        self.requests_total = 0
        self.queries_total = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.overloaded_total = 0
        self.protocol_errors = 0
        self.batches_total = 0
        self.batched_queries_total = 0
        self.reloads_total = 0
        self.latency = LatencyWindow()
        self.qps = RateWindow()
        self.span_seconds: dict[str, float] = {}
        self.span_counts: dict[str, int] = {}

    def count(self, field: str, amount: int = 1) -> None:
        with self._lock:
            setattr(self, field, getattr(self, field) + amount)

    def record_batch(self, queries: int) -> None:
        with self._lock:
            self.batches_total += 1
            self.batched_queries_total += queries

    def record_spans(self, spans: dict) -> None:
        """Fold one request's (or batch's) span breakdown into the totals."""
        with self._lock:
            for name, seconds in spans.items():
                self.span_seconds[name] = (
                    self.span_seconds.get(name, 0.0) + seconds
                )
                self.span_counts[name] = self.span_counts.get(name, 0) + 1

    def snapshot(self, *, queue_depth: int, generation: int) -> dict:
        with self._lock:
            hits, misses = self.cache_hits, self.cache_misses
            batches, batched = self.batches_total, self.batched_queries_total
            body = {
                "uptime_seconds": time.monotonic() - self.started,
                "requests_total": self.requests_total,
                "queries_total": self.queries_total,
                "cache_hits": hits,
                "cache_misses": misses,
                "overloaded_total": self.overloaded_total,
                "protocol_errors": self.protocol_errors,
                "batches_total": batches,
                "reloads_total": self.reloads_total,
                "spans_seconds": {
                    name: round(total, 6)
                    for name, total in sorted(self.span_seconds.items())
                },
                "spans_count": dict(sorted(self.span_counts.items())),
                "spans_mean_seconds": {
                    name: round(total / self.span_counts[name], 6)
                    for name, total in sorted(self.span_seconds.items())
                    if self.span_counts.get(name)
                },
            }
        lookups = hits + misses
        body["cache_hit_rate"] = hits / lookups if lookups else 0.0
        body["mean_batch_size"] = batched / batches if batches else 0.0
        body["queue_depth"] = queue_depth
        body["generation"] = generation
        body["recent_qps"] = self.qps.per_second()
        body["latency_seconds"] = self.latency.percentiles()
        return body
