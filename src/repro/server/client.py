"""Blocking client for the serving tier (scripts, tests, the CLI).

:class:`ServerClient` speaks the length-prefixed JSON protocol over one TCP
connection with plain stdlib sockets — no asyncio on the client side, so it
drops into any script or test without an event loop.  ``search`` returns
:class:`ServedResult` objects whose hits are real
:class:`~repro.io.database.LocatedHit` instances, bit-identical to what the
offline ``search-db --index`` path produces for the same index.
"""

from __future__ import annotations

import socket
import time
from dataclasses import dataclass, field
from typing import Iterable

from repro.errors import ReproError
from repro.io.database import LocatedHit
from repro.server.protocol import (
    MAX_FRAME_BYTES,
    PREFIX,
    ProtocolError,
    decode_length,
    decode_payload,
    encode_frame,
)
from repro.service import normalize_queries


class ServerError(ReproError):
    """The server answered with ``status: error`` (or the link broke)."""


class ServerOverloaded(ServerError):
    """Admission control rejected the request; retry with backoff."""


@dataclass
class ServedResult:
    """One query's served answer (mirrors the service's ``QueryResult``).

    ``extra`` holds the mode-specific accounting the server attaches to
    non-exact answers (seed counts, ``recall_vs_exact``); empty for exact.
    """

    query_id: str
    threshold: int
    hits: list[LocatedHit]
    raw_hits: int
    dropped_boundary: int
    cached: bool
    extra: dict = field(default_factory=dict)
    #: Trace-span breakdown (``engine``/``locate``/``merge``/``shard<i>``
    #: seconds); populated only for ``search(..., trace=True)``.
    spans: dict = field(default_factory=dict)


@dataclass
class ServedBatch:
    """All results of one ``search`` RPC plus response metadata."""

    results: list[ServedResult]
    engine: str
    generation: int
    mode: str = "exact"

    @property
    def total_hits(self) -> int:
        return sum(len(r.hits) for r in self.results)


def _parse_hit(raw: list) -> LocatedHit:
    sequence_id, t_start, t_end, p_end, score, record_index = raw
    return LocatedHit(
        sequence_id=sequence_id,
        t_start=t_start,
        t_end=t_end,
        p_end=p_end,
        score=score,
        record_index=record_index,
    )


class ServerClient:
    """One blocking connection to a :class:`~repro.server.SearchServer`.

    Connects lazily on the first RPC; usable as a context manager.  One
    client is one connection — it is not thread-safe; give each thread its
    own client (the server handles any number of connections).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        timeout: float = 60.0,
        max_frame: int = MAX_FRAME_BYTES,
    ) -> None:
        if port < 1:
            raise ServerError(f"port must be a bound server port, got {port}")
        self.host = host
        self.port = port
        self.timeout = timeout
        self.max_frame = max_frame
        self._sock: socket.socket | None = None

    # ------------------------------------------------------------- transport
    def connect(self) -> "ServerClient":
        if self._sock is None:
            try:
                self._sock = socket.create_connection(
                    (self.host, self.port), timeout=self.timeout
                )
            except OSError as exc:
                raise ServerError(
                    f"cannot connect to {self.host}:{self.port}: {exc}"
                ) from None
        return self

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def __enter__(self) -> "ServerClient":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _recv_exact(self, count: int) -> bytes:
        assert self._sock is not None
        chunks = []
        remaining = count
        while remaining:
            try:
                chunk = self._sock.recv(remaining)
            except socket.timeout:
                raise ServerError(
                    f"timed out after {self.timeout}s waiting for "
                    f"{self.host}:{self.port}"
                ) from None
            except OSError as exc:
                raise ServerError(f"connection lost: {exc}") from None
            if not chunk:
                raise ServerError(
                    f"server {self.host}:{self.port} closed the connection"
                )
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def request(self, payload: dict) -> dict:
        """One RPC round-trip; raises on transport or protocol failure."""
        self.connect()
        assert self._sock is not None
        try:
            self._sock.sendall(encode_frame(payload, self.max_frame))
        except OSError as exc:
            self.close()
            raise ServerError(f"cannot send request: {exc}") from None
        try:
            length = decode_length(self._recv_exact(PREFIX.size), self.max_frame)
            response = decode_payload(self._recv_exact(length))
        except (ProtocolError, ServerError):
            self.close()  # stream state is unknown; do not reuse it
            raise
        return response

    # ------------------------------------------------------------------ RPCs
    def search(
        self,
        queries: Iterable,
        threshold: int | None = None,
        e_value: float | None = None,
        *,
        top_k: int | None = None,
        mode: str | None = None,
        trace: bool = False,
    ) -> ServedBatch:
        """Search a batch (same inputs as ``SearchService.search_batch``).

        ``mode=None`` leaves the choice to the server's default mode.
        ``trace=True`` asks the server for per-result span breakdowns
        (:attr:`ServedResult.spans`).
        """
        normalized = normalize_queries(queries)
        payload: dict = {
            "op": "search",
            "queries": [[q.id, q.sequence] for q in normalized],
        }
        if threshold is not None:
            payload["threshold"] = threshold
        if e_value is not None:
            payload["e_value"] = e_value
        if top_k is not None:
            payload["top_k"] = top_k
        if mode is not None:
            payload["mode"] = mode
        if trace:
            payload["trace"] = True
        response = self.request(payload)
        status = response.get("status")
        if status == "overloaded":
            raise ServerOverloaded(response.get("error", "server overloaded"))
        if status != "ok":
            raise ServerError(response.get("error", f"bad response: {response}"))
        results = [
            ServedResult(
                query_id=entry["id"],
                threshold=entry["threshold"],
                hits=[_parse_hit(raw) for raw in entry["hits"]],
                raw_hits=entry["raw_hits"],
                dropped_boundary=entry["dropped"],
                cached=entry["cached"],
                extra=entry.get("extra", {}),
                spans=entry.get("spans", {}),
            )
            for entry in response["results"]
        ]
        return ServedBatch(
            results=results,
            engine=response.get("engine", "alae"),
            generation=response.get("generation", 0),
            mode=response.get("mode", "exact"),
        )

    def _simple(self, op: str) -> dict:
        response = self.request({"op": op})
        if response.get("status") != "ok":
            raise ServerError(response.get("error", f"bad response: {response}"))
        return response

    def stats(self) -> dict:
        """The server's ``stats`` snapshot (qps, latency, cache, queue)."""
        return self._simple("stats")

    def metrics(self) -> dict:
        """The process-wide metric families (structured ``collect()`` form)
        plus the budget-routing signal block."""
        return self._simple("metrics")

    def ping(self) -> dict:
        return self._simple("ping")

    def reload(self) -> dict:
        """Force an on-disk fingerprint check (and reload if it changed)."""
        return self._simple("reload")

    def shutdown(self) -> dict:
        """Ask the server to stop gracefully."""
        return self._simple("shutdown")


def wait_until_ready(
    host: str, port: int, *, timeout: float = 30.0, interval: float = 0.05
) -> None:
    """Poll ``ping`` until the server answers (for scripts that just spawned it)."""
    deadline = time.monotonic() + timeout
    last_error: Exception | None = None
    while time.monotonic() < deadline:
        try:
            with ServerClient(host, port, timeout=min(timeout, 5.0)) as client:
                client.ping()
            return
        except ServerError as exc:
            last_error = exc
            time.sleep(interval)
    raise ServerError(
        f"server {host}:{port} not ready after {timeout}s: {last_error}"
    )
