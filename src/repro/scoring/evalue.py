"""Karlin-Altschul statistics: E-value <-> score threshold (Sec. 7).

The paper sets the threshold ``H`` indirectly through an expectation value:

    E = K * m * n * exp(-lambda * S)        (Karlin & Altschul 1990)
    H = ceil((ln(K m n) - ln E) / lambda)   (as used by OASIS / the paper)

``lambda`` is the unique positive root of ``sum_s p(s) exp(lambda s) = 1``
where ``p`` is the single-column score distribution (uniform background
frequencies, so a match has probability ``1/sigma``).  ``K`` is computed with
the lattice-case formula of Karlin, Dembo & Kawabata:

    K = d * lambda * exp(-2 * sigma_sum) / (H_ent * (1 - exp(-lambda * d)))

where ``d`` is the score lattice span (gcd of attained scores), ``H_ent`` is
the relative entropy ``lambda * E_q[S]`` of the conjugate distribution, and
``sigma_sum = sum_{k>=1} (1/k) (E[exp(lambda S_k); S_k < 0] + P(S_k >= 0))``
is evaluated by repeated convolution of the score distribution (the series
converges geometrically because the walk drifts to ``-infinity``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.errors import EValueError, SearchError
from repro.scoring.scheme import ScoringScheme


def _score_distribution(scheme: ScoringScheme, sigma: int) -> dict[int, float]:
    """Single aligned-column score distribution under uniform backgrounds."""
    p_match = 1.0 / sigma
    return {scheme.sa: p_match, scheme.sb: 1.0 - p_match}


def _solve_lambda(dist: dict[int, float]) -> float:
    """Positive root of ``sum p(s) e^(lambda s) = 1`` by bisection."""
    mean = sum(s * p for s, p in dist.items())
    if mean >= 0:
        raise EValueError(
            "expected per-column score must be negative for Karlin-Altschul "
            f"statistics (got {mean:.4f}); use a harsher mismatch penalty"
        )

    def f(lam: float) -> float:
        return sum(p * math.exp(lam * s) for s, p in dist.items()) - 1.0

    lo, hi = 1e-9, 1.0
    while f(hi) < 0:
        hi *= 2.0
        if hi > 1e4:
            raise EValueError("failed to bracket lambda")
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if f(mid) < 0:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def _compute_k(dist: dict[int, float], lam: float, iterations: int = 60) -> float:
    """Lattice-case K via the Karlin-Dembo-Kawabata series (see module doc)."""
    scores = sorted(dist)
    d = 0
    for s in scores:
        d = math.gcd(d, abs(s))
    d = max(d, 1)

    # Relative entropy of the conjugate distribution q(s) = p(s) e^(lam s).
    h_ent = lam * sum(s * p * math.exp(lam * s) for s, p in dist.items())

    # Convolve the step distribution to get S_k, accumulate the sigma series.
    low, high = min(scores), max(scores)
    step = np.zeros(high - low + 1)
    for s, p in dist.items():
        step[s - low] = p
    sigma_sum = 0.0
    cur = np.array([1.0])  # S_0 = 0 with probability 1
    for k in range(1, iterations + 1):
        cur = np.convolve(cur, step)
        # After k convolutions the support of S_k is [k*low, k*high].
        values = np.arange(k * low, k * high + 1)
        neg = values < 0
        term = float(
            np.sum(cur[neg] * np.exp(lam * values[neg])) + np.sum(cur[~neg])
        )
        sigma_sum += term / k
    k_val = (
        d * lam * math.exp(-2.0 * sigma_sum) / (h_ent * (1.0 - math.exp(-lam * d)))
    )
    return k_val


@dataclass(frozen=True)
class KarlinAltschul:
    """Computed ``(lambda, K)`` pair for a scheme/alphabet combination."""

    lam: float
    k: float

    @staticmethod
    @lru_cache(maxsize=64)
    def from_scheme(scheme: ScoringScheme, sigma: int) -> "KarlinAltschul":
        """Compute statistics for ``scheme`` over an alphabet of size ``sigma``."""
        dist = _score_distribution(scheme, sigma)
        lam = _solve_lambda(dist)
        k = _compute_k(dist, lam)
        return KarlinAltschul(lam=lam, k=k)

    def evalue(self, score: int, m: int, n: int) -> float:
        """``E = K m n exp(-lambda S)``."""
        return self.k * m * n * math.exp(-self.lam * score)

    def score_threshold(self, e_value: float, m: int, n: int) -> int:
        """``H = ceil((ln(K m n) - ln E) / lambda)`` (Sec. 7)."""
        if e_value <= 0:
            raise EValueError(f"E-value must be positive, got {e_value}")
        h = math.ceil((math.log(self.k * m * n) - math.log(e_value)) / self.lam)
        return max(1, h)


def resolve_threshold(
    threshold: int | None,
    e_value: float | None,
    scheme: ScoringScheme,
    sigma: int,
    m: int,
    n: int,
) -> int:
    """Resolve an explicit score threshold or an E-value into ``H`` (Sec. 7).

    Every engine — ALAE, BWT-SW, BLAST — funnels its search parameters
    through this one function, so a given ``(scheme, sigma, m, n)`` always
    yields the same ``H`` regardless of which backend answers the query.
    """
    if threshold is not None and e_value is not None:
        raise SearchError("pass either threshold or e_value, not both")
    if threshold is not None:
        if threshold < 1:
            raise SearchError(f"threshold must be >= 1, got {threshold}")
        return int(threshold)
    if e_value is None:
        e_value = 10.0  # the BLAST / BWT-SW default
    stats = KarlinAltschul.from_scheme(scheme, sigma)
    return stats.score_threshold(e_value, m, n)


def evalue_to_score(
    scheme: ScoringScheme, sigma: int, e_value: float, m: int, n: int
) -> int:
    """Convenience wrapper: threshold ``H`` for an E-value target."""
    return KarlinAltschul.from_scheme(scheme, sigma).score_threshold(e_value, m, n)


def score_to_evalue(
    scheme: ScoringScheme, sigma: int, score: int, m: int, n: int
) -> float:
    """Convenience wrapper: E-value of an alignment score."""
    return KarlinAltschul.from_scheme(scheme, sigma).evalue(score, m, n)
