"""The paper's affine-gap scoring scheme ``<sa, sb, sg, ss>`` (Sec. 2.1).

* ``sa > 0``  — score of an identical mapping (match),
* ``sb < 0``  — score of a substitution (mismatch),
* ``sg < 0``  — gap *opening* penalty,
* ``ss < 0``  — gap *extension* penalty per inserted/deleted character.

A gap of ``r`` characters costs ``sg + r * ss``.  The default scheme used by
BLAST and BWT-SW (and throughout the paper's examples) is ``<1, -3, -5, -2>``.

Derived quantities implemented here:

* :meth:`ScoringScheme.q` — the exact-match prefix length of Eq. 2,
  ``q = floor(min(|sb|, |sg + ss|) / sa) + 1``.
* :meth:`ScoringScheme.length_bounds` — Theorem 1's admissible row interval
  ``[ceil(H / sa), Lmax]`` with
  ``Lmax = max(m, m + floor((H - (sa * m + sg)) / ss))``.
* :meth:`ScoringScheme.delta` — the match/mismatch score ``delta(x, p)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ScoringError


@dataclass(frozen=True)
class ScoringScheme:
    """An affine-gap scoring scheme ``<sa, sb, sg, ss>``."""

    sa: int
    sb: int
    sg: int
    ss: int

    def __post_init__(self) -> None:
        if self.sa <= 0:
            raise ScoringError(f"sa must be positive, got {self.sa}")
        if self.sb >= 0:
            raise ScoringError(f"sb must be negative, got {self.sb}")
        if self.sg >= 0:
            raise ScoringError(f"sg must be negative, got {self.sg}")
        if self.ss >= 0:
            raise ScoringError(f"ss must be negative, got {self.ss}")

    # ------------------------------------------------------------------ basic
    def delta(self, x: str, p: str) -> int:
        """Substitution score of aligning text char ``x`` with query char ``p``."""
        return self.sa if x == p else self.sb

    def gap_cost(self, r: int) -> int:
        """Score contribution of a gap of ``r >= 1`` characters: ``sg + r*ss``."""
        if r < 1:
            raise ScoringError(f"gap length must be >= 1, got {r}")
        return self.sg + r * self.ss

    @property
    def gap_open_extend(self) -> int:
        """``sg + ss`` — the cost of opening a length-1 gap."""
        return self.sg + self.ss

    # ------------------------------------------------------------- derived q
    @property
    def q(self) -> int:
        """Exact-match prefix length (Eq. 2).

        ``q = floor(min(|sb|, |sg + ss|) / sa) + 1``: any alignment whose every
        prefix scores positively must begin with ``q`` consecutive matches.
        """
        return min(abs(self.sb), abs(self.sg + self.ss)) // self.sa + 1

    # -------------------------------------------------------------- Theorem 1
    def max_alignment_length(self, m: int, threshold: int) -> int:
        """``Lmax`` of Theorem 1 for a query of length ``m`` and threshold ``H``.

        The longest text substring that can still reach score ``H``:
        ``max(m, m + floor((H - (sa*m + sg)) / ss))``.
        """
        if m <= 0:
            raise ScoringError(f"query length must be positive, got {m}")
        with_gaps = m + math.floor((threshold - (self.sa * m + self.sg)) / self.ss)
        return max(m, with_gaps)

    def min_alignment_length(self, threshold: int) -> int:
        """Smallest admissible row ``ceil(H / sa)`` of Theorem 1."""
        return max(1, math.ceil(threshold / self.sa))

    def length_bounds(self, m: int, threshold: int) -> tuple[int, int]:
        """Theorem 1 interval ``[ceil(H/sa), Lmax]`` of meaningful rows."""
        return self.min_alignment_length(threshold), self.max_alignment_length(
            m, threshold
        )

    # ------------------------------------------------------------- Theorem 2
    def dead_threshold(self, i: int, j: int, m: int, threshold: int, lmax: int) -> int:
        """Score-filter bound of Theorem 2.

        The ``(i, j)`` entry is meaningless when its score is ``<=`` the
        returned value: no continuation (at most one match per remaining
        column/row) can lift it back to ``threshold``.
        """
        return max(
            0,
            threshold - (m - j) * self.sa - 1,
            threshold - (lmax - i) * self.sa - 1,
        )

    # ------------------------------------------------------------------ misc
    @property
    def fgoe_bound(self) -> int:
        """FGOE score bound ``|sg + ss|`` (Sec. 3.1.3).

        A no-gap-region cell becomes a *first gap open entry* when its score
        exceeds this bound, i.e. a gap opened from it can stay positive.
        """
        return abs(self.sg + self.ss)

    def supports_bwt_sw(self) -> bool:
        """BWT-SW's usability constraint ``|sb| >= 3 |sa|`` (Sec. 2.4)."""
        return abs(self.sb) >= 3 * self.sa

    def as_tuple(self) -> tuple[int, int, int, int]:
        """Return ``(sa, sb, sg, ss)``."""
        return (self.sa, self.sb, self.sg, self.ss)

    def __str__(self) -> str:
        return f"<{self.sa},{self.sb},{self.sg},{self.ss}>"


#: The default scheme of BLAST and BWT-SW, used in all paper examples.
DEFAULT_SCHEME = ScoringScheme(1, -3, -5, -2)

#: BLAST's published (sa, sb) grid crossed with the |sg|/|sa| and |ss|/|sa|
#: ratios the paper quotes in Sec. 6 ("for most of the parameters,
#: |sg|/|sa| in {1, 2, 3, 5} and |ss|/|sa| in {1, 2}").
BLAST_MATCH_MISMATCH = [(1, -2), (1, -3), (1, -4), (2, -3), (4, -5), (1, -1)]
BLAST_GAP_RATIOS = [(g, s) for g in (1, 2, 3, 5) for s in (1, 2)]


def blast_scheme_grid(match_mismatch=None, gap_ratios=None) -> list[ScoringScheme]:
    """Enumerate the Sec. 6 grid of BLAST-style schemes.

    Gap penalties scale with ``sa`` so the ratios |sg|/|sa|, |ss|/|sa| match
    the paper's quoted ranges.
    """
    pairs = BLAST_MATCH_MISMATCH if match_mismatch is None else match_mismatch
    ratios = BLAST_GAP_RATIOS if gap_ratios is None else gap_ratios
    return [
        ScoringScheme(sa, sb, -g * sa, -s * sa)
        for sa, sb in pairs
        for g, s in ratios
    ]


#: Representative DNA schemes from the experiments (Fig. 9 / Table 5).
BLAST_DNA_SCHEMES = {
    "<1,-3,-5,-2>": ScoringScheme(1, -3, -5, -2),
    "<1,-4,-5,-2>": ScoringScheme(1, -4, -5, -2),
    "<1,-1,-5,-2>": ScoringScheme(1, -1, -5, -2),
    "<1,-3,-2,-2>": ScoringScheme(1, -3, -2, -2),
}

#: Protein scheme used for the index-size experiment (Sec. 7.5).
BLAST_PROTEIN_SCHEMES = {
    "<1,-3,-11,-1>": ScoringScheme(1, -3, -11, -1),
}
