"""Affine-gap scoring schemes and Karlin-Altschul E-value statistics."""

from repro.scoring.scheme import (
    BLAST_DNA_SCHEMES,
    BLAST_PROTEIN_SCHEMES,
    DEFAULT_SCHEME,
    ScoringScheme,
)
from repro.scoring.evalue import (
    KarlinAltschul,
    evalue_to_score,
    resolve_threshold,
    score_to_evalue,
)

__all__ = [
    "ScoringScheme",
    "DEFAULT_SCHEME",
    "BLAST_DNA_SCHEMES",
    "BLAST_PROTEIN_SCHEMES",
    "KarlinAltschul",
    "evalue_to_score",
    "resolve_threshold",
    "score_to_evalue",
]
