"""Seed extension: ungapped X-drop and windowed gapped extension.

``ungapped_xdrop`` grows a seed along its diagonal in both directions,
abandoning a direction once the running score drops ``x_drop`` below the best
seen — BLAST's classic ungapped extension.  ``gapped_extension`` then runs a
full affine local DP over a bounded window around the ungapped segment (our
stand-in for BLAST's banded X-drop gapped phase), returning the best
alignment and its end positions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.align.recurrences import CostCounter
from repro.align.smith_waterman import PairwiseAlignment, align_pair
from repro.blast.seeding import Seed
from repro.scoring.scheme import ScoringScheme


@dataclass(frozen=True)
class UngappedSegment:
    """Result of an ungapped extension: a scored diagonal run (1-based)."""

    t_start: int
    t_end: int
    q_start: int
    q_end: int
    score: int


def ungapped_xdrop(
    text: str,
    query: str,
    seed: Seed,
    scheme: ScoringScheme,
    x_drop: int,
    counter: CostCounter | None = None,
) -> UngappedSegment:
    """Extend ``seed`` along its diagonal with X-drop termination.

    ``counter`` (when given) is charged one x1 entry per diagonal cell the
    walk evaluates — each step reads a single recurrence input (the running
    diagonal score), Table 4's cheapest class.
    """
    sa, sb = scheme.sa, scheme.sb
    score = seed.length * sa
    steps = 0

    # Rightward from the seed's last matched pair.
    t, q = seed.t_start + seed.length - 1, seed.q_start + seed.length - 1
    best, best_t, best_q = score, t, q
    run = score
    ti, qi = t, q
    while ti < len(text) and qi < len(query):
        run += sa if text[ti] == query[qi] else sb
        ti += 1
        qi += 1
        steps += 1
        if run > best:
            best, best_t, best_q = run, ti, qi
        elif best - run > x_drop:
            break
    right_gain = best - score
    t_end, q_end = best_t, best_q

    # Leftward from the seed's first pair.
    best_left, best_t0, best_q0 = 0, seed.t_start, seed.q_start
    run = 0
    ti, qi = seed.t_start - 1, seed.q_start - 1
    while ti >= 1 and qi >= 1:
        run += sa if text[ti - 1] == query[qi - 1] else sb
        steps += 1
        if run > best_left:
            best_left, best_t0, best_q0 = run, ti, qi
        elif best_left - run > x_drop:
            break
        ti -= 1
        qi -= 1
    if counter is not None:
        counter.charge(1, steps)
    return UngappedSegment(
        t_start=best_t0,
        t_end=t_end,
        q_start=best_q0,
        q_end=q_end,
        score=score + right_gain + best_left,
    )


def gapped_extension(
    text: str,
    query: str,
    segment: UngappedSegment,
    scheme: ScoringScheme,
    margin: int = 60,
    counter: CostCounter | None = None,
) -> tuple[PairwiseAlignment, int, int]:
    """Affine local DP over a window around an ungapped segment.

    Returns ``(alignment, window_t_offset, window_q_offset)`` where the
    offsets convert the alignment's window-local coordinates back to global
    1-based positions (``global = offset + local``).  ``counter`` (when
    given) is charged the full window area at x3 — the dense affine DP
    evaluates all three recurrence inputs for every cell.
    """
    t_lo = max(1, segment.t_start - margin)
    t_hi = min(len(text), segment.t_end + margin)
    q_lo = max(1, segment.q_start - margin)
    q_hi = min(len(query), segment.q_end + margin)
    window_t = text[t_lo - 1 : t_hi]
    window_q = query[q_lo - 1 : q_hi]
    if counter is not None:
        counter.charge(3, len(window_t) * len(window_q))
    alignment = align_pair(window_t, window_q, scheme)
    return alignment, t_lo - 1, q_lo - 1
