"""Word seeding for the BLAST baseline (Sec. 1: "decomposes an input query
into a set of grams and identifies matches against the database").

The query is slid over in windows of ``word_size``; every window that occurs
in the text (via :class:`repro.index.kmer_index.KmerIndex`) yields one
:class:`Seed` per occurrence.  Seeds are later deduplicated per diagonal by
the engine so a long perfect match does not trigger hundreds of extensions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.index.kmer_index import KmerIndex


@dataclass(frozen=True)
class Seed:
    """An exact word match: text/query start positions (1-based), length."""

    t_start: int
    q_start: int
    length: int

    @property
    def diagonal(self) -> int:
        """Seeds on one diagonal extend into the same ungapped alignment."""
        return self.t_start - self.q_start


def find_seeds(index: KmerIndex, query: str) -> Iterator[Seed]:
    """Yield every word hit of ``query`` against the indexed text."""
    w = index.k
    for q0 in range(len(query) - w + 1):
        word = query[q0 : q0 + w]
        for t_start in index.positions(word):
            yield Seed(t_start=int(t_start), q_start=q0 + 1, length=w)
