"""The BLAST-like search engine (heuristic baseline of the experiments).

The pipeline mirrors classic BLASTN: word seeding, per-diagonal seed
deduplication, ungapped X-drop extension, a gap trigger, then a windowed
gapped extension.  It is a *heuristic*: alignments without a ``word_size``
exact core, or ones escaping the extension window, are missed — exactly the
behaviour the paper contrasts ALAE against (Tables 2/3 show BLAST finding
fewer results; Fig. 9 shows it barely reacting to the scoring scheme).
"""

from __future__ import annotations

import time

from repro.align.recurrences import CostCounter
from repro.align.types import ResultSet, SearchResult, SearchStats
from repro.alphabet import DNA, Alphabet
from repro.blast.extension import gapped_extension, ungapped_xdrop
from repro.blast.seeding import find_seeds
from repro.errors import SearchError
from repro.index.kmer_index import KmerIndex
from repro.scoring.evalue import resolve_threshold
from repro.scoring.scheme import DEFAULT_SCHEME, ScoringScheme


class Blast:
    """Seed-and-extend local alignment over a text.

    Parameters
    ----------
    word_size:
        Seed word length (BLASTN defaults to 11; smaller values increase
        sensitivity and cost).
    x_drop_ungapped / gap_trigger / gapped_margin:
        Extension controls; defaults scale with the scheme's match score.
    index:
        An already-built :class:`KmerIndex` over ``text`` with
        ``k == word_size`` (e.g. the aux section of a persistent
        :class:`~repro.store.IndexStore`); omitted, the index is built here.
    """

    def __init__(
        self,
        text: str,
        alphabet: Alphabet = DNA,
        scheme: ScoringScheme = DEFAULT_SCHEME,
        word_size: int = 11,
        x_drop_ungapped: int | None = None,
        gap_trigger: int | None = None,
        gapped_margin: int = 60,
        index: KmerIndex | None = None,
    ) -> None:
        if word_size < 1:
            raise SearchError(f"word_size must be >= 1, got {word_size}")
        alphabet.validate(text)
        self.text = text
        self.alphabet = alphabet
        self.scheme = scheme
        self.word_size = word_size
        self.x_drop_ungapped = (
            x_drop_ungapped if x_drop_ungapped is not None else 10 * scheme.sa
        )
        self.gap_trigger = gap_trigger
        self.gapped_margin = gapped_margin
        if index is not None:
            if index.k != word_size:
                raise SearchError(
                    f"prebuilt kmer index has k={index.k}, engine word_size "
                    f"is {word_size}"
                )
            if len(index.text) != len(text):
                raise SearchError(
                    "prebuilt kmer index was built over a different text"
                )
            self._index = index
        else:
            self._index = KmerIndex(text, word_size)

    def search(
        self,
        query: str,
        threshold: int | None = None,
        e_value: float | None = None,
    ) -> SearchResult:
        """Heuristically find alignments with score >= H (may miss some)."""
        self.alphabet.validate(query)
        m, n = len(query), len(self.text)
        h_thr = resolve_threshold(
            threshold, e_value, self.scheme, self.alphabet.size, m, n
        )
        trigger = (
            self.gap_trigger
            if self.gap_trigger is not None
            else max(self.word_size * self.scheme.sa, h_thr // 2)
        )

        started = time.perf_counter()
        counter = CostCounter()
        stats = SearchStats()
        results = ResultSet()
        seeds = extensions = gapped = 0

        # Per-diagonal high-water mark: skip seeds inside an extended region.
        covered: dict[int, int] = {}
        for seed in find_seeds(self._index, query):
            seeds += 1
            if covered.get(seed.diagonal, 0) >= seed.t_start + seed.length - 1:
                continue
            segment = ungapped_xdrop(
                self.text, query, seed, self.scheme, self.x_drop_ungapped,
                counter=counter,
            )
            extensions += 1
            covered[seed.diagonal] = max(
                covered.get(seed.diagonal, 0), segment.t_end
            )
            if segment.score < trigger and segment.score < h_thr:
                continue
            gapped += 1
            alignment, t_off, q_off = gapped_extension(
                self.text, query, segment, self.scheme, self.gapped_margin,
                counter=counter,
            )
            gapped_cell = (t_off + alignment.s1_end, q_off + alignment.s2_end)
            same_endpoint = gapped_cell == (segment.t_end, segment.q_end)
            if alignment.score >= h_thr:
                # Both phases can clear H on the *same* (t_end, q_end)
                # endpoint (the gapped DP rediscovering its own seed
                # segment); fold them into one add — best score, earliest
                # start on ties — instead of hitting the accumulator twice.
                start = t_off + alignment.s1_start
                if (
                    same_endpoint
                    and segment.score == alignment.score
                    and segment.t_start < start
                ):
                    start = segment.t_start
                results.add(
                    gapped_cell[0], gapped_cell[1], alignment.score, start
                )
            if segment.score >= h_thr and not same_endpoint:
                results.add(
                    segment.t_end, segment.q_end, segment.score, segment.t_start
                )

        stats.calculated_x1 = counter.x1
        stats.calculated_x2 = counter.x2
        stats.calculated_x3 = counter.x3
        stats.extra.update(
            {"seeds": seeds, "ungapped_extensions": extensions, "gapped": gapped}
        )
        stats.elapsed_seconds = time.perf_counter() - started
        return SearchResult(hits=results, stats=stats, threshold=h_thr)
