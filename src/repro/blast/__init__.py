"""BLAST-like heuristic baseline: seed -> ungapped X-drop -> gapped extension."""

from repro.blast.engine import Blast
from repro.blast.extension import ungapped_xdrop, gapped_extension
from repro.blast.seeding import find_seeds, Seed

__all__ = ["Blast", "Seed", "find_seeds", "ungapped_xdrop", "gapped_extension"]
