"""Experiment workloads (Sec. 7 query/text configurations)."""

from repro.workloads.generator import Workload, make_workload

__all__ = ["Workload", "make_workload"]
