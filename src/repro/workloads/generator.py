"""Workload construction mirroring the paper's Sec. 7 methodology.

One :class:`Workload` bundles a text with a set of queries ("we randomly
chose 100 starting positions ... and picked a fixed length substring from
each ... to generate a query workload"), both derived deterministically
from a seed so each benchmark is reproducible.  The paper's workloads are
equal-length; serving benchmarks can instead request **mixed-length**
queries (``query_length_range``) so batching and micro-batching are
exercised by the ragged traffic a real front door sees.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.alphabet import DNA, Alphabet
from repro.data.synthetic import genome, sample_homologous_queries


@dataclass(frozen=True)
class Workload:
    """A text plus a query workload (fixed-length or mixed-length)."""

    text: str
    queries: list[str]
    alphabet: Alphabet
    seed: int
    query_length: int

    @property
    def n(self) -> int:
        return len(self.text)

    @property
    def m(self) -> int:
        """The *requested* nominal query length.

        Mixed-length workloads draw actual lengths from their range; read
        :attr:`query_lengths` for per-query truth.
        """
        return self.query_length

    @property
    def query_lengths(self) -> list[int]:
        """Actual per-query lengths (all equal unless mixed-length)."""
        return [len(query) for query in self.queries]

    @property
    def is_mixed_length(self) -> bool:
        return len(set(self.query_lengths)) > 1


_cache: dict[tuple, Workload] = {}


def make_workload(
    text_length: int,
    query_length: int,
    query_count: int = 3,
    alphabet: Alphabet = DNA,
    seed: int = 20120827,  # VLDB 2012 opening day
    sub_rate: float = 0.08,
    indel_rate: float = 0.02,
    repeat_fraction: float = 0.05,
    tandem_fraction: float = 0.02,
    query_length_range: "tuple[int, int] | None" = None,
    cached: bool = True,
) -> Workload:
    """Build (and memoise) one reproducible workload configuration.

    Repeat fractions and mutation rates default to values calibrated so the
    per-cell hit density is in the paper's regime (sparse hits embedded in a
    dominant random background) rather than wall-to-wall homology.

    ``query_length_range=(lo, hi)`` draws each query's length uniformly
    from ``[lo, hi]`` (inclusive, seeded) instead of using ``query_length``
    for all of them — the mixed-length traffic serving and micro-batching
    benchmarks need.  ``query_length`` then only names the workload's
    nominal size; pass ``hi`` for an honest label.
    """
    if query_length_range is not None:
        lo, hi = query_length_range
        if not (1 <= lo <= hi):
            raise ValueError(
                f"query_length_range must be (lo, hi) with 1 <= lo <= hi, "
                f"got {query_length_range!r}"
            )
    key = (
        text_length, query_length, query_count, alphabet.name, seed,
        sub_rate, indel_rate, repeat_fraction, tandem_fraction,
        query_length_range,
    )
    if cached and key in _cache:
        return _cache[key]
    rng = np.random.default_rng(seed)
    text = genome(
        text_length, rng, alphabet=alphabet,
        repeat_fraction=repeat_fraction, tandem_fraction=tandem_fraction,
    )
    if query_length_range is None:
        queries = sample_homologous_queries(
            text, query_count, query_length, rng,
            sub_rate=sub_rate, indel_rate=indel_rate, alphabet=alphabet,
        )
    else:
        lo, hi = query_length_range
        lengths = rng.integers(lo, hi + 1, size=query_count)
        queries = [
            sample_homologous_queries(
                text, 1, int(length), rng,
                sub_rate=sub_rate, indel_rate=indel_rate, alphabet=alphabet,
            )[0]
            for length in lengths
        ]
    workload = Workload(
        text=text, queries=queries, alphabet=alphabet, seed=seed,
        query_length=query_length,
    )
    if cached:
        _cache[key] = workload
    return workload
