"""Workload construction mirroring the paper's Sec. 7 methodology.

One :class:`Workload` bundles a text with a set of equal-length queries
("we randomly chose 100 starting positions ... and picked a fixed length
substring from each ... to generate a query workload"), both derived
deterministically from a seed so each benchmark is reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.alphabet import DNA, Alphabet
from repro.data.synthetic import genome, sample_homologous_queries


@dataclass(frozen=True)
class Workload:
    """A text plus a fixed-length query workload."""

    text: str
    queries: list[str]
    alphabet: Alphabet
    seed: int
    query_length: int

    @property
    def n(self) -> int:
        return len(self.text)

    @property
    def m(self) -> int:
        return self.query_length


_cache: dict[tuple, Workload] = {}


def make_workload(
    text_length: int,
    query_length: int,
    query_count: int = 3,
    alphabet: Alphabet = DNA,
    seed: int = 20120827,  # VLDB 2012 opening day
    sub_rate: float = 0.08,
    indel_rate: float = 0.02,
    repeat_fraction: float = 0.05,
    tandem_fraction: float = 0.02,
    cached: bool = True,
) -> Workload:
    """Build (and memoise) one reproducible workload configuration.

    Repeat fractions and mutation rates default to values calibrated so the
    per-cell hit density is in the paper's regime (sparse hits embedded in a
    dominant random background) rather than wall-to-wall homology.
    """
    key = (
        text_length, query_length, query_count, alphabet.name, seed,
        sub_rate, indel_rate, repeat_fraction, tandem_fraction,
    )
    if cached and key in _cache:
        return _cache[key]
    rng = np.random.default_rng(seed)
    text = genome(
        text_length, rng, alphabet=alphabet,
        repeat_fraction=repeat_fraction, tandem_fraction=tandem_fraction,
    )
    queries = sample_homologous_queries(
        text, query_count, query_length, rng,
        sub_rate=sub_rate, indel_rate=indel_rate, alphabet=alphabet,
    )
    workload = Workload(
        text=text, queries=queries, alphabet=alphabet, seed=seed,
        query_length=query_length,
    )
    if cached:
        _cache[key] = workload
    return workload
