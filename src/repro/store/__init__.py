"""Persistent index store: versioned on-disk serialization of built indexes.

Build once (``IndexStore.build(...).save(path)`` or ``repro index build``),
then serve forever: ``IndexStore.open(path)`` memory-maps every array and
hands warmed engines to :class:`~repro.service.SearchService` — including
spawn-based process pools whose workers reopen the store by path instead of
requiring fork.
"""

from repro.errors import StoreError
from repro.store.cache import StoreCache, default_store_cache
from repro.store.format import ALIGNMENT, FORMAT_VERSION, MAGIC
from repro.store.sharded import (
    MANIFEST_MAGIC,
    MANIFEST_VERSION,
    ShardedStore,
    is_manifest,
    manifest_payload_crc,
    read_manifest,
    write_manifest,
)
from repro.store.store import KMER_AUX_VERSION, IndexStore, fingerprint_key

__all__ = [
    "IndexStore",
    "KMER_AUX_VERSION",
    "ShardedStore",
    "StoreCache",
    "StoreError",
    "default_store_cache",
    "fingerprint_key",
    "is_manifest",
    "manifest_payload_crc",
    "read_manifest",
    "write_manifest",
    "MAGIC",
    "MANIFEST_MAGIC",
    "MANIFEST_VERSION",
    "FORMAT_VERSION",
    "ALIGNMENT",
]
